//! Facade crate for the Killi reproduction workspace.
//!
//! Re-exports every component crate so examples, integration tests and
//! downstream users can depend on a single package:
//!
//! - [`ecc`] — parity, SECDED, DEC-TED BCH and OLSC codecs,
//! - [`fault`] — low-voltage fault model (cell curves, fault maps, soft errors),
//! - [`sim`] — the GPU cache-hierarchy timing simulator,
//! - [`core`] — the Killi mechanism itself (DFH classification + ECC cache),
//! - [`baselines`] — DECTED / FLAIR / MS-ECC / SECDED comparison schemes,
//! - [`workloads`] — synthetic GPGPU trace generators,
//! - [`model`] — analytic coverage, area and power models,
//! - [`obs`] — typed event/metrics observability layer,
//! - [`mod@bench`] — experiment runner and Monte-Carlo sweep engine,
//! - [`vmin`] — fleet-scale Vmin campaigns (per-die minimum-voltage
//!   binning over a streaming die store),
//! - [`serve`] — the sweep and campaign engines as an HTTP service (job
//!   queue, worker pool, content-addressed result cache).
//!
//! # Quickstart
//!
//! ```
//! use killi_repro::fault::cell_model::{FreqGhz, NormVdd};
//! use killi_repro::fault::line_stats::LineFaultDistribution;
//! use killi_repro::fault::model::{default_registry, FaultModelConfig};
//!
//! let model = default_registry().build(&FaultModelConfig::default()).unwrap();
//! let cell = model.cell_model().expect("stuck-at exposes its curve");
//! let dist = LineFaultDistribution::at(cell, NormVdd::LV_0_625, FreqGhz::PEAK);
//! assert!(dist.zero + dist.one > 0.95);
//! ```

pub use killi as core;
pub use killi_baselines as baselines;
pub use killi_bench as bench;
pub use killi_ecc as ecc;
pub use killi_fault as fault;
pub use killi_model as model;
pub use killi_obs as obs;
pub use killi_serve as serve;
pub use killi_sim as sim;
pub use killi_vmin as vmin;
pub use killi_workloads as workloads;

//! Quickstart: put a Killi-protected GPU L2 under low voltage and watch it
//! classify its fault population at runtime — no MBIST anywhere.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use killi_repro::core::scheme::{KilliConfig, KilliScheme};
use killi_repro::fault::cell_model::{FreqGhz, NormVdd};
use killi_repro::fault::model::{default_registry, FaultModelConfig};
use killi_repro::sim::gpu::{GpuConfig, GpuSim};
use killi_repro::sim::protection::Unprotected;
use killi_repro::workloads::{TraceParams, Workload};

fn main() {
    // The paper's GPU: 8 CUs, 2 MB 16-way L2 (Table 3), undervolted to
    // 0.625 x VDD while the rest of the chip stays at nominal.
    let config = GpuConfig::default();
    // The registry's default fault model is the paper's stuck-at curve;
    // try `FaultModelConfig::parse("clustered:rows=4,corr=0.8")` for the
    // row-correlated variant.
    let model = default_registry()
        .build(&FaultModelConfig::default())
        .expect("stuck-at always builds");
    let map = Arc::new(model.map(config.l2.lines(), NormVdd::LV_0_625, FreqGhz::PEAK, 42));
    let faulty_lines = (0..map.lines())
        .filter(|&l| map.data_fault_count(l) > 0)
        .count();
    println!(
        "fault map @ 0.625 x VDD: {} of {} lines have at least one stuck-at cell",
        faulty_lines,
        map.lines()
    );

    // First, what happens with no protection at all?
    let params = TraceParams::paper(100_000, 42);
    let unprotected_sdc = {
        let mut sim = GpuSim::new(config, Arc::clone(&map), Box::new(Unprotected::new()), 42);
        sim.run(Workload::Xsbench.trace(&params)).sdc_events
    };
    println!("unprotected L2 at 0.625 x VDD: {unprotected_sdc} corrupted loads delivered");

    // Killi with the paper's mid-size ECC cache (one entry per 64 lines).
    let killi = KilliScheme::new(
        KilliConfig::with_ratio(64),
        Arc::clone(&map),
        config.l2.lines(),
        config.l2.ways,
    );
    let mut sim = GpuSim::new(config, Arc::clone(&map), Box::new(killi), 42);

    // Drive it with the XSBench-like workload (random table lookups).
    let stats = sim.run(Workload::Xsbench.trace(&params));

    println!("kernel finished in {} cycles", stats.cycles);
    println!(
        "L2: {} hits, {} misses ({} error-induced), MPKI {:.1}",
        stats.l2_hits,
        stats.l2_misses,
        stats.l2_error_misses,
        stats.mpki()
    );
    println!(
        "protection: {} corrections on delivered data, {} silent corruptions",
        stats.corrections, stats.sdc_events
    );
    // Killi cannot be perfect (the paper's §5.6.2 masked-fault hazard and
    // its Figure 6 coverage < 100 %), but it must eliminate virtually all
    // of the corruption an unprotected low-voltage cache would deliver.
    assert!(
        stats.sdc_events * 100 < unprotected_sdc,
        "Killi removed too little corruption: {} vs {}",
        stats.sdc_events,
        unprotected_sdc
    );
    println!(
        "Killi removed {:.3}% of silent corruptions (residual: the paper's\n\
         masked-fault hazard, eliminated entirely by the §5.6.2 inverted-write\n\
         check — see the docs for `KilliConfig::inverted_write_check`)",
        100.0 * (1.0 - stats.sdc_events as f64 / unprotected_sdc as f64)
    );
}

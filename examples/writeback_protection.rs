//! Write-back caches raise the stakes: a detected-but-uncorrectable error
//! on a *dirty* line is unrecoverable (memory holds stale data). This
//! example runs the store-heavy FFT kernel in write-back mode and shows
//! how the paper's §5.6.1 escalation — SECDED for dirty fault-free lines,
//! DEC-TED for dirty one-fault lines — turns data loss into correction.
//!
//! Run with: `cargo run --release --example writeback_protection`

use std::sync::Arc;

use killi_repro::core::scheme::{KilliConfig, KilliScheme};
use killi_repro::fault::cell_model::{FreqGhz, NormVdd};
use killi_repro::fault::model::{default_registry, FaultModelConfig};
use killi_repro::sim::cache::WritePolicy;
use killi_repro::sim::gpu::{GpuConfig, GpuSim};
use killi_repro::workloads::{TraceParams, Workload};

fn main() {
    let config = GpuConfig {
        write_policy: WritePolicy::WriteBack,
        ..GpuConfig::default()
    };
    let model = default_registry()
        .build(&FaultModelConfig::default())
        .expect("stuck-at always builds");
    let map = Arc::new(model.map(config.l2.lines(), NormVdd::LV_0_625, FreqGhz::PEAK, 42));
    let params = TraceParams::paper(100_000, 42);

    let run = |write_back_protection: bool| {
        let killi = KilliScheme::new(
            KilliConfig {
                write_back_protection,
                ..KilliConfig::with_ratio(64)
            },
            Arc::clone(&map),
            config.l2.lines(),
            config.l2.ways,
        );
        let mut sim = GpuSim::new(config, Arc::clone(&map), Box::new(killi), 42);
        sim.run(Workload::Fft.trace(&params))
    };

    let plain = run(false);
    let escalated = run(true);

    println!("FFT in write-back mode at 0.625 x VDD (2 MB L2, Killi 1:64):\n");
    println!("                         plain Killi    Killi + 5.6.1");
    println!(
        "  dirty data lost       {:>12} {:>16}",
        plain.dirty_data_loss, escalated.dirty_data_loss
    );
    println!(
        "  corrections           {:>12} {:>16}",
        plain.corrections, escalated.corrections
    );
    println!(
        "  write-backs           {:>12} {:>16}",
        plain.writebacks, escalated.writebacks
    );
    println!(
        "  cycles                {:>12} {:>16}",
        plain.cycles, escalated.cycles
    );
    println!();
    println!(
        "Escalating dirty lines' protection eliminates {}% of the data loss,\n\
         paying with extra ECC-cache contention (the trade §5.6.1 predicts).",
        100 * (plain.dirty_data_loss - escalated.dirty_data_loss) / plain.dirty_data_loss.max(1)
    );
    assert!(escalated.dirty_data_loss * 10 < plain.dirty_data_loss.max(10));
}

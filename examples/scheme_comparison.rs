//! Head-to-head: Killi against the paper's baselines (DECTED, FLAIR,
//! MS-ECC) on a capacity-sensitive workload, including the storage area
//! each scheme pays — the paper's core trade-off in one screen.
//!
//! Run with: `cargo run --release --example scheme_comparison`

use killi_repro::fault::cell_model::NormVdd;
use killi_repro::model::area::{checkbits, AreaModel};

use killi_bench::runner::{baseline_of, run_matrix, MatrixConfig};
use killi_bench::schemes::SchemeSpec;
use killi_repro::workloads::Workload;

fn main() {
    let mut config = MatrixConfig::paper(60_000, 42);
    config.vdd = NormVdd::LV_0_625;
    let schemes = [
        SchemeSpec::Dected,
        SchemeSpec::Flair,
        SchemeSpec::MsEcc,
        SchemeSpec::Killi(256),
        SchemeSpec::Killi(16),
    ];
    println!("simulating xsbench under 5 protection schemes at 0.625 x VDD ...");
    let configs: Vec<_> = schemes.iter().map(SchemeSpec::config).collect();
    let results = run_matrix(&[Workload::Xsbench], &configs, &config);
    let base = baseline_of(&results, "xsbench");

    let area = AreaModel::paper();
    let area_of = |spec: &SchemeSpec| -> f64 {
        let bits = match spec {
            SchemeSpec::Dected => area.per_line_bits(checkbits::DECTED),
            SchemeSpec::Flair => area.per_line_bits(checkbits::SECDED),
            SchemeSpec::MsEcc => area.per_line_bits(checkbits::OLSC_PAPER),
            SchemeSpec::Killi(r) => area.killi_bits(*r, checkbits::SECDED),
            _ => unreachable!(),
        };
        AreaModel::kib(bits)
    };

    println!();
    println!("scheme        norm.time     MPKI   disabled   area (KiB)");
    println!("---------------------------------------------------------");
    for spec in &schemes {
        let r = results
            .iter()
            .find(|r| r.scheme == spec.label())
            .expect("result");
        println!(
            "{:<12}  {:>9.4}  {:>7.2}  {:>9}  {:>11.2}",
            r.scheme,
            r.stats.normalized_time(&base.stats),
            r.stats.mpki(),
            r.disabled_lines,
            area_of(spec),
        );
    }
    println!();
    println!(
        "Killi's trade: half the area of per-line SECDED, baselines-class\n\
         performance — and unlike every baseline above, its disable map was\n\
         learned during this very run instead of by an MBIST pass."
    );
}

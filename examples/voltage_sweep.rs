//! Voltage sweep: how far can the L2 be undervolted before Killi's
//! runtime classification disables too much of the cache?
//!
//! For each voltage the example builds a fresh fault map (monotone: faults
//! only accumulate as VDD drops), runs a short kernel, and prints the DFH
//! census Killi learned plus the performance cost — the Vmin exploration an
//! SoC power-management team would run, with zero MBIST.
//!
//! Run with: `cargo run --release --example voltage_sweep`

use std::sync::Arc;

use killi_repro::core::scheme::{KilliConfig, KilliScheme};
use killi_repro::fault::cell_model::{FreqGhz, NormVdd};
use killi_repro::fault::map::FaultMap;
use killi_repro::fault::model::{default_registry, FaultModelConfig};
use killi_repro::sim::cache::CacheGeometry;
use killi_repro::sim::gpu::{GpuConfig, GpuSim};
use killi_repro::workloads::{TraceParams, Workload};

fn main() {
    // A scaled-down GPU keeps the sweep quick; the physics is identical.
    let config = GpuConfig {
        cus: 4,
        l2: CacheGeometry {
            size_bytes: 512 * 1024,
            ways: 16,
            line_bytes: 64,
        },
        l2_banks: 8,
        ..GpuConfig::default()
    };
    // A voltage sweep needs a voltage-nested model (the registry's
    // `stuck-at` and `clustered` qualify; `transient` declares it does not).
    let model = default_registry()
        .build(&FaultModelConfig::default())
        .expect("stuck-at always builds");
    assert!(
        model.voltage_nested(),
        "Vmin search needs nested fault sets"
    );
    let params = TraceParams {
        cus: config.cus,
        ops_per_cu: 40_000,
        seed: 7,
        l2_bytes: config.l2.size_bytes,
    };

    // Fault-free reference at nominal voltage.
    let baseline = {
        let map = Arc::new(FaultMap::fault_free(config.l2.lines()));
        let killi = KilliScheme::new(
            KilliConfig::with_ratio(64),
            Arc::clone(&map),
            config.l2.lines(),
            config.l2.ways,
        );
        let mut sim = GpuSim::new(config, map, Box::new(killi), 7);
        sim.run(Workload::Pennant.trace(&params))
    };

    println!("  vdd    b'00   b'01   b'10   b'11   norm.time   SDCs");
    println!("------------------------------------------------------");
    for v in [0.675, 0.65, 0.625, 0.6, 0.575, 0.55] {
        let map = Arc::new(model.map(config.l2.lines(), NormVdd(v), FreqGhz::PEAK, 7));
        let killi = KilliScheme::new(
            KilliConfig::with_ratio(64),
            Arc::clone(&map),
            config.l2.lines(),
            config.l2.ways,
        );
        let mut sim = GpuSim::new(config, map, Box::new(killi), 7);
        let stats = sim.run(Workload::Pennant.trace(&params));
        let census = sim
            .l2()
            .protection()
            .protection_stats()
            .dfh_census
            .expect("Killi reports a DFH census");
        println!(
            "{v:>5}  {:>5}  {:>5}  {:>5}  {:>5}   {:>9.4}   {:>4}",
            census[0],
            census[1],
            census[2],
            census[3],
            stats.cycles as f64 / baseline.cycles as f64,
            stats.sdc_events,
        );
    }
    println!();
    println!(
        "Below ~0.575 x VDD the disabled (b'11) population explodes — matching\n\
         the paper's conclusion that 0.625 x VDD is the 1 GHz sweet spot."
    );
}

//! End-to-end tests of the `killi-serve` daemon: real sockets, real
//! worker pool, real sweeps.
//!
//! What must hold (and is easy to silently lose):
//!
//! - **Content addressing**: concurrent submissions of one config run
//!   `run_sweep` exactly once, and everyone gets the same bytes — the
//!   exact bytes a direct in-process `run_sweep` produces, which are the
//!   `tests/golden/sweep_report.json` bytes for the golden job.
//! - **Backpressure**: a full queue answers 429 with `Retry-After`
//!   instead of queueing unboundedly.
//! - **Graceful drain**: shutdown mid-queue finishes accepted jobs and
//!   never loses a completed result; submissions during the drain get
//!   503.
//! - **Hostility**: malformed requests are 4xx, never a panic or a
//!   wedged daemon.
//!
//! Servers run with `heed_signals` off so these tests cannot be drained
//! by the signal-handling test elsewhere in the workspace.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use killi_repro::obs::serve::{parse_job_id, JobId, ServeCounter, ServeEvent};
use killi_repro::serve::{parse_job_spec, Client, Handle, Server, ServerConfig};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

fn golden_job() -> String {
    std::fs::read_to_string(golden_path("service_job.json")).expect("golden job payload")
}

/// Binds a server on an ephemeral port, runs it on a thread, and hands
/// back the pieces a test needs.
fn start_server(config: ServerConfig) -> (Handle, Client, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerConfig {
        host: "127.0.0.1".to_string(),
        port: 0,
        heed_signals: false,
        ..config
    })
    .expect("bind ephemeral port");
    let handle = server.handle();
    let client = Client::new(&format!("http://{}", server.local_addr())).expect("client URL");
    let runner = std::thread::spawn(move || server.run().expect("server run"));
    (handle, client, runner)
}

/// Extracts a JSON string field from a small response body without
/// pulling in a full deserializer.
fn field<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    let marker = format!("\"{key}\":\"");
    let start = body.find(&marker)? + marker.len();
    let end = body[start..].find('"')? + start;
    Some(&body[start..end])
}

fn submit_job(client: &Client, payload: &str) -> (u16, String) {
    let resp = client
        .post("/v1/jobs", payload.as_bytes())
        .expect("submit over loopback");
    (resp.status, resp.text())
}

/// Polls until the job settles; panics if it does not within `limit`.
fn await_done(client: &Client, job: &str, limit: Duration) {
    let deadline = Instant::now() + limit;
    loop {
        let resp = client.get(&format!("/v1/jobs/{job}")).expect("status poll");
        assert_eq!(resp.status, 200, "status poll body: {}", resp.text());
        let body = resp.text();
        match field(&body, "state") {
            Some("done") => return,
            Some("failed") => panic!("job {job} failed: {body}"),
            _ => {}
        }
        assert!(
            Instant::now() < deadline,
            "job {job} did not finish in time"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn concurrent_submissions_share_one_execution_and_the_golden_bytes() {
    let (handle, client, runner) = start_server(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    });
    let payload = golden_job();

    // Four concurrent submissions of the same config.
    let submitters: Vec<_> = (0..4)
        .map(|_| {
            let client = client.clone();
            let payload = payload.clone();
            std::thread::spawn(move || submit_job(&client, &payload))
        })
        .collect();
    let responses: Vec<(u16, String)> = submitters
        .into_iter()
        .map(|t| t.join().expect("submitter thread"))
        .collect();

    // Every submission was answered (202 fresh, 200 cache hit), all with
    // the same content-derived job id.
    let mut ids: Vec<&str> = Vec::new();
    for (status, body) in &responses {
        assert!(
            *status == 200 || *status == 202,
            "unexpected submit response {status}: {body}"
        );
        ids.push(field(body, "job").expect("job id in response"));
    }
    assert!(
        ids.windows(2).all(|w| w[0] == w[1]),
        "ids diverged: {ids:?}"
    );
    let job = ids[0].to_string();

    await_done(&client, &job, Duration::from_secs(120));

    // Everyone fetches; all four reports are byte-identical, equal to a
    // direct in-process run of the same validated config, and equal to
    // the golden sweep report bytes.
    let direct = parse_job_spec(payload.as_bytes())
        .expect("golden parses")
        .run();
    let golden =
        std::fs::read_to_string(golden_path("sweep_report.json")).expect("golden sweep report");
    assert_eq!(direct, golden, "direct run diverged from the golden bytes");
    for _ in 0..4 {
        let resp = client
            .get(&format!("/v1/jobs/{job}/report"))
            .expect("fetch report");
        assert_eq!(resp.status, 200, "{}", resp.text());
        assert_eq!(
            resp.text(),
            golden,
            "service report diverged from the golden bytes"
        );
    }

    // Exactly one sweep ran; the other three submissions were answered
    // from the content-addressed store.
    let metrics = handle.metrics();
    assert_eq!(metrics.get(ServeCounter::SweepExecutions), 1);
    assert_eq!(metrics.get(ServeCounter::CacheHits), 3);
    assert_eq!(metrics.get(ServeCounter::JobsAccepted), 4);
    assert_eq!(metrics.get(ServeCounter::JobsCompleted), 1);
    let id = parse_job_id(&job).expect("well-formed id");
    let hits = handle
        .events()
        .iter()
        .filter(|e| matches!(e, ServeEvent::CacheHit { job } if *job == id))
        .count();
    assert_eq!(hits, 3, "expected three cache-hit events for {job}");

    // /v1/metrics serves the same snapshot over the wire.
    let wire = client.get("/v1/metrics").expect("metrics endpoint");
    assert_eq!(wire.status, 200);
    assert_eq!(wire.text(), handle.metrics().to_json());

    handle.shutdown();
    runner.join().expect("server thread");
}

#[test]
fn queue_overflow_gets_429_and_drain_keeps_every_accepted_result() {
    // One slow-starting worker and a single queue slot: job A occupies
    // the worker (held in its start delay), job B fills the queue, job C
    // must bounce with 429.
    let (handle, client, runner) = start_server(ServerConfig {
        workers: 1,
        queue_depth: 1,
        job_start_delay_ms: 1000,
        ..ServerConfig::default()
    });
    let tiny_job = |seed: u64| {
        format!(
            "{{\"root_seed\": {seed}, \"replications\": 1, \"vdds\": [0.65, 0.625], \
             \"schemes\": [\"killi:ratio=16\"], \"workloads\": [\"fft\"], \
             \"ops_per_cu\": 200, \"gpu\": {{\"cus\": 2, \"l2_kb\": 64}}}}"
        )
    };

    let (status_a, body_a) = submit_job(&client, &tiny_job(1));
    assert_eq!(status_a, 202, "{body_a}");
    let id_a: JobId = parse_job_id(field(&body_a, "job").unwrap()).unwrap();
    // Wait until the worker has pulled A off the queue, so B lands in
    // the queue deterministically.
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.job_state(id_a) == Some("queued") {
        assert!(Instant::now() < deadline, "worker never picked up job A");
        std::thread::sleep(Duration::from_millis(10));
    }

    let (status_b, body_b) = submit_job(&client, &tiny_job(2));
    assert_eq!(status_b, 202, "{body_b}");
    let id_b: JobId = parse_job_id(field(&body_b, "job").unwrap()).unwrap();

    let resp_c = client
        .post("/v1/jobs", tiny_job(3).as_bytes())
        .expect("submit C");
    assert_eq!(resp_c.status, 429, "{}", resp_c.text());
    assert_eq!(
        resp_c.header("retry-after"),
        Some("1"),
        "429 needs Retry-After"
    );

    // Shut down with A running and B still queued: the drain must
    // finish both and lose neither result.
    handle.shutdown();

    // Mid-drain, reads keep working and new submissions get 503.
    let health = client.get("/v1/healthz").expect("healthz during drain");
    assert_eq!(health.status, 200);
    assert!(
        health.text().contains("\"draining\":true"),
        "{}",
        health.text()
    );
    let rejected = client
        .post("/v1/jobs", tiny_job(4).as_bytes())
        .expect("submit during drain");
    assert_eq!(rejected.status, 503, "{}", rejected.text());
    assert_eq!(rejected.header("retry-after"), Some("5"));

    runner.join().expect("server thread");

    for (label, id) in [("A", id_a), ("B", id_b)] {
        assert_eq!(
            handle.job_state(id),
            Some("done"),
            "job {label} lost in the drain"
        );
        let report = handle
            .report(id)
            .unwrap_or_else(|| panic!("job {label} completed but its report vanished"));
        assert!(
            report.contains("killi-sweep/v2"),
            "job {label} report shape"
        );
    }
    let metrics = handle.metrics();
    assert_eq!(metrics.get(ServeCounter::SweepExecutions), 2);
    assert_eq!(metrics.get(ServeCounter::RejectedQueueFull), 1);
    assert_eq!(metrics.get(ServeCounter::RejectedDraining), 1);
    assert_eq!(metrics.get(ServeCounter::JobsCompleted), 2);
}

/// Writes raw bytes to the server and returns the status line, for
/// request shapes the well-behaved [`Client`] cannot produce.
fn raw_request(addr: std::net::SocketAddr, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(bytes).expect("write");
    let mut text = String::new();
    let _ = stream.read_to_string(&mut text);
    text.lines().next().unwrap_or_default().to_string()
}

#[test]
fn hostile_requests_get_4xx_and_never_wedge_the_service() {
    let (handle, client, runner) = start_server(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let addr = handle.local_addr();

    // Hostile bodies through the real POST path.
    let deep = format!("{}1{}", "[".repeat(2000), "]".repeat(2000));
    for (payload, what) in [
        ("not json at all", "non-JSON body"),
        ("{\"root_seed\": 1}", "missing required fields"),
        (deep.as_str(), "pathologically deep nesting"),
        (
            "{\"root_seed\":1,\"replications\":1,\"vdds\":[0.65,0.6],\"schemes\":[\"frobnicate\"],\
             \"workloads\":[\"fft\"],\"ops_per_cu\":10}",
            "unknown scheme",
        ),
    ] {
        let resp = client.post("/v1/jobs", payload.as_bytes()).expect(what);
        assert_eq!(resp.status, 400, "{what}: {}", resp.text());
    }
    // An oversize body is rejected from its Content-Length header alone,
    // so the server may close before the client finishes writing; both a
    // 400 and a torn-down connection are correct — a panic or a wedged
    // daemon is not.
    let huge = format!("{{\"root_seed\": {}}}", "9".repeat(2 << 20));
    if let Ok(resp) = client.post("/v1/jobs", huge.as_bytes()) {
        assert_eq!(resp.status, 400, "oversize body: {}", resp.text());
    }

    // Bad paths, ids, and methods.
    let resp = client.get("/v1/jobs/xyz").expect("bad id");
    assert_eq!(resp.status, 400, "{}", resp.text());
    let resp = client
        .get(&format!("/v1/jobs/{}", "0".repeat(32)))
        .expect("unknown id");
    assert_eq!(resp.status, 404, "{}", resp.text());
    let resp = client.get("/v1/nope").expect("unknown endpoint");
    assert_eq!(resp.status, 404, "{}", resp.text());
    let resp = client.get("/v1/jobs").expect("GET on POST endpoint");
    assert_eq!(resp.status, 405, "{}", resp.text());

    // Raw garbage the client type cannot even express.
    let status = raw_request(addr, b"DELETE /v1/healthz HTTP/1.1\r\n\r\n");
    assert!(status.starts_with("HTTP/1.1 405"), "{status}");
    let status = raw_request(addr, b"GET /v1/healthz SPDY/3\r\n\r\n");
    assert!(status.starts_with("HTTP/1.1 400"), "{status}");
    let status = raw_request(addr, b"\x00\x01\x02 garbage\r\n\r\n");
    assert!(status.starts_with("HTTP/1.1 400"), "{status}");

    // After all of that the daemon is still healthy and still works.
    let health = client.get("/v1/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert!(health.text().contains("\"status\":\"ok\""));
    assert!(handle.metrics().get(ServeCounter::BadRequests) >= 7);

    handle.shutdown();
    runner.join().expect("server thread");
}

//! The paper's quantitative claims, encoded as integration tests against
//! the analytic models (the simulation-based claims live in
//! `scheme_equivalence.rs` and the experiment binaries).

use killi_repro::fault::cell_model::{CellFailureModel, FreqGhz, NormVdd};
use killi_repro::fault::line_stats::LineFaultDistribution;
use killi_repro::fault::model::{default_registry, FaultModelConfig};
use killi_repro::model::area::{checkbits, AreaModel};
use killi_repro::model::coverage::coverage_at;

/// The paper's cell-failure curve, reached the way everything else
/// reaches it now: through the registry's `stuck-at` model.
fn paper_cell_model() -> CellFailureModel {
    default_registry()
        .build(&FaultModelConfig::default())
        .expect("stuck-at always builds")
        .cell_model()
        .expect("stuck-at exposes its analytic curve")
        .clone()
}

#[test]
fn abstract_area_claim_50_percent_reduction_vs_secded() {
    // "Killi reduces the error protection area overhead by 50% compared to
    // SECDED ECC."
    let m = AreaModel::paper();
    let killi = m.killi_bits(256, checkbits::SECDED);
    let secded = m.per_line_bits(checkbits::SECDED);
    let ratio = killi as f64 / secded as f64;
    assert!((0.49..0.53).contains(&ratio), "ratio = {ratio}");
}

#[test]
fn table3_ecc_cache_line_is_41_bits() {
    assert_eq!(AreaModel::paper().ecc_entry_bits(checkbits::SECDED), 41);
}

#[test]
fn section_1_claim_most_lines_have_fewer_than_two_failures() {
    // "the majority (>95%) of the cache lines have zero or one LV failure"
    let d = LineFaultDistribution::at(&paper_cell_model(), NormVdd::LV_0_625, FreqGhz::PEAK);
    assert!(d.zero + d.one > 0.95, "{d:?}");
}

#[test]
fn figure6_claim_full_coverage_to_0_6_vdd() {
    let model = paper_cell_model();
    for v in [0.675, 0.65] {
        let c = coverage_at(&model, NormVdd(v));
        assert!(c.killi > 0.9999, "v={v}: {}", c.killi);
        assert!(c.flair > 0.9999, "v={v}: {}", c.flair);
    }
    // At the operating point itself the tail of heavy-fault lines costs a
    // sliver of coverage (Figure 6 plots this as "100%" at its scale).
    let c = coverage_at(&model, NormVdd(0.625));
    assert!(c.killi > 0.999, "{}", c.killi);
    assert!(c.flair > 0.999, "{}", c.flair);
}

#[test]
fn figure6_claim_only_killi_and_flair_survive_below_0_6() {
    let model = paper_cell_model();
    let c = coverage_at(&model, NormVdd(0.55));
    assert!(c.killi > c.secded);
    assert!(c.killi > c.dected);
    assert!(c.flair > c.secded);
    // The weaker plain codes visibly lose coverage down here.
    assert!(c.secded < 0.999, "secded = {}", c.secded);
}

#[test]
fn figure6_claim_killi_coverage_independent_of_ecc_cache_size() {
    // "the fault coverage is independent of the size of the ECC cache":
    // the coverage model takes no ECC-cache parameter at all — the
    // detection capability lives entirely in the per-line parity + SECDED.
    // (A type-level fact; this test documents it.)
    let model = paper_cell_model();
    let c = coverage_at(&model, NormVdd(0.575));
    assert!(c.killi > 0.99);
}

#[test]
fn table5_claims() {
    let m = AreaModel::paper();
    // SECDED: 2.3% over L2.
    let secded = m.per_line_bits(checkbits::SECDED);
    assert!((m.fraction_of_l2(secded) - 0.023).abs() < 0.002);
    // DECTED: ~1.9x SECDED, 4.3% over L2.
    let dected = m.per_line_bits(checkbits::DECTED);
    assert!((m.ratio_to_secded(dected) - 1.9).abs() < 0.1);
    assert!((m.fraction_of_l2(dected) - 0.043).abs() < 0.002);
    // Killi sweep: 0.51x .. 0.71x; 1.2% .. 1.67% over L2.
    let lo = m.killi_bits(256, checkbits::SECDED);
    let hi = m.killi_bits(16, checkbits::SECDED);
    assert!((m.ratio_to_secded(lo) - 0.51).abs() < 0.02);
    assert!((m.ratio_to_secded(hi) - 0.71).abs() < 0.02);
    assert!((m.fraction_of_l2(lo) - 0.012).abs() < 0.001);
    assert!((m.fraction_of_l2(hi) - 0.0167).abs() < 0.001);
}

#[test]
fn table4_claim_killi_with_6ec7ed_still_cheaper_than_secded_per_line() {
    // §5.4: "when Killi is coupled with an ECC cache storing 6EC7ED ECC
    // for one out of 16 L2 cache lines, Killi has lower area overhead than
    // using SECDED ECC protection per L2 cache line".
    let m = AreaModel::paper();
    assert!(m.killi_bits(16, checkbits::SIX_EC) < m.per_line_bits(checkbits::SECDED));
}

#[test]
fn table7_claims() {
    let model = paper_cell_model();
    let m = AreaModel::paper();
    // Capacity targets met by an 11-correcting code.
    let cap06 =
        LineFaultDistribution::enabled_fraction_at(&model, NormVdd(0.6), FreqGhz::PEAK, 523, 11);
    assert!((cap06 - 0.998).abs() < 0.004, "{cap06}");
    let cap0575 =
        LineFaultDistribution::enabled_fraction_at(&model, NormVdd(0.575), FreqGhz::PEAK, 523, 11);
    assert!((cap0575 - 0.696).abs() < 0.05, "{cap0575}");
    // Killi-with-OLSC area vs MS-ECC: 17% at 1:8, ~65% at 1:2.
    assert!((m.killi_olsc_vs_msecc(8) - 0.17).abs() < 0.02);
    assert!((m.killi_olsc_vs_msecc(2) - 0.65).abs() < 0.05);
}

#[test]
fn fault_monotonicity_enables_voltage_reclaim() {
    // "lines disabled at a particular LV may be reclaimed at higher
    // voltages": every fault present at the higher voltage is present at
    // the lower one, never vice versa.
    let model = default_registry()
        .build(&FaultModelConfig::default())
        .expect("stuck-at always builds");
    let hi = model.map(1024, NormVdd(0.625), FreqGhz::PEAK, 4);
    let lo = model.map(1024, NormVdd(0.575), FreqGhz::PEAK, 4);
    for l in 0..1024 {
        for f in hi.line(l) {
            assert!(lo.line(l).contains(f));
        }
        assert!(lo.line(l).len() >= hi.line(l).len());
    }
}

//! Integration tests for the `killi vmin` campaign subsystem.
//!
//! Two contracts pinned here:
//!
//! 1. **Search soundness** — for every registered *voltage-nested* fault
//!    model, the production nesting-aware search (bisection) bins every
//!    die at exactly the Vmin the exhaustive linear-scan oracle finds,
//!    and the non-nested `transient` model takes the deterministic
//!    linear fallback (bisection would be unsound there).
//! 2. **Golden bytes** — a reference campaign emits a byte-identical
//!    `killi-vmin/v1` report at 1, 2 and 8 threads, through both the
//!    direct and die-store synthesis paths. Re-bless after an
//!    *intentional* output change with:
//!
//!    ```sh
//!    KILLI_BLESS=1 cargo test --test vmin_campaign
//!    ```

use std::path::PathBuf;

use killi_repro::bench::fault_models::FaultModelConfig;
use killi_repro::bench::schemes::SchemeSpec;
use killi_repro::fault::model::default_registry as fault_registry;
use killi_repro::vmin::{check_report, run_campaign, SearchMode, VminConfig};

/// Parses a `killi-vmin/v1` report and drops the `search` block — the
/// probe accounting is the one part that legitimately differs between
/// the bisection and exhaustive search modes.
fn without_search_block(report: &str) -> killi_repro::obs::JsonValue {
    use killi_repro::obs::JsonValue;
    let parsed = killi_repro::obs::parse_json(report).expect("report parses");
    let JsonValue::Object(entries) = parsed else {
        panic!("report is not an object");
    };
    JsonValue::Object(entries.into_iter().filter(|(k, _)| k != "search").collect())
}

/// A campaign small enough to run every fault model through in seconds
/// but large enough that dies actually spread across the grid.
fn small_campaign(fault_model: FaultModelConfig, search: SearchMode) -> VminConfig {
    VminConfig {
        root_seed: 2024,
        dies: 10,
        lines: 512,
        target: 0.99,
        vdds: vec![0.55, 0.6, 0.65, 0.7],
        schemes: vec![SchemeSpec::Killi(16).config(), SchemeSpec::Flair.config()],
        fault_model,
        threads: 2,
        progress_every: 0,
        store: None,
        search,
    }
}

#[test]
fn nesting_aware_search_matches_the_exhaustive_oracle_for_every_model() {
    for descriptor in fault_registry().descriptors() {
        let model = FaultModelConfig::new(descriptor.name);
        let auto = small_campaign(model.clone(), SearchMode::Auto)
            .validated()
            .unwrap_or_else(|e| panic!("{}: {e}", descriptor.name));
        let oracle = small_campaign(model, SearchMode::Exhaustive)
            .validated()
            .unwrap();
        let auto_out = run_campaign(&auto).expect("campaign runs");
        let oracle_out = run_campaign(&oracle).expect("oracle campaign runs");

        // Same bins, same CDFs, same capacity curves. Only the `search`
        // block (probe accounting) may differ between the two modes.
        assert_eq!(
            without_search_block(&auto_out.report.to_json()),
            without_search_block(&oracle_out.report.to_json()),
            "{}: nesting-aware search diverged from the exhaustive oracle",
            descriptor.name
        );

        let stats = &auto_out.report.stats;
        assert_eq!(auto_out.report.nested, descriptor.voltage_nested);
        if descriptor.voltage_nested {
            // Nested models bisect: no linear fallbacks, and never more
            // probes than the oracle's full scans (on a grid this small
            // the two can tie; larger grids separate them).
            assert!(stats.binary_searches > 0, "{}", descriptor.name);
            assert_eq!(stats.linear_scans, 0, "{}", descriptor.name);
            assert!(
                stats.probes <= oracle_out.report.stats.probes,
                "{}: bisection probed more grid points than the \
                 exhaustive scan ({} vs {})",
                descriptor.name,
                stats.probes,
                oracle_out.report.stats.probes
            );
        } else {
            // Non-nested models must not bisect — the pass predicate is
            // not monotone, so Auto takes the linear fallback.
            assert_eq!(stats.binary_searches, 0, "{}", descriptor.name);
            assert!(stats.linear_scans > 0, "{}", descriptor.name);
            assert_eq!(
                stats.probes, oracle_out.report.stats.probes,
                "{}: the linear fallback is the exhaustive scan",
                descriptor.name
            );
        }

        // Every emitted report satisfies its own checker.
        check_report(&auto_out.report.to_json())
            .unwrap_or_else(|e| panic!("{}: {e}", descriptor.name));
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

fn check_or_bless(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("KILLI_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); run with KILLI_BLESS=1", name));
    assert_eq!(
        actual, golden,
        "{name} diverged from the recorded golden bytes"
    );
}

#[test]
fn vmin_report_matches_golden_bytes_across_thread_counts_and_paths() {
    let mut reports = Vec::new();
    for threads in [1usize, 2, 8] {
        let mut config = small_campaign(FaultModelConfig::default(), SearchMode::Auto);
        config.threads = threads;
        let validated = config.validated().expect("reference config is valid");
        let out = run_campaign(&validated).expect("campaign runs");
        check_or_bless("vmin_report.json", &out.report.to_json());
        reports.push(out.report.to_json());
    }
    assert!(reports.windows(2).all(|w| w[0] == w[1]));

    // The die-store path replays the same fleet from disk and must emit
    // the same bytes (build on first run, stream on the second).
    let dir = std::env::temp_dir().join(format!("killi-vmin-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("fleet.kds");
    for _ in 0..2 {
        let mut config = small_campaign(FaultModelConfig::default(), SearchMode::Auto);
        config.store = Some(store.clone());
        let validated = config.validated().expect("store config is valid");
        let out = run_campaign(&validated).expect("store campaign runs");
        assert_eq!(out.report.to_json(), reports[0]);
    }
    std::fs::remove_dir_all(&dir).ok();
}

//! Cross-crate contract tests for the observability layer: recording a
//! trace must never perturb the simulation, the exported trace must be
//! well-formed `killi-obs/v1`, and the metrics surfaced by `run_cell`
//! must agree with the simulator's own counters.

use std::sync::Arc;

use killi_repro::bench::runner::{run_cell, ObsConfig};
use killi_repro::bench::schemes::SchemeSpec;
use killi_repro::fault::cell_model::{FreqGhz, NormVdd};
use killi_repro::fault::map::FaultMap;
use killi_repro::fault::model::{default_registry, FaultModelConfig};
use killi_repro::obs::{parse_json, Counter, OBS_SCHEMA};
use killi_repro::sim::gpu::GpuConfig;
use killi_repro::workloads::Workload;

fn small_gpu() -> GpuConfig {
    GpuConfig {
        cus: 2,
        l2: killi_repro::sim::cache::CacheGeometry {
            size_bytes: 128 * 1024,
            ways: 16,
            line_bytes: 64,
        },
        ..GpuConfig::default()
    }
}

fn lv_map(gpu: &GpuConfig) -> Arc<FaultMap> {
    let model = default_registry()
        .build(&FaultModelConfig::default())
        .expect("stuck-at always builds");
    Arc::new(model.map(gpu.l2.lines(), NormVdd(0.625), FreqGhz::PEAK, 7))
}

/// The observer effect must be zero: a recording sink may not change a
/// single counter relative to the default no-op sink.
#[test]
fn recording_sink_does_not_perturb_simulation() {
    let gpu = small_gpu();
    let map = lv_map(&gpu);
    for spec in [SchemeSpec::Killi(16), SchemeSpec::MsEcc, SchemeSpec::Flair] {
        let scheme = spec.config();
        let quiet = run_cell(
            Workload::Fft,
            &scheme,
            &gpu,
            3_000,
            &map,
            11,
            &ObsConfig::default(),
        );
        let traced = run_cell(
            Workload::Fft,
            &scheme,
            &gpu,
            3_000,
            &map,
            11,
            &ObsConfig::traced(1024),
        );
        assert_eq!(
            quiet.stats, traced.stats,
            "{spec:?}: tracing changed the simulation outcome"
        );
        assert_eq!(quiet.disabled_lines, traced.disabled_lines);
        assert_eq!(
            quiet.metrics.to_json(),
            traced.metrics.to_json(),
            "{spec:?}: tracing changed the metrics"
        );
        assert!(quiet.trace.is_none(), "no-op sink must not export a trace");
        assert!(traced.trace.is_some(), "recording sink must export a trace");
    }
}

/// Every line of the exported trace parses as JSON; the header carries
/// the schema and the cell context written by `run_cell`.
#[test]
fn exported_trace_is_well_formed_jsonl() {
    let gpu = small_gpu();
    let map = lv_map(&gpu);
    let obs = ObsConfig {
        trace_capacity: Some(512),
        context: vec![("vdd", "0.625".to_string())],
    };
    let r = run_cell(
        Workload::Xsbench,
        &SchemeSpec::Killi(16).config(),
        &gpu,
        3_000,
        &map,
        11,
        &obs,
    );
    let trace = r.trace.expect("tracing was on");
    let mut lines = trace.lines();
    let header = parse_json(lines.next().expect("header line")).expect("header parses");
    assert_eq!(
        header.get("schema").and_then(|v| v.as_str()),
        Some(OBS_SCHEMA)
    );
    assert_eq!(
        header.get("workload").and_then(|v| v.as_str()),
        Some("xsbench")
    );
    assert_eq!(header.get("vdd").and_then(|v| v.as_str()), Some("0.625"));
    let mut events = 0usize;
    for line in lines {
        let v = parse_json(line).unwrap_or_else(|e| panic!("bad event line {line:?}: {e}"));
        assert!(v.get("seq").and_then(|s| s.as_u64()).is_some());
        assert!(v.get("type").and_then(|s| s.as_str()).is_some());
        events += 1;
    }
    assert!(events > 0, "a faulty Killi run must emit events");
}

/// The metrics block handed back by `run_cell` must agree with the
/// simulator's own L2 miss split — the acceptance criterion for the
/// error-induced vs ECC-cache-induced decomposition.
#[test]
fn run_cell_metrics_agree_with_sim_stats() {
    let gpu = small_gpu();
    let map = lv_map(&gpu);
    let r = run_cell(
        Workload::Fft,
        &SchemeSpec::Killi(16).config(),
        &gpu,
        3_000,
        &map,
        11,
        &ObsConfig::default(),
    );
    assert_eq!(
        r.metrics.get(Counter::ErrorInducedMisses),
        r.stats.l2_error_misses,
        "error-induced miss counter must mirror SimStats"
    );
    assert_eq!(
        r.metrics.get(Counter::EccInducedMisses),
        r.stats.ecc_induced_invalidations,
        "ECC-cache-induced miss counter must mirror SimStats"
    );
    assert!(
        r.metrics.get(Counter::DfhTransitions) > 0,
        "a faulty Killi run must reclassify lines"
    );
}

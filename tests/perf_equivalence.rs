//! Regression tests for the sweep hot-path optimization: the
//! shared-artifact sweep ([`run_sweep`]) must emit the exact bytes of the
//! unshared reference path ([`run_sweep_reference`]) — same report JSON,
//! same event-trace artifact — at every thread count.

use killi_repro::bench::schemes::SchemeSpec;
use killi_repro::bench::sweep::{run_sweep, run_sweep_reference, SweepConfig};
use killi_repro::sim::cache::CacheGeometry;
use killi_repro::sim::gpu::GpuConfig;
use killi_repro::workloads::Workload;

fn tiny_sweep(threads: usize, trace_capacity: Option<usize>) -> SweepConfig {
    SweepConfig {
        root_seed: 2024,
        replications: 2,
        vdds: vec![0.65, 0.6],
        schemes: vec![SchemeSpec::Killi(16).config()],
        fault_model: killi_repro::bench::fault_models::stuck_at(),
        workloads: vec![Workload::Fft, Workload::Hacc],
        ops_per_cu: 1200,
        gpu: GpuConfig {
            cus: 2,
            l2: CacheGeometry {
                size_bytes: 64 * 1024,
                ways: 8,
                line_bytes: 64,
            },
            l2_banks: 4,
            mem_latency: 100,
            ..GpuConfig::default()
        },
        threads,
        progress_every: 0,
        trace_capacity,
    }
}

#[test]
fn shared_artifacts_reproduce_reference_bytes_across_thread_counts() {
    let reference = run_sweep_reference(&tiny_sweep(2, None)).to_json();
    for threads in [1, 2, 8] {
        let shared = run_sweep(&tiny_sweep(threads, None)).to_json();
        assert_eq!(
            shared, reference,
            "shared-artifact sweep diverged at {threads} thread(s)"
        );
    }
}

#[test]
fn shared_artifacts_reproduce_reference_event_trace() {
    let reference = run_sweep_reference(&tiny_sweep(2, Some(256)));
    let ref_trace = reference.trace.as_deref().expect("tracing was on");
    assert!(!ref_trace.is_empty());
    for threads in [1, 2, 8] {
        let shared = run_sweep(&tiny_sweep(threads, Some(256)));
        assert_eq!(shared.to_json(), reference.to_json());
        assert_eq!(
            shared.trace.as_deref(),
            Some(ref_trace),
            "event trace diverged at {threads} thread(s)"
        );
    }
}

#[test]
fn reference_path_is_itself_thread_invariant() {
    let a = run_sweep_reference(&tiny_sweep(1, None)).to_json();
    let b = run_sweep_reference(&tiny_sweep(8, None)).to_json();
    assert_eq!(a, b);
}

//! Cross-crate contract tests for the fault-model axis: every registered
//! model must run end-to-end as a sweep dimension (CLI shorthand and JSON
//! spelling alike), stamp its label into the `killi-sweep/v2` report and
//! the `killi-obs/v1` trace, be deterministic per (seed, replicate, vdd),
//! and either honor voltage nesting or explicitly declare it away.

use killi_repro::bench::fault_models::{
    build_fault_model, default_fault_registry, fault_model_label, stuck_at, FaultModelConfig,
    STUCK_AT,
};
use killi_repro::bench::schemes::SchemeSpec;
use killi_repro::bench::sweep::{run_sweep, SweepConfig};
use killi_repro::fault::cell_model::{FreqGhz, NormVdd};
use killi_repro::fault::map::FaultMap;
use killi_repro::sim::cache::CacheGeometry;
use killi_repro::sim::gpu::GpuConfig;
use killi_repro::workloads::Workload;

/// A one-cell sweep (1 scheme x 1 workload x 2 vdds x 2 replicates) that
/// finishes fast enough to run once per registered model.
fn one_cell_sweep(fault_model: FaultModelConfig) -> SweepConfig {
    SweepConfig {
        root_seed: 99,
        replications: 2,
        vdds: vec![0.625, 0.6],
        schemes: vec![SchemeSpec::Killi(16).config()],
        fault_model,
        workloads: vec![Workload::Fft],
        ops_per_cu: 800,
        gpu: GpuConfig {
            cus: 2,
            l2: CacheGeometry {
                size_bytes: 64 * 1024,
                ways: 8,
                line_bytes: 64,
            },
            l2_banks: 4,
            mem_latency: 100,
            ..GpuConfig::default()
        },
        threads: 2,
        progress_every: 0,
        trace_capacity: Some(64),
    }
}

#[test]
fn every_registered_model_sweeps_end_to_end_and_labels_the_report() {
    let registry = default_fault_registry();
    for descriptor in registry.descriptors() {
        let config = FaultModelConfig::new(descriptor.name);
        let label = fault_model_label(&config).expect("default config labels");
        let report = run_sweep(&one_cell_sweep(config));
        assert_eq!(report.fault_model, label, "{}", descriptor.name);
        let json = report.to_json();
        let trace = report.trace.as_deref().expect("tracing was on");
        if descriptor.name == STUCK_AT {
            // The default model keeps the report bytes golden-compatible:
            // no fault_model key anywhere.
            assert!(!json.contains("fault_model"), "stuck-at must stay silent");
            assert!(!trace.contains("fault_model"));
        } else {
            assert!(
                json.contains(&format!("\"fault_model\": {:?}", label)),
                "{}: report JSON must carry the label ({json})",
                descriptor.name
            );
            assert!(
                trace.contains("\"fault_model\""),
                "{}: obs trace must carry the label",
                descriptor.name
            );
        }
        // Every cell still ran: 1 baseline + 2 vdds x 1 scheme x 1 workload.
        assert_eq!(report.cells.len(), 3, "{}", descriptor.name);
    }
}

#[test]
fn cli_and_json_spellings_sweep_identically() {
    let shorthand = FaultModelConfig::parse("clustered:rows=8,corr=0.5").expect("shorthand");
    let json =
        FaultModelConfig::from_json(r#"{"name": "clustered", "params": {"corr": 0.5, "rows": 8}}"#)
            .expect("json spelling");
    let a = run_sweep(&one_cell_sweep(shorthand)).to_json();
    let b = run_sweep(&one_cell_sweep(json)).to_json();
    assert_eq!(a, b, "spellings of one model must produce one report");
}

#[test]
fn sweep_reports_are_deterministic_per_model_across_thread_counts() {
    for name in ["clustered", "transient"] {
        let reference = run_sweep(&one_cell_sweep(FaultModelConfig::new(name))).to_json();
        for threads in [1usize, 4] {
            let mut config = one_cell_sweep(FaultModelConfig::new(name));
            config.threads = threads;
            assert_eq!(
                run_sweep(&config).to_json(),
                reference,
                "{name} diverged at {threads} thread(s)"
            );
        }
    }
}

#[test]
fn models_honor_nesting_or_explicitly_declare_otherwise() {
    let registry = default_fault_registry();
    for descriptor in registry.descriptors() {
        let model = build_fault_model(&FaultModelConfig::new(descriptor.name)).expect("builds");
        assert_eq!(
            model.voltage_nested(),
            descriptor.voltage_nested,
            "{}: descriptor and model disagree on the nesting contract",
            descriptor.name
        );
        if model.voltage_nested() {
            let hi = model.map(256, NormVdd(0.65), FreqGhz::PEAK, 6);
            let lo = model.map(256, NormVdd(0.6), FreqGhz::PEAK, 6);
            for line in 0..256 {
                for fault in hi.line(line) {
                    assert!(
                        lo.line(line).contains(fault),
                        "{}: fault present at 0.65 missing at 0.6 (line {line})",
                        descriptor.name
                    );
                }
            }
        }
    }
}

#[test]
fn die_factorization_matches_per_voltage_maps_when_offered() {
    let registry = default_fault_registry();
    for descriptor in registry.descriptors() {
        let model = build_fault_model(&FaultModelConfig::new(descriptor.name)).expect("builds");
        let Some(die) = model.die(128, NormVdd(0.6), FreqGhz::PEAK, 17) else {
            continue;
        };
        for vdd in [0.6, 0.625, 0.65] {
            let from_die = die.map_at(NormVdd(vdd));
            let direct = model.map(128, NormVdd(vdd), FreqGhz::PEAK, 17);
            for line in 0..128 {
                assert_eq!(
                    from_die.line(line),
                    direct.line(line),
                    "{}: die factorization diverged at {vdd} (line {line})",
                    descriptor.name
                );
            }
        }
    }
}

#[test]
fn explicit_stuck_at_spelling_matches_the_default_report_bytes() {
    // `--fault-model stuck-at` (any spelling) must be byte-identical to
    // the implicit default — the property the golden sweep pins.
    let implicit = run_sweep(&one_cell_sweep(stuck_at())).to_json();
    let spelled = run_sweep(&one_cell_sweep(
        FaultModelConfig::parse("stuck-at").expect("parses"),
    ))
    .to_json();
    assert_eq!(implicit, spelled);
    assert!(!implicit.contains("fault_model"));
}

#[test]
fn non_default_models_change_the_fault_population() {
    // The axis must actually do something: a clustered or transient sweep
    // is not the stuck-at sweep with a different label.
    let base = run_sweep(&one_cell_sweep(stuck_at()));
    for spelling in ["clustered:corr=0.9", "transient:rate=0.01"] {
        let other = run_sweep(&one_cell_sweep(
            FaultModelConfig::parse(spelling).expect("parses"),
        ));
        assert_ne!(
            base.to_json(),
            other.to_json(),
            "{spelling} produced the stuck-at report"
        );
    }
}

#[test]
fn fault_free_maps_are_untouched_by_the_model_axis() {
    // Baseline cells always run fault-free regardless of the model.
    let map = FaultMap::fault_free(64);
    for line in 0..64 {
        assert!(map.line(line).is_empty());
    }
}

//! End-to-end integration tests spanning every crate: fault model ->
//! simulator -> Killi -> statistics.

use std::sync::Arc;

use killi_repro::core::scheme::{KilliConfig, KilliScheme};
use killi_repro::fault::cell_model::{FreqGhz, NormVdd};
use killi_repro::fault::map::FaultMap;
use killi_repro::fault::model::{default_registry, FaultModelConfig};
use killi_repro::fault::soft::SoftErrorInjector;
use killi_repro::sim::cache::CacheGeometry;
use killi_repro::sim::gpu::{GpuConfig, GpuSim};
use killi_repro::sim::protection::Unprotected;
use killi_repro::sim::stats::SimStats;
use killi_repro::workloads::{TraceParams, Workload};

fn small_gpu() -> GpuConfig {
    GpuConfig {
        cus: 2,
        l2: CacheGeometry {
            size_bytes: 256 * 1024,
            ways: 16,
            line_bytes: 64,
        },
        l2_banks: 8,
        mem_latency: 200,
        ..GpuConfig::default()
    }
}

fn lv_map(lines: usize, vdd: f64, seed: u64) -> Arc<FaultMap> {
    let model = default_registry()
        .build(&FaultModelConfig::default())
        .expect("stuck-at always builds");
    Arc::new(model.map(lines, NormVdd(vdd), FreqGhz::PEAK, seed))
}

fn run_killi(vdd: f64, ratio: usize, workload: Workload, seed: u64) -> (SimStats, [u64; 4]) {
    let config = small_gpu();
    let map = lv_map(config.l2.lines(), vdd, seed);
    let killi = KilliScheme::new(
        KilliConfig::with_ratio(ratio),
        Arc::clone(&map),
        config.l2.lines(),
        config.l2.ways,
    );
    let mut sim = GpuSim::new(config, map, Box::new(killi), seed);
    let params = TraceParams {
        cus: config.cus,
        ops_per_cu: 30_000,
        seed,
        l2_bytes: config.l2.size_bytes,
    };
    let stats = sim.run(workload.trace(&params));
    let census = sim
        .l2()
        .protection()
        .protection_stats()
        .dfh_census
        .expect("killi census");
    (stats, census)
}

#[test]
fn killi_eliminates_nearly_all_corruption() {
    let config = small_gpu();
    let map = lv_map(config.l2.lines(), NormVdd::LV_0_625.0, 3);
    let params = TraceParams {
        cus: config.cus,
        ops_per_cu: 30_000,
        seed: 3,
        l2_bytes: config.l2.size_bytes,
    };
    let unprotected = {
        let mut sim = GpuSim::new(config, Arc::clone(&map), Box::new(Unprotected::new()), 3);
        sim.run(Workload::Xsbench.trace(&params))
    };
    let killi = {
        let scheme = KilliScheme::new(
            KilliConfig::with_ratio(64),
            Arc::clone(&map),
            config.l2.lines(),
            config.l2.ways,
        );
        let mut sim = GpuSim::new(config, map, Box::new(scheme), 3);
        sim.run(Workload::Xsbench.trace(&params))
    };
    assert!(unprotected.sdc_events > 100, "faults must actually bite");
    assert!(
        killi.sdc_events * 50 < unprotected.sdc_events,
        "killi {} vs unprotected {}",
        killi.sdc_events,
        unprotected.sdc_events
    );
}

#[test]
fn dfh_census_matches_fault_population_after_training() {
    // After a workload touches the whole cache, the learned census must
    // reflect reality: lines with 0 faults mostly b'00, multi-fault
    // resident lines disabled.
    let (_, census) = run_killi(0.625, 16, Workload::Xsbench, 11);
    let lines: u64 = census.iter().sum();
    assert_eq!(lines, 4096);
    assert!(
        census[0] > lines * 8 / 10,
        "most lines classified fault-free: {census:?}"
    );
    assert!(census[3] < lines / 20, "few disabled at 0.625: {census:?}");
}

#[test]
fn lower_voltage_disables_more_lines() {
    let (_, c625) = run_killi(0.625, 16, Workload::Xsbench, 11);
    let (_, c575) = run_killi(0.575, 16, Workload::Xsbench, 11);
    assert!(
        c575[3] > 4 * c625[3].max(1),
        "0.575 disabled {} vs 0.625 disabled {}",
        c575[3],
        c625[3]
    );
}

#[test]
fn smaller_ecc_cache_never_faster() {
    let (big, _) = run_killi(0.625, 16, Workload::Xsbench, 5);
    let (small, _) = run_killi(0.625, 256, Workload::Xsbench, 5);
    assert!(
        small.cycles as f64 >= big.cycles as f64 * 0.999,
        "1:256 ({}) should not beat 1:16 ({})",
        small.cycles,
        big.cycles
    );
    assert!(small.mpki() >= big.mpki() * 0.999);
}

#[test]
fn end_to_end_determinism() {
    let (a, ca) = run_killi(0.6, 64, Workload::Fft, 9);
    let (b, cb) = run_killi(0.6, 64, Workload::Fft, 9);
    assert_eq!(a, b);
    assert_eq!(ca, cb);
}

#[test]
fn nominal_voltage_killi_behaves_like_fault_free() {
    // At 1.0 x VDD the map is empty: every line trains to b'00 on first
    // touch and no error machinery should fire.
    let (stats, census) = run_killi(1.0, 64, Workload::Miniamr, 13);
    assert_eq!(stats.sdc_events, 0);
    assert_eq!(stats.l2_error_misses, 0);
    assert_eq!(stats.corrections, 0);
    assert_eq!(census[3], 0, "nothing disabled at nominal voltage");
}

#[test]
fn soft_errors_are_detected_not_silently_delivered() {
    // Inject transient upsets on top of a (nominal-voltage) fault-free
    // cache: parity must convert them into error-induced misses, not SDCs.
    let config = small_gpu();
    let map = Arc::new(FaultMap::fault_free(config.l2.lines()));
    let killi = KilliScheme::new(
        KilliConfig::with_ratio(64),
        Arc::clone(&map),
        config.l2.lines(),
        config.l2.ways,
    );
    let mut sim = GpuSim::new(config, map, Box::new(killi), 21);
    // Bursts up to 4 adjacent bits: the silicon-observed multi-bit upset
    // sizes (Maiz et al.). The 4-way interleaved stable parity detects all
    // of them; wider bursts would need the 16-segment training parity.
    sim.l2_mut()
        .set_soft_errors(SoftErrorInjector::new(21, 0.001, 0.25, 4));
    let params = TraceParams {
        cus: config.cus,
        ops_per_cu: 30_000,
        seed: 21,
        l2_bytes: config.l2.size_bytes,
    };
    let stats = sim.run(Workload::Xsbench.trace(&params));
    assert!(
        stats.l2_error_misses + stats.corrections > 10,
        "injector must have fired: {stats:?}"
    );
    // Multi-bit bursts land in distinct interleaved segments, so parity
    // sees every one of them; the only exposure is a burst compounding
    // with an LV fault in the same residue class.
    assert!(
        stats.sdc_events <= 1,
        "soft errors slipped through: {}",
        stats.sdc_events
    );
}

#[test]
fn write_back_of_stats_is_complete() {
    // Every counter the experiments consume must be populated.
    let (stats, _) = run_killi(0.625, 64, Workload::Pennant, 17);
    assert!(stats.cycles > 0);
    assert!(stats.instructions > 0);
    assert!(stats.loads > 0);
    assert!(stats.stores > 0);
    assert!(stats.l1_hits + stats.l1_misses == stats.loads);
    assert!(stats.l2_tag_accesses > 0);
    assert!(stats.l2_data_accesses > 0);
    assert!(stats.ecc_cache_accesses > 0);
    assert!(stats.mem_reads > 0);
    assert!(stats.mem_writes > 0);
}

#[test]
fn recorded_trace_replays_identically() {
    // Record/replay (killi-sim::tracefile) must be simulation-transparent:
    // a round-tripped trace produces bit-identical statistics.
    let config = small_gpu();
    let params = TraceParams {
        cus: config.cus,
        ops_per_cu: 10_000,
        seed: 31,
        l2_bytes: config.l2.size_bytes,
    };
    let mut buf = Vec::new();
    killi_repro::sim::tracefile::save(Workload::Fft.trace(&params), &mut buf)
        .expect("in-memory save");
    let replayed = killi_repro::sim::tracefile::load(&mut buf.as_slice()).expect("load");

    let map = lv_map(config.l2.lines(), NormVdd::LV_0_625.0, 31);
    let run = |trace: killi_repro::sim::trace::Trace| {
        let killi = KilliScheme::new(
            KilliConfig::with_ratio(64),
            Arc::clone(&map),
            config.l2.lines(),
            config.l2.ways,
        );
        let mut sim = GpuSim::new(config, Arc::clone(&map), Box::new(killi), 31);
        sim.run(trace)
    };
    let direct = run(Workload::Fft.trace(&params));
    let via_file = run(replayed);
    assert_eq!(direct, via_file);
}

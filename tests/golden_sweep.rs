//! Golden-bytes regression test for the protection-pipeline refactor:
//! the PR-3 reference sweep, run through the registry-built pipeline,
//! must emit the exact pre-refactor `killi-sweep/v2` report and
//! `killi-obs/v1` event trace at every thread count.
//!
//! The golden files under `tests/golden/` were recorded from the
//! monolithic scheme implementations immediately before the refactor.
//! To re-bless after an *intentional* output change, run:
//!
//! ```sh
//! KILLI_BLESS=1 cargo test --test golden_sweep
//! ```

use std::path::PathBuf;

use killi_repro::bench::schemes::SchemeSpec;
use killi_repro::bench::sweep::{run_sweep, SweepConfig};
use killi_repro::sim::cache::CacheGeometry;
use killi_repro::sim::gpu::GpuConfig;
use killi_repro::workloads::Workload;

/// The PR-3 reference configuration (shared with `perf_equivalence.rs`).
fn reference_sweep(threads: usize) -> SweepConfig {
    SweepConfig {
        root_seed: 2024,
        replications: 2,
        vdds: vec![0.65, 0.6],
        schemes: vec![SchemeSpec::Killi(16).config()],
        // The registry-built stuck-at model must reproduce the pre-registry
        // fault maps bit for bit — the golden bytes pin that.
        fault_model: killi_repro::bench::fault_models::stuck_at(),
        workloads: vec![Workload::Fft, Workload::Hacc],
        ops_per_cu: 1200,
        gpu: GpuConfig {
            cus: 2,
            l2: CacheGeometry {
                size_bytes: 64 * 1024,
                ways: 8,
                line_bytes: 64,
            },
            l2_banks: 4,
            mem_latency: 100,
            ..GpuConfig::default()
        },
        threads,
        progress_every: 0,
        trace_capacity: Some(256),
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

fn check_or_bless(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("KILLI_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); run with KILLI_BLESS=1", name));
    assert_eq!(
        actual, golden,
        "{name} diverged from the pre-refactor golden bytes"
    );
}

#[test]
fn sweep_report_matches_pre_refactor_bytes_across_thread_counts() {
    for threads in [1usize, 2, 8] {
        let report = run_sweep(&reference_sweep(threads));
        check_or_bless("sweep_report.json", &report.to_json());
        check_or_bless(
            "sweep_trace.jsonl",
            report.trace.as_deref().expect("tracing was on"),
        );
    }
}

//! API-contract tests per the Rust API guidelines: thread-safety of the
//! core types (C-SEND-SYNC), non-empty Debug output (C-DEBUG-NONEMPTY),
//! and constructor/Default agreement (C-COMMON-TRAITS).

use std::sync::Arc;

use killi_repro::core::scheme::{KilliConfig, KilliScheme};
use killi_repro::ecc::bits::Line512;
use killi_repro::ecc::secded::Secded;
use killi_repro::fault::cell_model::CellFailureModel;
use killi_repro::fault::map::FaultMap;
use killi_repro::sim::cache::CacheGeometry;
use killi_repro::sim::stats::SimStats;

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn core_types_are_send_and_sync() {
    // The experiment runner farms simulations across threads; everything a
    // worker owns or shares must be Send/Sync.
    assert_send_sync::<Line512>();
    assert_send_sync::<FaultMap>();
    assert_send_sync::<Arc<FaultMap>>();
    assert_send_sync::<CellFailureModel>();
    assert_send_sync::<KilliScheme>();
    assert_send_sync::<SimStats>();
    assert_send_sync::<Secded>();
}

#[test]
fn protection_trait_objects_are_send() {
    fn assert_send<T: Send + ?Sized>() {}
    assert_send::<dyn killi_repro::sim::protection::LineProtection + Send>();
}

#[test]
fn debug_representations_are_never_empty() {
    let line = Line512::zero();
    assert!(!format!("{line:?}").is_empty());
    let map = FaultMap::fault_free(4);
    assert!(!format!("{map:?}").is_empty());
    let geom = CacheGeometry::PAPER_L2;
    assert!(!format!("{geom:?}").is_empty());
    let config = KilliConfig::with_ratio(64);
    assert!(!format!("{config:?}").is_empty());
    let stats = SimStats::default();
    assert!(format!("{stats:?}").contains("cycles"));
}

#[test]
fn default_and_new_agree() {
    // C-COMMON-TRAITS: where both exist they must match.
    let data = Line512::from_seed(3);
    assert_eq!(Secded::default().encode(&data), Secded::new().encode(&data));
    assert_eq!(Line512::default(), Line512::zero());
    assert_eq!(
        CellFailureModel::default().p_cell_median(
            killi_repro::fault::cell_model::NormVdd(0.6),
            killi_repro::fault::cell_model::FreqGhz::PEAK,
            killi_repro::fault::cell_model::FailureKind::Combined,
        ),
        CellFailureModel::finfet14().p_cell_median(
            killi_repro::fault::cell_model::NormVdd(0.6),
            killi_repro::fault::cell_model::FreqGhz::PEAK,
            killi_repro::fault::cell_model::FailureKind::Combined,
        )
    );
    // And the registry's stuck-at model is that same curve: the default
    // fault-model config is the default cell model.
    let registry = killi_repro::fault::model::default_registry();
    let stuck_at = registry
        .build(&killi_repro::fault::model::FaultModelConfig::default())
        .expect("stuck-at always builds");
    assert_eq!(
        stuck_at
            .cell_model()
            .expect("stuck-at exposes its curve")
            .p_cell_median(
                killi_repro::fault::cell_model::NormVdd(0.6),
                killi_repro::fault::cell_model::FreqGhz::PEAK,
                killi_repro::fault::cell_model::FailureKind::Combined,
            ),
        CellFailureModel::default().p_cell_median(
            killi_repro::fault::cell_model::NormVdd(0.6),
            killi_repro::fault::cell_model::FreqGhz::PEAK,
            killi_repro::fault::cell_model::FailureKind::Combined,
        )
    );
}

#[test]
fn line512_binary_operators_compose() {
    let a = Line512::from_seed(1);
    let b = Line512::from_seed(2);
    // XOR then OR behave set-theoretically.
    let sym_diff = a ^ b;
    let union = a | b;
    // The symmetric difference is a subset of the union.
    assert!(sym_diff.count_ones() <= union.count_ones());
    for i in 0..512 {
        if sym_diff.bit(i) {
            assert!(union.bit(i), "bit {i}");
        }
    }
}

//! Cross-scheme integration tests: all protection schemes run on the same
//! substrate and must uphold the same safety contract, while exhibiting
//! the capability ordering the paper establishes.

use killi_bench::runner::{baseline_of, run_matrix, MatrixConfig};
use killi_bench::schemes::{SchemeConfig, SchemeSpec};
use killi_repro::fault::cell_model::NormVdd;
use killi_repro::sim::cache::CacheGeometry;
use killi_repro::sim::gpu::GpuConfig;
use killi_repro::workloads::Workload;

fn configs(specs: &[SchemeSpec]) -> Vec<SchemeConfig> {
    specs.iter().map(SchemeSpec::config).collect()
}

fn config(vdd: f64) -> MatrixConfig {
    MatrixConfig {
        ops_per_cu: 20_000,
        seed: 12,
        vdd: NormVdd(vdd),
        fault_model: killi_bench::fault_models::stuck_at(),
        gpu: GpuConfig {
            cus: 2,
            l2: CacheGeometry {
                size_bytes: 256 * 1024,
                ways: 16,
                line_bytes: 64,
            },
            l2_banks: 8,
            mem_latency: 200,
            ..GpuConfig::default()
        },
        threads: 4,
    }
}

#[test]
fn no_scheme_silently_corrupts_at_operating_point() {
    let results = run_matrix(
        &[Workload::Xsbench, Workload::Fft],
        &configs(&SchemeSpec::figure4_set()),
        &config(0.625),
    );
    for r in &results {
        // The bounded exception is plain Killi's masked-fault hazard.
        let allowed = if r.scheme.starts_with("killi") { 10 } else { 0 };
        assert!(
            r.stats.sdc_events <= allowed,
            "{}/{}: {} SDCs",
            r.workload,
            r.scheme,
            r.stats.sdc_events
        );
    }
}

#[test]
fn stronger_codes_disable_fewer_lines() {
    let results = run_matrix(
        &[Workload::Xsbench],
        &configs(&[SchemeSpec::Flair, SchemeSpec::Dected, SchemeSpec::MsEcc]),
        &config(0.575), // aggressive voltage separates the schemes
    );
    let disabled = |s: &str| {
        results
            .iter()
            .find(|r| r.scheme == s)
            .unwrap()
            .disabled_lines
    };
    assert!(
        disabled("flair") > disabled("dected"),
        "flair {} vs dected {}",
        disabled("flair"),
        disabled("dected")
    );
    assert!(
        disabled("dected") > disabled("ms-ecc"),
        "dected {} vs ms-ecc {}",
        disabled("dected"),
        disabled("ms-ecc")
    );
}

#[test]
fn every_scheme_close_to_baseline_at_operating_point() {
    // Figure 4's headline: at 0.625 x VDD all techniques stay within a few
    // percent of the fault-free nominal baseline.
    let results = run_matrix(
        &[Workload::Miniamr],
        &configs(&SchemeSpec::figure4_set()),
        &config(0.625),
    );
    let base = baseline_of(&results, "miniamr");
    for r in results.iter().filter(|r| r.scheme != "baseline") {
        let norm = r.stats.normalized_time(&base.stats);
        assert!(norm < 1.10, "{} at {:.3}x baseline", r.scheme, norm);
    }
}

#[test]
fn killi_tracks_ecc_cache_size_monotonically_on_capacity_sensitive_load() {
    let results = run_matrix(
        &[Workload::Xsbench],
        &configs(&[
            SchemeSpec::Killi(256),
            SchemeSpec::Killi(64),
            SchemeSpec::Killi(16),
        ]),
        &config(0.625),
    );
    let mpki = |s: &str| results.iter().find(|r| r.scheme == s).unwrap().stats.mpki();
    assert!(mpki("killi-1:256") >= mpki("killi-1:64") * 0.999);
    assert!(mpki("killi-1:64") >= mpki("killi-1:16") * 0.999);
}

#[test]
fn flair_online_training_costs_performance() {
    // The overhead the paper excludes from its FLAIR runs: the online
    // DMR/MBIST phase sacrifices capacity and shows up as extra misses.
    let results = run_matrix(
        &[Workload::Xsbench],
        &configs(&[SchemeSpec::Flair, SchemeSpec::FlairOnline]),
        &config(0.625),
    );
    let cycles = |s: &str| results.iter().find(|r| r.scheme == s).unwrap().stats.cycles;
    assert!(
        cycles("flair-online") > cycles("flair"),
        "online {} vs pre-trained {}",
        cycles("flair-online"),
        cycles("flair")
    );
}

#[test]
fn killi_dected_upgrade_reduces_disabled_lines() {
    // §5.2: re-using the freed parity bits for DEC-TED lets Killi keep
    // two-fault lines that plain Killi must disable.
    let results = run_matrix(
        &[Workload::Xsbench],
        &configs(&[SchemeSpec::Killi(16), SchemeSpec::KilliDected(16)]),
        &config(0.6),
    );
    let disabled = |s: &str| {
        results
            .iter()
            .find(|r| r.scheme == s)
            .unwrap()
            .disabled_lines
    };
    assert!(
        disabled("killi-dected-1:16") < disabled("killi-1:16"),
        "dected-upgrade {} vs plain {}",
        disabled("killi-dected-1:16"),
        disabled("killi-1:16")
    );
}

#[test]
fn inverted_write_check_classifies_without_error_misses() {
    // §5.6.2 classification happens at install time, so the error-induced
    // misses plain Killi needs for (re)classification largely disappear.
    let results = run_matrix(
        &[Workload::Xsbench],
        &configs(&[SchemeSpec::Killi(16), SchemeSpec::KilliInverted(16)]),
        &config(0.6),
    );
    let err = |s: &str| {
        results
            .iter()
            .find(|r| r.scheme == s)
            .unwrap()
            .stats
            .l2_error_misses
    };
    assert!(
        err("killi-invchk-1:16") < err("killi-1:16"),
        "inverted {} vs plain {}",
        err("killi-invchk-1:16"),
        err("killi-1:16")
    );
    let sdc = results
        .iter()
        .find(|r| r.scheme == "killi-invchk-1:16")
        .unwrap()
        .stats
        .sdc_events;
    assert_eq!(sdc, 0, "write-verify classification is exact");
}

//! Property tests for the scheme registry's declarative configs: every
//! `SchemeConfig` must survive a JSON round-trip unchanged, the CLI
//! shorthand must agree with the JSON spelling, and malformed or unknown
//! configs must surface as typed [`BuildError`]s — never panics.

use std::sync::Arc;

use killi_repro::bench::schemes::{
    default_registry, BuildCtx, BuildError, ParamValue, SchemeConfig,
};
use killi_repro::fault::map::FaultMap;
use killi_repro::sim::cache::CacheGeometry;

fn geometry() -> CacheGeometry {
    CacheGeometry {
        size_bytes: 64 * 1024,
        ways: 16,
        line_bytes: 64,
    }
}

fn ctx() -> BuildCtx {
    let geo = geometry();
    BuildCtx::new(Arc::new(FaultMap::fault_free(geo.lines())), geo)
}

/// A config exercising every [`ParamValue`] variant. The params are
/// deliberately not registered anywhere: round-tripping happens before
/// validation, so the serialization contract must hold for any config.
fn exotic_config() -> SchemeConfig {
    SchemeConfig::new("hypothetical")
        .with("count", ParamValue::U64(17))
        .with("scale", ParamValue::F64(0.625))
        .with("enabled", ParamValue::Bool(false))
        .with("note", ParamValue::Str("quotes \"and\" back\\slash".into()))
}

#[test]
fn every_registered_default_round_trips_through_json() {
    let registry = default_registry();
    for name in registry.names() {
        let config = SchemeConfig::new(name);
        let json = config.to_json();
        let back = SchemeConfig::from_json(&json)
            .unwrap_or_else(|e| panic!("{name}: {json} did not parse back: {e}"));
        assert_eq!(back, config, "{name} changed across a JSON round-trip");
    }
}

#[test]
fn overridden_params_round_trip_through_json() {
    let registry = default_registry();
    for name in registry.names() {
        let descriptor = registry.descriptor(name).expect("listed name resolves");
        let mut config = SchemeConfig::new(name);
        for param in &descriptor.params {
            config = config.with(param.name, param.default.clone());
        }
        let back = SchemeConfig::from_json(&config.to_json()).expect("round-trip parses");
        assert_eq!(back, config, "{name} with explicit defaults diverged");
        // Explicit defaults must also build to the same label as the bare name.
        assert_eq!(
            registry.label(&back).unwrap(),
            registry.label(&SchemeConfig::new(name)).unwrap()
        );
    }
}

#[test]
fn every_param_value_variant_round_trips() {
    let config = exotic_config();
    let back = SchemeConfig::from_json(&config.to_json()).expect("round-trip parses");
    assert_eq!(back, config);
}

#[test]
fn shorthand_and_json_spellings_agree() {
    let shorthand = SchemeConfig::parse("killi:ratio=16,ecc_sets=64,ecc_ways=8").unwrap();
    let json = SchemeConfig::from_json(
        r#"{"name": "killi", "params": {"ratio": 16, "ecc_sets": 64, "ecc_ways": 8}}"#,
    )
    .unwrap();
    assert_eq!(shorthand, json);
    assert_eq!(
        default_registry().label(&shorthand).unwrap(),
        "killi-ecc64x8"
    );
}

#[test]
fn list_round_trips_through_both_json_shapes() {
    let configs = vec![
        SchemeConfig::new("baseline"),
        SchemeConfig::new("killi").with("ratio", ParamValue::U64(16)),
        exotic_config(),
    ];
    let bare = format!(
        "[{}]",
        configs
            .iter()
            .map(SchemeConfig::to_json)
            .collect::<Vec<_>>()
            .join(", ")
    );
    assert_eq!(SchemeConfig::list_from_json(&bare).unwrap(), configs);
    let wrapped = format!("{{\"schemes\": {bare}}}");
    assert_eq!(SchemeConfig::list_from_json(&wrapped).unwrap(), configs);
}

#[test]
fn unknown_scheme_is_a_typed_error() {
    let registry = default_registry();
    let config = SchemeConfig::new("no-such-scheme");
    match registry.validate(&config) {
        Err(BuildError::UnknownScheme { name }) => assert_eq!(name, "no-such-scheme"),
        other => panic!("expected UnknownScheme, got {other:?}"),
    }
    assert!(matches!(
        registry.build(&config, &ctx()),
        Err(BuildError::UnknownScheme { .. })
    ));
    assert!(matches!(
        registry.label(&config),
        Err(BuildError::UnknownScheme { .. })
    ));
}

#[test]
fn unknown_and_mistyped_params_are_typed_errors() {
    let registry = default_registry();
    match registry.validate(&SchemeConfig::new("killi").with("ratio2", ParamValue::U64(4))) {
        Err(BuildError::UnknownParam { scheme, param }) => {
            assert_eq!((scheme.as_str(), param.as_str()), ("killi", "ratio2"));
        }
        other => panic!("expected UnknownParam, got {other:?}"),
    }
    match registry.validate(&SchemeConfig::new("killi").with("ratio", ParamValue::Bool(true))) {
        Err(BuildError::InvalidParam { scheme, param, .. }) => {
            assert_eq!((scheme.as_str(), param.as_str()), ("killi", "ratio"));
        }
        other => panic!("expected InvalidParam, got {other:?}"),
    }
}

#[test]
fn malformed_inputs_are_parse_errors() {
    for bad in [
        "",            // no name at all
        ":ratio=4",    // empty name
        "killi:ratio", // param with no value
        "killi:=4",    // param with no key
    ] {
        assert!(
            matches!(SchemeConfig::parse(bad), Err(BuildError::Parse { .. })),
            "{bad:?} should be a parse error"
        );
    }
    for bad in [
        "not json",
        "{\"params\": {}}",       // missing name
        "{\"name\": 7}",          // non-string name
        "[{\"name\": \"killi\"}", // truncated array
    ] {
        let single = SchemeConfig::from_json(bad);
        let list = SchemeConfig::list_from_json(bad);
        assert!(
            matches!(single, Err(BuildError::Parse { .. }))
                && matches!(list, Err(BuildError::Parse { .. })),
            "{bad:?} should be a parse error, got {single:?} / {list:?}"
        );
    }
}

#[test]
fn canonicalization_is_spelling_invariant() {
    // The cache-key property the service leans on: any spelling of the
    // same scheme — shorthand, JSON, reordered overrides, defaults
    // spelled explicitly — must canonicalize to byte-identical JSON.
    let registry = default_registry();
    killi_check::check("registry_canonicalization", |g| {
        let names = registry.names();
        let name = *g.pick(&names);
        let descriptor = registry.descriptor(name).expect("listed name resolves");

        // A random subset of the declared params with fresh values of
        // the declared type.
        let mut overrides: Vec<(&str, ParamValue)> = Vec::new();
        for spec in &descriptor.params {
            if !g.bool() {
                continue;
            }
            let value = match spec.default {
                ParamValue::U64(_) => ParamValue::U64(g.u64_below(64) + 1),
                ParamValue::Bool(_) => ParamValue::Bool(g.bool()),
                ParamValue::F64(_) => ParamValue::F64(g.f64_in(0.0, 4.0)),
                ParamValue::Str(_) => ParamValue::Str(format!("s{}", g.u64_below(8))),
            };
            overrides.push((spec.name, value));
        }

        // Spelling 1: programmatic, declaration order.
        let mut forward = SchemeConfig::new(name);
        for (k, v) in &overrides {
            forward = forward.with(k, v.clone());
        }
        // Spelling 2: programmatic, reversed order.
        let mut reversed = SchemeConfig::new(name);
        for (k, v) in overrides.iter().rev() {
            reversed = reversed.with(k, v.clone());
        }
        // Spelling 3: CLI shorthand (all generated values spell cleanly).
        let shorthand_text = if overrides.is_empty() {
            name.to_string()
        } else {
            format!(
                "{name}:{}",
                overrides
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(",")
            )
        };
        let shorthand = SchemeConfig::parse(&shorthand_text).expect("shorthand parses");
        // Spelling 4: JSON round-trip of the forward spelling.
        let json = SchemeConfig::from_json(&forward.to_json()).expect("JSON parses");
        // Spelling 5: every remaining default spelled explicitly.
        let mut explicit = forward.clone();
        for spec in &descriptor.params {
            if explicit.get(spec.name).is_none() {
                explicit = explicit.with(spec.name, spec.default.clone());
            }
        }

        let canon = registry.canonical_json(&forward).expect("canonicalizes");
        for (label, spelling) in [
            ("reversed", &reversed),
            ("shorthand", &shorthand),
            ("json", &json),
            ("explicit-defaults", &explicit),
        ] {
            assert_eq!(
                registry.canonical_json(spelling).expect("canonicalizes"),
                canon,
                "{label} spelling of {shorthand_text} diverged"
            );
        }

        // And the canonical form is a fixed point that still resolves
        // to the same report label.
        let canonical = registry.canonicalize(&forward).expect("canonicalizes");
        assert_eq!(registry.canonicalize(&canonical).unwrap(), canonical);
        assert_eq!(
            registry.label(&canonical).unwrap(),
            registry.label(&forward).unwrap()
        );
    });
}

#[test]
fn every_registered_scheme_builds_from_its_default_config() {
    let registry = default_registry();
    let ctx = ctx();
    for name in registry.names() {
        let config = SchemeConfig::new(name);
        registry
            .build(&config, &ctx)
            .unwrap_or_else(|e| panic!("{name} failed to build from defaults: {e}"));
    }
}

//! Determinism regression tests for the Monte-Carlo sweep engine: the
//! emitted JSON must be *byte-identical* regardless of worker-thread
//! count or job interleaving. This is the property that makes sweep
//! results citable — a reported CI can be reproduced from (config, root
//! seed) alone, on any machine.

use killi_bench::schemes::SchemeSpec;
use killi_bench::sweep::{run_sweep, SweepConfig};
use killi_sim::cache::CacheGeometry;
use killi_sim::gpu::GpuConfig;
use killi_workloads::Workload;

fn tiny(threads: usize) -> SweepConfig {
    SweepConfig {
        root_seed: 2024,
        replications: 2,
        vdds: vec![0.625, 0.6],
        schemes: vec![SchemeSpec::Killi(16).config(), SchemeSpec::MsEcc.config()],
        fault_model: killi_bench::fault_models::stuck_at(),
        workloads: vec![Workload::Xsbench, Workload::Fft],
        ops_per_cu: 2_000,
        gpu: GpuConfig {
            cus: 2,
            l2: CacheGeometry {
                size_bytes: 128 * 1024,
                ways: 16,
                line_bytes: 64,
            },
            l2_banks: 4,
            mem_latency: 100,
            ..GpuConfig::default()
        },
        threads,
        progress_every: 0,
        trace_capacity: None,
    }
}

#[test]
fn json_report_is_byte_identical_across_thread_counts() {
    let reference = run_sweep(&tiny(1)).to_json();
    for threads in [2, 8] {
        let json = run_sweep(&tiny(threads)).to_json();
        assert_eq!(
            reference, json,
            "sweep JSON diverged between 1 and {threads} threads"
        );
    }
    // And it is stable across repeated runs in the same process.
    assert_eq!(reference, run_sweep(&tiny(4)).to_json());
}

#[test]
fn event_trace_is_byte_identical_across_thread_counts() {
    let traced = |threads: usize| SweepConfig {
        trace_capacity: Some(256),
        ..tiny(threads)
    };
    let reference = run_sweep(&traced(1));
    let ref_trace = reference.trace.as_deref().expect("tracing was on");
    assert!(
        ref_trace.contains("\"schema\":\"killi-obs/v1\""),
        "trace must carry the killi-obs/v1 header"
    );
    assert!(ref_trace.contains("\"type\":"), "trace must carry events");
    for threads in [2, 8] {
        let report = run_sweep(&traced(threads));
        assert_eq!(reference.to_json(), report.to_json());
        assert_eq!(
            Some(ref_trace),
            report.trace.as_deref(),
            "event trace diverged between 1 and {threads} threads"
        );
    }
}

#[test]
fn root_seed_changes_the_report() {
    let a = run_sweep(&tiny(2)).to_json();
    let b = run_sweep(&SweepConfig {
        root_seed: 2025,
        ..tiny(2)
    })
    .to_json();
    assert_ne!(a, b, "different root seeds must draw different replicates");
}

#[test]
fn report_carries_statistics_for_every_cell() {
    let report = run_sweep(&tiny(2));
    // 2 baselines + 2 vdds x 2 schemes x 2 workloads = 10 cells.
    assert_eq!(report.cells.len(), 10);
    let json = report.to_json();
    for key in ["\"mean\"", "\"stddev\"", "\"ci95\""] {
        assert!(json.contains(key), "missing {key}");
    }
    for cell in &report.cells {
        let m = cell.metric("cycles");
        assert_eq!(m.n(), 2, "{}/{}/{}", cell.vdd, cell.scheme, cell.workload);
        assert!(m.mean() > 0.0);
        let (lo, hi) = m.ci95();
        assert!(lo <= m.mean() && m.mean() <= hi);
    }
}

//! Micro-benchmarks for the simulator substrate: fault-map construction
//! and the protected L2 access paths.
//!
//! Runs on the in-repo [`killi_bench::timing`] harness (`cargo bench`);
//! tune the per-benchmark budget with `KILLI_BENCH_MS`.

use std::hint::black_box;
use std::sync::Arc;

use killi::scheme::{KilliConfig, KilliScheme};
use killi_bench::fault_models::{build_fault_model, stuck_at};
use killi_bench::timing::bench;
use killi_fault::cell_model::{FreqGhz, NormVdd};
use killi_fault::map::FaultMap;
use killi_sim::cache::{CacheGeometry, L2Cache};
use killi_sim::mem::MainMemory;
use killi_sim::protection::Unprotected;

fn geometry() -> CacheGeometry {
    CacheGeometry {
        size_bytes: 256 * 1024,
        ways: 16,
        line_bytes: 64,
    }
}

fn bench_fault_map() {
    let model = build_fault_model(&stuck_at()).expect("stuck-at always builds");
    bench("fault_map/build_4096_lines", || {
        black_box(&model).map(4096, NormVdd::LV_0_625, FreqGhz::PEAK, 42)
    });
}

fn bench_l2_paths() {
    let geom = geometry();
    let model = build_fault_model(&stuck_at()).expect("stuck-at always builds");
    let map = Arc::new(model.map(geom.lines(), NormVdd::LV_0_625, FreqGhz::PEAK, 1));

    {
        let mut l2 = L2Cache::new(
            geom,
            8,
            2,
            2,
            Arc::new(FaultMap::fault_free(geom.lines())),
            Box::new(Unprotected::new()),
        );
        let mut mem = MainMemory::new(1, 300);
        l2.access_load(0x40, 0, &mut mem);
        let mut now = 1000u64;
        bench("l2/unprotected_hit", || {
            now += 10;
            l2.access_load(black_box(0x40), now, &mut mem)
        });
    }

    {
        let killi = KilliScheme::new(
            KilliConfig::with_ratio(64),
            Arc::clone(&map),
            geom.lines(),
            geom.ways,
        );
        let mut l2 = L2Cache::new(geom, 8, 2, 2, Arc::clone(&map), Box::new(killi));
        let mut mem = MainMemory::new(1, 300);
        l2.access_load(0x40, 0, &mut mem);
        let mut now = 1000u64;
        bench("l2/killi_hit", || {
            now += 10;
            l2.access_load(black_box(0x40), now, &mut mem)
        });
    }

    {
        let killi = KilliScheme::new(
            KilliConfig::with_ratio(64),
            Arc::clone(&map),
            geom.lines(),
            geom.ways,
        );
        let mut l2 = L2Cache::new(geom, 8, 2, 2, Arc::clone(&map), Box::new(killi));
        let mut mem = MainMemory::new(1, 300);
        let mut addr = 0u64;
        let mut now = 0u64;
        bench("l2/killi_miss_fill", || {
            addr = addr.wrapping_add(64 * 257); // always a fresh line
            now += 10;
            l2.access_load(black_box(addr), now, &mut mem)
        });
    }
}

fn main() {
    bench_fault_map();
    bench_l2_paths();
}

//! `cargo bench --bench perf` — the sweep hot-path before/after suite
//! (`killi bench` exposes the same measurements with JSON output).
//!
//! Runs the quick configuration by default; pass `--full` for the
//! default sweep configuration (`cargo bench --bench perf -- --full`).

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let report = killi_bench::perf::run_perf_suite(!full);
    println!(
        "sweep hot-path benchmarks ({}):\n{}",
        if full {
            "default sweep configuration"
        } else {
            "quick configuration"
        },
        report.summary_table().render()
    );
}

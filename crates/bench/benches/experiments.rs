//! Benchmarks that exercise every paper experiment at reduced scale, so
//! `cargo bench` covers the full reproduction pipeline (the full-size
//! runs live in the `fig*`/`table*`/`repro` binaries).
//!
//! Runs on the in-repo [`killi_bench::timing`] harness; tune the
//! per-benchmark budget with `KILLI_BENCH_MS`.

use std::hint::black_box;

use killi_bench::experiments;
use killi_bench::runner::{run_matrix, MatrixConfig};
use killi_bench::schemes::SchemeSpec;
use killi_bench::sweep::{run_sweep, SweepConfig};
use killi_bench::timing::bench;
use killi_fault::cell_model::NormVdd;
use killi_sim::cache::CacheGeometry;
use killi_sim::gpu::GpuConfig;
use killi_workloads::Workload;

fn small_gpu() -> GpuConfig {
    GpuConfig {
        cus: 2,
        l2: CacheGeometry {
            size_bytes: 128 * 1024,
            ways: 16,
            line_bytes: 64,
        },
        l2_banks: 4,
        mem_latency: 100,
        ..GpuConfig::default()
    }
}

fn small_matrix_config() -> MatrixConfig {
    MatrixConfig {
        ops_per_cu: 5_000,
        seed: 42,
        vdd: NormVdd::LV_0_625,
        fault_model: killi_bench::fault_models::stuck_at(),
        gpu: small_gpu(),
        threads: 2,
    }
}

fn bench_analytic_experiments() {
    bench("experiments/fig1_cell_curves", || {
        black_box(experiments::fig1())
    });
    let model = killi_bench::fault_models::stuck_at_cell_model();
    bench("experiments/fig6_coverage_analytic", || {
        black_box(killi_model::coverage::coverage_at(
            &model,
            NormVdd(black_box(0.6)),
        ))
    });
    bench("experiments/fig6_coverage_monte_carlo", || {
        black_box(killi_bench::empirical::measure(
            &model,
            NormVdd(0.6),
            500,
            42,
        ))
    });
    bench("experiments/table4_area", || {
        black_box(experiments::table4())
    });
    bench("experiments/table5_area", || {
        black_box(experiments::table5())
    });
    bench("experiments/table7_olsc", || {
        black_box(experiments::table7())
    });
}

fn bench_fig2_sampled() {
    bench("experiments/fig2_line_distribution", || {
        black_box(experiments::fig2(7))
    });
}

fn bench_simulation_matrix() {
    let config = small_matrix_config();
    bench("experiments/fig4_fig5_matrix_cell", || {
        black_box(run_matrix(
            &[Workload::Xsbench],
            &[SchemeSpec::Killi(64).config()],
            &config,
        ))
    });
    let figure4: Vec<_> = SchemeSpec::figure4_set()
        .iter()
        .map(SchemeSpec::config)
        .collect();
    let results = run_matrix(&[Workload::Hacc], &figure4, &config);
    bench("experiments/table6_power_inputs", || {
        black_box(experiments::table6(&results))
    });
}

fn bench_sweep_engine() {
    let config = SweepConfig {
        replications: 2,
        vdds: vec![0.65, 0.625],
        schemes: vec![SchemeSpec::Killi(64).config()],
        workloads: vec![Workload::Fft],
        ops_per_cu: 2_000,
        gpu: small_gpu(),
        threads: 2,
        progress_every: 0,
        ..SweepConfig::paper(2_000, 42, 2)
    };
    bench("experiments/sweep_2rep_cell", || {
        black_box(run_sweep(&config).to_json())
    });
}

fn main() {
    bench_analytic_experiments();
    bench_fig2_sampled();
    bench_simulation_matrix();
    bench_sweep_engine();
}

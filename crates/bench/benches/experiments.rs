//! Criterion benchmarks that exercise every paper experiment at reduced
//! scale, so `cargo bench` covers the full reproduction pipeline (the
//! full-size runs live in the `fig*`/`table*`/`repro` binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use killi_bench::experiments;
use killi_bench::runner::{run_matrix, MatrixConfig};
use killi_bench::schemes::SchemeSpec;
use killi_fault::cell_model::NormVdd;
use killi_sim::cache::CacheGeometry;
use killi_sim::gpu::GpuConfig;
use killi_workloads::Workload;

fn small_matrix_config() -> MatrixConfig {
    MatrixConfig {
        ops_per_cu: 5_000,
        seed: 42,
        vdd: NormVdd::LV_0_625,
        gpu: GpuConfig {
            cus: 2,
            l2: CacheGeometry {
                size_bytes: 128 * 1024,
                ways: 16,
                line_bytes: 64,
            },
            l2_banks: 4,
            mem_latency: 100,
            ..GpuConfig::default()
        },
        threads: 2,
    }
}

fn bench_analytic_experiments(c: &mut Criterion) {
    c.bench_function("experiments/fig1_cell_curves", |b| {
        b.iter(|| black_box(experiments::fig1()))
    });
    c.bench_function("experiments/fig6_coverage_analytic", |b| {
        let model = killi_fault::cell_model::CellFailureModel::finfet14();
        b.iter(|| {
            black_box(killi_model::coverage::coverage_at(
                &model,
                NormVdd(black_box(0.6)),
            ))
        })
    });
    c.bench_function("experiments/fig6_coverage_monte_carlo", |b| {
        let model = killi_fault::cell_model::CellFailureModel::finfet14();
        b.iter(|| {
            black_box(killi_bench::empirical::measure(
                &model,
                NormVdd(0.6),
                500,
                42,
            ))
        })
    });
    c.bench_function("experiments/table4_area", |b| {
        b.iter(|| black_box(experiments::table4()))
    });
    c.bench_function("experiments/table5_area", |b| {
        b.iter(|| black_box(experiments::table5()))
    });
    c.bench_function("experiments/table7_olsc", |b| {
        b.iter(|| black_box(experiments::table7()))
    });
}

fn bench_fig2_sampled(c: &mut Criterion) {
    c.bench_function("experiments/fig2_line_distribution", |b| {
        b.iter(|| black_box(experiments::fig2(7)))
    });
}

fn bench_simulation_matrix(c: &mut Criterion) {
    let config = small_matrix_config();
    c.bench_function("experiments/fig4_fig5_matrix_cell", |b| {
        b.iter(|| {
            black_box(run_matrix(
                &[Workload::Xsbench],
                &[SchemeSpec::Killi(64)],
                &config,
            ))
        })
    });
    c.bench_function("experiments/table6_power_inputs", |b| {
        let results = run_matrix(&[Workload::Hacc], &SchemeSpec::figure4_set(), &config);
        b.iter(|| black_box(experiments::table6(&results)))
    });
}

criterion_group!(benches, bench_analytic_experiments, bench_fig2_sampled, bench_simulation_matrix);
criterion_main!(benches);

//! Micro-benchmarks for the error-coding substrate: the per-access
//! hardware operations Killi and the baselines model as 1-2 cycles.
//!
//! Runs on the in-repo [`killi_bench::timing`] harness (`cargo bench`);
//! tune the per-benchmark budget with `KILLI_BENCH_MS`.

use std::hint::black_box;

use killi_bench::timing::bench;
use killi_ecc::bch::dected;
use killi_ecc::bits::Line512;
use killi_ecc::olsc::OlscLine;
use killi_ecc::parity::{seg16, seg4};
use killi_ecc::secded::secded;

fn bench_parity() {
    let line = Line512::from_seed(1);
    bench("parity/seg16", || seg16(black_box(&line)));
    bench("parity/seg4", || seg4(black_box(&line)));
}

fn bench_secded() {
    let codec = secded();
    let line = Line512::from_seed(2);
    let code = codec.encode(&line);
    let mut corrupted = line;
    corrupted.flip_bit(100);
    bench("secded/encode", || codec.encode(black_box(&line)));
    bench("secded/decode_clean", || {
        codec.decode(black_box(&line), code)
    });
    bench("secded/decode_correct1", || {
        codec.decode(black_box(&corrupted), code)
    });
}

fn bench_dected() {
    let codec = dected();
    let line = Line512::from_seed(3);
    let code = codec.encode(&line);
    let mut two = line;
    two.flip_bit(9);
    two.flip_bit(400);
    bench("dected/encode", || codec.encode(black_box(&line)));
    bench("dected/decode_clean", || {
        codec.decode(black_box(&line), code)
    });
    bench("dected/decode_correct2", || {
        codec.decode(black_box(&two), code)
    });
}

fn bench_olsc() {
    let codec = OlscLine::new(8, 2);
    let line = Line512::from_seed(4);
    let check = codec.encode(&line);
    bench("olsc/encode", || codec.encode(black_box(&line)));
    bench("olsc/decode_clean", || {
        let mut l = black_box(line);
        codec.decode(&mut l, &check)
    });
}

fn main() {
    bench_parity();
    bench_secded();
    bench_dected();
    bench_olsc();
}

//! Criterion benchmarks for the error-coding substrate: the per-access
//! hardware operations Killi and the baselines model as 1-2 cycles.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use killi_ecc::bch::dected;
use killi_ecc::bits::Line512;
use killi_ecc::olsc::OlscLine;
use killi_ecc::parity::{seg16, seg4};
use killi_ecc::secded::secded;

fn bench_parity(c: &mut Criterion) {
    let line = Line512::from_seed(1);
    c.bench_function("parity/seg16", |b| b.iter(|| seg16(black_box(&line))));
    c.bench_function("parity/seg4", |b| b.iter(|| seg4(black_box(&line))));
}

fn bench_secded(c: &mut Criterion) {
    let codec = secded();
    let line = Line512::from_seed(2);
    let code = codec.encode(&line);
    let mut corrupted = line;
    corrupted.flip_bit(100);
    c.bench_function("secded/encode", |b| b.iter(|| codec.encode(black_box(&line))));
    c.bench_function("secded/decode_clean", |b| {
        b.iter(|| codec.decode(black_box(&line), code))
    });
    c.bench_function("secded/decode_correct1", |b| {
        b.iter(|| codec.decode(black_box(&corrupted), code))
    });
}

fn bench_dected(c: &mut Criterion) {
    let codec = dected();
    let line = Line512::from_seed(3);
    let code = codec.encode(&line);
    let mut two = line;
    two.flip_bit(9);
    two.flip_bit(400);
    c.bench_function("dected/encode", |b| b.iter(|| codec.encode(black_box(&line))));
    c.bench_function("dected/decode_clean", |b| {
        b.iter(|| codec.decode(black_box(&line), code))
    });
    c.bench_function("dected/decode_correct2", |b| {
        b.iter(|| codec.decode(black_box(&two), code))
    });
}

fn bench_olsc(c: &mut Criterion) {
    let codec = OlscLine::new(8, 2);
    let line = Line512::from_seed(4);
    let check = codec.encode(&line);
    c.bench_function("olsc/encode", |b| b.iter(|| codec.encode(black_box(&line))));
    c.bench_function("olsc/decode_clean", |b| {
        b.iter(|| {
            let mut l = black_box(line);
            codec.decode(&mut l, &check)
        })
    });
}

criterion_group!(benches, bench_parity, bench_secded, bench_dected, bench_olsc);
criterion_main!(benches);

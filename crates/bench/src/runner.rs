//! The performance-experiment runner behind Figures 4/5 and Table 6:
//! a (workload x scheme) simulation matrix executed across threads.

use std::sync::Arc;

use killi_fault::cell_model::{FreqGhz, NormVdd};
use killi_fault::map::FaultMap;
use killi_obs::{escape_json, Counter, MetricSet, Sink};
use killi_sim::gpu::{GpuConfig, GpuSim};
use killi_sim::stats::SimStats;
use killi_workloads::{TraceParams, Workload};

use crate::fault_models::{build_fault_model, FaultModelConfig};
use crate::schemes::{build_scheme, scheme_label, BuildCtx, SchemeConfig};

/// Matrix configuration.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Operations per CU stream.
    pub ops_per_cu: usize,
    /// Seed for fault maps and traces.
    pub seed: u64,
    /// Low-voltage operating point for the protected schemes.
    pub vdd: NormVdd,
    /// Fault model drawn for the protected schemes' map.
    pub fault_model: FaultModelConfig,
    /// GPU hardware configuration.
    pub gpu: GpuConfig,
    /// Worker threads.
    pub threads: usize,
}

impl MatrixConfig {
    /// The paper's configuration at 0.625 x VDD.
    pub fn paper(ops_per_cu: usize, seed: u64) -> Self {
        MatrixConfig {
            ops_per_cu,
            seed,
            vdd: NormVdd::LV_0_625,
            fault_model: FaultModelConfig::default(),
            gpu: GpuConfig::default(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }
}

/// Observability configuration of a single simulation run.
#[derive(Debug, Clone, Default)]
pub struct ObsConfig {
    /// Event-trace ring capacity. `None` runs with the no-op sink: no
    /// events are constructed and no trace is exported.
    pub trace_capacity: Option<usize>,
    /// Extra key/value pairs stamped into the trace header (e.g. the
    /// sweep's vdd and replicate index). Values are emitted as JSON
    /// strings.
    pub context: Vec<(&'static str, String)>,
}

impl ObsConfig {
    /// Tracing enabled with the given ring capacity.
    pub fn traced(capacity: usize) -> Self {
        ObsConfig {
            trace_capacity: Some(capacity),
            context: Vec::new(),
        }
    }
}

/// One cell of the experiment matrix.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Workload name.
    pub workload: &'static str,
    /// Scheme label.
    pub scheme: String,
    /// Run statistics.
    pub stats: SimStats,
    /// Disabled-line count at end of run.
    pub disabled_lines: u64,
    /// Scheme-level observability counters, merged with the L2-level miss
    /// split (error-induced vs ECC-cache-induced).
    pub metrics: MetricSet,
    /// JSON-lines event trace (`killi-obs/v1`), when tracing was on.
    pub trace: Option<String>,
}

/// Runs one (workload, scheme) simulation with explicit trace seed and
/// geometry — the primitive both [`run_matrix`] and the Monte-Carlo sweep
/// engine build on. Results are a pure function of the arguments.
pub fn run_cell(
    workload: Workload,
    scheme: &SchemeConfig,
    gpu: &GpuConfig,
    ops_per_cu: usize,
    map: &Arc<FaultMap>,
    trace_seed: u64,
    obs: &ObsConfig,
) -> RunResult {
    let params = TraceParams {
        cus: gpu.cus,
        ops_per_cu,
        seed: trace_seed,
        l2_bytes: gpu.l2.size_bytes,
    };
    run_cell_traced(
        workload,
        scheme,
        gpu,
        workload.trace(&params),
        map,
        trace_seed,
        obs,
    )
}

/// [`run_cell`] with the workload trace supplied by the caller, so one
/// generated op buffer (see `Workload::ops` + `Trace::from_shared`) can
/// feed every scheme cell that replays the same (workload, seed). The
/// trace must be the one `workload` generates for `trace_seed` with the
/// cell's geometry — `trace_seed` still seeds the simulator's soft-error
/// process and is stamped into the exported event trace.
pub fn run_cell_traced(
    workload: Workload,
    scheme: &SchemeConfig,
    gpu: &GpuConfig,
    trace: killi_sim::trace::Trace,
    map: &Arc<FaultMap>,
    trace_seed: u64,
    obs: &ObsConfig,
) -> RunResult {
    let sink = match obs.trace_capacity {
        Some(capacity) => Sink::recording(capacity),
        None => Sink::none(),
    };
    // Engines validate configs upfront (`SweepConfig::validate`, the CLI
    // parser), so a failure here is a programming error, not user input.
    let label = scheme_label(scheme).unwrap_or_else(|e| panic!("{e}"));
    let ctx = BuildCtx::new(Arc::clone(map), gpu.l2).with_sink(sink.clone());
    let protection = build_scheme(scheme, &ctx).unwrap_or_else(|e| panic!("{e}"));
    let mut sim = GpuSim::new(*gpu, Arc::clone(map), protection, trace_seed);
    sim.attach_sink(sink.clone());
    let stats = sim.run(trace);
    let mut metrics = sim.l2().protection().metrics();
    // The miss split is owned by the L2 model, not the scheme: fold it in
    // here so a cell's MetricSet is self-contained.
    metrics.set(Counter::ErrorInducedMisses, stats.l2_error_misses);
    metrics.set(Counter::EccInducedMisses, stats.ecc_induced_invalidations);
    let disabled = metrics.get(Counter::DisabledLines);
    let json_string = |s: &str| format!("\"{}\"", escape_json(s));
    let trace = sink.export_jsonl(&{
        let mut context: Vec<(&str, String)> = vec![
            ("workload", json_string(workload.name())),
            ("scheme", json_string(&label)),
            ("trace_seed", trace_seed.to_string()),
        ];
        context.extend(obs.context.iter().map(|(k, v)| (*k, json_string(v))));
        context
    });
    RunResult {
        workload: workload.name(),
        scheme: label,
        stats,
        disabled_lines: disabled,
        metrics,
        trace,
    }
}

/// Runs one (workload, scheme) cell of a matrix configuration with the
/// no-op sink.
pub fn run_one(
    workload: Workload,
    scheme: &SchemeConfig,
    config: &MatrixConfig,
    map: &Arc<FaultMap>,
) -> RunResult {
    run_cell(
        workload,
        scheme,
        &config.gpu,
        config.ops_per_cu,
        map,
        config.seed,
        &ObsConfig::default(),
    )
}

/// Runs the full (workload x scheme) matrix, plus the fault-free baseline
/// for every workload, on the shared work-stealing pool. Results preserve
/// matrix order: baselines first, then workload-major over `schemes`.
pub fn run_matrix(
    workloads: &[Workload],
    schemes: &[SchemeConfig],
    config: &MatrixConfig,
) -> Vec<RunResult> {
    let lines = config.gpu.l2.lines();
    let fault_model = build_fault_model(&config.fault_model).unwrap_or_else(|e| panic!("{e}"));
    let lv_map = Arc::new(fault_model.map(lines, config.vdd, FreqGhz::PEAK, config.seed));
    let free_map = Arc::new(FaultMap::fault_free(lines));

    let baseline = SchemeConfig::new("baseline");
    let mut jobs: Vec<(Workload, &SchemeConfig)> = Vec::new();
    for &w in workloads {
        jobs.push((w, &baseline));
    }
    for &w in workloads {
        for s in schemes {
            jobs.push((w, s));
        }
    }

    crate::exec::par_map(config.threads, &jobs, None, |_, &(w, s)| {
        let map = if s.is_baseline() { &free_map } else { &lv_map };
        run_one(w, s, config, map)
    })
}

/// Convenience lookup: the baseline result for a workload.
///
/// # Panics
///
/// Panics when the workload has no baseline run; use [`try_baseline_of`]
/// for partial result sets.
pub fn baseline_of<'a>(results: &'a [RunResult], workload: &str) -> &'a RunResult {
    try_baseline_of(results, workload).expect("baseline run present")
}

/// Non-panicking baseline lookup for partial result sets.
pub fn try_baseline_of<'a>(results: &'a [RunResult], workload: &str) -> Option<&'a RunResult> {
    results
        .iter()
        .find(|r| r.workload == workload && r.scheme == "baseline")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::SchemeSpec;
    use killi_sim::cache::CacheGeometry;

    fn tiny_config() -> MatrixConfig {
        MatrixConfig {
            ops_per_cu: 3000,
            seed: 7,
            vdd: NormVdd(0.625),
            gpu: GpuConfig {
                cus: 2,
                l2: CacheGeometry {
                    size_bytes: 128 * 1024,
                    ways: 16,
                    line_bytes: 64,
                },
                l2_banks: 4,
                mem_latency: 100,
                ..GpuConfig::default()
            },
            fault_model: crate::fault_models::stuck_at(),
            threads: 2,
        }
    }

    #[test]
    fn matrix_runs_and_orders_results() {
        let config = tiny_config();
        let results = run_matrix(
            &[Workload::Hacc, Workload::Xsbench],
            &[SchemeSpec::Flair.config(), SchemeSpec::Killi(16).config()],
            &config,
        );
        assert_eq!(results.len(), 2 + 2 * 2);
        assert_eq!(results[0].scheme, "baseline");
        let base = baseline_of(&results, "xsbench");
        assert!(base.stats.cycles > 0);
        for r in &results {
            assert!(r.stats.instructions > 0, "{}/{}", r.workload, r.scheme);
            // Killi's masked-fault hazard (§5.6.2) allows a tiny SDC rate at
            // this aggressive voltage; anything beyond a handful would be a
            // protection bug.
            assert!(
                r.stats.sdc_events <= 5,
                "{}/{}: {} SDCs",
                r.workload,
                r.scheme,
                r.stats.sdc_events
            );
        }
    }

    #[test]
    fn matrix_is_deterministic_across_thread_counts() {
        let mut c1 = tiny_config();
        c1.threads = 1;
        let mut c4 = tiny_config();
        c4.threads = 4;
        let a = run_matrix(&[Workload::Fft], &[SchemeSpec::Killi(32).config()], &c1);
        let b = run_matrix(&[Workload::Fft], &[SchemeSpec::Killi(32).config()], &c4);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.stats, y.stats, "{}/{}", x.workload, x.scheme);
        }
    }

    #[test]
    fn inverted_write_check_eliminates_sdcs_at_operating_point() {
        // §5.6.2: at the paper's 0.625 x VDD operating point, verifying
        // both polarities at install time exposes every masked stuck-at
        // fault — no silent corruption remains.
        let results = run_matrix(
            &[Workload::Xsbench, Workload::Fft],
            &[SchemeSpec::KilliInverted(16).config()],
            &tiny_config(),
        );
        for r in results.iter().filter(|r| r.scheme != "baseline") {
            assert_eq!(r.stats.sdc_events, 0, "{}/{}", r.workload, r.scheme);
        }
    }

    #[test]
    fn inverted_write_check_reduces_sdcs_at_extreme_voltage() {
        // Far below the operating range, >= 3-fault lines can alias SECDED
        // into parity-consistent miscorrections (the paper's own coverage
        // analysis allows this: Figure 6 is < 100 % there). The inverted
        // check must still do no worse than plain Killi and keep the
        // residual rate tiny.
        let mut config = tiny_config();
        config.vdd = NormVdd(0.55);
        let results = run_matrix(
            &[Workload::Fft],
            &[
                SchemeSpec::Killi(16).config(),
                SchemeSpec::KilliInverted(16).config(),
            ],
            &config,
        );
        let sdc = |scheme: &str| {
            results
                .iter()
                .find(|r| r.scheme == scheme)
                .unwrap()
                .stats
                .sdc_events
        };
        assert!(
            sdc("killi-invchk-1:16") <= sdc("killi-1:16"),
            "inverted check made things worse"
        );
        assert!(sdc("killi-invchk-1:16") <= 2);
    }

    #[test]
    fn protected_schemes_never_run_faster_than_baseline_much() {
        let config = tiny_config();
        let results = run_matrix(
            &[Workload::Hacc],
            &[SchemeSpec::Killi(16).config()],
            &config,
        );
        let base = baseline_of(&results, "hacc");
        let killi = results.iter().find(|r| r.scheme == "killi-1:16").unwrap();
        let norm = killi.stats.normalized_time(&base.stats);
        assert!(norm >= 0.99, "norm = {norm}");
    }
}

//! The fault-model axis of the bench harness: thin re-exports of the
//! `killi-fault` registry plus the helpers every experiment shares, so
//! there is exactly one way to name a fault model outside `crates/fault`
//! — a [`FaultModelConfig`] resolved against the default registry.

use std::sync::Arc;

use killi_fault::cell_model::CellFailureModel;
pub use killi_fault::model::{
    default_registry as default_fault_registry, BuildError as FaultModelBuildError, FaultModel,
    FaultModelConfig, FaultModelRegistry, STUCK_AT,
};

/// Builds a config into a live model against the default registry.
pub fn build_fault_model(
    config: &FaultModelConfig,
) -> Result<Arc<dyn FaultModel>, FaultModelBuildError> {
    default_fault_registry().build(config)
}

/// The report label of a config (e.g. `stuck-at`,
/// `clustered:rows=4,corr=0.8`).
pub fn fault_model_label(config: &FaultModelConfig) -> Result<String, FaultModelBuildError> {
    default_fault_registry().label(config)
}

/// The default config: the paper's `stuck-at` model with no overrides.
pub fn stuck_at() -> FaultModelConfig {
    FaultModelConfig::default()
}

/// The cell-failure curve behind the registry's `stuck-at` model, for
/// analytic figures that integrate over the curve instead of drawing
/// fault maps.
pub fn stuck_at_cell_model() -> CellFailureModel {
    build_fault_model(&stuck_at())
        .expect("stuck-at always builds")
        .cell_model()
        .expect("stuck-at exposes its cell curve")
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stuck_at_label_is_the_gating_constant() {
        // Report/obs emission is gated on this exact label (the golden
        // sweep bytes predate the fault-model axis).
        assert_eq!(fault_model_label(&stuck_at()).unwrap(), STUCK_AT);
    }

    #[test]
    fn stuck_at_cell_model_matches_finfet14() {
        let a = stuck_at_cell_model();
        let b = CellFailureModel::finfet14();
        assert_eq!(a.anchors(), b.anchors());
        assert_eq!(a.sigma().to_bits(), b.sigma().to_bits());
    }
}

//! Plain-text report formatting shared by the experiment binaries.

use std::fmt::Write as _;
use std::path::Path;

/// A column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count mismatches the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table as CSV (quoting cells containing commas).
    pub fn to_csv(&self) -> String {
        let quote = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        let mut write_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| quote(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.header);
        for row in &self.rows {
            write_row(row);
        }
        out
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

/// Prints a report section and appends it to `results/<name>.txt` under the
/// workspace root (created as needed). IO errors are reported, not fatal —
/// the console output is the primary artifact.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if let Err(e) = std::fs::create_dir_all(&dir)
        .and_then(|()| std::fs::write(dir.join(format!("{name}.txt")), content))
    {
        eprintln!("warning: could not write results/{name}.txt: {e}");
    }
}

/// Writes a file verbatim into `results/` under the workspace root
/// (created as needed) without echoing it to stdout — used for
/// machine-readable artifacts such as the sweep engine's JSON reports.
/// IO errors are reported, not fatal.
pub fn emit_file(filename: &str, content: &str) {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if let Err(e) =
        std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(dir.join(filename), content))
    {
        eprintln!("warning: could not write results/{filename}: {e}");
    }
}

/// Formats a fraction as a percentage with the given decimals.
pub fn pct(v: f64, decimals: usize) -> String {
    format!("{:.decimals$}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer", "2.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        let width = lines[0].len();
        assert!(lines[2].len() <= width + 2);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        Table::new(vec!["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    fn csv_rendering_quotes_and_joins() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["plain", "1"]);
        t.row(vec!["with,comma", "quo\"te"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with,comma\",\"quo\"\"te\"");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234, 1), "12.3%");
        assert_eq!(pct(1.0, 0), "100%");
    }
}

//! Scheme factory shared by every experiment binary.
//!
//! Every scheme is built through the process-wide [`SchemeRegistry`]
//! ([`default_registry`]): the Killi variants declared by
//! `killi::registry::register_killi_schemes` plus the baselines from
//! `killi_baselines::register_baselines`. [`SchemeSpec`] survives as a
//! `Copy` convenience enum for the fixed experiment sets (Figure 4,
//! ablations, lowvmin); it lowers to a declarative [`SchemeConfig`] via
//! [`SchemeSpec::config`], so the registry remains the single point of
//! construction and label formatting.

use std::sync::OnceLock;

use killi::registry::{register_killi_schemes, SchemeRegistry};
use killi_baselines::register_baselines;
use killi_sim::protection::LineProtection;

pub use killi::registry::{BuildCtx, BuildError, CellSpan, LineRule, ParamValue, SchemeConfig};

/// The process-wide registry with every built-in scheme declared
/// (Killi variants + baselines).
pub fn default_registry() -> &'static SchemeRegistry {
    static REGISTRY: OnceLock<SchemeRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut registry = SchemeRegistry::new();
        register_killi_schemes(&mut registry);
        register_baselines(&mut registry);
        registry
    })
}

/// Builds a scheme from its declarative config via [`default_registry`].
pub fn build_scheme(
    config: &SchemeConfig,
    ctx: &BuildCtx,
) -> Result<Box<dyn LineProtection>, BuildError> {
    default_registry().build(config, ctx)
}

/// The display label of a declarative config via [`default_registry`].
pub fn scheme_label(config: &SchemeConfig) -> Result<String, BuildError> {
    default_registry().label(config)
}

/// The static line-admissibility rule of a declarative config via
/// [`default_registry`] (the Vmin campaign's binning predicate).
pub fn scheme_admissibility(config: &SchemeConfig) -> Result<LineRule, BuildError> {
    default_registry().admissibility(config)
}

/// Every protection configuration the experiments compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeSpec {
    /// Fault-free cache at nominal VDD.
    Baseline,
    /// DEC-TED per line (pre-characterized).
    Dected,
    /// FLAIR steady state: SECDED per line (pre-characterized).
    Flair,
    /// FLAIR with its online DMR/MBIST training phase (ablation).
    FlairOnline,
    /// MS-ECC (OLSC per line).
    MsEcc,
    /// Killi at an ECC-cache ratio of 1:N.
    Killi(usize),
    /// Killi with a §4.4 optimization disabled (ablations).
    KilliAblation(KilliAblation),
    /// Killi with the §5.2 DEC-TED upgrade enabled (ratio 1:N).
    KilliDected(usize),
    /// Killi with the §5.6.2 inverted-write check enabled (ratio 1:N).
    KilliInverted(usize),
    /// Killi with OLSC in its ECC cache (§5.5 low-Vmin variant, ratio 1:N).
    KilliOlsc(usize),
}

/// Which §4.4 optimization an ablation run disables (all at ratio 1:64).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KilliAblation {
    /// Plain LRU victim selection instead of `b'01 > b'00 > b'10`.
    NoVictimPriority,
    /// No classification on eviction.
    NoEvictionTraining,
    /// No coordinated ECC-cache promotion.
    NoPromotion,
}

impl SchemeSpec {
    /// The Figure 4/5 comparison set.
    pub fn figure4_set() -> Vec<SchemeSpec> {
        vec![
            SchemeSpec::Dected,
            SchemeSpec::Flair,
            SchemeSpec::MsEcc,
            SchemeSpec::Killi(256),
            SchemeSpec::Killi(128),
            SchemeSpec::Killi(64),
            SchemeSpec::Killi(32),
            SchemeSpec::Killi(16),
        ]
    }

    /// Lowers the spec to its declarative registry config.
    pub fn config(&self) -> SchemeConfig {
        let ratio =
            |name: &str, r: usize| SchemeConfig::new(name).with("ratio", ParamValue::U64(r as u64));
        match *self {
            SchemeSpec::Baseline => SchemeConfig::new("baseline"),
            SchemeSpec::Dected => SchemeConfig::new("dected"),
            SchemeSpec::Flair => SchemeConfig::new("flair"),
            SchemeSpec::FlairOnline => SchemeConfig::new("flair-online"),
            SchemeSpec::MsEcc => SchemeConfig::new("ms-ecc"),
            SchemeSpec::Killi(r) => ratio("killi", r),
            SchemeSpec::KilliAblation(a) => SchemeConfig::new(match a {
                KilliAblation::NoVictimPriority => "killi-no-victim-prio",
                KilliAblation::NoEvictionTraining => "killi-no-evict-train",
                KilliAblation::NoPromotion => "killi-no-promotion",
            }),
            SchemeSpec::KilliDected(r) => ratio("killi-dected", r),
            SchemeSpec::KilliInverted(r) => ratio("killi-invchk", r),
            SchemeSpec::KilliOlsc(r) => ratio("killi-olsc", r),
        }
    }

    /// Display label matching the paper's figures (registry-formatted).
    pub fn label(&self) -> String {
        scheme_label(&self.config()).expect("built-in spec is registered")
    }

    /// True when the scheme runs on the fault-free nominal-VDD map.
    pub fn is_baseline(&self) -> bool {
        matches!(self, SchemeSpec::Baseline)
    }

    /// Builds the protection scheme for the L2 described by `ctx`, with
    /// `ctx.sink` attached.
    ///
    /// # Panics
    ///
    /// Panics if the geometry cannot host the scheme; use [`build_scheme`]
    /// with [`SchemeSpec::config`] for a fallible build.
    pub fn build(&self, ctx: &BuildCtx) -> Box<dyn LineProtection> {
        match build_scheme(&self.config(), ctx) {
            Ok(scheme) => scheme,
            Err(e) => panic!("{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use killi_fault::map::FaultMap;
    use killi_obs::Sink;
    use killi_sim::cache::CacheGeometry;

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<String> = SchemeSpec::figure4_set()
            .iter()
            .map(SchemeSpec::label)
            .collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), SchemeSpec::figure4_set().len());
    }

    #[test]
    fn labels_match_the_paper_figures() {
        assert_eq!(SchemeSpec::Killi(64).label(), "killi-1:64");
        assert_eq!(SchemeSpec::KilliInverted(16).label(), "killi-invchk-1:16");
        assert_eq!(SchemeSpec::KilliDected(32).label(), "killi-dected-1:32");
        assert_eq!(SchemeSpec::KilliOlsc(8).label(), "killi-olsc-1:8");
        assert_eq!(
            SchemeSpec::KilliAblation(KilliAblation::NoPromotion).label(),
            "killi-no-promotion"
        );
        assert_eq!(SchemeSpec::FlairOnline.label(), "flair-online");
    }

    #[test]
    fn every_spec_builds() {
        let geometry = CacheGeometry {
            size_bytes: 1024 * 64,
            ways: 16,
            line_bytes: 64,
        };
        let ctx = BuildCtx::new(Arc::new(FaultMap::fault_free(geometry.lines())), geometry);
        for spec in [
            SchemeSpec::Baseline,
            SchemeSpec::Dected,
            SchemeSpec::Flair,
            SchemeSpec::FlairOnline,
            SchemeSpec::MsEcc,
            SchemeSpec::Killi(16),
            SchemeSpec::KilliAblation(KilliAblation::NoVictimPriority),
            SchemeSpec::KilliDected(16),
            SchemeSpec::KilliInverted(16),
            SchemeSpec::KilliOlsc(16),
        ] {
            let s = spec.build(&ctx);
            assert!(!s.name().is_empty(), "{spec:?}");
        }
    }

    #[test]
    fn every_registered_scheme_builds_from_defaults() {
        let geometry = CacheGeometry {
            size_bytes: 1024 * 64,
            ways: 16,
            line_bytes: 64,
        };
        let ctx = BuildCtx::new(Arc::new(FaultMap::fault_free(geometry.lines())), geometry);
        for name in default_registry().names() {
            let config = SchemeConfig::new(name);
            let scheme = build_scheme(&config, &ctx)
                .unwrap_or_else(|e| panic!("{name} default config must build: {e}"));
            assert!(!scheme.name().is_empty(), "{name}");
        }
    }

    #[test]
    fn build_wires_the_sink_through() {
        use killi_ecc::bits::Line512;

        let geometry = CacheGeometry {
            size_bytes: 1024 * 64,
            ways: 16,
            line_bytes: 64,
        };
        let sink = Sink::recording(64);
        let ctx = BuildCtx::new(Arc::new(FaultMap::fault_free(geometry.lines())), geometry)
            .with_sink(sink.clone());
        let mut killi = SchemeSpec::Killi(16).build(&ctx);
        let data = Line512::from_seed(1);
        killi.on_fill(0, &data);
        let mut stored = data;
        let _ = killi.on_read_hit(0, &mut stored);
        killi.on_evict(0, &stored);
        assert!(
            sink.events_emitted().unwrap_or(0) > 0,
            "scheme built via BuildCtx must emit into the provided sink"
        );
    }
}

//! Scheme factory shared by every experiment binary.

use std::sync::Arc;

use killi::scheme::{KilliConfig, KilliScheme};
use killi_baselines::flair_online::FlairOnline;
use killi_baselines::msecc::MsEcc;
use killi_baselines::per_line::PerLineEcc;
use killi_fault::map::FaultMap;
use killi_obs::Sink;
use killi_sim::cache::CacheGeometry;
use killi_sim::protection::{LineProtection, Unprotected};

/// Everything a scheme factory needs: the fault substrate, the cache shape
/// it protects, and the observability sink its events flow into.
///
/// Replaces the old positional `build(&map, lines, ways)` signature so new
/// wiring (like the sink) reaches every scheme without touching call sites
/// again.
#[derive(Debug, Clone)]
pub struct BuildCtx {
    /// Stuck-at fault population of the low-voltage array.
    pub fault_map: Arc<FaultMap>,
    /// Geometry of the L2 the scheme protects.
    pub geometry: CacheGeometry,
    /// Event sink handed to the scheme (defaults to the no-op sink).
    pub sink: Sink,
}

impl BuildCtx {
    /// A context with the no-op sink.
    pub fn new(fault_map: Arc<FaultMap>, geometry: CacheGeometry) -> Self {
        BuildCtx {
            fault_map,
            geometry,
            sink: Sink::none(),
        }
    }

    /// Replaces the sink.
    #[must_use]
    pub fn with_sink(mut self, sink: Sink) -> Self {
        self.sink = sink;
        self
    }
}

/// Every protection configuration the experiments compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeSpec {
    /// Fault-free cache at nominal VDD.
    Baseline,
    /// DEC-TED per line (pre-characterized).
    Dected,
    /// FLAIR steady state: SECDED per line (pre-characterized).
    Flair,
    /// FLAIR with its online DMR/MBIST training phase (ablation).
    FlairOnline,
    /// MS-ECC (OLSC per line).
    MsEcc,
    /// Killi at an ECC-cache ratio of 1:N.
    Killi(usize),
    /// Killi with a §4.4 optimization disabled (ablations).
    KilliAblation(KilliAblation),
    /// Killi with the §5.2 DEC-TED upgrade enabled (ratio 1:N).
    KilliDected(usize),
    /// Killi with the §5.6.2 inverted-write check enabled (ratio 1:N).
    KilliInverted(usize),
    /// Killi with OLSC in its ECC cache (§5.5 low-Vmin variant, ratio 1:N).
    KilliOlsc(usize),
}

/// Which §4.4 optimization an ablation run disables (all at ratio 1:64).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KilliAblation {
    /// Plain LRU victim selection instead of `b'01 > b'00 > b'10`.
    NoVictimPriority,
    /// No classification on eviction.
    NoEvictionTraining,
    /// No coordinated ECC-cache promotion.
    NoPromotion,
}

impl SchemeSpec {
    /// The Figure 4/5 comparison set.
    pub fn figure4_set() -> Vec<SchemeSpec> {
        vec![
            SchemeSpec::Dected,
            SchemeSpec::Flair,
            SchemeSpec::MsEcc,
            SchemeSpec::Killi(256),
            SchemeSpec::Killi(128),
            SchemeSpec::Killi(64),
            SchemeSpec::Killi(32),
            SchemeSpec::Killi(16),
        ]
    }

    /// Display label matching the paper's figures.
    pub fn label(&self) -> String {
        match self {
            SchemeSpec::Baseline => "baseline".into(),
            SchemeSpec::Dected => "dected".into(),
            SchemeSpec::Flair => "flair".into(),
            SchemeSpec::FlairOnline => "flair-online".into(),
            SchemeSpec::MsEcc => "ms-ecc".into(),
            SchemeSpec::Killi(r) => format!("killi-1:{r}"),
            SchemeSpec::KilliAblation(a) => match a {
                KilliAblation::NoVictimPriority => "killi-no-victim-prio".into(),
                KilliAblation::NoEvictionTraining => "killi-no-evict-train".into(),
                KilliAblation::NoPromotion => "killi-no-promotion".into(),
            },
            SchemeSpec::KilliDected(r) => format!("killi-dected-1:{r}"),
            SchemeSpec::KilliInverted(r) => format!("killi-invchk-1:{r}"),
            SchemeSpec::KilliOlsc(r) => format!("killi-olsc-1:{r}"),
        }
    }

    /// True when the scheme runs on the fault-free nominal-VDD map.
    pub fn is_baseline(&self) -> bool {
        matches!(self, SchemeSpec::Baseline)
    }

    /// Builds the protection scheme for the L2 described by `ctx`, with
    /// `ctx.sink` attached.
    pub fn build(&self, ctx: &BuildCtx) -> Box<dyn LineProtection> {
        let map = &ctx.fault_map;
        let lines = ctx.geometry.lines();
        let ways = ctx.geometry.ways;
        let mut scheme: Box<dyn LineProtection> = match *self {
            SchemeSpec::Baseline => Box::new(Unprotected::new()),
            SchemeSpec::Dected => Box::new(PerLineEcc::dected_per_line(Arc::clone(map), lines)),
            SchemeSpec::Flair => Box::new(PerLineEcc::flair(Arc::clone(map), lines)),
            SchemeSpec::FlairOnline => Box::new(FlairOnline::new(
                Arc::clone(map),
                lines,
                ways,
                (lines as u64) * 4, // one MBIST round per 4x cache sweeps
            )),
            SchemeSpec::MsEcc => Box::new(MsEcc::new(Arc::clone(map), lines)),
            SchemeSpec::Killi(ratio) => Box::new(KilliScheme::new(
                KilliConfig::with_ratio(ratio),
                Arc::clone(map),
                lines,
                ways,
            )),
            SchemeSpec::KilliAblation(which) => {
                let mut config = KilliConfig::with_ratio(64);
                match which {
                    KilliAblation::NoVictimPriority => config.victim_priority = false,
                    KilliAblation::NoEvictionTraining => config.eviction_training = false,
                    KilliAblation::NoPromotion => config.coordinated_promotion = false,
                }
                Box::new(KilliScheme::new(config, Arc::clone(map), lines, ways))
            }
            SchemeSpec::KilliDected(ratio) => {
                let mut config = KilliConfig::with_ratio(ratio);
                config.dected_upgrade = true;
                Box::new(KilliScheme::new(config, Arc::clone(map), lines, ways))
            }
            SchemeSpec::KilliInverted(ratio) => {
                let mut config = KilliConfig::with_ratio(ratio);
                config.inverted_write_check = true;
                Box::new(KilliScheme::new(config, Arc::clone(map), lines, ways))
            }
            SchemeSpec::KilliOlsc(ratio) => Box::new(KilliScheme::new(
                KilliConfig::with_olsc(ratio),
                Arc::clone(map),
                lines,
                ways,
            )),
        };
        scheme.attach_sink(ctx.sink.clone());
        scheme
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<String> = SchemeSpec::figure4_set()
            .iter()
            .map(SchemeSpec::label)
            .collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), SchemeSpec::figure4_set().len());
    }

    #[test]
    fn every_spec_builds() {
        let geometry = CacheGeometry {
            size_bytes: 1024 * 64,
            ways: 16,
            line_bytes: 64,
        };
        let ctx = BuildCtx::new(Arc::new(FaultMap::fault_free(geometry.lines())), geometry);
        for spec in [
            SchemeSpec::Baseline,
            SchemeSpec::Dected,
            SchemeSpec::Flair,
            SchemeSpec::FlairOnline,
            SchemeSpec::MsEcc,
            SchemeSpec::Killi(16),
            SchemeSpec::KilliAblation(KilliAblation::NoVictimPriority),
            SchemeSpec::KilliDected(16),
            SchemeSpec::KilliInverted(16),
            SchemeSpec::KilliOlsc(16),
        ] {
            let s = spec.build(&ctx);
            assert!(!s.name().is_empty(), "{spec:?}");
        }
    }

    #[test]
    fn build_wires_the_sink_through() {
        use killi_ecc::bits::Line512;

        let geometry = CacheGeometry {
            size_bytes: 1024 * 64,
            ways: 16,
            line_bytes: 64,
        };
        let sink = Sink::recording(64);
        let ctx = BuildCtx::new(Arc::new(FaultMap::fault_free(geometry.lines())), geometry)
            .with_sink(sink.clone());
        let mut killi = SchemeSpec::Killi(16).build(&ctx);
        let data = Line512::from_seed(1);
        killi.on_fill(0, &data);
        let mut stored = data;
        let _ = killi.on_read_hit(0, &mut stored);
        killi.on_evict(0, &stored);
        assert!(
            sink.events_emitted().unwrap_or(0) > 0,
            "scheme built via BuildCtx must emit into the provided sink"
        );
    }
}

//! Monte-Carlo validation of the §5.3 analytic coverage model: inject real
//! fault patterns, run the *actual* codecs and Killi's *actual* Table 2
//! classifier, and measure how often each technique correctly determines
//! whether a line has a multi-bit failure.
//!
//! This closes the loop between the paper's probability algebra (Figure 6)
//! and the bit-level implementation: the two must agree.

use killi::classify::classify_unknown;
use killi::dfh::Dfh;
use killi_ecc::bch::{dected, DectedDecode};
use killi_ecc::bits::{Line512, LINE_BITS};
use killi_ecc::parity::{seg16, SegObservation};
use killi_ecc::secded::{secded, SecdedDecode};
use killi_fault::cell_model::{CellFailureModel, FailureKind, FreqGhz, NormVdd};
use killi_fault::rng::{hash3, to_unit, StreamRng};

/// Empirical coverage fractions measured over sampled lines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmpiricalCoverage {
    /// Lines sampled.
    pub samples: usize,
    /// SECDED alone classified the line correctly.
    pub secded: f64,
    /// DEC-TED alone classified the line correctly.
    pub dected: f64,
    /// Killi's parity + SECDED (the Table 2 b'01 classifier).
    pub killi: f64,
}

/// Draws a line's fault count/positions from the mixture model and checks
/// each technique's classification against the truth.
///
/// "Correct" follows §5.3: the technique must determine whether the line
/// has fewer than two faults (enabled) or not (disabled); for enabled
/// lines, a claimed correction must also point at the real fault.
pub fn measure(
    model: &CellFailureModel,
    vdd: NormVdd,
    samples: usize,
    seed: u64,
) -> EmpiricalCoverage {
    let mut rng = StreamRng::new(seed);
    let mut secded_ok = 0usize;
    let mut dected_ok = 0usize;
    let mut killi_ok = 0usize;
    let secded_codec = secded();
    let dected_codec = dected();

    for line_idx in 0..samples {
        // Per-line failure rate from the lognormal mixture (same draw
        // structure as FaultMap::build).
        let z = standard_normal_from(hash3(seed, line_idx as u64, 0xC0FFEE));
        let p = model.p_cell_for_line(vdd, FreqGhz::PEAK, FailureKind::Combined, z);

        // The written data and the fault pattern (unmasked: the §5.3
        // analysis considers observable errors).
        let data = Line512::from_seed(rng.next_u64());
        let mut corrupted = data;
        let mut faults = 0usize;
        for bit in 0..LINE_BITS {
            if rng.next_unit() < p {
                corrupted.flip_bit(bit);
                faults += 1;
            }
        }

        let secded_code = secded_codec.encode(&data);
        let secded_verdict = secded_codec.decode(&corrupted, secded_code);
        let secded_correct = match faults {
            0 => secded_verdict == SecdedDecode::Clean,
            1 => {
                matches!(secded_verdict, SecdedDecode::CorrectedData { bit } if correction_is_right(&data, &corrupted, bit))
            }
            _ => secded_verdict.is_uncorrectable(),
        };
        if secded_correct {
            secded_ok += 1;
        }

        let dected_code = dected_codec.encode(&data);
        let dected_verdict = dected_codec.decode(&corrupted, dected_code);
        let dected_correct = match faults {
            0 => dected_verdict == DectedDecode::Clean,
            1 | 2 => {
                let mut fixed = corrupted;
                dected_codec.apply(&mut fixed, dected_verdict) && fixed == data
            }
            _ => dected_verdict.is_uncorrectable(),
        };
        if dected_correct {
            dected_ok += 1;
        }

        // Killi's b'01 classifier: 16-segment parity + SECDED observables
        // through the real Table 2 logic.
        let stored_p16 = seg16(&data);
        let seg = SegObservation::observe16(stored_p16, seg16(&corrupted));
        let obs = secded_codec.observe(&corrupted, secded_code);
        let verdict = classify_unknown(seg, obs, secded_codec.interpret(obs));
        let next = verdict.next_dfh();
        let killi_correct = match faults {
            0 => next == Dfh::Stable0,
            1 => next == Dfh::Stable1,
            _ => next == Dfh::Disabled,
        };
        if killi_correct {
            killi_ok += 1;
        }
    }
    EmpiricalCoverage {
        samples,
        secded: secded_ok as f64 / samples as f64,
        dected: dected_ok as f64 / samples as f64,
        killi: killi_ok as f64 / samples as f64,
    }
}

/// True when flipping `bit` in the corrupted line restores the original.
fn correction_is_right(data: &Line512, corrupted: &Line512, bit: usize) -> bool {
    let mut fixed = *corrupted;
    fixed.flip_bit(bit);
    fixed == *data
}

fn standard_normal_from(h: u64) -> f64 {
    // Box-Muller from two derived uniforms (cheap and adequate here).
    let u1 = to_unit(hash3(h, 1, 2)).max(1e-12);
    let u2 = to_unit(hash3(h, 3, 4));
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use killi_model::coverage::coverage_at;

    #[test]
    fn empirical_matches_analytic_ordering() {
        let model = crate::fault_models::stuck_at_cell_model();
        let vdd = NormVdd(0.575);
        let emp = measure(&model, vdd, 20_000, 7);
        // Killi beats its SECDED component, as the algebra demands.
        assert!(emp.killi > emp.secded, "{emp:?}");
        assert!(emp.dected > emp.secded, "{emp:?}");
    }

    #[test]
    fn empirical_close_to_analytic_at_operating_point() {
        let model = crate::fault_models::stuck_at_cell_model();
        let vdd = NormVdd(0.6);
        let emp = measure(&model, vdd, 30_000, 11);
        let ana = coverage_at(&model, vdd);
        // The analytic model makes simplifications (SECDED "fails" at >= 3
        // errors, etc.); agreement within a couple of points validates both.
        assert!(
            (emp.killi - ana.killi).abs() < 0.02,
            "{} vs {}",
            emp.killi,
            ana.killi
        );
        assert!(
            (emp.secded - ana.secded).abs() < 0.03,
            "{} vs {}",
            emp.secded,
            ana.secded
        );
    }

    #[test]
    fn perfect_at_nominal_voltage() {
        let model = crate::fault_models::stuck_at_cell_model();
        let emp = measure(&model, NormVdd::NOMINAL, 2_000, 3);
        assert_eq!(emp.killi, 1.0);
        assert_eq!(emp.secded, 1.0);
        assert_eq!(emp.dected, 1.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let model = crate::fault_models::stuck_at_cell_model();
        let a = measure(&model, NormVdd(0.58), 5_000, 9);
        let b = measure(&model, NormVdd(0.58), 5_000, 9);
        assert_eq!(a, b);
    }
}

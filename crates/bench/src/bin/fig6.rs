//! Regenerates Figure 6.
fn main() {
    killi_bench::report::emit("fig6", &killi_bench::experiments::fig6());
}

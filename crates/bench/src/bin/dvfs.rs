//! Power-state-transition experiment: what does entering a low-voltage
//! state actually cost with Killi, versus the MBIST pass every prior
//! scheme needs?
//!
//! This is the paper's core motivation ("additional MBIST steps are time
//! consuming, resulting in extended boot time or delayed power state
//! transitions") quantified: we measure Killi's online training overhead
//! as the cycle difference between a cold-DFH run and a warm rerun of the
//! identical kernel, replicated over seed-derived fault maps and traces
//! (mean ± 95% CI), and compare it against a march-test MBIST estimate.

use std::sync::Arc;

use killi::scheme::{KilliConfig, KilliScheme};
use killi_bench::exec::{par_map, Progress};
use killi_bench::fault_models::{build_fault_model, stuck_at};
use killi_bench::report::{emit, Table};
use killi_bench::sweep::Accumulator;
use killi_fault::cell_model::{FreqGhz, NormVdd};
use killi_fault::rng::derive_seed;
use killi_sim::gpu::{GpuConfig, GpuSim};
use killi_workloads::{TraceParams, Workload};

const WORKLOADS: [Workload; 3] = [Workload::Xsbench, Workload::Fft, Workload::Hacc];

fn main() {
    let config = GpuConfig::default();
    let fault_model = build_fault_model(&stuck_at()).expect("stuck-at always builds");
    let ops = killi_bench::ops_from_env();
    let root_seed = 42u64;
    let replications = std::env::var("KILLI_REPLICATIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4u64);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    // One job per (workload, replicate): each measures cold vs warm on
    // its own derived fault map and trace.
    let jobs: Vec<(usize, u64)> = (0..WORKLOADS.len())
        .flat_map(|w| (0..replications).map(move |rep| (w, rep)))
        .collect();
    let progress = Progress::new("dvfs", jobs.len(), 3);
    let runs: Vec<(u64, u64)> = par_map(threads, &jobs, Some(&progress), |_, &(w, rep)| {
        let map = Arc::new(fault_model.map(
            config.l2.lines(),
            NormVdd::LV_0_625,
            FreqGhz::PEAK,
            derive_seed(root_seed, "die", &[rep]),
        ));
        let killi = KilliScheme::new(
            KilliConfig::with_ratio(64),
            Arc::clone(&map),
            config.l2.lines(),
            config.l2.ways,
        );
        let workload_id = Workload::ALL
            .iter()
            .position(|&x| x == WORKLOADS[w])
            .expect("workload in ALL") as u64;
        let trace_seed = derive_seed(root_seed, "trace", &[workload_id, rep]);
        let mut sim = GpuSim::new(config, map, Box::new(killi), trace_seed);
        let params = TraceParams {
            cus: config.cus,
            ops_per_cu: ops,
            seed: trace_seed,
            l2_bytes: config.l2.size_bytes,
        };
        // Cold: the DFH bits start in b'01 everywhere — this IS the power
        // state transition under Killi. No separate characterization phase
        // exists; the kernel simply runs.
        let cold = sim.run(WORKLOADS[w].trace(&params));
        // Warm: same kernel with the fault population already learned.
        sim.reset_counters();
        let warm = sim.run(WORKLOADS[w].trace(&params));
        (cold.cycles, warm.cycles)
    });

    let mut t = Table::new(vec![
        "workload",
        "cold cycles (mean)",
        "warm cycles (mean)",
        "training overhead % (95% CI)",
    ]);
    let mut out = String::from("Power-state-transition cost: Killi online training vs MBIST\n\n");
    for (w, workload) in WORKLOADS.iter().enumerate() {
        let mut cold_acc = Accumulator::default();
        let mut warm_acc = Accumulator::default();
        let mut overhead_acc = Accumulator::default();
        for rep in 0..replications as usize {
            let (cold, warm) = runs[w * replications as usize + rep];
            cold_acc.add(cold as f64);
            warm_acc.add(warm as f64);
            let overhead = cold.saturating_sub(warm);
            overhead_acc.add(100.0 * overhead as f64 / warm.max(1) as f64);
        }
        t.row(vec![
            workload.name().to_string(),
            format!("{:.0}", cold_acc.mean()),
            format!("{:.0}", warm_acc.mean()),
            overhead_acc.fmt_ci(3),
        ]);
    }
    out.push_str(&format!(
        "{replications} replicate fault maps per workload (root seed {root_seed}):\n\n"
    ));
    out.push_str(&t.render());

    // MBIST estimate for the same 2 MB array at 1 GHz: a March C- class
    // test performs ~10 read/write sweeps of every line; with 16 banks and
    // ~4 cycles per line operation that is the *floor* — real LV
    // characterization adds per-pattern retention pauses (milliseconds
    // each) and must rerun at EVERY low-voltage operating point.
    let lines = 32768u64;
    let march_ops = 10 * lines * 4 / 16;
    out.push_str(&format!(
        "\nMBIST march-test floor for the same L2: ~{march_ops} cycles per \
         voltage point\n(plus millisecond-scale retention pauses, i.e. \
         >= 1,000,000 cycles at 1 GHz,\nre-run at every LV operating point; \
         Killi pays its training once, overlapped\nwith useful execution, \
         and needs no dedicated test mode at all).\n",
    ));
    emit("dvfs", &out);
}

//! Power-state-transition experiment: what does entering a low-voltage
//! state actually cost with Killi, versus the MBIST pass every prior
//! scheme needs?
//!
//! This is the paper's core motivation ("additional MBIST steps are time
//! consuming, resulting in extended boot time or delayed power state
//! transitions") quantified: we measure Killi's online training overhead
//! as the cycle difference between a cold-DFH run and a warm rerun of the
//! identical kernel, and compare it against a march-test MBIST estimate.

use std::sync::Arc;

use killi::scheme::{KilliConfig, KilliScheme};
use killi_bench::report::{emit, Table};
use killi_fault::cell_model::{CellFailureModel, FreqGhz, NormVdd};
use killi_fault::map::FaultMap;
use killi_sim::gpu::{GpuConfig, GpuSim};
use killi_workloads::{TraceParams, Workload};

fn main() {
    let config = GpuConfig::default();
    let model = CellFailureModel::finfet14();
    let ops = killi_bench::ops_from_env();
    let mut t = Table::new(vec![
        "workload",
        "cold cycles",
        "warm cycles",
        "training overhead",
        "overhead %",
    ]);
    let mut out = String::from(
        "Power-state-transition cost: Killi online training vs MBIST\n\n",
    );
    for w in [Workload::Xsbench, Workload::Fft, Workload::Hacc] {
        let map = Arc::new(FaultMap::build(
            config.l2.lines(),
            &model,
            NormVdd::LV_0_625,
            FreqGhz::PEAK,
            42,
        ));
        let killi = KilliScheme::new(
            KilliConfig::with_ratio(64),
            Arc::clone(&map),
            config.l2.lines(),
            config.l2.ways,
        );
        let mut sim = GpuSim::new(config, map, Box::new(killi), 42);
        let params = TraceParams {
            cus: config.cus,
            ops_per_cu: ops,
            seed: 42,
            l2_bytes: config.l2.size_bytes,
        };
        // Cold: the DFH bits start in b'01 everywhere — this IS the power
        // state transition under Killi. No separate characterization phase
        // exists; the kernel simply runs.
        let cold = sim.run(w.trace(&params));
        // Warm: same kernel with the fault population already learned.
        sim.reset_counters();
        let warm = sim.run(w.trace(&params));
        let overhead = cold.cycles.saturating_sub(warm.cycles);
        t.row(vec![
            w.name().to_string(),
            cold.cycles.to_string(),
            warm.cycles.to_string(),
            overhead.to_string(),
            format!("{:.3}%", 100.0 * overhead as f64 / warm.cycles as f64),
        ]);
    }
    out.push_str(&t.render());

    // MBIST estimate for the same 2 MB array at 1 GHz: a March C- class
    // test performs ~10 read/write sweeps of every line; with 16 banks and
    // ~4 cycles per line operation that is the *floor* — real LV
    // characterization adds per-pattern retention pauses (milliseconds
    // each) and must rerun at EVERY low-voltage operating point.
    let lines = 32768u64;
    let march_ops = 10 * lines * 4 / 16;
    out.push_str(&format!(
        "\nMBIST march-test floor for the same L2: ~{march_ops} cycles per \
         voltage point\n(plus millisecond-scale retention pauses, i.e. \
         >= 1,000,000 cycles at 1 GHz,\nre-run at every LV operating point; \
         Killi pays its training once, overlapped\nwith useful execution, \
         and needs no dedicated test mode at all).\n",
    ));
    emit("dvfs", &out);
}

//! Runs every experiment of the paper and writes `results/*.txt`.
use killi_bench::experiments as ex;
use killi_bench::report::emit;
use killi_bench::runner::MatrixConfig;

fn main() {
    let started = std::time::Instant::now();
    emit("fig1", &ex::fig1());
    emit("fig2", &ex::fig2(42));
    emit("fig6", &ex::fig6());
    emit("table4", &ex::table4());
    emit("table5", &ex::table5());
    emit("table7", &ex::table7());

    let config = MatrixConfig::paper(killi_bench::ops_from_env(), 42);
    eprintln!(
        "running the {}x{} simulation matrix ({} ops/CU, {} threads)...",
        10, 9, config.ops_per_cu, config.threads
    );
    let results = ex::perf_matrix(&config);
    emit("fig4", &ex::fig4(&results));
    emit("fig5", &ex::fig5(&results));
    emit("table6", &ex::table6(&results));

    eprintln!("running ablations...");
    emit("ablation", &ex::ablations(&config));

    eprintln!("running the section 5.5 low-Vmin comparison...");
    emit("lowvmin", &ex::lowvmin(&config));

    for extra in ["dvfs", "writeback", "yield", "eccsweep"] {
        eprintln!("running the {extra} experiment...");
        let status =
            std::process::Command::new(std::env::current_exe().unwrap().with_file_name(extra))
                .status();
        if status.is_err() {
            eprintln!("note: run `cargo run --release -p killi-bench --bin {extra}` separately");
        }
    }
    eprintln!("done in {:.1}s", started.elapsed().as_secs_f64());
}

//! Runs the ablation study (§4.4 optimizations, §5.2/§5.6.2 extensions,
//! FLAIR online training).
use killi_bench::experiments::ablations;
use killi_bench::runner::MatrixConfig;

fn main() {
    let config = MatrixConfig::paper(killi_bench::ops_from_env(), 42);
    killi_bench::report::emit("ablation", &ablations(&config));
}

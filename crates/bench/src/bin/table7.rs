//! Regenerates Table 7.
fn main() {
    killi_bench::report::emit("table7", &killi_bench::experiments::table7());
}

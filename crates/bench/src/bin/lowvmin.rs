//! Regenerates the §5.5 low-Vmin comparison (Killi-with-OLSC vs MS-ECC).
use killi_bench::experiments::lowvmin;
use killi_bench::runner::MatrixConfig;

fn main() {
    let config = MatrixConfig::paper(killi_bench::ops_from_env(), 42);
    killi_bench::report::emit("lowvmin", &lowvmin(&config));
}

//! Regenerates the §5.5 low-Vmin comparison (Killi-with-OLSC vs MS-ECC)
//! on the Monte-Carlo sweep engine: each operating point runs over
//! replicated fault maps, so the norm-time/MPKI numbers carry 95%
//! confidence intervals instead of being single-seed draws. The paired
//! JSON reports land in `results/BENCH_lowvmin.json`.

use killi_bench::report::{emit, emit_file};
use killi_bench::schemes::SchemeSpec;
use killi_bench::sweep::{json_array, run_sweep, SweepConfig, SweepReport};
use killi_sim::gpu::GpuConfig;
use killi_workloads::Workload;

fn main() {
    let ops = killi_bench::ops_from_env();
    let replications = std::env::var("KILLI_REPLICATIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let mut out = String::from(
        "Section 5.5: Killi with OLSC vs MS-ECC below 0.625 x VDD\n\
         (paper: same capacity and performance at 17% / 65% of the area)\n\n",
    );
    let mut reports: Vec<SweepReport> = Vec::new();
    // The paper sizes the OLSC ECC cache 1:8 at 0.600 x VDD and 1:2 at
    // 0.575 x VDD, so each operating point is its own sweep.
    for (vdd, ratio) in [(0.600, 8usize), (0.575, 2)] {
        let config = SweepConfig {
            vdds: vec![vdd],
            schemes: vec![
                SchemeSpec::MsEcc.config(),
                SchemeSpec::KilliOlsc(ratio).config(),
            ],
            workloads: vec![Workload::Xsbench, Workload::Pennant],
            gpu: GpuConfig::default(),
            progress_every: 8,
            ..SweepConfig::paper(ops, 42, replications)
        };
        let report = run_sweep(&config);
        out.push_str(&format!(
            "VDD = {vdd} (Killi-OLSC at 1:{ratio}, {replications} replicate maps, \
             mean +- 95% CI):\n{}\n",
            report.summary_table().render()
        ));
        reports.push(report);
    }
    emit("lowvmin", &out);
    emit_file("BENCH_lowvmin.json", &json_array(&reports));
}

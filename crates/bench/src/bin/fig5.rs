//! Regenerates Figure 5 (runs the full simulation matrix).
use killi_bench::experiments::{fig5, perf_matrix};
use killi_bench::runner::MatrixConfig;

fn main() {
    let config = MatrixConfig::paper(killi_bench::ops_from_env(), 42);
    let results = perf_matrix(&config);
    killi_bench::report::emit("fig5", &fig5(&results));
}

//! Regenerates Figure 2.
fn main() {
    killi_bench::report::emit("fig2", &killi_bench::experiments::fig2(42));
}

//! ECC-cache design-space sweep: ratio x associativity.
//!
//! Table 3 fixes the ECC cache at 4 ways; this sweep shows why that is a
//! reasonable choice — low associativity suffers conflict displacement of
//! live protections, while 8 ways buys little once the coordinated
//! LRU/promotion policy (§4.4) is in place.

use std::sync::Arc;

use killi::ecc_cache::EccCacheConfig;
use killi::scheme::{KilliConfig, KilliScheme};
use killi_bench::fault_models::{build_fault_model, stuck_at};
use killi_bench::report::{emit, Table};
use killi_fault::cell_model::{FreqGhz, NormVdd};
use killi_fault::map::FaultMap;
use killi_sim::gpu::{GpuConfig, GpuSim};
use killi_workloads::{TraceParams, Workload};

fn main() {
    let config = GpuConfig::default();
    let fault_model = build_fault_model(&stuck_at()).expect("stuck-at always builds");
    let ops = killi_bench::ops_from_env();
    let map = Arc::new(fault_model.map(config.l2.lines(), NormVdd::LV_0_625, FreqGhz::PEAK, 42));
    let params = TraceParams {
        cus: config.cus,
        ops_per_cu: ops,
        seed: 42,
        l2_bytes: config.l2.size_bytes,
    };
    let baseline = {
        let free = Arc::new(FaultMap::fault_free(config.l2.lines()));
        let killi = KilliScheme::new(
            KilliConfig::with_ratio(64),
            Arc::clone(&free),
            config.l2.lines(),
            config.l2.ways,
        );
        let mut sim = GpuSim::new(config, free, Box::new(killi), 42);
        sim.run(Workload::Xsbench.trace(&params))
    };

    let mut t = Table::new(vec!["ratio", "ways", "norm.time", "mpki", "ecc evictions"]);
    for ratio in [256usize, 64, 16] {
        for ways in [2usize, 4, 8] {
            let killi = KilliScheme::new(
                KilliConfig {
                    ecc_cache: EccCacheConfig { ratio, ways },
                    ..KilliConfig::with_ratio(ratio)
                },
                Arc::clone(&map),
                config.l2.lines(),
                config.l2.ways,
            );
            let mut sim = GpuSim::new(config, Arc::clone(&map), Box::new(killi), 42);
            let stats = sim.run(Workload::Xsbench.trace(&params));
            let evictions = sim.l2().protection().protection_stats().ecc_cache_evictions;
            t.row(vec![
                format!("1:{ratio}"),
                ways.to_string(),
                format!("{:.4}", stats.cycles as f64 / baseline.cycles as f64),
                format!("{:.2}", stats.mpki()),
                evictions.to_string(),
            ]);
        }
    }
    emit(
        "eccsweep",
        &format!(
            "ECC-cache design space on xsbench at 0.625 x VDD\n\
             (Table 3 fixes 4 ways; this sweep justifies it)\n\n{}",
            t.render()
        ),
    );
}

//! Regenerates Table 6 (runs the full simulation matrix).
use killi_bench::experiments::{perf_matrix, table6};
use killi_bench::runner::MatrixConfig;

fn main() {
    let config = MatrixConfig::paper(killi_bench::ops_from_env(), 42);
    let results = perf_matrix(&config);
    killi_bench::report::emit("table6", &table6(&results));
}

//! Per-die Vmin and fleet yield: how many chips can actually run at each
//! low-voltage point, per protection strength?
//!
//! Circuit-level LV techniques (§2.1) need post-silicon tuning because
//! failure curves vary die to die; Killi needs none — every die discovers
//! its own population at runtime. This experiment samples replicated die
//! populations with lognormal rate spread (seeds derived from one root,
//! like the sweep engine) and reports the yield curve per scheme strength
//! (1 = SECDED/Killi, 2 = DECTED, 11 = MS-ECC/Killi-OLSC) as
//! mean ± 95% CI over the replicates.

use killi_bench::exec::{par_map, Progress};
use killi_bench::fault_models::stuck_at_cell_model;
use killi_bench::report::{emit, Table};
use killi_bench::sweep::Accumulator;
use killi_fault::cell_model::NormVdd;
use killi_model::vmin::yield_samples;

const VDDS: [f64; 8] = [0.66, 0.65, 0.64, 0.625, 0.61, 0.60, 0.59, 0.575];
const STRENGTHS: [u64; 3] = [1, 2, 11];

fn main() {
    let base = stuck_at_cell_model();
    let die_sigma = 0.5;
    let dies = 200;
    let replications = 8;
    let root_seed = 42;
    let target = 0.98; // the paper tolerates ~1.1% disabled lines at 0.625 x VDD

    // One job per (voltage, strength): each draws `replications`
    // independent die populations and folds them into an accumulator.
    let jobs: Vec<(f64, u64)> = VDDS
        .iter()
        .flat_map(|&v| STRENGTHS.iter().map(move |&t| (v, t)))
        .collect();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let progress = Progress::new("yield", jobs.len(), 6);
    let cells: Vec<Accumulator> = par_map(threads, &jobs, Some(&progress), |_, &(v, t)| {
        let mut acc = Accumulator::default();
        for y in yield_samples(
            &base,
            die_sigma,
            root_seed,
            replications,
            dies,
            NormVdd(v),
            target,
            t,
        ) {
            acc.add(y * 100.0);
        }
        acc
    });

    let mut t = Table::new(vec![
        "vdd",
        "yield t=1 (Killi/SECDED)",
        "yield t=2 (DECTED)",
        "yield t=11 (MS-ECC / Killi-OLSC)",
    ]);
    for (i, &v) in VDDS.iter().enumerate() {
        let cell = |s: usize| cells[i * STRENGTHS.len() + s].fmt_ci(1);
        t.row(vec![format!("{v}"), cell(0), cell(1), cell(2)]);
    }
    emit(
        "yield",
        &format!(
            "Per-die Vmin / fleet yield ({replications} replicated populations x \
             {dies} dies,\nlognormal die spread sigma={die_sigma}, capacity target \
             {target}): % of dies whose cache\nkeeps >= 98% of lines usable at each \
             voltage, by correction strength\n(mean +- 95% CI over replicate \
             populations, root seed {root_seed}).\n\n{}",
            t.render()
        ),
    );
}

//! Per-die Vmin and fleet yield: how many chips can actually run at each
//! low-voltage point, per protection strength?
//!
//! Circuit-level LV techniques (§2.1) need post-silicon tuning because
//! failure curves vary die to die; Killi needs none — every die discovers
//! its own population at runtime. This experiment samples a die population
//! with lognormal rate spread and reports the yield curve per scheme
//! strength (1 = SECDED/Killi, 2 = DECTED, 11 = MS-ECC/Killi-OLSC).

use killi_bench::report::{emit, pct, Table};
use killi_fault::cell_model::{CellFailureModel, NormVdd};
use killi_model::vmin::yield_at;

fn main() {
    let base = CellFailureModel::finfet14();
    let die_sigma = 0.5;
    let dies = 500;
    let target = 0.98; // the paper tolerates ~1.1% disabled lines at 0.625 x VDD
    let mut t = Table::new(vec![
        "vdd",
        "yield t=1 (Killi/SECDED)",
        "yield t=2 (DECTED)",
        "yield t=11 (MS-ECC / Killi-OLSC)",
    ]);
    for v in [0.66, 0.65, 0.64, 0.625, 0.61, 0.60, 0.59, 0.575] {
        t.row(vec![
            format!("{v}"),
            pct(yield_at(&base, die_sigma, 42, dies, NormVdd(v), target, 1), 1),
            pct(yield_at(&base, die_sigma, 42, dies, NormVdd(v), target, 2), 1),
            pct(yield_at(&base, die_sigma, 42, dies, NormVdd(v), target, 11), 1),
        ]);
    }
    emit(
        "yield",
        &format!(
            "Per-die Vmin / fleet yield ({dies} dies, lognormal die spread \
             sigma={die_sigma},\ncapacity target {target}): fraction of dies \
             whose cache keeps >= 98% of lines\nusable at each voltage, by \
             correction strength.\n\n{}",
            t.render()
        ),
    );
}

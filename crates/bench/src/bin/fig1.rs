//! Regenerates Figure 1.
fn main() {
    killi_bench::report::emit("fig1", &killi_bench::experiments::fig1());
}

//! Regenerates Table 5.
fn main() {
    killi_bench::report::emit("table5", &killi_bench::experiments::table5());
}

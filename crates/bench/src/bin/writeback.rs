//! §5.6.1 write-back experiment: dirty-data survival under low voltage.
//!
//! In write-back mode a detected-uncorrectable error on a dirty line is
//! unrecoverable (memory is stale). The paper proposes escalating dirty
//! lines' protection — SECDED for dirty b'00, DEC-TED for dirty b'10 — to
//! match a safe-voltage SECDED cache. This experiment counts actual
//! data-loss events for plain Killi, Killi with §5.6.1 escalation, and a
//! FLAIR-style per-line SECDED cache, all in write-back mode.

use std::sync::Arc;

use killi::scheme::{KilliConfig, KilliScheme};
use killi_baselines::per_line::PerLineEcc;
use killi_bench::fault_models::{build_fault_model, stuck_at};
use killi_bench::report::{emit, Table};
use killi_fault::cell_model::{FreqGhz, NormVdd};
use killi_sim::cache::WritePolicy;
use killi_sim::gpu::{GpuConfig, GpuSim};
use killi_sim::protection::LineProtection;
use killi_workloads::{TraceParams, Workload};

fn main() {
    let config = GpuConfig {
        write_policy: WritePolicy::WriteBack,
        ..GpuConfig::default()
    };
    let fault_model = build_fault_model(&stuck_at()).expect("stuck-at always builds");
    let ops = killi_bench::ops_from_env();
    let mut t = Table::new(vec![
        "workload",
        "scheme",
        "writebacks",
        "dirty data loss",
        "SDC",
    ]);
    for w in [Workload::Fft, Workload::Lulesh] {
        let map =
            Arc::new(fault_model.map(config.l2.lines(), NormVdd::LV_0_625, FreqGhz::PEAK, 42));
        let schemes: Vec<(&str, Box<dyn LineProtection>)> = vec![
            (
                "killi (plain)",
                Box::new(KilliScheme::new(
                    KilliConfig::with_ratio(64),
                    Arc::clone(&map),
                    config.l2.lines(),
                    config.l2.ways,
                )),
            ),
            (
                "killi + 5.6.1",
                Box::new(KilliScheme::new(
                    KilliConfig {
                        write_back_protection: true,
                        ..KilliConfig::with_ratio(64)
                    },
                    Arc::clone(&map),
                    config.l2.lines(),
                    config.l2.ways,
                )),
            ),
            (
                "flair (secded/line)",
                Box::new(PerLineEcc::flair(Arc::clone(&map), config.l2.lines())),
            ),
        ];
        for (name, protection) in schemes {
            let mut sim = GpuSim::new(config, Arc::clone(&map), protection, 42);
            let params = TraceParams {
                cus: config.cus,
                ops_per_cu: ops,
                seed: 42,
                l2_bytes: config.l2.size_bytes,
            };
            let stats = sim.run(w.trace(&params));
            t.row(vec![
                w.name().to_string(),
                name.to_string(),
                stats.writebacks.to_string(),
                stats.dirty_data_loss.to_string(),
                stats.sdc_events.to_string(),
            ]);
        }
    }
    emit(
        "writeback",
        &format!(
            "Section 5.6.1: dirty-data protection in write-back mode at \
             0.625 x VDD\n\n{}",
            t.render()
        ),
    );
}

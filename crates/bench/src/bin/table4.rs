//! Regenerates Table 4.
fn main() {
    killi_bench::report::emit("table4", &killi_bench::experiments::table4());
}

//! Regenerates Figure 4 (runs the full simulation matrix).
use killi_bench::experiments::{fig4, perf_matrix};
use killi_bench::runner::MatrixConfig;

fn main() {
    let config = MatrixConfig::paper(killi_bench::ops_from_env(), 42);
    let results = perf_matrix(&config);
    killi_bench::report::emit("fig4", &fig4(&results));
}

//! Parallel Monte-Carlo sweep engine with statistical replication.
//!
//! The paper's headline numbers (Figures 4/5, Table 6, the 0.625 x VDD
//! story) are statements about *distributions* of fault maps, but a
//! single-seed run reports one draw. This engine fans the full
//! (replicate x NormVdd x scheme x workload) cross-product out over the
//! shared work-stealing pool ([`crate::exec`]) and aggregates every
//! [`SimStats`] metric into mean / stddev / 95% confidence interval per
//! (vdd, scheme, workload) cell.
//!
//! Determinism contract (regression-tested): all seeds derive from the
//! root via [`derive_seed`] — replicate `r` draws die
//! `derive_seed(root, "die", [r])` (the *same* die at every voltage, so
//! the per-replicate fault populations stay monotonically nested across
//! the grid) and trace `derive_seed(root, "trace", [workload, r])` (the
//! same traffic for a scheme and its baseline). The parallel phase
//! writes integer counters into per-job slots; the floating-point
//! aggregation then folds replicates in a fixed order on one thread.
//! The emitted JSON is therefore byte-identical for any thread count.

use std::sync::Arc;
use std::time::Instant;

use killi_fault::cell_model::{FreqGhz, NormVdd};
use killi_fault::map::FaultMap;
use killi_fault::model::ReplicateDie;
use killi_fault::rng::derive_seed;
use killi_sim::gpu::GpuConfig;
use killi_sim::stats::SimStats;
use killi_sim::trace::{Trace, TraceOp};
use killi_workloads::{TraceParams, Workload};

use killi_obs::MetricSet;

use crate::exec::{par_map, Progress};
use crate::fault_models::{
    build_fault_model, default_fault_registry, fault_model_label, FaultModelBuildError,
    FaultModelConfig, STUCK_AT,
};
use crate::report::Table;
use crate::runner::{run_cell, run_cell_traced, ObsConfig};
use crate::schemes::{
    build_scheme, default_registry, scheme_label, BuildCtx, BuildError, SchemeConfig, SchemeSpec,
};

/// Why a [`SweepConfig`] failed validation: either the scheme axis or the
/// fault-model axis rejected its config. Both sides carry the typed error
/// of their own registry.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepConfigError {
    /// A protection-scheme config failed to resolve or build.
    Scheme(BuildError),
    /// The fault-model config failed to resolve or build.
    FaultModel(FaultModelBuildError),
    /// The voltage grid is degenerate (see [`validate_voltage_grid`]).
    VoltageGrid {
        /// What is wrong with the grid.
        reason: String,
    },
}

impl std::fmt::Display for SweepConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepConfigError::Scheme(e) => write!(f, "{e}"),
            SweepConfigError::FaultModel(e) => write!(f, "{e}"),
            SweepConfigError::VoltageGrid { reason } => {
                write!(f, "invalid voltage grid: {reason}")
            }
        }
    }
}

/// Checks that a voltage grid is usable as a sweep/search axis: at least
/// two points, every point finite and inside `(0, 1.5]` (normalized VDD),
/// and strictly monotonic in either direction. Anything else — a
/// single-point "grid", duplicates, an unsorted zig-zag — produces
/// degenerate sweeps and breaks the Vmin binary search's bisection
/// invariant, so it is rejected up front with the offending reason.
pub fn validate_voltage_grid(vdds: &[f64]) -> Result<(), String> {
    if vdds.len() < 2 {
        return Err(format!(
            "need at least 2 grid points, got {} (a Vmin search cannot bisect a point)",
            vdds.len()
        ));
    }
    for &v in vdds {
        if !v.is_finite() || v <= 0.0 || v > 1.5 {
            return Err(format!("grid point {v:?} outside (0, 1.5]"));
        }
    }
    let ascending = vdds.windows(2).all(|w| w[0] < w[1]);
    let descending = vdds.windows(2).all(|w| w[0] > w[1]);
    if !ascending && !descending {
        return Err(format!(
            "grid {vdds:?} is not strictly monotonic (sort it and drop duplicates)"
        ));
    }
    Ok(())
}

impl std::error::Error for SweepConfigError {}

impl From<BuildError> for SweepConfigError {
    fn from(e: BuildError) -> Self {
        SweepConfigError::Scheme(e)
    }
}

impl From<FaultModelBuildError> for SweepConfigError {
    fn from(e: FaultModelBuildError) -> Self {
        SweepConfigError::FaultModel(e)
    }
}

/// Streaming mean/variance accumulator (Welford's algorithm): numerically
/// stable and single-pass, so aggregation never materializes sample
/// vectors.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Accumulator {
    /// Folds one sample in.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Samples folded so far.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 with no samples).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample standard deviation (0 with fewer than 2 samples).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Half-width of the 95% confidence interval on the mean (normal
    /// approximation: `1.96 * stddev / sqrt(n)`).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.stddev() / (self.n as f64).sqrt()
        }
    }

    /// The 95% confidence interval `(lo, hi)` on the mean.
    pub fn ci95(&self) -> (f64, f64) {
        let h = self.ci95_half_width();
        (self.mean - h, self.mean + h)
    }

    /// Formats `mean +- ci95` for text tables.
    pub fn fmt_ci(&self, decimals: usize) -> String {
        format!(
            "{:.d$} +- {:.d$}",
            self.mean(),
            self.ci95_half_width(),
            d = decimals
        )
    }
}

/// One simulation's scalar outcomes, in the fixed metric order of
/// [`METRIC_NAMES`].
#[derive(Debug, Clone, Copy)]
struct Sample {
    stats: SimStats,
    disabled_lines: u64,
    norm_time: f64,
}

/// Metric names, in emission order. `norm_time` is runtime normalized to
/// the same replicate's fault-free baseline (the pairing removes
/// trace-seed variance from the ratio).
pub const METRIC_NAMES: [&str; 9] = [
    "norm_time",
    "cycles",
    "mpki",
    "l2_hit_rate",
    "l2_error_misses",
    "ecc_induced_invalidations",
    "sdc_events",
    "corrections",
    "disabled_lines",
];

fn metric_values(s: &Sample) -> [f64; 9] {
    [
        s.norm_time,
        s.stats.cycles as f64,
        s.stats.mpki(),
        s.stats.l2_hit_rate(),
        s.stats.l2_error_misses as f64,
        s.stats.ecc_induced_invalidations as f64,
        s.stats.sdc_events as f64,
        s.stats.corrections as f64,
        s.disabled_lines as f64,
    ]
}

/// Full cross-product configuration of one sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Root seed every die and trace seed derives from.
    pub root_seed: u64,
    /// Monte-Carlo replicates per cell.
    pub replications: usize,
    /// Low-voltage operating points.
    pub vdds: Vec<f64>,
    /// Declarative protection-scheme configs under test (resolved and
    /// built through the scheme registry; baselines run implicitly).
    pub schemes: Vec<SchemeConfig>,
    /// Declarative fault-model config every protected cell draws its maps
    /// from (resolved through the fault-model registry; the default is
    /// the paper's `stuck-at` model).
    pub fault_model: FaultModelConfig,
    /// Workloads.
    pub workloads: Vec<Workload>,
    /// Operations per CU stream.
    pub ops_per_cu: usize,
    /// GPU hardware configuration.
    pub gpu: GpuConfig,
    /// Worker threads.
    pub threads: usize,
    /// Progress cadence (print every N completed jobs; 0 = silent).
    pub progress_every: usize,
    /// Per-job event-trace ring capacity. `None` (the default setups)
    /// runs every simulation with the no-op sink.
    pub trace_capacity: Option<usize>,
}

impl SweepConfig {
    /// The paper's operating grid around 0.625 x VDD with Killi 1:64.
    pub fn paper(ops_per_cu: usize, root_seed: u64, replications: usize) -> Self {
        SweepConfig {
            root_seed,
            replications,
            vdds: vec![0.65, 0.625, 0.6],
            schemes: vec![SchemeSpec::Killi(64).config()],
            fault_model: FaultModelConfig::default(),
            workloads: vec![Workload::Xsbench, Workload::Hacc],
            ops_per_cu,
            gpu: GpuConfig::default(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            progress_every: 0,
            trace_capacity: None,
        }
    }

    /// Simulations the sweep will run (baselines + cells).
    pub fn job_count(&self) -> usize {
        self.replications
            * (self.workloads.len() + self.vdds.len() * self.schemes.len() * self.workloads.len())
    }

    /// Validates every scheme config against the registry *and* the
    /// sweep's cache geometry (via a fault-free test build), plus the
    /// fault-model config against its registry (via a test build), so a
    /// bad `--scheme` or `--fault-model` fails before the fan-out phase
    /// instead of mid-run.
    pub fn validate(&self) -> Result<(), SweepConfigError> {
        let ctx = BuildCtx::new(
            Arc::new(FaultMap::fault_free(self.gpu.l2.lines())),
            self.gpu.l2,
        );
        for scheme in &self.schemes {
            build_scheme(scheme, &ctx)?;
        }
        build_fault_model(&self.fault_model)?;
        validate_voltage_grid(&self.vdds)
            .map_err(|reason| SweepConfigError::VoltageGrid { reason })?;
        Ok(())
    }

    /// Consumes the config into a [`ValidatedSweepConfig`]: validates it
    /// (including the geometry test-builds of [`SweepConfig::validate`])
    /// and canonicalizes every scheme and fault-model spelling against
    /// the default registries, so downstream consumers — the sweep
    /// service's cache in particular — can key on
    /// [`ValidatedSweepConfig::canonical_json`].
    pub fn validated(mut self) -> Result<ValidatedSweepConfig, SweepConfigError> {
        self.validate()?;
        let registry = default_registry();
        for scheme in &mut self.schemes {
            *scheme = registry.canonicalize(scheme)?;
        }
        self.fault_model = default_fault_registry().canonicalize(&self.fault_model)?;
        // A sweep always runs at least one replicate (`run_sweep` clamps),
        // so spell the clamp here too: replications 0 and 1 are the same
        // sweep and must share a cache key.
        self.replications = self.replications.max(1);
        Ok(ValidatedSweepConfig { config: self })
    }
}

/// A [`SweepConfig`] that passed [`SweepConfig::validated`]: every scheme
/// resolves against the registry and is stored in canonical form. The
/// only way to obtain one is through validation, so APIs taking
/// `&ValidatedSweepConfig` ([`run_sweep_validated`]) can skip re-checking.
#[derive(Debug, Clone)]
pub struct ValidatedSweepConfig {
    config: SweepConfig,
}

/// Stable spelling of a write policy for canonical config JSON.
fn write_policy_name(policy: killi_sim::cache::WritePolicy) -> &'static str {
    use killi_sim::cache::WritePolicy;
    match policy {
        WritePolicy::BypassInvalidate => "bypass_invalidate",
        WritePolicy::WriteThroughUpdate => "write_through_update",
        WritePolicy::WriteBack => "write_back",
    }
}

impl ValidatedSweepConfig {
    /// The validated config.
    pub fn config(&self) -> &SweepConfig {
        &self.config
    }

    /// Deterministic JSON over exactly the fields that shape the report
    /// bytes (schema `killi-sweep-config/v1`). Execution knobs —
    /// `threads`, `progress_every`, `trace_capacity` — are excluded:
    /// the report is byte-identical across them (regression-tested), so
    /// configs differing only there must share a cache key. Schemes and
    /// the fault model are already canonical, so any spelling of the
    /// same sweep serializes to identical bytes — and different fault
    /// models never share a key.
    pub fn canonical_json(&self) -> String {
        let c = &self.config;
        let mut out = String::from("{\"schema\":\"killi-sweep-config/v1\"");
        out.push_str(&format!(",\"root_seed\":{}", c.root_seed));
        out.push_str(&format!(",\"replications\":{}", c.replications));
        out.push_str(&format!(",\"ops_per_cu\":{}", c.ops_per_cu));
        let list = |items: Vec<String>| items.join(",");
        out.push_str(&format!(
            ",\"vdds\":[{}]",
            list(c.vdds.iter().map(|&v| json_f64(v)).collect())
        ));
        out.push_str(&format!(
            ",\"schemes\":[{}]",
            list(c.schemes.iter().map(SchemeConfig::to_json).collect())
        ));
        out.push_str(&format!(",\"fault_model\":{}", c.fault_model.to_json()));
        out.push_str(&format!(
            ",\"workloads\":[{}]",
            list(c.workloads.iter().map(|w| json_str(w.name())).collect())
        ));
        let geometry = |g: &killi_sim::cache::CacheGeometry| {
            format!(
                "{{\"size_bytes\":{},\"ways\":{},\"line_bytes\":{}}}",
                g.size_bytes, g.ways, g.line_bytes
            )
        };
        out.push_str(&format!(
            ",\"gpu\":{{\"cus\":{},\"l1\":{},\"l1_latency\":{},\"l2\":{},\"l2_banks\":{},\
             \"l2_tag_latency\":{},\"l2_data_latency\":{},\"mem_latency\":{},\
             \"max_outstanding\":{},\"write_policy\":{}}}",
            c.gpu.cus,
            geometry(&c.gpu.l1),
            c.gpu.l1_latency,
            geometry(&c.gpu.l2),
            c.gpu.l2_banks,
            c.gpu.l2_tag_latency,
            c.gpu.l2_data_latency,
            c.gpu.mem_latency,
            c.gpu.max_outstanding,
            json_str(write_policy_name(c.gpu.write_policy)),
        ));
        out.push('}');
        out
    }
}

/// Runs a pre-validated sweep. Identical to [`run_sweep`] on the inner
/// config; the type is the proof that validation already happened, which
/// is what lets the sweep service validate once at submission and
/// execute later on a worker without re-checking.
pub fn run_sweep_validated(config: &ValidatedSweepConfig) -> SweepReport {
    run_sweep(&config.config)
}

/// Aggregated statistics of one (vdd, scheme, workload) cell. Baseline
/// runs appear as cells with scheme `"baseline"` at the nominal voltage
/// `1.0`.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Operating point (1.0 for the fault-free baseline).
    pub vdd: f64,
    /// Scheme label.
    pub scheme: String,
    /// Workload name.
    pub workload: &'static str,
    /// Per-metric accumulators, indexed like [`METRIC_NAMES`].
    pub metrics: [Accumulator; 9],
    /// Observability counters summed over the cell's replicates.
    pub obs: MetricSet,
}

impl SweepCell {
    /// The accumulator of a named metric.
    ///
    /// # Panics
    ///
    /// Panics on an unknown metric name.
    pub fn metric(&self, name: &str) -> &Accumulator {
        let i = METRIC_NAMES
            .iter()
            .position(|&m| m == name)
            .unwrap_or_else(|| panic!("unknown metric '{name}'"));
        &self.metrics[i]
    }
}

/// The aggregated result of one sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Root seed of the run.
    pub root_seed: u64,
    /// Replicates per cell.
    pub replications: usize,
    /// Operations per CU stream.
    pub ops_per_cu: usize,
    /// The voltage grid.
    pub vdds: Vec<f64>,
    /// The fault model's registry label (`stuck-at` for the default).
    pub fault_model: String,
    /// Scheme labels.
    pub schemes: Vec<String>,
    /// Workload names.
    pub workloads: Vec<&'static str>,
    /// Baseline cells first, then vdd-major / scheme / workload order.
    pub cells: Vec<SweepCell>,
    /// Concatenated per-job JSON-lines traces (`killi-obs/v1`), in
    /// deterministic job order; `None` when tracing was off. Kept out of
    /// [`SweepReport::to_json`] — it is a separate artifact.
    pub trace: Option<String>,
    /// Wall-clock seconds of the parallel phase. Deliberately *not*
    /// serialized to JSON — the report must be byte-identical across
    /// thread counts and machines.
    pub wall_secs: f64,
}

/// One simulation job of the fan-out phase.
#[derive(Debug, Clone, Copy)]
enum Job {
    Baseline {
        w: usize,
        rep: usize,
    },
    Cell {
        v: usize,
        s: usize,
        w: usize,
        rep: usize,
    },
}

/// Which artifact strategy a sweep run uses (see [`run_sweep`] and
/// [`run_sweep_reference`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArtifactMode {
    /// Fault maps memoized per (replicate, vdd) through a per-die sparse
    /// candidate table; trace op buffers generated once per
    /// (workload, replicate) and shared across scheme cells via `Arc`.
    Shared,
    /// Every job rebuilds its fault map with the dense per-cell
    /// construction and regenerates its trace from scratch.
    PerJob,
}

/// Runs the sweep with shared artifacts: one memoized
/// [`killi_fault::model::ReplicateDie`] per replicate (hashed once at the
/// grid's lowest voltage, when the fault model offers the factorization)
/// derives the fault map of every (voltage, replicate) pair, and each
/// (workload, replicate) op buffer is generated once and replayed by
/// every scheme cell. The
/// report and optional event trace are byte-identical to
/// [`run_sweep_reference`] at any thread count (regression-tested).
pub fn run_sweep(config: &SweepConfig) -> SweepReport {
    run_sweep_mode(config, ArtifactMode::Shared)
}

/// The unshared reference path: every job pays the full dense fault-map
/// construction and trace generation. Kept as the byte-identity oracle
/// for [`run_sweep`] and as the "before" side of the perf benchmark
/// suite (`killi bench`).
pub fn run_sweep_reference(config: &SweepConfig) -> SweepReport {
    run_sweep_mode(config, ArtifactMode::PerJob)
}

fn run_sweep_mode(config: &SweepConfig, mode: ArtifactMode) -> SweepReport {
    let started = Instant::now();
    let lines = config.gpu.l2.lines();
    let reps = config.replications.max(1);
    // Registry-formatted labels and the live fault model, resolved once
    // up front. Callers should run `SweepConfig::validate` first; an
    // unknown scheme or fault model here is a programming error.
    let fault_model = build_fault_model(&config.fault_model).unwrap_or_else(|e| panic!("{e}"));
    let fm_label = fault_model_label(&config.fault_model).unwrap_or_else(|e| panic!("{e}"));
    let labels: Vec<String> = config
        .schemes
        .iter()
        .map(|s| scheme_label(s).unwrap_or_else(|e| panic!("{e}")))
        .collect();
    let baseline_scheme = SchemeConfig::new("baseline");
    let die_seed = |rep: usize| derive_seed(config.root_seed, "die", &[rep as u64]);

    let trace_seed = |w: usize, rep: usize| {
        // Key traces by the workload's stable identity, not its position
        // in this sweep's subset, so partial sweeps replay full-sweep
        // traffic exactly.
        let workload_id = Workload::ALL
            .iter()
            .position(|&x| x == config.workloads[w])
            .expect("workload in ALL") as u64;
        derive_seed(config.root_seed, "trace", &[workload_id, rep as u64])
    };
    let trace_params = |w: usize, rep: usize| TraceParams {
        cus: config.gpu.cus,
        ops_per_cu: config.ops_per_cu,
        seed: trace_seed(w, rep),
        l2_bytes: config.gpu.l2.size_bytes,
    };

    // Phase 1: shared artifacts. maps[v * reps + rep]: one die per
    // replicate (the *same* die across the voltage grid), hashed once per
    // die at the grid's lowest voltage and filtered per operating point.
    // traces[w * reps + rep]: one op buffer per (workload, replicate),
    // replayed by the baseline and every scheme cell.
    type SharedOps = Arc<Vec<Vec<TraceOp>>>;
    let (maps, traces): (Vec<Arc<FaultMap>>, Vec<SharedOps>) = match mode {
        ArtifactMode::Shared => {
            let maps = if config.vdds.is_empty() {
                Vec::new()
            } else {
                // Models that factorize across the voltage grid (e.g.
                // stuck-at's sparse DieFaultTable) expose a per-replicate
                // die hashed once at the grid's lowest voltage; the rest
                // fall back to one direct map build per (vdd, replicate).
                let cap_vdd = config.vdds.iter().cloned().fold(f64::INFINITY, f64::min);
                let rep_keys: Vec<usize> = (0..reps).collect();
                let dies: Vec<Option<Arc<dyn ReplicateDie>>> =
                    par_map(config.threads, &rep_keys, None, |_, &rep| {
                        fault_model
                            .die(lines, NormVdd(cap_vdd), FreqGhz::PEAK, die_seed(rep))
                            .map(Arc::from)
                    });
                let map_keys: Vec<(usize, usize)> = (0..config.vdds.len())
                    .flat_map(|v| (0..reps).map(move |rep| (v, rep)))
                    .collect();
                par_map(config.threads, &map_keys, None, |_, &(v, rep)| {
                    let vdd = NormVdd(config.vdds[v]);
                    Arc::new(match &dies[rep] {
                        Some(die) => die.map_at(vdd),
                        None => fault_model.map(lines, vdd, FreqGhz::PEAK, die_seed(rep)),
                    })
                })
            };
            let trace_keys: Vec<(usize, usize)> = (0..config.workloads.len())
                .flat_map(|w| (0..reps).map(move |rep| (w, rep)))
                .collect();
            let traces = par_map(config.threads, &trace_keys, None, |_, &(w, rep)| {
                Arc::new(config.workloads[w].ops(&trace_params(w, rep)))
            });
            (maps, traces)
        }
        ArtifactMode::PerJob => (Vec::new(), Vec::new()),
    };
    let free_map = Arc::new(FaultMap::fault_free(lines));

    // Phase 2: simulations. Baselines first (workload-major), then cells
    // (vdd-major, scheme, workload), replicates innermost.
    let mut jobs: Vec<Job> = Vec::with_capacity(config.job_count());
    for w in 0..config.workloads.len() {
        for rep in 0..reps {
            jobs.push(Job::Baseline { w, rep });
        }
    }
    for v in 0..config.vdds.len() {
        for s in 0..config.schemes.len() {
            for w in 0..config.workloads.len() {
                for rep in 0..reps {
                    jobs.push(Job::Cell { v, s, w, rep });
                }
            }
        }
    }

    let progress = Progress::new("sweep", jobs.len(), config.progress_every);
    let results = par_map(config.threads, &jobs, Some(&progress), |_, &job| {
        let (w, rep, scheme, vdd) = match job {
            Job::Baseline { w, rep } => (w, rep, &baseline_scheme, 1.0),
            Job::Cell { v, s, w, rep } => (w, rep, &config.schemes[s], config.vdds[v]),
        };
        let workload = config.workloads[w];
        let mut context = vec![("vdd", format!("{vdd:?}")), ("rep", rep.to_string())];
        if fm_label != STUCK_AT {
            // The default model stays silent so pre-existing golden
            // traces keep their bytes; anything else announces itself.
            context.push(("fault_model", fm_label.clone()));
        }
        let obs = ObsConfig {
            trace_capacity: config.trace_capacity,
            context,
        };
        match mode {
            ArtifactMode::Shared => {
                let map = match job {
                    Job::Baseline { .. } => &free_map,
                    Job::Cell { v, .. } => &maps[v * reps + rep],
                };
                run_cell_traced(
                    workload,
                    scheme,
                    &config.gpu,
                    Trace::from_shared(Arc::clone(&traces[w * reps + rep])),
                    map,
                    trace_seed(w, rep),
                    &obs,
                )
            }
            ArtifactMode::PerJob => {
                let map = match job {
                    Job::Baseline { .. } => Arc::new(FaultMap::fault_free(lines)),
                    Job::Cell { v, .. } => Arc::new(fault_model.map_reference(
                        lines,
                        NormVdd(config.vdds[v]),
                        FreqGhz::PEAK,
                        die_seed(rep),
                    )),
                };
                run_cell(
                    workload,
                    scheme,
                    &config.gpu,
                    config.ops_per_cu,
                    &map,
                    trace_seed(w, rep),
                    &obs,
                )
            }
        }
    });

    // Phase 3: deterministic sequential aggregation. Baseline cycles per
    // (workload, replicate) pair the normalized-time ratios.
    let baseline_cycles = |w: usize, rep: usize| results[w * reps + rep].stats.cycles;
    let fold = |cell: &mut SweepCell, job_index: usize, w: usize, rep: usize| {
        let r = &results[job_index];
        let sample = Sample {
            stats: r.stats,
            disabled_lines: r.disabled_lines,
            norm_time: r.stats.cycles as f64 / baseline_cycles(w, rep).max(1) as f64,
        };
        for (acc, value) in cell.metrics.iter_mut().zip(metric_values(&sample)) {
            acc.add(value);
        }
        cell.obs.merge(&r.metrics);
    };

    let mut cells = Vec::new();
    for (w, workload) in config.workloads.iter().enumerate() {
        let mut cell = SweepCell {
            vdd: 1.0,
            scheme: "baseline".to_string(),
            workload: workload.name(),
            metrics: Default::default(),
            obs: MetricSet::new(),
        };
        for rep in 0..reps {
            fold(&mut cell, w * reps + rep, w, rep);
        }
        cells.push(cell);
    }
    let cells_offset = config.workloads.len() * reps;
    let mut job_index = cells_offset;
    for vdd in &config.vdds {
        for label in &labels {
            for (w, workload) in config.workloads.iter().enumerate() {
                let mut cell = SweepCell {
                    vdd: *vdd,
                    scheme: label.clone(),
                    workload: workload.name(),
                    metrics: Default::default(),
                    obs: MetricSet::new(),
                };
                for rep in 0..reps {
                    fold(&mut cell, job_index, w, rep);
                    job_index += 1;
                }
                cells.push(cell);
            }
        }
    }

    // Traces concatenate in job order, which is itself deterministic, so
    // the artifact is byte-identical for any thread count.
    let trace = config.trace_capacity.map(|_| {
        results
            .iter()
            .filter_map(|r| r.trace.as_deref())
            .collect::<String>()
    });

    SweepReport {
        root_seed: config.root_seed,
        replications: reps,
        ops_per_cu: config.ops_per_cu,
        vdds: config.vdds.clone(),
        fault_model: fm_label,
        schemes: labels,
        workloads: config.workloads.iter().map(|w| w.name()).collect(),
        cells,
        trace,
        wall_secs: started.elapsed().as_secs_f64(),
    }
}

/// Canonical JSON float: shortest round-trip representation (stable for
/// identical bits), `null` for non-finite values.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl SweepReport {
    /// Serializes the report as deterministic, pretty-printed JSON
    /// (schema `killi-sweep/v2`; v2 adds the per-cell `"obs"` counter
    /// block). Wall-clock timing is excluded so the bytes depend only on
    /// (config, root seed) — never on thread count.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"killi-sweep/v2\",\n");
        out.push_str(&format!("  \"root_seed\": {},\n", self.root_seed));
        out.push_str(&format!("  \"replications\": {},\n", self.replications));
        out.push_str(&format!("  \"ops_per_cu\": {},\n", self.ops_per_cu));
        if self.fault_model != STUCK_AT {
            // Gated so pre-fault-model-axis golden reports keep their
            // bytes: the default model is implied, anything else is
            // spelled out.
            out.push_str(&format!(
                "  \"fault_model\": {},\n",
                json_str(&self.fault_model)
            ));
        }
        let list = |items: Vec<String>| items.join(", ");
        out.push_str(&format!(
            "  \"vdds\": [{}],\n",
            list(self.vdds.iter().map(|&v| json_f64(v)).collect())
        ));
        out.push_str(&format!(
            "  \"schemes\": [{}],\n",
            list(self.schemes.iter().map(|s| json_str(s)).collect())
        ));
        out.push_str(&format!(
            "  \"workloads\": [{}],\n",
            list(self.workloads.iter().map(|w| json_str(w)).collect())
        ));
        out.push_str("  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"vdd\": {},\n", json_f64(cell.vdd)));
            out.push_str(&format!("      \"scheme\": {},\n", json_str(&cell.scheme)));
            out.push_str(&format!(
                "      \"workload\": {},\n",
                json_str(cell.workload)
            ));
            out.push_str(&format!("      \"n\": {},\n", cell.metrics[0].n()));
            out.push_str("      \"metrics\": {\n");
            for (m, (name, acc)) in METRIC_NAMES.iter().zip(cell.metrics.iter()).enumerate() {
                let (lo, hi) = acc.ci95();
                out.push_str(&format!(
                    "        {}: {{\"mean\": {}, \"stddev\": {}, \"ci95\": [{}, {}]}}{}\n",
                    json_str(name),
                    json_f64(acc.mean()),
                    json_f64(acc.stddev()),
                    json_f64(lo),
                    json_f64(hi),
                    if m + 1 < METRIC_NAMES.len() { "," } else { "" }
                ));
            }
            out.push_str("      },\n");
            out.push_str(&format!("      \"obs\": {}\n", cell.obs.to_json()));
            out.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.cells.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }

    /// Renders the headline metrics as an aligned text table.
    pub fn summary_table(&self) -> Table {
        let mut t = Table::new(vec![
            "vdd",
            "scheme",
            "workload",
            "norm.time (95% CI)",
            "mpki",
            "sdc",
            "disabled",
        ]);
        for cell in &self.cells {
            t.row(vec![
                format!("{}", cell.vdd),
                cell.scheme.clone(),
                cell.workload.to_string(),
                cell.metric("norm_time").fmt_ci(4),
                format!("{:.2}", cell.metric("mpki").mean()),
                format!("{:.2}", cell.metric("sdc_events").mean()),
                format!("{:.1}", cell.metric("disabled_lines").mean()),
            ]);
        }
        t
    }

    /// A cell by key (baselines: scheme `"baseline"`, vdd `1.0`).
    pub fn cell(&self, vdd: f64, scheme: &str, workload: &str) -> Option<&SweepCell> {
        self.cells
            .iter()
            .find(|c| c.vdd == vdd && c.scheme == scheme && c.workload == workload)
    }
}

/// Serializes several reports as one deterministic JSON array (used by
/// experiments that sweep disjoint operating points, e.g. §5.5 lowvmin).
pub fn json_array(reports: &[SweepReport]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in reports.iter().enumerate() {
        let body = r.to_json();
        // Indent the nested object by two spaces.
        for line in body.lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        if i + 1 < reports.len() {
            let len = out.trim_end().len();
            out.truncate(len);
            out.push_str(",\n");
        }
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use killi_sim::cache::CacheGeometry;

    fn tiny_sweep() -> SweepConfig {
        SweepConfig {
            root_seed: 7,
            replications: 2,
            vdds: vec![0.625, 0.6],
            schemes: vec![SchemeSpec::Killi(16).config()],
            fault_model: FaultModelConfig::default(),
            workloads: vec![Workload::Fft, Workload::Hacc],
            ops_per_cu: 1500,
            gpu: GpuConfig {
                cus: 2,
                l2: CacheGeometry {
                    size_bytes: 64 * 1024,
                    ways: 8,
                    line_bytes: 64,
                },
                l2_banks: 4,
                mem_latency: 100,
                ..GpuConfig::default()
            },
            threads: 2,
            progress_every: 0,
            trace_capacity: None,
        }
    }

    #[test]
    fn validate_rejects_unknown_schemes_upfront() {
        let mut config = tiny_sweep();
        assert!(config.validate().is_ok());
        config.schemes.push(SchemeConfig::new("no-such-scheme"));
        match config.validate() {
            Err(SweepConfigError::Scheme(BuildError::UnknownScheme { name })) => {
                assert_eq!(name, "no-such-scheme")
            }
            other => panic!("expected UnknownScheme, got {other:?}"),
        }
    }

    #[test]
    fn validate_rejects_unknown_fault_models_upfront() {
        let mut config = tiny_sweep();
        config.fault_model = FaultModelConfig::new("no-such-model");
        match config.validate() {
            Err(SweepConfigError::FaultModel(FaultModelBuildError::UnknownModel { name })) => {
                assert_eq!(name, "no-such-model")
            }
            other => panic!("expected UnknownModel, got {other:?}"),
        }
    }

    #[test]
    fn accumulator_matches_two_pass_statistics() {
        let xs = [3.0, 5.0, 7.0, 11.0, 13.0];
        let mut acc = Accumulator::default();
        for &x in &xs {
            acc.add(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((acc.mean() - mean).abs() < 1e-12);
        assert!((acc.stddev() - var.sqrt()).abs() < 1e-12);
        let (lo, hi) = acc.ci95();
        assert!(lo < mean && mean < hi);
        assert!((hi - mean - 1.96 * var.sqrt() / (5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn accumulator_degenerate_cases() {
        let mut acc = Accumulator::default();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.stddev(), 0.0);
        acc.add(4.0);
        assert_eq!(acc.mean(), 4.0);
        assert_eq!(acc.stddev(), 0.0);
        assert_eq!(acc.ci95(), (4.0, 4.0));
    }

    #[test]
    fn sweep_produces_every_cell_with_full_replication() {
        let config = tiny_sweep();
        let report = run_sweep(&config);
        // 2 baselines + 2 vdds x 1 scheme x 2 workloads.
        assert_eq!(report.cells.len(), 2 + 4);
        for cell in &report.cells {
            assert_eq!(cell.metrics[0].n(), 2, "{}/{}", cell.scheme, cell.workload);
        }
        let base = report.cell(1.0, "baseline", "fft").expect("baseline cell");
        assert!((base.metric("norm_time").mean() - 1.0).abs() < 1e-12);
        let killi = report.cell(0.6, "killi-1:16", "hacc").expect("killi cell");
        assert!(killi.metric("cycles").mean() > 0.0);
        assert!(killi.metric("norm_time").mean() >= 0.99);
    }

    #[test]
    fn json_is_valid_enough_and_carries_schema() {
        let report = run_sweep(&tiny_sweep());
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"killi-sweep/v2\""));
        assert!(json.contains("\"norm_time\""));
        assert!(json.contains("\"obs\""));
        assert!(!json.contains("wall"), "timing must stay out of the JSON");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn validate_rejects_degenerate_voltage_grids() {
        let expect_grid_err = |vdds: Vec<f64>| {
            let config = SweepConfig {
                vdds,
                ..tiny_sweep()
            };
            match config.validate() {
                Err(SweepConfigError::VoltageGrid { reason }) => reason,
                other => panic!("expected VoltageGrid error, got {other:?}"),
            }
        };
        // Single-point grids cannot be bisected.
        assert!(expect_grid_err(vec![0.625]).contains("2 grid points"));
        assert!(expect_grid_err(Vec::new()).contains("2 grid points"));
        // Duplicates and zig-zags are not monotonic.
        assert!(expect_grid_err(vec![0.65, 0.65]).contains("monotonic"));
        assert!(expect_grid_err(vec![0.6, 0.65, 0.625]).contains("monotonic"));
        // Non-finite or out-of-range points are named in the error.
        assert!(expect_grid_err(vec![0.65, f64::NAN]).contains("outside"));
        assert!(expect_grid_err(vec![0.65, -0.6]).contains("outside"));
        assert!(expect_grid_err(vec![0.65, 2.0]).contains("outside"));
        // Either direction of strict monotonicity is fine.
        for vdds in [vec![0.6, 0.625, 0.65], vec![0.65, 0.625, 0.6]] {
            let config = SweepConfig {
                vdds,
                ..tiny_sweep()
            };
            assert!(config.validate().is_ok());
        }
    }

    #[test]
    fn json_array_wraps_reports() {
        let r = run_sweep(&SweepConfig {
            replications: 1,
            vdds: vec![0.65, 0.625],
            workloads: vec![Workload::Fft],
            ..tiny_sweep()
        });
        let arr = json_array(&[r.clone(), r]);
        assert!(arr.starts_with("[\n"));
        assert!(arr.ends_with("]\n"));
        assert_eq!(arr.matches("killi-sweep/v2").count(), 2);
    }

    #[test]
    fn validated_canonical_json_ignores_execution_knobs() {
        let config = tiny_sweep();
        let canon = config.clone().validated().unwrap().canonical_json();
        // Thread count, progress cadence and tracing do not change the
        // report bytes, so they must not change the cache key either.
        let retuned = SweepConfig {
            threads: 1,
            progress_every: 100,
            trace_capacity: Some(64),
            ..config.clone()
        };
        assert_eq!(retuned.validated().unwrap().canonical_json(), canon);
        // A different scheme spelling of the same sweep agrees too.
        let respelled = SweepConfig {
            schemes: vec![SchemeConfig::parse("killi:ecc_ways=4,ratio=16").unwrap()],
            ..config.clone()
        };
        assert_eq!(respelled.validated().unwrap().canonical_json(), canon);
        // A different fault-model spelling of the same model agrees.
        let fm_respelled = SweepConfig {
            fault_model: FaultModelConfig::parse("stuck-at").unwrap(),
            ..config.clone()
        };
        assert_eq!(fm_respelled.validated().unwrap().canonical_json(), canon);
        // Anything report-shaping diverges — a different fault model in
        // particular, so the serve cache never conflates models.
        let remodeled = SweepConfig {
            fault_model: FaultModelConfig::parse("clustered:rows=8").unwrap(),
            ..config.clone()
        };
        assert_ne!(remodeled.validated().unwrap().canonical_json(), canon);
        let reseeded = SweepConfig {
            root_seed: 8,
            ..config
        };
        assert_ne!(reseeded.validated().unwrap().canonical_json(), canon);
    }

    #[test]
    fn non_default_fault_model_runs_and_labels_the_report() {
        let config = SweepConfig {
            replications: 1,
            vdds: vec![0.65, 0.625],
            workloads: vec![Workload::Fft],
            fault_model: FaultModelConfig::parse("transient:rate=0.001").unwrap(),
            ..tiny_sweep()
        };
        let report = run_sweep(&config);
        assert_eq!(report.fault_model, "transient:mode=random,rate=0.001");
        assert!(report.to_json().contains("\"fault_model\""));
        // The default model stays out of the JSON (golden-report pin).
        let default_report = run_sweep(&SweepConfig {
            replications: 1,
            vdds: vec![0.65, 0.625],
            workloads: vec![Workload::Fft],
            ..tiny_sweep()
        });
        assert_eq!(default_report.fault_model, STUCK_AT);
        assert!(!default_report.to_json().contains("\"fault_model\""));
    }

    #[test]
    fn validated_rejects_what_validate_rejects() {
        let mut config = tiny_sweep();
        config.schemes.push(SchemeConfig::new("no-such-scheme"));
        assert!(matches!(
            config.validated(),
            Err(SweepConfigError::Scheme(BuildError::UnknownScheme { .. }))
        ));
    }

    #[test]
    fn run_sweep_validated_matches_run_sweep() {
        let config = SweepConfig {
            replications: 1,
            vdds: vec![0.65, 0.625],
            workloads: vec![Workload::Fft],
            ..tiny_sweep()
        };
        let direct = run_sweep(&config).to_json();
        let validated = config.validated().unwrap();
        assert_eq!(run_sweep_validated(&validated).to_json(), direct);
    }

    #[test]
    fn baseline_pairing_uses_the_same_trace_per_replicate() {
        // With zero faults a "protected" run and the baseline see the
        // same traffic; their cycle counts per replicate must agree.
        let mut config = tiny_sweep();
        config.vdds = vec![0.96, 0.95]; // no faults at near-nominal voltage
        let report = run_sweep(&config);
        for w in ["fft", "hacc"] {
            let base = report.cell(1.0, "baseline", w).unwrap();
            let cell = report.cell(0.95, "killi-1:16", w).unwrap();
            let ratio = cell.metric("norm_time").mean();
            assert!(
                (0.99..1.2).contains(&ratio),
                "{w}: unexpected norm time {ratio} (base {}, cell {})",
                base.metric("cycles").mean(),
                cell.metric("cycles").mean(),
            );
        }
    }
}

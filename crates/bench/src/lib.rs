//! Experiment harness regenerating every figure and table of the Killi
//! paper.
//!
//! - [`schemes`] — the protection-scheme factory,
//! - [`runner`] — the parallel (workload x scheme) simulation matrix,
//! - [`sweep`] — the Monte-Carlo replication engine (mean/stddev/CI95
//!   per (vdd, scheme, workload) cell, JSON reports),
//! - [`exec`] — the shared work-stealing thread pool + progress counters,
//! - [`experiments`] — one function per paper figure/table,
//! - [`fault_models`] — the fault-model axis: registry re-exports and the
//!   `stuck-at` helpers every experiment shares,
//! - [`empirical`] — Monte-Carlo validation of the §5.3 coverage algebra,
//! - [`report`] — text-table rendering,
//! - [`timing`] — the in-repo micro-benchmark harness for `benches/`,
//! - [`perf`] — the `killi bench` before/after suite for the sweep hot
//!   path (fault-map build, single simulation, full sweep).
//!
//! Binaries: `fig1`, `fig2`, `fig4`, `fig5`, `fig6`, `table4`..`table7`,
//! `ablation`, and `repro` (runs everything, writing `results/*.txt`).
//! Scale the simulation size with `KILLI_OPS_PER_CU` (default 150000).

pub mod empirical;
pub mod exec;
pub mod experiments;
pub mod fault_models;
pub mod perf;
pub mod report;
pub mod runner;
pub mod schemes;
pub mod sweep;
pub mod timing;

/// Reads the per-CU trace length from `KILLI_OPS_PER_CU` (default
/// `150_000`; tests and CI can shrink it).
pub fn ops_from_env() -> usize {
    std::env::var("KILLI_OPS_PER_CU")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(150_000)
}

//! Shared scoped-thread work-stealing executor plus progress counters.
//!
//! Every parallel phase in the bench crate (the experiment matrix, the
//! Monte-Carlo sweep engine, the replicated yield/DVFS studies) runs on
//! this pool. Determinism contract: each job writes only its own result
//! slot, so the output vector is a pure function of the job list — the
//! thread count changes wall-clock time, never results.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Shared completion counter for long fan-outs: prints coarse progress
/// lines to stderr (never stdout, which carries results).
pub struct Progress {
    label: String,
    total: usize,
    done: AtomicUsize,
    started: Instant,
    /// Print every `every` completions (0 = silent).
    every: usize,
}

impl Progress {
    /// A progress counter over `total` jobs reporting every `every`
    /// completions (0 disables output).
    pub fn new(label: &str, total: usize, every: usize) -> Self {
        Progress {
            label: label.to_string(),
            total,
            done: AtomicUsize::new(0),
            started: Instant::now(),
            every,
        }
    }

    /// Records one completed job, printing when the cadence says so.
    pub fn tick(&self) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if self.every > 0 && (done.is_multiple_of(self.every) || done == self.total) {
            let elapsed = self.started.elapsed().as_secs_f64();
            let rate = done as f64 / elapsed.max(1e-9);
            let remaining = (self.total - done) as f64 / rate.max(1e-9);
            eprintln!(
                "[{}] {done}/{} jobs in {elapsed:.1}s (~{remaining:.1}s left)",
                self.label, self.total
            );
        }
    }

    /// Jobs completed so far.
    pub fn completed(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// Seconds since the counter was created.
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// Runs `f` over every item on `threads` workers, returning results in
/// item order. Work-stealing via an atomic cursor; each job writes its
/// own slot, so results are identical for any thread count.
pub fn par_map<T, R, F>(threads: usize, items: &[T], progress: Option<&Progress>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock().unwrap() = Some(r);
                if let Some(p) = progress {
                    p.tick();
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("every job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(4, &items, None, |i, &x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_is_thread_count_invariant() {
        let items: Vec<u64> = (0..57).collect();
        let run = |threads| par_map(threads, &items, None, |_, &x| x.wrapping_mul(x) ^ 7);
        assert_eq!(run(1), run(2));
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(4, &empty, None, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[9u8], None, |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn progress_counts_completions() {
        let p = Progress::new("test", 10, 0);
        let items: Vec<usize> = (0..10).collect();
        par_map(3, &items, Some(&p), |_, &x| x);
        assert_eq!(p.completed(), 10);
    }
}

//! One function per figure/table of the paper. Each returns the rendered
//! report so binaries and `repro` can compose them.

use killi_fault::cell_model::{FailureKind, FreqGhz, NormVdd};
use killi_fault::line_stats::LineFaultDistribution;
use killi_model::area::{checkbits, AreaModel};
use killi_model::coverage::coverage_at;
use killi_model::power::{PowerModel, SchemePower};
use killi_workloads::Workload;

use crate::fault_models::{build_fault_model, stuck_at, stuck_at_cell_model};
use crate::report::{pct, Table};
use crate::runner::{baseline_of, run_matrix, MatrixConfig, RunResult};
use crate::schemes::{KilliAblation, SchemeSpec};

/// Figure 1: SRAM cell failure probability vs normalized VDD at 1 GHz.
pub fn fig1() -> String {
    let model = stuck_at_cell_model();
    let mut t = Table::new(vec![
        "vdd",
        "p_read_disturb",
        "p_writeability",
        "p_combined",
        "p_median_line",
    ]);
    let mut v = 0.50;
    while v <= 1.001 {
        let vdd = NormVdd(v);
        t.row(vec![
            format!("{v:.3}"),
            format!(
                "{:.3e}",
                model.p_cell_mean(vdd, FreqGhz::PEAK, FailureKind::ReadDisturb)
            ),
            format!(
                "{:.3e}",
                model.p_cell_mean(vdd, FreqGhz::PEAK, FailureKind::Writeability)
            ),
            format!(
                "{:.3e}",
                model.p_cell_mean(vdd, FreqGhz::PEAK, FailureKind::Combined)
            ),
            format!(
                "{:.3e}",
                model.p_cell_median(vdd, FreqGhz::PEAK, FailureKind::Combined)
            ),
        ]);
        v += 0.025;
    }
    format!(
        "Figure 1: SRAM cell failure probability vs normalized VDD (1 GHz)\n\
         (model calibrated to the paper's 14nm FinFET aggregates)\n\n{}",
        t.render()
    )
}

/// Figure 2: fraction of 64B lines with 0 / 1 / >= 2 failures vs VDD,
/// analytic and sampled from an actual fault map.
pub fn fig2(seed: u64) -> String {
    let model = stuck_at_cell_model();
    let fault_model = build_fault_model(&stuck_at()).expect("stuck-at always builds");
    let mut t = Table::new(vec![
        "vdd",
        "zero",
        "one",
        "two_plus",
        "zero(map)",
        "one(map)",
        "two_plus(map)",
    ]);
    for v in [0.70, 0.675, 0.65, 0.625, 0.60, 0.575, 0.55] {
        let vdd = NormVdd(v);
        let ana = LineFaultDistribution::at(&model, vdd, FreqGhz::PEAK);
        let map = fault_model.map(32768, vdd, FreqGhz::PEAK, seed);
        let meas = LineFaultDistribution::measured(&map);
        t.row(vec![
            format!("{v:.3}"),
            pct(ana.zero, 2),
            pct(ana.one, 2),
            pct(ana.two_plus, 2),
            pct(meas.zero, 2),
            pct(meas.one, 2),
            pct(meas.two_plus, 2),
        ]);
    }
    format!(
        "Figure 2: lines with 0, 1, and >= 2 failures (523-cell analytic /\n\
         512-data-cell sampled 2MB map)\n\n{}",
        t.render()
    )
}

/// Runs the Figure 4/5 simulation matrix once; both figures and Table 6
/// are derived from the result set.
pub fn perf_matrix(config: &MatrixConfig) -> Vec<RunResult> {
    let schemes: Vec<_> = SchemeSpec::figure4_set()
        .iter()
        .map(SchemeSpec::config)
        .collect();
    run_matrix(&Workload::ALL, &schemes, config)
}

/// Figure 4: kernel execution time normalized to the fault-free baseline.
pub fn fig4(results: &[RunResult]) -> String {
    let schemes: Vec<String> = SchemeSpec::figure4_set()
        .iter()
        .map(SchemeSpec::label)
        .collect();
    let mut header = vec!["workload".to_string()];
    header.extend(schemes.iter().cloned());
    let mut t = Table::new(header);
    let mut geo: Vec<f64> = vec![0.0; schemes.len()];
    for w in Workload::ALL {
        let base = baseline_of(results, w.name());
        let mut row = vec![w.name().to_string()];
        for (i, s) in schemes.iter().enumerate() {
            let r = results
                .iter()
                .find(|r| r.workload == w.name() && &r.scheme == s)
                .expect("matrix cell");
            let norm = r.stats.normalized_time(&base.stats);
            geo[i] += norm.ln();
            row.push(format!("{norm:.4}"));
        }
        t.row(row);
    }
    let mut gm = vec!["geomean".to_string()];
    for g in &geo {
        gm.push(format!("{:.4}", (g / Workload::ALL.len() as f64).exp()));
    }
    t.row(gm);
    format!(
        "Figure 4: GPU kernel execution time at 0.625 x VDD, normalized to a\n\
         fault-free system at 1.0 x VDD (paper: Killi <= 1.008 except FFT/XSBench\n\
         at small ECC caches, max 1.05)\n\n{}",
        t.render()
    )
}

/// Figure 5: L2 MPKI per workload and scheme, split into the paper's
/// compute-bound (< 50) and memory-bound (> 100) plots.
pub fn fig5(results: &[RunResult]) -> String {
    let schemes: Vec<String> = std::iter::once("baseline".to_string())
        .chain(SchemeSpec::figure4_set().iter().map(SchemeSpec::label))
        .collect();
    let render_bucket = |memory_bound: bool| -> String {
        let mut header = vec!["workload".to_string()];
        header.extend(schemes.iter().cloned());
        let mut t = Table::new(header);
        for w in Workload::ALL {
            if w.is_memory_bound() != memory_bound {
                continue;
            }
            let mut row = vec![w.name().to_string()];
            for s in &schemes {
                let r = results
                    .iter()
                    .find(|r| r.workload == w.name() && &r.scheme == s)
                    .expect("matrix cell");
                row.push(format!("{:.2}", r.stats.mpki()));
            }
            t.row(row);
        }
        t.render()
    };
    format!(
        "Figure 5: L2 misses per kilo-instruction at 0.625 x VDD\n\n\
         Compute-bound workloads (paper bucket: MPKI < 50):\n{}\n\
         Memory-bound workloads (paper bucket: MPKI > 100):\n{}",
        render_bucket(false),
        render_bucket(true)
    )
}

/// Figure 6: percentage of lines whose fault count each technique
/// classifies correctly, across voltage. The analytic §5.3 columns are
/// cross-validated by Monte-Carlo runs of the *actual* codecs and Table 2
/// classifier (columns suffixed `(mc)`).
pub fn fig6() -> String {
    let model = stuck_at_cell_model();
    let mut t = Table::new(vec![
        "vdd",
        "parity16",
        "secded",
        "dected",
        "ms-ecc",
        "flair",
        "killi",
        "secded(mc)",
        "dected(mc)",
        "killi(mc)",
    ]);
    for v in [0.675, 0.65, 0.625, 0.60, 0.575, 0.55, 0.525, 0.50] {
        let c = coverage_at(&model, NormVdd(v));
        let mc = crate::empirical::measure(&model, NormVdd(v), 20_000, 42);
        t.row(vec![
            format!("{v:.3}"),
            pct(c.parity16, 4),
            pct(c.secded, 4),
            pct(c.dected, 4),
            pct(c.msecc, 4),
            pct(c.flair, 4),
            pct(c.killi, 4),
            pct(mc.secded, 2),
            pct(mc.dected, 2),
            pct(mc.killi, 2),
        ]);
    }
    format!(
        "Figure 6: correct fault-classification coverage without MBIST\n\
         (paper: all techniques 100% down to 0.6 x VDD; below that only Killi\n\
         and FLAIR stay near 100%; (mc) columns = Monte-Carlo over the real\n\
         codecs and Table 2 classifier, 20k lines each)\n\n{}",
        t.render()
    )
}

/// Table 4: Killi storage area with stronger ECC-cache codes, normalized
/// to per-line SECDED.
pub fn table4() -> String {
    let m = AreaModel::paper();
    let ratios = [256usize, 128, 64, 32, 16];
    let mut header = vec!["code".to_string()];
    header.extend(ratios.iter().map(|r| format!("1:{r}")));
    let mut t = Table::new(header);
    for (name, code) in [
        ("DECTED", checkbits::DECTED),
        ("TECQED", checkbits::TECQED),
        ("6EC7ED", checkbits::SIX_EC),
    ] {
        let mut row = vec![name.to_string()];
        for &r in &ratios {
            row.push(format!("{:.2}", m.ratio_to_secded(m.killi_bits(r, code))));
        }
        t.row(row);
    }
    format!(
        "Table 4: Killi storage area with DECTED/TECQED/6EC7ED ECC-cache codes,\n\
         normalized to per-line SECDED (paper row DECTED: 0.51..0.71, TECQED:\n\
         0.52..0.82, 6EC7ED: 0.53..0.97)\n\n{}",
        t.render()
    )
}

/// Table 5: area comparison across protection schemes.
pub fn table5() -> String {
    let m = AreaModel::paper();
    let mut t = Table::new(vec!["scheme", "added KiB", "ratio vs SECDED", "% over L2"]);
    let mut push = |name: &str, bits: usize| {
        t.row(vec![
            name.to_string(),
            format!("{:.2}", AreaModel::kib(bits)),
            format!("{:.2}", m.ratio_to_secded(bits)),
            pct(m.fraction_of_l2(bits), 2),
        ]);
    };
    push("DECTED", m.per_line_bits(checkbits::DECTED));
    push("MS-ECC (paper cfg)", m.per_line_bits(checkbits::OLSC_PAPER));
    push("MS-ECC (our OLSC)", m.per_line_bits(checkbits::OLSC_IMPL));
    push("SECDED", m.per_line_bits(checkbits::SECDED));
    for r in [256usize, 128, 64, 32, 16] {
        push(&format!("Killi 1:{r}"), m.killi_bits(r, checkbits::SECDED));
    }
    format!(
        "Table 5: error-protection area (paper: DECTED 1.9x / 4.3%, MS-ECC 18x /\n\
         38.6%, SECDED 1x / 2.3%, Killi 0.51x-0.71x / 1.2%-1.67%)\n\n{}",
        t.render()
    )
}

/// Table 6: L2 power normalized to the fault-free nominal-VDD baseline,
/// using measured access counts from the Figure 4 matrix.
pub fn table6(results: &[RunResult]) -> String {
    let pm = PowerModel::paper();
    let entries: Vec<(String, SchemePower)> = vec![
        ("dected".into(), SchemePower::dected()),
        ("flair".into(), SchemePower::flair()),
        ("ms-ecc".into(), SchemePower::msecc()),
        ("killi-1:256".into(), SchemePower::killi(256)),
        ("killi-1:128".into(), SchemePower::killi(128)),
        ("killi-1:64".into(), SchemePower::killi(64)),
        ("killi-1:32".into(), SchemePower::killi(32)),
        ("killi-1:16".into(), SchemePower::killi(16)),
    ];
    let mut t = Table::new(vec!["scheme", "normalized power"]);
    for (label, sp) in entries {
        // Average the model over all workloads that have this scheme.
        let mut acc = 0.0;
        let mut n = 0usize;
        for w in Workload::ALL {
            let Some(base) = crate::runner::try_baseline_of(results, w.name()) else {
                continue; // partial result sets (scaled-down benches)
            };
            if let Some(r) = results
                .iter()
                .find(|r| r.workload == w.name() && r.scheme == label)
            {
                acc += pm.normalized(sp, &r.stats, &base.stats);
                n += 1;
            }
        }
        if n > 0 {
            t.row(vec![label, pct(acc / n as f64, 1)]);
        }
    }
    format!(
        "Table 6: L2 power at 0.625 x VDD, normalized to fault-free nominal\n\
         (paper: DECTED 43.7, MS-ECC 55.3, FLAIR 42.6, Killi 40.3..42.4)\n\n{}",
        t.render()
    )
}

/// Table 7: Killi-with-OLSC storage vs MS-ECC at matched capacity for
/// lower-Vmin operation.
pub fn table7() -> String {
    let model = stuck_at_cell_model();
    let m = AreaModel::paper();
    let mut t = Table::new(vec![
        "vdd",
        "L2 capacity target",
        "Killi ECC-cache ratio",
        "Killi area / MS-ECC",
    ]);
    for (v, ratio) in [(0.600, 8usize), (0.575, 2)] {
        let capacity =
            LineFaultDistribution::enabled_fraction_at(&model, NormVdd(v), FreqGhz::PEAK, 523, 11);
        t.row(vec![
            format!("{v:.3}"),
            pct(capacity, 1),
            format!("1:{ratio}"),
            pct(m.killi_olsc_vs_msecc(ratio), 1),
        ]);
    }
    format!(
        "Table 7: Killi (with OLSC in the ECC cache) vs MS-ECC at matched\n\
         capacity (paper: 99.8% target -> 17%, 69.6% target -> 65%)\n\n{}",
        t.render()
    )
}

/// Ablation study: the §4.4 optimizations plus the §5.2 / §5.6.2
/// extensions, on the capacity-sensitive workloads.
pub fn ablations(config: &MatrixConfig) -> String {
    let workloads = [Workload::Xsbench, Workload::Fft, Workload::Pennant];
    let specs = [
        SchemeSpec::Killi(64),
        SchemeSpec::KilliAblation(KilliAblation::NoVictimPriority),
        SchemeSpec::KilliAblation(KilliAblation::NoEvictionTraining),
        SchemeSpec::KilliAblation(KilliAblation::NoPromotion),
        SchemeSpec::KilliDected(64),
        SchemeSpec::KilliInverted(64),
        SchemeSpec::FlairOnline,
    ];
    let configs: Vec<_> = specs.iter().map(SchemeSpec::config).collect();
    let results = run_matrix(&workloads, &configs, config);
    let mut header = vec!["scheme".to_string()];
    for w in workloads {
        header.push(format!("{} time", w.name()));
        header.push(format!("{} mpki", w.name()));
    }
    let mut t = Table::new(header);
    for s in specs {
        let label = s.label();
        let mut row = vec![label.clone()];
        for w in workloads {
            let base = baseline_of(&results, w.name());
            let r = results
                .iter()
                .find(|r| r.workload == w.name() && r.scheme == label)
                .expect("cell");
            row.push(format!("{:.4}", r.stats.normalized_time(&base.stats)));
            row.push(format!("{:.2}", r.stats.mpki()));
        }
        t.row(row);
    }
    format!(
        "Ablations: Killi §4.4 optimizations, §5.2 DECTED upgrade, §5.6.2\n\
         inverted-write check, and FLAIR's online training (normalized time\n\
         and MPKI on the capacity-sensitive workloads)\n\n{}",
        t.render()
    )
}

/// §5.5: Killi-with-OLSC vs MS-ECC below 0.625 x VDD (the paper claims
/// matched capacity and performance at 17 % / 65 % of MS-ECC's area).
pub fn lowvmin(base_config: &MatrixConfig) -> String {
    let mut out = String::from(
        "Section 5.5: Killi with OLSC vs MS-ECC below 0.625 x VDD\n\
         (paper: same capacity and performance at 17% / 65% of the area)\n\n",
    );
    for (vdd, ratio) in [(0.600, 8usize), (0.575, 2)] {
        let mut config = base_config.clone();
        config.vdd = NormVdd(vdd);
        let results = run_matrix(
            &[Workload::Xsbench, Workload::Pennant],
            &[
                SchemeSpec::MsEcc.config(),
                SchemeSpec::KilliOlsc(ratio).config(),
            ],
            &config,
        );
        let mut t = Table::new(vec![
            "workload",
            "scheme",
            "norm.time",
            "mpki",
            "disabled lines",
        ]);
        for r in results.iter().filter(|r| r.scheme != "baseline") {
            let base = baseline_of(&results, r.workload);
            t.row(vec![
                r.workload.to_string(),
                r.scheme.clone(),
                format!("{:.4}", r.stats.normalized_time(&base.stats)),
                format!("{:.2}", r.stats.mpki()),
                r.disabled_lines.to_string(),
            ]);
        }
        out.push_str(&format!("VDD = {vdd} (Killi-OLSC at 1:{ratio}):\n"));
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_reports_render() {
        for s in [fig1(), fig6(), table4(), table5(), table7()] {
            assert!(s.lines().count() > 5, "{s}");
        }
    }

    #[test]
    fn fig2_renders_with_sampled_map() {
        let s = fig2(3);
        assert!(s.contains("0.625"));
    }
}

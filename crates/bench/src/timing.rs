//! Self-contained micro-benchmark harness for the `benches/` targets.
//!
//! The workspace builds offline, so the benches cannot use an external
//! harness crate; this module provides the small core they need: warmup,
//! an adaptive iteration count, and a median-of-samples report.
//!
//! Knobs: `KILLI_BENCH_MS` — target measurement time per benchmark in
//! milliseconds (default 200; warmup is a quarter of it).

use std::time::{Duration, Instant};

/// Target measurement window per benchmark.
fn target_window() -> Duration {
    let ms = std::env::var("KILLI_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200u64);
    Duration::from_millis(ms.max(1))
}

/// Times `f` and prints `name: <t>/iter (<n> iters, median of 5 samples)`.
///
/// The return value of `f` is passed through `std::hint::black_box`, so
/// benchmark bodies can simply return the value they want kept alive.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    let window = target_window();
    // Warmup + calibration: run until a quarter-window has elapsed.
    let warmup_end = Instant::now() + window / 4;
    let mut calibration_iters: u64 = 0;
    let warmup_start = Instant::now();
    while Instant::now() < warmup_end {
        std::hint::black_box(f());
        calibration_iters += 1;
    }
    let per_iter = warmup_start.elapsed().as_nanos().max(1) / u128::from(calibration_iters.max(1));
    // Five samples that together fill the measurement window.
    let sample_iters = (window.as_nanos() / 5 / per_iter.max(1)).clamp(1, 1 << 24) as u64;
    let mut samples = Vec::with_capacity(5);
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..sample_iters {
            std::hint::black_box(f());
        }
        samples.push(start.elapsed().as_nanos() / u128::from(sample_iters));
    }
    samples.sort_unstable();
    let median = samples[2];
    println!(
        "{name}: {} /iter ({sample_iters} iters/sample, median of 5)",
        human_ns(median)
    );
}

/// Times `f` over `samples` runs and returns the median wall time per run
/// in nanoseconds, without printing. For macro-benchmarks whose single
/// run is already long (the `killi bench` suite): no adaptive iteration
/// count, and a warmup run only when `samples > 1` (a one-sample
/// measurement of a multi-second run should not pay double).
///
/// The return value of `f` goes through `std::hint::black_box`.
pub fn measure<T>(samples: usize, mut f: impl FnMut() -> T) -> u128 {
    let samples = samples.max(1);
    if samples > 1 {
        std::hint::black_box(f());
    }
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[samples / 2]
}

/// Formats nanoseconds with an adaptive unit.
fn human_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        std::env::set_var("KILLI_BENCH_MS", "2");
        bench("timing/self_test", || 1 + 1);
        std::env::remove_var("KILLI_BENCH_MS");
    }

    #[test]
    fn measure_returns_positive_median() {
        let t = measure(3, || std::hint::black_box((0..1000u64).sum::<u64>()));
        assert!(t > 0);
        assert!(measure(0, || 1) > 0, "samples clamp to 1");
    }

    #[test]
    fn human_ns_units() {
        assert_eq!(human_ns(5), "5 ns");
        assert_eq!(human_ns(5_000), "5.000 us");
        assert_eq!(human_ns(5_000_000), "5.000 ms");
        assert_eq!(human_ns(5_000_000_000), "5.000 s");
    }
}

//! The `killi bench` before/after performance suite.
//!
//! Three macro-benchmarks, each timing the unoptimized reference path
//! against the shared-artifact fast path that [`crate::sweep::run_sweep`]
//! actually uses:
//!
//! - `fault_map_build` — producing one die's fault maps for the whole
//!   voltage grid: the `stuck-at` model's dense reference construction at
//!   every operating point vs its [`killi_fault::model::ReplicateDie`]
//!   hashed once at the lowest voltage and filtered per point.
//! - `single_simulation` — one (workload, scheme, vdd) cell: per-job
//!   dense map build + trace regeneration vs deriving the map from a
//!   prebuilt die and replaying a shared op buffer.
//! - `full_sweep` — the end-to-end Monte-Carlo sweep:
//!   [`run_sweep_reference`] vs [`run_sweep`] on the same configuration
//!   (both produce byte-identical reports; only the wall clock differs).
//!
//! Results serialize as deterministic-schema JSON (`killi-bench/v1`,
//! written to `results/BENCH_perf.json` by the CLI). The timings
//! themselves are machine-dependent, so the file is a measurement record,
//! not a regression oracle; compare `speedup` fields across runs on the
//! same machine.

use std::sync::Arc;

use killi_fault::cell_model::{FreqGhz, NormVdd};
use killi_sim::cache::CacheGeometry;
use killi_sim::gpu::GpuConfig;
use killi_sim::trace::Trace;
use killi_workloads::Workload;

use crate::fault_models::{build_fault_model, stuck_at};
use crate::report::Table;
use crate::runner::{run_cell, run_cell_traced, ObsConfig};
use crate::schemes::SchemeSpec;
use crate::sweep::{run_sweep, run_sweep_reference, SweepConfig};
use crate::timing::measure;

/// The benchmark names of the suite, in emission order. `killi bench
/// --check` validates a report against this list.
pub const BENCHMARK_NAMES: [&str; 3] = ["fault_map_build", "single_simulation", "full_sweep"];

/// An optional work-rate annotation on a benchmark, for suites whose
/// headline number is a rate (dies/sec for the Vmin campaign) rather
/// than wall time alone.
#[derive(Debug, Clone, Copy)]
pub struct Throughput {
    /// What one unit of work is (e.g. `"dies_per_sec"`).
    pub unit: &'static str,
    /// Rate of the reference path.
    pub before: f64,
    /// Rate of the optimized path.
    pub after: f64,
}

/// One before/after measurement.
#[derive(Debug, Clone)]
pub struct PerfBenchmark {
    /// One of [`BENCHMARK_NAMES`] (or a suite-specific name).
    pub name: &'static str,
    /// Median wall time of the reference path, nanoseconds.
    pub before_ns: u128,
    /// Median wall time of the optimized path, nanoseconds.
    pub after_ns: u128,
    /// Optional work rate. Emission is gated on `Some`, so reports from
    /// suites without one keep their exact historical bytes.
    pub throughput: Option<Throughput>,
}

impl PerfBenchmark {
    /// `before / after` (how many times faster the optimized path is).
    pub fn speedup(&self) -> f64 {
        self.before_ns as f64 / self.after_ns.max(1) as f64
    }
}

/// The full suite's results.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Whether the reduced `--quick` configuration ran.
    pub quick: bool,
    /// Per-CU trace length of the simulation benchmarks.
    pub ops_per_cu: usize,
    /// One entry per [`BENCHMARK_NAMES`] element, in order.
    pub benchmarks: Vec<PerfBenchmark>,
}

impl PerfReport {
    /// Serializes as `killi-bench/v1` JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"killi-bench/v1\",\n");
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str(&format!("  \"ops_per_cu\": {},\n", self.ops_per_cu));
        out.push_str("  \"benchmarks\": [\n");
        for (i, b) in self.benchmarks.iter().enumerate() {
            let throughput = match &b.throughput {
                Some(t) => format!(
                    ", \"throughput\": {{\"unit\": \"{}\", \"before\": {:.3}, \"after\": {:.3}}}",
                    t.unit, t.before, t.after
                ),
                None => String::new(),
            };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"before_ns\": {}, \"after_ns\": {}, \
                 \"speedup\": {:.3}{}}}{}\n",
                b.name,
                b.before_ns,
                b.after_ns,
                b.speedup(),
                throughput,
                if i + 1 < self.benchmarks.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }

    /// Renders the results as an aligned text table.
    pub fn summary_table(&self) -> Table {
        let ms = |ns: u128| format!("{:.2}", ns as f64 / 1e6);
        let mut t = Table::new(vec!["benchmark", "before (ms)", "after (ms)", "speedup"]);
        for b in &self.benchmarks {
            t.row(vec![
                b.name.to_string(),
                ms(b.before_ns),
                ms(b.after_ns),
                format!("{:.2}x", b.speedup()),
            ]);
        }
        t
    }
}

/// The sweep configuration the suite measures: the default sweep — the
/// paper's GPU (2 MB 16-way L2), the paper's voltage grid, Killi 1:64 on
/// xsbench + hacc, 8 replicates — at a bench-sized trace length, or a
/// seconds-scale reduction for `--quick`.
fn bench_sweep_config(quick: bool) -> SweepConfig {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    if quick {
        SweepConfig {
            root_seed: 42,
            replications: 2,
            vdds: vec![0.65, 0.625],
            schemes: vec![SchemeSpec::Killi(64).config()],
            fault_model: stuck_at(),
            workloads: vec![Workload::Fft],
            ops_per_cu: 1500,
            gpu: GpuConfig {
                cus: 2,
                l2: CacheGeometry {
                    size_bytes: 128 * 1024,
                    ways: 16,
                    line_bytes: 64,
                },
                ..GpuConfig::default()
            },
            threads,
            progress_every: 0,
            trace_capacity: None,
        }
    } else {
        SweepConfig {
            root_seed: 42,
            replications: 8,
            vdds: vec![0.65, 0.625, 0.6],
            schemes: vec![SchemeSpec::Killi(64).config()],
            fault_model: stuck_at(),
            workloads: vec![Workload::Xsbench, Workload::Hacc],
            ops_per_cu: 5_000,
            gpu: GpuConfig::default(),
            threads,
            progress_every: 0,
            trace_capacity: None,
        }
    }
}

/// Runs the three benchmarks and returns the report. `quick` shrinks the
/// configuration and takes single samples (the CI smoke mode); the full
/// suite takes the median of 3 samples for the sub-second benchmarks and
/// a single sample of the sweep.
pub fn run_perf_suite(quick: bool) -> PerfReport {
    let config = bench_sweep_config(quick);
    let samples = if quick { 1 } else { 3 };
    let fault_model = build_fault_model(&stuck_at()).expect("stuck-at always builds");
    let lines = config.gpu.l2.lines();
    let seed = config.root_seed;
    let cap_vdd = NormVdd(config.vdds.iter().cloned().fold(f64::INFINITY, f64::min));
    let grid: Vec<NormVdd> = config.vdds.iter().map(|&v| NormVdd(v)).collect();

    // 1. One die's fault maps across the voltage grid.
    let before_ns = measure(samples, || {
        grid.iter()
            .map(|&v| fault_model.map_reference(lines, v, FreqGhz::PEAK, seed))
            .collect::<Vec<_>>()
    });
    let after_ns = measure(samples, || {
        let die = fault_model
            .die(lines, cap_vdd, FreqGhz::PEAK, seed)
            .expect("stuck-at factorizes across the grid");
        grid.iter().map(|&v| die.map_at(v)).collect::<Vec<_>>()
    });
    let fault_map_build = PerfBenchmark {
        name: BENCHMARK_NAMES[0],
        before_ns,
        after_ns,
        throughput: None,
    };

    // 2. One (workload, scheme, vdd) cell. The "after" side replays the
    // prebuilt die table and op buffer, exactly as a sweep job does.
    let workload = config.workloads[0];
    let scheme = &config.schemes[0];
    let vdd = NormVdd(config.vdds[0]);
    let obs = ObsConfig::default();
    let params = killi_workloads::TraceParams {
        cus: config.gpu.cus,
        ops_per_cu: config.ops_per_cu,
        seed,
        l2_bytes: config.gpu.l2.size_bytes,
    };
    let before_ns = measure(samples, || {
        let map = Arc::new(fault_model.map_reference(lines, vdd, FreqGhz::PEAK, seed));
        run_cell(
            workload,
            scheme,
            &config.gpu,
            config.ops_per_cu,
            &map,
            seed,
            &obs,
        )
    });
    let die = fault_model
        .die(lines, cap_vdd, FreqGhz::PEAK, seed)
        .expect("stuck-at factorizes across the grid");
    let ops = Arc::new(workload.ops(&params));
    let after_ns = measure(samples, || {
        let map = Arc::new(die.map_at(vdd));
        run_cell_traced(
            workload,
            scheme,
            &config.gpu,
            Trace::from_shared(Arc::clone(&ops)),
            &map,
            seed,
            &obs,
        )
    });
    let single_simulation = PerfBenchmark {
        name: BENCHMARK_NAMES[1],
        before_ns,
        after_ns,
        throughput: None,
    };

    // 3. The end-to-end sweep. Both sides emit byte-identical reports
    // (regression-tested); only the artifact strategy differs.
    let before_ns = measure(1, || run_sweep_reference(&config));
    let after_ns = measure(1, || run_sweep(&config));
    let full_sweep = PerfBenchmark {
        name: BENCHMARK_NAMES[2],
        before_ns,
        after_ns,
        throughput: None,
    };

    PerfReport {
        quick,
        ops_per_cu: config.ops_per_cu,
        benchmarks: vec![fault_map_build, single_simulation, full_sweep],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_carries_schema_and_names() {
        let report = PerfReport {
            quick: true,
            ops_per_cu: 100,
            benchmarks: BENCHMARK_NAMES
                .iter()
                .map(|&name| PerfBenchmark {
                    name,
                    before_ns: 2_000,
                    after_ns: 1_000,
                    throughput: None,
                })
                .collect(),
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"killi-bench/v1\""));
        for name in BENCHMARK_NAMES {
            assert!(json.contains(&format!("\"name\": \"{name}\"")));
        }
        assert!(json.contains("\"speedup\": 2.000"));
        let parsed = killi_obs::parse_json(&json).expect("valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(|v| v.as_str()),
            Some("killi-bench/v1")
        );
        assert_eq!(
            parsed
                .get("benchmarks")
                .and_then(|v| v.as_array())
                .map(|a| a.len()),
            Some(3)
        );
    }

    #[test]
    fn speedup_guards_zero_after() {
        let b = PerfBenchmark {
            name: "x",
            before_ns: 10,
            after_ns: 0,
            throughput: None,
        };
        assert_eq!(b.speedup(), 10.0);
    }
}

//! Vmin and yield analysis: which supply voltage can each *die* actually
//! reach?
//!
//! The paper's §2.1 notes that circuit-level LV techniques need post-silicon
//! per-die tuning because failure rates vary die to die — precisely the
//! knowledge problem Killi's runtime classification dissolves (no tuning,
//! no MBIST: every die self-discovers its population at whatever voltage it
//! is given). This module quantifies that: given a die-to-die spread of the
//! failure curves, it computes the minimum reliable voltage per die for a
//! given scheme strength and the resulting fleet-wide yield at each voltage.

use killi_fault::cell_model::{CellFailureModel, FreqGhz, NormVdd};
use killi_fault::line_stats::LineFaultDistribution;
use killi_fault::rng::{hash3, to_unit};

/// A die's failure curves: the base model with a per-die rate multiplier
/// (lognormal across the population, like the per-line spread but frozen
/// per chip).
#[derive(Debug, Clone)]
pub struct Die {
    model: CellFailureModel,
    /// The die's rate multiplier (1.0 = typical).
    pub multiplier: f64,
}

impl Die {
    /// Samples die `index` from a population with lognormal rate spread
    /// `die_sigma`.
    pub fn sample(base: &CellFailureModel, die_sigma: f64, seed: u64, index: u64) -> Self {
        let z = inverse_normal(to_unit(hash3(seed, index, 0xD1E)));
        let multiplier = (die_sigma * z).exp();
        // Shift every anchor by log10(multiplier): a uniform rate scale.
        let shift = multiplier.log10();
        let anchors = base_anchors(base)
            .iter()
            .map(|&(v, l)| (v, l + shift))
            .collect();
        Die {
            model: CellFailureModel::from_anchors(anchors, base.sigma()),
            multiplier,
        }
    }

    /// The die's failure model.
    pub fn model(&self) -> &CellFailureModel {
        &self.model
    }

    /// Usable-line fraction for a scheme correcting `correctable` faults
    /// per 523-cell line at voltage `vdd`.
    pub fn capacity(&self, vdd: NormVdd, correctable: u64) -> f64 {
        LineFaultDistribution::enabled_fraction_at(
            &self.model,
            vdd,
            FreqGhz::PEAK,
            523,
            correctable,
        )
    }

    /// Minimum voltage (to 1 mV of normalized VDD) at which the die keeps
    /// at least `target` of its lines usable under a `correctable`-strong
    /// scheme. Returns `None` when even nominal voltage fails (never, in
    /// practice).
    pub fn vmin(&self, target: f64, correctable: u64) -> Option<NormVdd> {
        let mut lo = 0.40f64;
        let mut hi = 1.0f64;
        if self.capacity(NormVdd(hi), correctable) < target {
            return None;
        }
        if self.capacity(NormVdd(lo), correctable) >= target {
            return Some(NormVdd(lo));
        }
        while hi - lo > 0.001 {
            let mid = 0.5 * (lo + hi);
            if self.capacity(NormVdd(mid), correctable) >= target {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(NormVdd(hi))
    }
}

/// Fleet yield: the fraction of `dies` sampled dies whose Vmin (for the
/// given capacity target and scheme strength) is at or below `vdd`.
pub fn yield_at(
    base: &CellFailureModel,
    die_sigma: f64,
    seed: u64,
    dies: u64,
    vdd: NormVdd,
    target: f64,
    correctable: u64,
) -> f64 {
    let ok = (0..dies)
        .filter(|&i| Die::sample(base, die_sigma, seed, i).capacity(vdd, correctable) >= target)
        .count();
    ok as f64 / dies as f64
}

/// Monte-Carlo replicated fleet yield: one independently-seeded die
/// population per replicate (seeds derived from `root_seed` with the
/// sweep engine's hierarchical scheme), so callers can put a confidence
/// interval on the yield estimate instead of quoting a single draw.
#[allow(clippy::too_many_arguments)]
pub fn yield_samples(
    base: &CellFailureModel,
    die_sigma: f64,
    root_seed: u64,
    replications: u64,
    dies: u64,
    vdd: NormVdd,
    target: f64,
    correctable: u64,
) -> Vec<f64> {
    (0..replications)
        .map(|rep| {
            let seed = killi_fault::rng::derive_seed(root_seed, "yield", &[rep]);
            yield_at(base, die_sigma, seed, dies, vdd, target, correctable)
        })
        .collect()
}

/// Rational inverse-normal (Acklam); adequate for sampling die spreads.
fn inverse_normal(u: f64) -> f64 {
    let u = u.clamp(1e-12, 1.0 - 1e-12);
    // Reuse the simple central/tail split.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;
    if u < P_LOW {
        let q = (-2.0 * u.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if u <= 1.0 - P_LOW {
        let q = u - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - u).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Extracts the model's anchors (re-deriving them from the public query
/// interface keeps `CellFailureModel` encapsulated).
fn base_anchors(model: &CellFailureModel) -> Vec<(f64, f64)> {
    use killi_fault::cell_model::FailureKind;
    [0.500, 0.525, 0.550, 0.575, 0.600, 0.625, 0.650, 0.674]
        .iter()
        .map(|&v| {
            let p = model.p_cell_median(NormVdd(v), FreqGhz::PEAK, FailureKind::Combined);
            (v, p.log10())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> CellFailureModel {
        CellFailureModel::finfet14()
    }

    #[test]
    fn typical_die_reaches_the_paper_operating_point() {
        // A 1.0x die under Killi (1 correctable fault, 99 % capacity
        // target) must reach 0.625 x VDD.
        let die = Die {
            model: base(),
            multiplier: 1.0,
        };
        let vmin = die.vmin(0.99, 1).expect("reachable");
        assert!(vmin.0 <= 0.63, "vmin = {}", vmin.0);
        assert!(vmin.0 >= 0.55, "vmin = {}", vmin.0);
    }

    #[test]
    fn stronger_correction_lowers_vmin() {
        let die = Die {
            model: base(),
            multiplier: 1.0,
        };
        let v1 = die.vmin(0.99, 1).unwrap();
        let v11 = die.vmin(0.99, 11).unwrap();
        assert!(v11.0 < v1.0, "{} vs {}", v11.0, v1.0);
    }

    #[test]
    fn worse_dies_have_higher_vmin() {
        let base = base();
        let good = Die::sample(&base, 0.0, 1, 0); // sigma 0: typical
        let bad = Die {
            model: CellFailureModel::from_anchors(
                base_anchors(&base)
                    .iter()
                    .map(|&(v, l)| (v, l + 1.0))
                    .collect(),
                base.sigma(),
            ),
            multiplier: 10.0,
        };
        let vg = good.vmin(0.99, 1).unwrap();
        let vb = bad.vmin(0.99, 1).unwrap();
        assert!(vb.0 > vg.0, "{} vs {}", vb.0, vg.0);
    }

    #[test]
    fn yield_is_monotone_in_voltage() {
        let base = base();
        let y_lo = yield_at(&base, 0.5, 7, 200, NormVdd(0.59), 0.99, 1);
        let y_hi = yield_at(&base, 0.5, 7, 200, NormVdd(0.64), 0.99, 1);
        assert!(y_hi >= y_lo);
        assert!(y_hi > 0.8, "most dies fine at 0.64: {y_hi}");
    }

    #[test]
    fn die_sampling_is_deterministic() {
        let base = base();
        let a = Die::sample(&base, 0.5, 3, 17);
        let b = Die::sample(&base, 0.5, 3, 17);
        assert_eq!(a.multiplier, b.multiplier);
    }

    #[test]
    fn yield_replicates_are_deterministic_and_independent() {
        let base = base();
        let a = yield_samples(&base, 0.5, 42, 4, 50, NormVdd(0.625), 0.98, 1);
        let b = yield_samples(&base, 0.5, 42, 4, 50, NormVdd(0.625), 0.98, 1);
        assert_eq!(a, b, "pure function of the root seed");
        assert_eq!(a.len(), 4);
        // Different replicates draw different die populations; with 50
        // dies at least one pair of estimates should differ.
        assert!(
            a.windows(2).any(|w| w[0] != w[1]),
            "replicates look identical: {a:?}"
        );
        for y in a {
            assert!((0.0..=1.0).contains(&y));
        }
    }
}

//! Storage-area model: Tables 4, 5 and 7.
//!
//! All schemes are charged for the bits they add around a 2 MB L2 (32768
//! lines of 512 data bits). Per-line schemes add checkbits plus one disable
//! bit per line; Killi adds 2 DFH + 4 parity bits per line plus the ECC
//! cache, whose entry is `tag + payload`:
//!
//! - the tag is 18 bits — the paper's 41-bit entry minus its 23 payload
//!   bits: L2 index (11) + way (4) + valid/LRU bookkeeping (3),
//! - the payload holds the training metadata: 12 spill-over parity bits
//!   plus the ECC checkbits, except that any code of <= 23 bits fits in
//!   the baseline 11 + 12 layout by the §5.2 bit-reuse trick (which is why
//!   Killi-with-DECTED costs the same as Killi-with-SECDED in Table 4).

/// Checkbit counts of the codes the paper tabulates.
pub mod checkbits {
    /// SECDED over 512 data bits.
    pub const SECDED: usize = 11;
    /// DEC-TED BCH.
    pub const DECTED: usize = 21;
    /// TEC-QED BCH (3x degree-10 minimal polynomials + parity).
    pub const TECQED: usize = 31;
    /// 6EC-7ED BCH.
    pub const SIX_EC: usize = 61;
    /// OLSC as configured for MS-ECC in the paper (Table 5 charges MS-ECC
    /// 38.6 % of the L2 data bits).
    pub const OLSC_PAPER: usize = 197;
    /// OLSC(m = 8, t = 2) as actually implemented in `killi-ecc`.
    pub const OLSC_IMPL: usize = 256;
}

/// Geometry the model is evaluated for.
#[derive(Debug, Clone, Copy)]
pub struct AreaModel {
    /// L2 lines (paper: 32768).
    pub l2_lines: usize,
    /// Data bits per line.
    pub line_bits: usize,
    /// L2 sets (for the ECC-cache tag width).
    pub l2_sets: usize,
    /// L2 ways.
    pub l2_ways: usize,
}

impl AreaModel {
    /// The paper's 2 MB, 16-way L2.
    pub fn paper() -> Self {
        AreaModel {
            l2_lines: 32768,
            line_bits: 512,
            l2_sets: 2048,
            l2_ways: 16,
        }
    }

    /// Total added bits for a per-line scheme: checkbits + 1 disable bit
    /// per line.
    pub fn per_line_bits(&self, checkbits: usize) -> usize {
        self.l2_lines * (checkbits + 1)
    }

    /// The ECC-cache entry width for a given training code (Killi).
    pub fn ecc_entry_bits(&self, code_checkbits: usize) -> usize {
        let tag = self.ecc_tag_bits();
        // 11 SECDED + 12 parity = 23 payload bits; codes up to 23 bits
        // reuse that space (§5.2), larger codes keep the 12 parity bits
        // alongside their own checkbits.
        let baseline_payload = checkbits::SECDED + 12;
        let payload = if code_checkbits <= baseline_payload {
            baseline_payload
        } else {
            code_checkbits + 12
        };
        tag + payload
    }

    /// ECC-cache tag width: index + way + valid/LRU bookkeeping.
    pub fn ecc_tag_bits(&self) -> usize {
        (self.l2_sets.trailing_zeros() + self.l2_ways.trailing_zeros()) as usize + 3
    }

    /// Total added bits for Killi at an ECC-cache ratio with a given
    /// ECC-cache code.
    pub fn killi_bits(&self, ratio: usize, code_checkbits: usize) -> usize {
        // 2 DFH bits (tag array) + 4 parity bits (data array) per line.
        let per_line = self.l2_lines * (2 + 4);
        let entries = self.l2_lines / ratio;
        per_line + entries * self.ecc_entry_bits(code_checkbits)
    }

    /// Area of a bit count in KiB.
    pub fn kib(bits: usize) -> f64 {
        bits as f64 / 8.0 / 1024.0
    }

    /// Ratio of a scheme's added bits to the per-line SECDED baseline
    /// (Tables 4 and 5 normalize this way).
    pub fn ratio_to_secded(&self, bits: usize) -> f64 {
        bits as f64 / self.per_line_bits(checkbits::SECDED) as f64
    }

    /// Added bits as a fraction of the L2 data array (Table 5's "% area
    /// over L2" row).
    pub fn fraction_of_l2(&self, bits: usize) -> f64 {
        bits as f64 / (self.l2_lines * self.line_bits) as f64
    }

    /// Killi-with-OLSC area relative to MS-ECC for Table 7's capacity-
    /// matching configurations.
    pub fn killi_olsc_vs_msecc(&self, ratio: usize) -> f64 {
        let killi = self.killi_bits(ratio, checkbits::OLSC_PAPER);
        let msecc = self.l2_lines * (checkbits::OLSC_PAPER + 1);
        killi as f64 / msecc as f64
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> AreaModel {
        AreaModel::paper()
    }

    #[test]
    fn ecc_cache_entry_is_41_bits() {
        // Table 3: "ECC cache line size 41 bits".
        assert_eq!(m().ecc_entry_bits(checkbits::SECDED), 41);
        assert_eq!(m().ecc_entry_bits(checkbits::DECTED), 41, "§5.2 reuse");
    }

    #[test]
    fn smallest_ecc_cache_is_656_bytes() {
        // §5.2: "656B for the 1:256 ratio".
        let entries = 32768 / 256;
        let bytes = entries * m().ecc_entry_bits(checkbits::SECDED) / 8;
        assert_eq!(bytes, 656);
    }

    #[test]
    fn killi_total_area_matches_section_5_4() {
        // "the Killi area overhead ranges from 24.6KB (1:256) to 34.25KB
        // (1:16)".
        let lo = AreaModel::kib(m().killi_bits(256, checkbits::SECDED));
        let hi = AreaModel::kib(m().killi_bits(16, checkbits::SECDED));
        assert!((lo - 24.64).abs() < 0.1, "1:256 = {lo} KiB");
        assert!((hi - 34.25).abs() < 0.1, "1:16 = {hi} KiB");
    }

    #[test]
    fn table5_ratios() {
        let model = m();
        let secded = model.per_line_bits(checkbits::SECDED);
        assert!((model.ratio_to_secded(secded) - 1.0).abs() < 1e-12);
        let dected = model.per_line_bits(checkbits::DECTED);
        assert!(
            (model.ratio_to_secded(dected) - 1.83).abs() < 0.08,
            "paper: 1.9"
        );
        for (ratio, paper) in [
            (256usize, 0.51),
            (128, 0.52),
            (64, 0.55),
            (32, 0.60),
            (16, 0.71),
        ] {
            let killi = model.killi_bits(ratio, checkbits::SECDED);
            let r = model.ratio_to_secded(killi);
            assert!((r - paper).abs() < 0.02, "1:{ratio}: {r} vs paper {paper}");
        }
    }

    #[test]
    fn table5_percent_over_l2() {
        let model = m();
        assert!(
            (model.fraction_of_l2(model.per_line_bits(checkbits::SECDED)) - 0.023).abs() < 0.001
        );
        assert!(
            (model.fraction_of_l2(model.per_line_bits(checkbits::DECTED)) - 0.043).abs() < 0.001
        );
        let msecc = model.per_line_bits(checkbits::OLSC_PAPER);
        assert!((model.fraction_of_l2(msecc) - 0.386).abs() < 0.003);
        let killi = model.killi_bits(256, checkbits::SECDED);
        assert!((model.fraction_of_l2(killi) - 0.012).abs() < 0.001);
    }

    #[test]
    fn table4_stronger_codes() {
        let model = m();
        for (code, cases) in [
            (checkbits::DECTED, [(256usize, 0.51), (16, 0.71)]),
            (checkbits::TECQED, [(256, 0.52), (16, 0.82)]),
            (checkbits::SIX_EC, [(256, 0.53), (16, 0.97)]),
        ] {
            for (ratio, paper) in cases {
                let r = model.ratio_to_secded(model.killi_bits(ratio, code));
                assert!(
                    (r - paper).abs() < 0.03,
                    "code {code} 1:{ratio}: {r} vs paper {paper}"
                );
            }
        }
    }

    #[test]
    fn table7_killi_olsc_vs_msecc() {
        let model = m();
        // 0.600 VDD: ECC cache protects 1 of 8 lines; paper: 17 %.
        let at_0600 = model.killi_olsc_vs_msecc(8);
        assert!((at_0600 - 0.17).abs() < 0.02, "1:8 = {at_0600}");
        // 0.575 VDD: 1 of 2 lines; paper: 65 %.
        let at_0575 = model.killi_olsc_vs_msecc(2);
        assert!((at_0575 - 0.65).abs() < 0.05, "1:2 = {at_0575}");
    }

    #[test]
    fn killi_cheaper_than_secded_per_line_even_with_6ec7ed_at_1_16() {
        // §5.4's headline claim.
        let model = m();
        let killi = model.killi_bits(16, checkbits::SIX_EC);
        assert!(killi < model.per_line_bits(checkbits::SECDED));
    }
}

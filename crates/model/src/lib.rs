//! Analytic models backing the paper's non-simulation results.
//!
//! - [`coverage`] — the §5.3 classification-coverage equations (Figure 6),
//! - [`area`] — storage-area arithmetic for every scheme (Tables 4, 5, 7),
//! - [`power`] — the V²-scaled, activity-driven power model (Table 6),
//! - [`sdc`] — the §5.6.2 masked-fault silent-corruption exposure,
//! - [`vmin`] — per-die Vmin and fleet-yield analysis.
//!
//! # Example
//!
//! ```
//! use killi_model::area::{checkbits, AreaModel};
//!
//! let m = AreaModel::paper();
//! // Killi at 1:256 halves the SECDED area overhead (Table 5).
//! let killi = m.killi_bits(256, checkbits::SECDED);
//! assert!(m.ratio_to_secded(killi) < 0.52);
//! ```

pub mod area;
pub mod coverage;
pub mod power;
pub mod sdc;
pub mod vmin;

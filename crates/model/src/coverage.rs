//! Analytic fault-classification coverage — the §5.3 equations behind
//! Figure 6.
//!
//! The paper derives the probability that each technique correctly
//! determines whether a line has a multi-bit failure, *without* MBIST
//! pre-characterization. Killi fails only when segmented parity and SECDED
//! fail simultaneously; each baseline fails when the error count exceeds
//! its detection capability. The formulas below follow the paper's
//! derivation literally (same simplifications: SECDED "fails" at >= 3
//! errors; DECTED detects exactly up to 3; MS-ECC up to 11).

use killi_fault::cell_model::{CellFailureModel, FreqGhz, NormVdd};
use killi_fault::prob::{binom_odd, binom_pmf, binom_sf};

/// Bits protected by SECDED: 512 data + 11 checkbits.
const N_SECDED: u64 = 523;
/// Bits protected by DEC-TED: 512 data + 21 checkbits.
const N_DECTED: u64 = 533;
/// Interleaved segments per line.
const SEGMENTS: u64 = 16;
/// Bits per segment including its parity bit (32 data + 1 parity).
const SEG_BITS: u64 = 33;

/// P[SECDED fails] = P[>= 3 errors among the 523 covered bits].
pub fn p_fail_secded(p_cell: f64) -> f64 {
    binom_sf(N_SECDED, 3, p_cell)
}

/// P[a 33-bit segment has zero errors].
fn p_seg_zero(p_cell: f64) -> f64 {
    (1.0 - p_cell).powi(SEG_BITS as i32)
}

/// P[a segment has a nonzero even number of errors] (parity-silent).
fn p_seg_even(p_cell: f64) -> f64 {
    killi_fault::prob::binom_even_nonzero(SEG_BITS, p_cell)
}

/// P[a segment has an odd number of errors >= 3] (parity sees one
/// mismatch but under-counts).
fn p_seg_odd3(p_cell: f64) -> f64 {
    (binom_odd(SEG_BITS, p_cell) - binom_pmf(SEG_BITS, 1, p_cell)).max(0.0)
}

/// P[segmented parity mis-classifies the line], per the paper's
/// composition: one segment with >= 3 (odd) errors and the rest clean, or
/// some segments with even error counts and the rest clean.
pub fn p_fail_seg_parity(p_cell: f64) -> f64 {
    let p0 = p_seg_zero(p_cell);
    let pe = p_seg_even(p_cell);
    let comb = |n: u64, k: u64| -> f64 { killi_fault::prob::ln_choose(n, k).exp() };
    // P^n_0 and P^n_even as the paper defines them (binomial point masses).
    let pn_zero =
        |n: u64| comb(SEGMENTS, n) * p0.powi(n as i32) * (1.0 - p0).powi((SEGMENTS - n) as i32);
    let pn_even =
        |n: u64| comb(SEGMENTS, n) * pe.powi(n as i32) * (1.0 - pe).powi((SEGMENTS - n) as i32);
    let mut fail = pn_zero(15) * p_seg_odd3(p_cell);
    for i in 0..SEGMENTS {
        fail += pn_even(SEGMENTS - i) * pn_zero(i);
    }
    fail.min(1.0)
}

/// P[Killi mis-classifies a line]: both detectors must fail.
pub fn p_fail_killi(p_cell: f64) -> f64 {
    p_fail_secded(p_cell) * p_fail_seg_parity(p_cell)
}

/// Coverage (fraction of lines classified correctly) per technique.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coverage {
    /// 16-bit segmented parity alone.
    pub parity16: f64,
    /// SECDED alone.
    pub secded: f64,
    /// DEC-TED (detects up to 3 errors; checkbits also fallible).
    pub dected: f64,
    /// MS-ECC (detects up to 11 errors in the line).
    pub msecc: f64,
    /// FLAIR during training (DMR + SECDED: both copies must fail).
    pub flair: f64,
    /// Killi (segmented parity x SECDED).
    pub killi: f64,
}

/// Computes the Figure 6 coverage numbers at a per-cell failure
/// probability.
pub fn coverage(p_cell: f64) -> Coverage {
    let secded_fail = p_fail_secded(p_cell);
    // DMR escapes detection only when both copies corrupt *identically*:
    // each bit pair agrees with probability p^2 + (1-p)^2, and at least one
    // agreed-upon bit must be wrong.
    let agree = (p_cell * p_cell + (1.0 - p_cell) * (1.0 - p_cell)).powi(N_SECDED as i32);
    let clean = (1.0 - p_cell).powi(2 * N_SECDED as i32);
    let dmr_fail = (agree - clean).max(0.0);
    Coverage {
        parity16: 1.0 - p_fail_seg_parity(p_cell),
        secded: 1.0 - secded_fail,
        dected: 1.0 - binom_sf(N_DECTED, 4, p_cell),
        msecc: 1.0 - binom_sf(N_SECDED, 12, p_cell),
        flair: 1.0 - secded_fail * dmr_fail,
        killi: 1.0 - p_fail_killi(p_cell),
    }
}

/// Coverage at a normalized voltage under the default 1 GHz fault model,
/// averaged over the per-line variation mixture.
pub fn coverage_at(model: &CellFailureModel, vdd: NormVdd) -> Coverage {
    let freq = FreqGhz::PEAK;
    Coverage {
        parity16: model.mix(vdd, freq, |p| coverage(p).parity16),
        secded: model.mix(vdd, freq, |p| coverage(p).secded),
        dected: model.mix(vdd, freq, |p| coverage(p).dected),
        msecc: model.mix(vdd, freq, |p| coverage(p).msecc),
        flair: model.mix(vdd, freq, |p| coverage(p).flair),
        killi: model.mix(vdd, freq, |p| coverage(p).killi),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fault_rate_means_full_coverage() {
        let c = coverage(0.0);
        for v in [c.parity16, c.secded, c.dected, c.msecc, c.flair, c.killi] {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn killi_beats_its_components() {
        for p in [1e-4, 1e-3, 1e-2] {
            let c = coverage(p);
            assert!(c.killi >= c.secded, "p = {p}");
            assert!(c.killi >= c.parity16, "p = {p}");
        }
    }

    #[test]
    fn strength_ordering_of_plain_codes() {
        for p in [1e-3, 5e-3, 2e-2] {
            let c = coverage(p);
            assert!(c.msecc >= c.dected, "p = {p}");
            assert!(c.dected >= c.secded, "p = {p}");
        }
    }

    #[test]
    fn all_techniques_cover_everything_above_0_6_vdd() {
        // "Up to 0.6 x VDD, all techniques correctly classify all lines."
        let model = CellFailureModel::finfet14();
        let c = coverage_at(&model, NormVdd(0.65));
        for v in [c.parity16, c.secded, c.dected, c.msecc, c.flair, c.killi] {
            assert!(v > 0.999999, "{c:?}");
        }
    }

    #[test]
    fn killi_and_flair_stay_near_100_at_low_voltage() {
        // Figure 6: below 0.6 VDD only Killi and FLAIR remain ~100 %.
        let model = CellFailureModel::finfet14();
        let c = coverage_at(&model, NormVdd(0.55));
        assert!(c.killi > 0.99, "killi = {}", c.killi);
        assert!(c.flair > 0.99, "flair = {}", c.flair);
        assert!(c.secded < c.killi);
    }

    #[test]
    fn coverage_degrades_monotonically() {
        let mut prev = 2.0;
        for p in [1e-5, 1e-4, 1e-3, 1e-2, 5e-2] {
            let c = coverage(p);
            assert!(c.secded <= prev);
            prev = c.secded;
        }
    }

    #[test]
    fn seg_parity_blind_spots_are_rare_but_real() {
        let p = 1e-2;
        let f = p_fail_seg_parity(p);
        assert!(f > 0.0, "even-error patterns must register");
        assert!(f < 0.1, "but remain rare: {f}");
    }
}

//! Analytic silent-data-corruption exposure — the §5.6.2 "99.997 % of
//! lines" computation.
//!
//! The paper's masked-fault hazard: a line with a two-bit fault confined to
//! one stable-mode parity segment can be classified fault-free while both
//! faults are masked; a later write unmasks them, and the even per-segment
//! error count makes 4-bit parity blind — a silent corruption. The paper
//! reports the probability of that scenario as 0.003 % of lines at
//! 0.625 x VDD ("for 99.997 % of lines ... Killi will protect against such
//! type of fault scenarios").

use killi_fault::cell_model::{CellFailureModel, FreqGhz, NormVdd};
use killi_fault::prob::{binom_pmf, ln_choose};

/// Stable-mode parity segments (4 interleaved, 128 bits each).
const SEGMENTS: u64 = 4;
/// Data bits per stable-mode segment.
const SEG_BITS: u64 = 128;

/// P[a specific line with per-cell failure probability `p` is in the
/// §5.6.2 hazard class]: at least one stable-mode segment holds an even
/// (>= 2) number of faults and every other segment holds none, *and* the
/// installing write masks all of them (each stuck-at cell matches its
/// written bit with probability 1/2 under random data).
pub fn p_hazard_line(p: f64) -> f64 {
    if p <= 0.0 {
        return 0.0;
    }
    // P[one segment has exactly 2k faults, all masked at install time].
    let seg_even_masked: f64 = (1..=SEG_BITS / 2)
        .map(|k| {
            let faults = 2 * k;
            let pattern = (ln_choose(SEG_BITS, faults).exp())
                * p.powi(faults as i32)
                * (1.0 - p).powi((SEG_BITS - faults) as i32);
            // Masking: every fault's stuck polarity matches the write.
            pattern * 0.5f64.powi(faults as i32)
        })
        .sum();
    let seg_zero = binom_pmf(SEG_BITS, 0, p);
    // One hazardous segment, the rest clean (the dominant term; multiple
    // hazardous segments are strictly rarer and also blind to parity).
    SEGMENTS as f64 * seg_even_masked * seg_zero.powi((SEGMENTS - 1) as i32)
}

/// Fraction of lines protected against the masked-multi-bit scenario at an
/// operating point (the paper's 99.997 %), averaged over the per-line
/// variation mixture.
pub fn protected_fraction(model: &CellFailureModel, vdd: NormVdd) -> f64 {
    1.0 - model.mix(vdd, FreqGhz::PEAK, p_hazard_line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_no_hazard() {
        assert_eq!(p_hazard_line(0.0), 0.0);
    }

    #[test]
    fn hazard_grows_with_fault_rate() {
        let mut prev = 0.0;
        for p in [1e-5, 1e-4, 1e-3, 1e-2] {
            let h = p_hazard_line(p);
            assert!(h >= prev, "p = {p}");
            prev = h;
        }
    }

    #[test]
    fn paper_claim_99_997_percent_at_0_625() {
        // §5.6.2: "for 99.997% of lines, when operating at 0.625 VDD,
        // Killi will protect against such type of fault scenarios."
        let model = CellFailureModel::finfet14();
        let protected = protected_fraction(&model, NormVdd::LV_0_625);
        assert!(
            protected > 0.9995,
            "protected = {protected} (paper: 0.99997)"
        );
        assert!(protected < 1.0, "the hazard exists");
    }

    #[test]
    fn hazard_is_dominated_by_two_bit_patterns() {
        // At realistic rates the 2-fault term carries essentially all of
        // the mass; the closed form must agree with the k = 1 term alone
        // to within a few percent.
        let p: f64 = 1e-3;
        let two_bit_only = SEGMENTS as f64
            * ln_choose(SEG_BITS, 2).exp()
            * p.powi(2)
            * (1.0 - p).powi((SEG_BITS - 2) as i32)
            * 0.25
            * binom_pmf(SEG_BITS, 0, p).powi((SEGMENTS - 1) as i32);
        let full = p_hazard_line(p);
        assert!(
            (full - two_bit_only) / full < 0.05,
            "{full} vs {two_bit_only}"
        );
    }

    #[test]
    fn inverted_write_check_removes_the_hazard_class() {
        // Documented equivalence: the §5.6.2 mitigation classifies installs
        // exactly (see `killi::scheme` property tests), so its residual
        // hazard is zero by construction — the analytic model only applies
        // to plain Killi.
        let model = CellFailureModel::finfet14();
        let h = 1.0 - protected_fraction(&model, NormVdd(0.575));
        assert!(h > 0.0, "plain Killi's hazard is nonzero at low voltage");
    }
}

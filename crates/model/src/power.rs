//! Power model: Table 6.
//!
//! The paper reports L2 data+tag array power at `0.625 x VDD`, normalized
//! to a fault-free cache at nominal VDD, including (for Killi) the ECC
//! cache and the extra memory traffic its contention causes. We model:
//!
//! - array power scaling as `V^2` (dynamic `C V^2 f` at fixed `f`, and
//!   leakage which also drops superlinearly with V; the paper's DECTED
//!   number of 43.7 % at `V^2 = 39.1 %` implies the same first-order
//!   scaling),
//! - checkbit storage as a proportional increase of the array (charged at
//!   the array's operating voltage),
//! - encoder/decoder logic as a per-scheme constant (stronger codes burn
//!   more; calibrated once against Table 6's DECTED/FLAIR/MS-ECC column),
//! - the ECC cache and extra memory traffic from *measured* simulation
//!   access counts.

use killi_sim::stats::SimStats;

/// Per-scheme circuit constants.
#[derive(Debug, Clone, Copy)]
pub struct SchemePower {
    /// Checkbit + metadata bits per 512-bit line stored in the LV array.
    pub overhead_bits: f64,
    /// Encoder/decoder logic power as a fraction of nominal array power.
    pub codec: f64,
    /// ECC-cache capacity in KiB (0 for schemes without one).
    pub ecc_cache_kib: f64,
}

impl SchemePower {
    /// DEC-TED per line.
    pub fn dected() -> Self {
        SchemePower {
            overhead_bits: 22.0,
            codec: 0.030,
            ecc_cache_kib: 0.0,
        }
    }

    /// FLAIR / SECDED per line.
    pub fn flair() -> Self {
        SchemePower {
            overhead_bits: 12.0,
            codec: 0.017,
            ecc_cache_kib: 0.0,
        }
    }

    /// MS-ECC (paper's OLSC configuration).
    pub fn msecc() -> Self {
        SchemePower {
            overhead_bits: 198.0,
            codec: 0.010, // majority logic is XOR trees
            ecc_cache_kib: 0.0,
        }
    }

    /// Killi at an ECC-cache ratio over the paper's 2 MB L2.
    pub fn killi(ratio: usize) -> Self {
        let entries = 32768.0 / ratio as f64;
        SchemePower {
            overhead_bits: 6.0, // 2 DFH + 4 parity
            codec: 0.007,
            ecc_cache_kib: entries * 41.0 / 8.0 / 1024.0,
        }
    }
}

/// The Table 6 power model.
#[derive(Debug, Clone, Copy)]
pub struct PowerModel {
    /// L2 supply normalized to nominal.
    pub v_l2: f64,
    /// Energy of one main-memory access relative to one L2 array access.
    pub mem_energy_ratio: f64,
    /// Static + dynamic power of the ECC cache per KiB, as a fraction of
    /// nominal L2 array power.
    pub ecc_cache_per_kib: f64,
}

impl PowerModel {
    /// The paper's operating point.
    pub fn paper() -> Self {
        PowerModel {
            v_l2: 0.625,
            mem_energy_ratio: 8.0,
            ecc_cache_per_kib: 0.002,
        }
    }

    /// Normalized L2 power (fraction of the fault-free nominal-VDD
    /// baseline) for a scheme, given its simulation stats and the
    /// fault-free baseline run's stats.
    ///
    /// # Panics
    ///
    /// Panics if the baseline performed no L2 accesses.
    pub fn normalized(&self, scheme: SchemePower, run: &SimStats, baseline: &SimStats) -> f64 {
        let base_accesses = (baseline.l2_tag_accesses + baseline.l2_data_accesses) as f64;
        assert!(base_accesses > 0.0, "baseline performed no L2 accesses");
        let run_accesses = (run.l2_tag_accesses + run.l2_data_accesses) as f64;

        // Array power: V^2-scaled, inflated by stored overhead bits and by
        // the activity ratio relative to the baseline.
        let v2 = self.v_l2 * self.v_l2;
        let array = v2 * (1.0 + scheme.overhead_bits / 512.0) * (run_accesses / base_accesses);

        // Extra memory traffic relative to the baseline, charged at the
        // memory energy ratio (the baseline's own memory traffic is not
        // part of the L2 power budget).
        let extra_mem = (run.mem_reads + run.mem_writes)
            .saturating_sub(baseline.mem_reads + baseline.mem_writes)
            as f64;
        let mem = self.mem_energy_ratio * extra_mem / base_accesses;

        let ecc_cache = self.ecc_cache_per_kib * scheme.ecc_cache_kib;

        array + scheme.codec + ecc_cache + mem
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(tag: u64, data: u64, mem: u64) -> SimStats {
        SimStats {
            l2_tag_accesses: tag,
            l2_data_accesses: data,
            mem_reads: mem,
            ..SimStats::default()
        }
    }

    #[test]
    fn equal_activity_reduces_to_static_model() {
        let m = PowerModel::paper();
        let base = stats(1000, 900, 100);
        let p = m.normalized(SchemePower::flair(), &base, &base);
        let expect = 0.625 * 0.625 * (1.0 + 12.0 / 512.0) + 0.017;
        assert!((p - expect).abs() < 1e-9, "{p} vs {expect}");
    }

    #[test]
    fn table6_scheme_ordering() {
        // MS-ECC > DECTED > FLAIR > Killi, with everything in the
        // 40-56 % band the paper reports.
        let m = PowerModel::paper();
        let base = stats(1000, 900, 100);
        let msecc = m.normalized(SchemePower::msecc(), &base, &base);
        let dected = m.normalized(SchemePower::dected(), &base, &base);
        let flair = m.normalized(SchemePower::flair(), &base, &base);
        let killi = m.normalized(SchemePower::killi(256), &base, &base);
        assert!(msecc > dected && dected > flair && flair > killi);
        for (v, lo, hi) in [
            (msecc, 0.50, 0.60),
            (dected, 0.40, 0.47),
            (flair, 0.40, 0.45),
            (killi, 0.38, 0.43),
        ] {
            assert!((lo..hi).contains(&v), "{v} outside [{lo}, {hi})");
        }
    }

    #[test]
    fn larger_ecc_cache_costs_more() {
        let m = PowerModel::paper();
        let base = stats(1000, 900, 100);
        let small = m.normalized(SchemePower::killi(256), &base, &base);
        let large = m.normalized(SchemePower::killi(16), &base, &base);
        assert!(large > small);
        // Table 6: 40.3 % (1:256) .. 42.4 % (1:16) — roughly a 2-point
        // spread from the ECC cache alone.
        assert!((large - small) < 0.05);
    }

    #[test]
    fn extra_memory_traffic_is_charged() {
        let m = PowerModel::paper();
        let base = stats(1000, 900, 100);
        let run = stats(1000, 900, 150);
        let with_misses = m.normalized(SchemePower::killi(256), &run, &base);
        let without = m.normalized(SchemePower::killi(256), &base, &base);
        assert!(with_misses > without);
    }

    #[test]
    #[should_panic(expected = "no L2 accesses")]
    fn baseline_must_have_activity() {
        let m = PowerModel::paper();
        m.normalized(
            SchemePower::flair(),
            &SimStats::default(),
            &SimStats::default(),
        );
    }
}

//! Observability for the `killi-serve` daemon.
//!
//! The sweep service has its own event taxonomy and counter registry,
//! deliberately separate from the simulator-side [`crate::KilliEvent`] /
//! [`crate::MetricSet`] pair: the simulator counters are part of the
//! byte-stable `killi-sweep/v2` report schema and cannot grow without
//! invalidating golden files, while the service counters describe the
//! daemon's lifecycle (accepts, queue churn, cache behaviour) and are
//! free to evolve with it.
//!
//! [`ServeMetrics`] follows the same design rules as `MetricSet`: plain
//! data, element-wise [`ServeMetrics::merge`], fixed JSON field order so
//! equal snapshots serialise to identical bytes, and a single
//! [`ServeMetrics::apply`] routing point so every event increments its
//! counters in exactly one place.

/// Job identifiers are 128-bit content hashes, rendered as 32 hex chars.
pub type JobId = u128;

/// Formats a [`JobId`] the way the service spells it on the wire.
pub fn format_job_id(id: JobId) -> String {
    format!("{id:032x}")
}

/// Parses a 32-hex-char job id as produced by [`format_job_id`].
pub fn parse_job_id(text: &str) -> Option<JobId> {
    if text.len() != 32 || !text.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    JobId::from_str_radix(text, 16).ok()
}

/// Everything observable that happens inside the sweep service.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeEvent {
    /// A syntactically valid job was accepted (new or duplicate).
    JobAccepted { job: JobId },
    /// A new job entered the FIFO queue; `depth` is the queue length
    /// after the push.
    JobEnqueued { job: JobId, depth: usize },
    /// A worker pulled the job off the queue and started executing it.
    JobDequeued { job: JobId, worker: usize },
    /// The sweep finished and its report was stored.
    JobCompleted { job: JobId },
    /// The sweep panicked or was otherwise lost; the job is terminal.
    JobFailed { job: JobId },
    /// A submission matched an already-known job (any state) and was
    /// answered from the content-addressed store without re-running.
    CacheHit { job: JobId },
    /// A completed report was inserted into the result cache.
    CacheInsert { job: JobId },
    /// A completed report was evicted to honour the cache capacity.
    CacheEvict { job: JobId },
    /// A submission was rejected with 429 because the queue was full.
    QueueFull { depth: usize },
    /// A submission was rejected with 503 because shutdown has begun
    /// and the service no longer accepts new jobs.
    Draining,
    /// A request failed validation (bad JSON, bad config, oversize...).
    BadRequest,
}

impl ServeEvent {
    /// Stable event-kind label (used in logs and tests).
    pub fn kind(&self) -> &'static str {
        match self {
            ServeEvent::JobAccepted { .. } => "job_accepted",
            ServeEvent::JobEnqueued { .. } => "job_enqueued",
            ServeEvent::JobDequeued { .. } => "job_dequeued",
            ServeEvent::JobCompleted { .. } => "job_completed",
            ServeEvent::JobFailed { .. } => "job_failed",
            ServeEvent::CacheHit { .. } => "cache_hit",
            ServeEvent::CacheInsert { .. } => "cache_insert",
            ServeEvent::CacheEvict { .. } => "cache_evict",
            ServeEvent::QueueFull { .. } => "queue_full",
            ServeEvent::Draining => "draining",
            ServeEvent::BadRequest => "bad_request",
        }
    }
}

/// Every monotonic counter the service taxonomy can increment.
///
/// The discriminant doubles as the index into `ServeMetrics::counters`,
/// and [`ServeCounter::NAMES`] carries the stable JSON names in the
/// same order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum ServeCounter {
    JobsAccepted = 0,
    JobsEnqueued,
    JobsDequeued,
    JobsCompleted,
    JobsFailed,
    SweepExecutions,
    CacheHits,
    CacheInserts,
    CacheEvictions,
    RejectedQueueFull,
    RejectedDraining,
    BadRequests,
}

impl ServeCounter {
    /// Number of counters (length of [`ServeCounter::NAMES`]).
    pub const COUNT: usize = 12;

    /// Stable JSON names, indexed by discriminant.
    pub const NAMES: [&'static str; ServeCounter::COUNT] = [
        "jobs_accepted",
        "jobs_enqueued",
        "jobs_dequeued",
        "jobs_completed",
        "jobs_failed",
        "sweep_executions",
        "cache_hits",
        "cache_inserts",
        "cache_evictions",
        "rejected_queue_full",
        "rejected_draining",
        "bad_requests",
    ];

    /// All counters in index order.
    pub const ALL: [ServeCounter; ServeCounter::COUNT] = [
        ServeCounter::JobsAccepted,
        ServeCounter::JobsEnqueued,
        ServeCounter::JobsDequeued,
        ServeCounter::JobsCompleted,
        ServeCounter::JobsFailed,
        ServeCounter::SweepExecutions,
        ServeCounter::CacheHits,
        ServeCounter::CacheInserts,
        ServeCounter::CacheEvictions,
        ServeCounter::RejectedQueueFull,
        ServeCounter::RejectedDraining,
        ServeCounter::BadRequests,
    ];

    /// JSON name of this counter.
    pub fn name(self) -> &'static str {
        ServeCounter::NAMES[self as usize]
    }
}

/// Aggregate counter state for the daemon.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeMetrics {
    counters: [u64; ServeCounter::COUNT],
}

impl ServeMetrics {
    /// An all-zero set (the merge identity).
    pub fn new() -> Self {
        ServeMetrics::default()
    }

    /// Adds `n` to a counter.
    pub fn add(&mut self, counter: ServeCounter, n: u64) {
        self.counters[counter as usize] += n;
    }

    /// Current value of a counter.
    pub fn get(&self, counter: ServeCounter) -> u64 {
        self.counters[counter as usize]
    }

    /// Routes an event to the counters it implies — the single place
    /// the service taxonomy maps onto the registry.
    pub fn apply(&mut self, event: &ServeEvent) {
        match event {
            ServeEvent::JobAccepted { .. } => self.add(ServeCounter::JobsAccepted, 1),
            ServeEvent::JobEnqueued { .. } => self.add(ServeCounter::JobsEnqueued, 1),
            ServeEvent::JobDequeued { .. } => {
                self.add(ServeCounter::JobsDequeued, 1);
                self.add(ServeCounter::SweepExecutions, 1);
            }
            ServeEvent::JobCompleted { .. } => self.add(ServeCounter::JobsCompleted, 1),
            ServeEvent::JobFailed { .. } => self.add(ServeCounter::JobsFailed, 1),
            ServeEvent::CacheHit { .. } => self.add(ServeCounter::CacheHits, 1),
            ServeEvent::CacheInsert { .. } => self.add(ServeCounter::CacheInserts, 1),
            ServeEvent::CacheEvict { .. } => self.add(ServeCounter::CacheEvictions, 1),
            ServeEvent::QueueFull { .. } => self.add(ServeCounter::RejectedQueueFull, 1),
            ServeEvent::Draining => self.add(ServeCounter::RejectedDraining, 1),
            ServeEvent::BadRequest => self.add(ServeCounter::BadRequests, 1),
        }
    }

    /// Element-wise addition of `other` into `self`. Associative and
    /// commutative; `ServeMetrics::new()` is the identity.
    pub fn merge(&mut self, other: &ServeMetrics) {
        for (c, o) in self.counters.iter_mut().zip(other.counters.iter()) {
            *c += o;
        }
    }

    /// Serialises the set as a compact JSON object. Field order is
    /// fixed, so equal snapshots produce identical bytes.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\"schema\":\"killi-serve-metrics/v1\",\"counters\":{");
        for (i, name) in ServeCounter::NAMES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{}", self.counters[i]);
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_id_round_trips_through_hex() {
        for id in [0u128, 1, u128::MAX, 0xdead_beef_cafe] {
            let text = format_job_id(id);
            assert_eq!(text.len(), 32);
            assert_eq!(parse_job_id(&text), Some(id));
        }
        assert_eq!(parse_job_id("xyz"), None);
        assert_eq!(parse_job_id(&"f".repeat(33)), None);
        assert_eq!(parse_job_id("00000000000000000000000000000g00"), None);
    }

    #[test]
    fn apply_routes_every_event_kind() {
        let mut m = ServeMetrics::new();
        let events = [
            ServeEvent::JobAccepted { job: 1 },
            ServeEvent::JobEnqueued { job: 1, depth: 1 },
            ServeEvent::JobDequeued { job: 1, worker: 0 },
            ServeEvent::JobCompleted { job: 1 },
            ServeEvent::JobFailed { job: 2 },
            ServeEvent::CacheHit { job: 1 },
            ServeEvent::CacheInsert { job: 1 },
            ServeEvent::CacheEvict { job: 1 },
            ServeEvent::QueueFull { depth: 4 },
            ServeEvent::Draining,
            ServeEvent::BadRequest,
        ];
        for e in &events {
            m.apply(e);
        }
        for c in ServeCounter::ALL {
            assert!(m.get(c) >= 1, "counter {} untouched", c.name());
        }
        // JobDequeued implies one sweep execution.
        assert_eq!(m.get(ServeCounter::SweepExecutions), 1);
    }

    #[test]
    fn merge_is_elementwise_with_identity() {
        let mut a = ServeMetrics::new();
        a.add(ServeCounter::CacheHits, 3);
        let mut b = ServeMetrics::new();
        b.add(ServeCounter::CacheHits, 4);
        b.add(ServeCounter::JobsFailed, 1);
        let mut ab = a;
        ab.merge(&b);
        assert_eq!(ab.get(ServeCounter::CacheHits), 7);
        assert_eq!(ab.get(ServeCounter::JobsFailed), 1);
        let mut with_id = ab;
        with_id.merge(&ServeMetrics::new());
        assert_eq!(with_id, ab);
    }

    #[test]
    fn json_shape_is_stable_and_parses() {
        let mut m = ServeMetrics::new();
        m.add(ServeCounter::JobsAccepted, 5);
        let text = m.to_json();
        let v = crate::json::parse(&text).expect("serve metrics JSON parses");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("killi-serve-metrics/v1")
        );
        let counters = v.get("counters").expect("counters object");
        for name in ServeCounter::NAMES {
            assert!(counters.get(name).is_some(), "missing counter {name}");
        }
        assert_eq!(
            counters.get("jobs_accepted").and_then(|c| c.as_u64()),
            Some(5)
        );
    }

    #[test]
    fn event_kinds_are_distinct() {
        let kinds = [
            ServeEvent::JobAccepted { job: 0 }.kind(),
            ServeEvent::JobEnqueued { job: 0, depth: 0 }.kind(),
            ServeEvent::JobDequeued { job: 0, worker: 0 }.kind(),
            ServeEvent::JobCompleted { job: 0 }.kind(),
            ServeEvent::JobFailed { job: 0 }.kind(),
            ServeEvent::CacheHit { job: 0 }.kind(),
            ServeEvent::CacheInsert { job: 0 }.kind(),
            ServeEvent::CacheEvict { job: 0 }.kind(),
            ServeEvent::QueueFull { depth: 0 }.kind(),
            ServeEvent::Draining.kind(),
            ServeEvent::BadRequest.kind(),
        ];
        let mut seen = std::collections::HashSet::new();
        for k in kinds {
            assert!(seen.insert(k), "duplicate event kind {k}");
        }
    }
}

//! Mergeable counter/histogram registry.
//!
//! A [`MetricSet`] is plain data: a fixed array of monotonic counters,
//! the 4×4 DFH transition matrix, an optional DFH census gauge, and two
//! fixed-width histograms (ECC-cache set occupancy, DFH training
//! latency in ops). [`MetricSet::merge`] is element-wise addition, so
//! folding per-replicate sets into a per-cell aggregate is associative
//! and commutative — the property the sweep engine's determinism
//! contract leans on, and that the unit tests here pin down.

use crate::event::KilliEvent;

/// Number of histogram buckets (fixed so merge is element-wise).
pub const HISTOGRAM_BUCKETS: usize = 16;

/// Every monotonic counter the taxonomy can increment.
///
/// The discriminant doubles as the index into `MetricSet::counters`,
/// and [`Counter::NAMES`] carries the stable JSON names in the same
/// order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    DfhTransitions = 0,
    ParityChecks,
    ParityMismatches,
    SyndromeChecks,
    Corrections,
    Detections,
    EccCacheAccesses,
    EccCacheInserts,
    EccCachePromotes,
    EccCacheDisplacements,
    EccCacheInvalidations,
    ErrorInducedMisses,
    EccInducedMisses,
    VictimDecisions,
    FillsRejected,
    DisabledLines,
}

impl Counter {
    /// Number of counters (length of [`Counter::NAMES`]).
    pub const COUNT: usize = 16;

    /// Stable JSON names, indexed by discriminant.
    pub const NAMES: [&'static str; Counter::COUNT] = [
        "dfh_transitions",
        "parity_checks",
        "parity_mismatches",
        "syndrome_checks",
        "corrections",
        "detections",
        "ecc_cache_accesses",
        "ecc_cache_inserts",
        "ecc_cache_promotes",
        "ecc_cache_displacements",
        "ecc_cache_invalidations",
        "error_induced_misses",
        "ecc_induced_misses",
        "victim_decisions",
        "fills_rejected",
        "disabled_lines",
    ];

    /// All counters in index order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::DfhTransitions,
        Counter::ParityChecks,
        Counter::ParityMismatches,
        Counter::SyndromeChecks,
        Counter::Corrections,
        Counter::Detections,
        Counter::EccCacheAccesses,
        Counter::EccCacheInserts,
        Counter::EccCachePromotes,
        Counter::EccCacheDisplacements,
        Counter::EccCacheInvalidations,
        Counter::ErrorInducedMisses,
        Counter::EccInducedMisses,
        Counter::VictimDecisions,
        Counter::FillsRejected,
        Counter::DisabledLines,
    ];

    /// JSON name of this counter.
    pub fn name(self) -> &'static str {
        Counter::NAMES[self as usize]
    }
}

/// A fixed-width histogram: bucket counts plus running count/sum of the
/// observed values (so means survive aggregation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    pub count: u64,
    pub sum: u64,
}

impl Histogram {
    /// An empty histogram (the merge identity).
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records `value` with linear bucketing: bucket `i` holds value
    /// `i`, the last bucket is a catch-all for `value >= BUCKETS - 1`.
    pub fn observe_linear(&mut self, value: u64) {
        let idx = (value as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Records `value` with power-of-two bucketing: bucket 0 holds 0,
    /// bucket `i` holds values in `[2^(i-1), 2^i)`, last bucket is a
    /// catch-all.
    pub fn observe_log2(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Element-wise addition of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Mean of the observed values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// The aggregate metric state for one simulation (or one sweep cell).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricSet {
    counters: [u64; Counter::COUNT],
    /// `dfh_transitions[from][to]` transition counts (2-bit encoding).
    pub dfh_transitions: [[u64; 4]; 4],
    /// End-of-run DFH population `[Stable0, Unknown, Stable1, Disabled]`
    /// — a gauge; `None` for schemes without DFH state. Merging sums
    /// censuses so per-cell aggregates stay meaningful as totals.
    pub dfh_census: Option<[u64; 4]>,
    /// ECC-cache set occupancy sampled at each insert (linear buckets).
    pub ecc_occupancy: Histogram,
    /// Ops spent in the Unknown (training) state before classification
    /// (power-of-two buckets).
    pub training_latency_ops: Histogram,
}

impl MetricSet {
    /// An all-zero set (the merge identity).
    pub fn new() -> Self {
        MetricSet::default()
    }

    /// Adds `n` to a counter.
    pub fn add(&mut self, counter: Counter, n: u64) {
        self.counters[counter as usize] += n;
    }

    /// Overwrites a counter (for gauges snapshotted at end of run).
    pub fn set(&mut self, counter: Counter, value: u64) {
        self.counters[counter as usize] = value;
    }

    /// Current value of a counter.
    pub fn get(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// Records one DFH transition (also bumps the flat counter).
    pub fn record_transition(&mut self, from: u8, to: u8) {
        self.dfh_transitions[from as usize & 3][to as usize & 3] += 1;
        self.add(Counter::DfhTransitions, 1);
    }

    /// Total DFH transitions recorded in the matrix.
    pub fn total_transitions(&self) -> u64 {
        self.dfh_transitions.iter().flatten().sum()
    }

    /// Routes an event to the counters it implies. This is the single
    /// place the taxonomy maps onto the registry, used by sinks and by
    /// trace post-processing.
    pub fn apply(&mut self, event: &KilliEvent) {
        match *event {
            KilliEvent::DfhTransition { from, to, .. } => self.record_transition(from, to),
            KilliEvent::ParityObservation { mismatch, .. } => {
                self.add(Counter::ParityChecks, 1);
                if mismatch {
                    self.add(Counter::ParityMismatches, 1);
                }
            }
            KilliEvent::SyndromeObservation {
                corrected,
                detected,
                ..
            } => {
                self.add(Counter::SyndromeChecks, 1);
                if corrected {
                    self.add(Counter::Corrections, 1);
                }
                if detected {
                    self.add(Counter::Detections, 1);
                }
            }
            KilliEvent::EccInsert { .. } => self.add(Counter::EccCacheInserts, 1),
            KilliEvent::EccPromote { .. } => self.add(Counter::EccCachePromotes, 1),
            KilliEvent::EccDisplace { .. } => self.add(Counter::EccCacheDisplacements, 1),
            KilliEvent::EccInvalidate { .. } => self.add(Counter::EccCacheInvalidations, 1),
            KilliEvent::ErrorMiss { .. } => self.add(Counter::ErrorInducedMisses, 1),
            KilliEvent::EccInducedMiss { .. } => self.add(Counter::EccInducedMisses, 1),
            KilliEvent::VictimDecision { .. } => self.add(Counter::VictimDecisions, 1),
            KilliEvent::FillRejected { .. } => self.add(Counter::FillsRejected, 1),
        }
    }

    /// Element-wise addition of `other` into `self`. Associative and
    /// commutative; `MetricSet::new()` is the identity.
    pub fn merge(&mut self, other: &MetricSet) {
        for (c, o) in self.counters.iter_mut().zip(other.counters.iter()) {
            *c += o;
        }
        for (row, orow) in self
            .dfh_transitions
            .iter_mut()
            .zip(other.dfh_transitions.iter())
        {
            for (cell, ocell) in row.iter_mut().zip(orow.iter()) {
                *cell += ocell;
            }
        }
        self.dfh_census = match (self.dfh_census, other.dfh_census) {
            (None, c) | (c, None) => c,
            (Some(a), Some(b)) => Some([a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]]),
        };
        self.ecc_occupancy.merge(&other.ecc_occupancy);
        self.training_latency_ops.merge(&other.training_latency_ops);
    }

    /// Serialises the set as a compact JSON object. Field order is
    /// fixed, so equal sets produce identical bytes.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\"counters\":{");
        for (i, name) in Counter::NAMES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{}", self.counters[i]);
        }
        out.push_str("},\"dfh_transitions\":[");
        for (i, row) in self.dfh_transitions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{},{},{},{}]", row[0], row[1], row[2], row[3]);
        }
        out.push_str("],\"dfh_census\":");
        match self.dfh_census {
            Some(c) => {
                let _ = write!(out, "[{},{},{},{}]", c[0], c[1], c[2], c[3]);
            }
            None => out.push_str("null"),
        }
        write_histogram(&mut out, ",\"ecc_occupancy\":", &self.ecc_occupancy);
        write_histogram(
            &mut out,
            ",\"training_latency_ops\":",
            &self.training_latency_ops,
        );
        out.push('}');
        out
    }
}

fn write_histogram(out: &mut String, key: &str, h: &Histogram) {
    use std::fmt::Write;
    out.push_str(key);
    out.push_str("{\"buckets\":[");
    for (i, b) in h.buckets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{b}");
    }
    let _ = write!(out, "],\"count\":{},\"sum\":{}}}", h.count, h.sum);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: u64) -> MetricSet {
        let mut m = MetricSet::new();
        for (i, c) in Counter::ALL.iter().enumerate() {
            m.add(*c, seed.wrapping_mul(i as u64 + 1) % 97);
        }
        m.record_transition((seed % 4) as u8, ((seed + 1) % 4) as u8);
        if seed.is_multiple_of(2) {
            m.dfh_census = Some([seed, seed + 1, seed + 2, seed + 3]);
        }
        m.ecc_occupancy.observe_linear(seed % 20);
        m.training_latency_ops.observe_log2(seed * 13 % 5000);
        m
    }

    fn merged(parts: &[&MetricSet]) -> MetricSet {
        let mut acc = MetricSet::new();
        for p in parts {
            acc.merge(p);
        }
        acc
    }

    #[test]
    fn merge_is_associative() {
        let (a, b, c) = (sample(3), sample(11), sample(40));
        let left = {
            let mut ab = a;
            ab.merge(&b);
            ab.merge(&c);
            ab
        };
        let right = {
            let mut bc = b;
            bc.merge(&c);
            let mut a2 = a;
            a2.merge(&bc);
            a2
        };
        assert_eq!(left, right);
    }

    #[test]
    fn merge_is_commutative_with_identity() {
        let (a, b) = (sample(7), sample(19));
        assert_eq!(merged(&[&a, &b]), merged(&[&b, &a]));
        assert_eq!(merged(&[&a, &MetricSet::new()]), a);
    }

    #[test]
    fn census_merge_treats_none_as_identity() {
        let mut a = MetricSet::new();
        let mut b = MetricSet::new();
        b.dfh_census = Some([1, 2, 3, 4]);
        a.merge(&b);
        assert_eq!(a.dfh_census, Some([1, 2, 3, 4]));
        let mut c = MetricSet::new();
        c.dfh_census = Some([10, 0, 0, 0]);
        a.merge(&c);
        assert_eq!(a.dfh_census, Some([11, 2, 3, 4]));
    }

    #[test]
    fn histogram_bucketing_and_mean() {
        let mut h = Histogram::new();
        h.observe_linear(0);
        h.observe_linear(3);
        h.observe_linear(100); // catch-all
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(h.count, 3);
        assert!((h.mean() - (103.0 / 3.0)).abs() < 1e-12);

        let mut l = Histogram::new();
        l.observe_log2(0);
        l.observe_log2(1);
        l.observe_log2(2);
        l.observe_log2(3);
        l.observe_log2(1 << 40); // catch-all
        assert_eq!(l.buckets[0], 1);
        assert_eq!(l.buckets[1], 1);
        assert_eq!(l.buckets[2], 2);
        assert_eq!(l.buckets[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn apply_routes_every_event_kind() {
        let mut m = MetricSet::new();
        m.apply(&KilliEvent::DfhTransition {
            line: 0,
            from: 1,
            to: 2,
        });
        m.apply(&KilliEvent::ParityObservation {
            line: 0,
            mismatch: true,
        });
        m.apply(&KilliEvent::SyndromeObservation {
            line: 0,
            corrected: true,
            detected: false,
        });
        m.apply(&KilliEvent::EccInsert { line: 0, set: 1 });
        m.apply(&KilliEvent::EccDisplace { line: 0, victim: 1 });
        m.apply(&KilliEvent::ErrorMiss { line: 0 });
        m.apply(&KilliEvent::EccInducedMiss { line: 0 });
        assert_eq!(m.get(Counter::DfhTransitions), 1);
        assert_eq!(m.dfh_transitions[1][2], 1);
        assert_eq!(m.get(Counter::ParityMismatches), 1);
        assert_eq!(m.get(Counter::Corrections), 1);
        assert_eq!(m.get(Counter::Detections), 0);
        assert_eq!(m.get(Counter::EccCacheInserts), 1);
        assert_eq!(m.get(Counter::EccCacheDisplacements), 1);
        assert_eq!(m.get(Counter::ErrorInducedMisses), 1);
        assert_eq!(m.get(Counter::EccInducedMisses), 1);
    }

    #[test]
    fn json_shape_is_stable_and_parses() {
        let m = sample(5);
        let text = m.to_json();
        let v = crate::json::parse(&text).expect("metric JSON parses");
        let counters = v.get("counters").expect("counters object");
        for name in Counter::NAMES {
            assert!(counters.get(name).is_some(), "missing counter {name}");
        }
        assert!(v.get("dfh_transitions").is_some());
        assert!(v.get("ecc_occupancy").is_some());
    }
}

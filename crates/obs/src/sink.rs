//! The `Sink` handle the simulator stack emits events through.
//!
//! A sink is a cheap-to-clone handle: either no-op (`Sink::none()`, the
//! default — a single `Option` check per emission, no allocation, no
//! event construction thanks to the closure-based API) or recording
//! (`Sink::recording(capacity)`, which owns an op clock and a bounded
//! [`TraceBuffer`]). The recorder sits behind `Arc<Mutex<_>>` so
//! schemes holding a sink stay `Send + Sync` (the workspace's API
//! contract tests require it); each simulation runs single-threaded, so
//! the lock is uncontended in practice.

use std::sync::{Arc, Mutex};

use crate::event::KilliEvent;
use crate::trace::TraceBuffer;

#[derive(Debug)]
struct Recorder {
    now: u64,
    trace: TraceBuffer,
}

/// A shared emission handle (see module docs).
#[derive(Clone, Debug, Default)]
pub struct Sink {
    inner: Option<Arc<Mutex<Recorder>>>,
}

impl Sink {
    /// The no-op sink: every operation is a branch on `None`.
    pub fn none() -> Self {
        Sink { inner: None }
    }

    /// A recording sink whose trace retains the last `capacity` events.
    pub fn recording(capacity: usize) -> Self {
        Sink {
            inner: Some(Arc::new(Mutex::new(Recorder {
                now: 0,
                trace: TraceBuffer::new(capacity),
            }))),
        }
    }

    /// True when events are actually captured.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Advances the op clock by one (the simulator calls this once per
    /// serviced trace op, giving every event a timestamp).
    pub fn tick(&self) {
        if let Some(inner) = &self.inner {
            inner.lock().unwrap().now += 1;
        }
    }

    /// Current op-clock value (0 for the no-op sink).
    pub fn now(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.lock().unwrap().now,
            None => 0,
        }
    }

    /// Emits an event. The closure only runs when recording, so the
    /// no-op path never constructs the event.
    pub fn emit<F: FnOnce() -> KilliEvent>(&self, make: F) {
        if let Some(inner) = &self.inner {
            let mut rec = inner.lock().unwrap();
            let at = rec.now;
            rec.trace.push(at, make());
        }
    }

    /// Total events emitted into this sink (`None` when no-op).
    pub fn events_emitted(&self) -> Option<u64> {
        self.inner
            .as_ref()
            .map(|inner| inner.lock().unwrap().trace.total_events())
    }

    /// Exports the trace as `killi-obs/v1` JSON-lines, with `context`
    /// key/value pairs (values must already be JSON-encoded) folded
    /// into the header. `None` for the no-op sink.
    pub fn export_jsonl(&self, context: &[(&str, String)]) -> Option<String> {
        self.inner
            .as_ref()
            .map(|inner| inner.lock().unwrap().trace.export_jsonl(context))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_skips_event_construction() {
        let sink = Sink::none();
        assert!(!sink.is_recording());
        sink.emit(|| unreachable!("no-op sink must not build events"));
        sink.tick();
        assert_eq!(sink.now(), 0);
        assert_eq!(sink.events_emitted(), None);
        assert_eq!(sink.export_jsonl(&[]), None);
    }

    #[test]
    fn recording_sink_timestamps_with_op_clock() {
        let sink = Sink::recording(16);
        sink.emit(|| KilliEvent::ErrorMiss { line: 1 });
        sink.tick();
        sink.tick();
        sink.emit(|| KilliEvent::ErrorMiss { line: 2 });
        assert_eq!(sink.events_emitted(), Some(2));
        let text = sink.export_jsonl(&[]).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].contains("\"at\":0"));
        assert!(lines[2].contains("\"at\":2"));
    }

    #[test]
    fn clones_share_one_recorder() {
        let sink = Sink::recording(16);
        let clone = sink.clone();
        clone.emit(|| KilliEvent::ErrorMiss { line: 3 });
        assert_eq!(sink.events_emitted(), Some(1));
    }

    #[test]
    fn sink_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Sink>();
    }
}

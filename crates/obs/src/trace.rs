//! Bounded ring-buffer event trace with JSON-lines export.
//!
//! The buffer keeps the *last* `capacity` events (oldest are dropped
//! first, with a drop counter so truncation is visible in the header).
//! Export is deterministic: one header line under the `killi-obs/v1`
//! schema, then one line per retained event, all fields in fixed order.

use std::collections::VecDeque;

use crate::event::KilliEvent;
use crate::json::escape;
use crate::OBS_SCHEMA;

/// One retained trace entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Monotonic sequence number over *all* emitted events (including
    /// ones later dropped from the ring).
    pub seq: u64,
    /// Op-clock timestamp at emission.
    pub at: u64,
    pub event: KilliEvent,
}

/// A fixed-capacity ring of trace entries.
#[derive(Clone, Debug)]
pub struct TraceBuffer {
    capacity: usize,
    entries: VecDeque<TraceEntry>,
    next_seq: u64,
    dropped: u64,
}

impl TraceBuffer {
    /// A buffer retaining at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceBuffer {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Records an event at op-clock `at`, evicting the oldest retained
    /// entry when full.
    pub fn push(&mut self, at: u64, event: KilliEvent) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry {
            seq: self.next_seq,
            at,
            event,
        });
        self.next_seq += 1;
    }

    /// Total events ever pushed.
    pub fn total_events(&self) -> u64 {
        self.next_seq
    }

    /// Events evicted to honour the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Serialises the trace as JSON-lines: a header object carrying the
    /// schema tag, capacity/volume bookkeeping, and the caller's
    /// `context` key/value pairs (cell identity, seeds, …), followed by
    /// one object per retained event. Byte-deterministic for equal
    /// contents.
    pub fn export_jsonl(&self, context: &[(&str, String)]) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = write!(out, "{{\"schema\":\"{OBS_SCHEMA}\"");
        for (key, value) in context {
            let _ = write!(out, ",\"{}\":{}", escape(key), value);
        }
        let _ = writeln!(
            out,
            ",\"capacity\":{},\"events\":{},\"dropped\":{}}}",
            self.capacity, self.next_seq, self.dropped
        );
        for entry in &self.entries {
            let _ = write!(
                out,
                "{{\"seq\":{},\"at\":{},\"type\":\"{}\",\"line\":{}",
                entry.seq,
                entry.at,
                entry.event.kind(),
                entry.event.line()
            );
            entry.event.write_json_fields(&mut out);
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn ring_keeps_last_capacity_events() {
        let mut t = TraceBuffer::new(3);
        for i in 0..5u32 {
            t.push(i as u64, KilliEvent::ErrorMiss { line: i });
        }
        assert_eq!(t.total_events(), 5);
        assert_eq!(t.dropped(), 2);
        let seqs: Vec<u64> = t.entries().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn export_lines_are_valid_json_with_schema_header() {
        let mut t = TraceBuffer::new(8);
        t.push(
            10,
            KilliEvent::DfhTransition {
                line: 4,
                from: 1,
                to: 2,
            },
        );
        t.push(11, KilliEvent::EccDisplace { line: 4, victim: 9 });
        let text = t.export_jsonl(&[("vdd", "0.55".to_string()), ("scheme", "\"killi\"".into())]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let header = parse(lines[0]).expect("header parses");
        assert_eq!(
            header.get("schema").and_then(|v| v.as_str()),
            Some("killi-obs/v1")
        );
        assert_eq!(header.get("events").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(header.get("scheme").and_then(|v| v.as_str()), Some("killi"));
        let ev = parse(lines[1]).expect("event parses");
        assert_eq!(
            ev.get("type").and_then(|v| v.as_str()),
            Some("dfh_transition")
        );
        assert_eq!(ev.get("from").and_then(|v| v.as_u64()), Some(1));
        let ev2 = parse(lines[2]).expect("event parses");
        assert_eq!(ev2.get("victim").and_then(|v| v.as_u64()), Some(9));
    }
}

//! Typed parameter values shared by the data-driven registries.
//!
//! Both the protection-scheme registry (`killi::registry`) and the
//! fault-model registry (`killi_fault::model`) describe their knobs as
//! named, typed parameters with defaults, spellable three ways: CLI
//! shorthand (`key=value`), JSON objects, and programmatic construction.
//! [`ParamValue`] is the one value type behind all of them; it lives here
//! because `killi-obs` is the dependency-free root of the crate graph,
//! below both registries.

use std::fmt;

use crate::json::{escape as escape_json, JsonValue};

/// A typed registry parameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// Unsigned integer (counts, ratios, latencies).
    U64(u64),
    /// Floating point.
    F64(f64),
    /// Boolean switch.
    Bool(bool),
    /// Free-form string.
    Str(String),
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::U64(v) => write!(f, "{v}"),
            ParamValue::F64(v) => write!(f, "{v:?}"),
            ParamValue::Bool(v) => write!(f, "{v}"),
            ParamValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl ParamValue {
    /// JSON spelling of the value.
    pub fn to_json(&self) -> String {
        match self {
            ParamValue::Str(s) => format!("\"{}\"", escape_json(s)),
            other => other.to_string(),
        }
    }

    /// A value from its CLI spelling: `true`/`false`, integer, float, else
    /// a bare string.
    pub fn parse(text: &str) -> ParamValue {
        if text == "true" {
            ParamValue::Bool(true)
        } else if text == "false" {
            ParamValue::Bool(false)
        } else if let Ok(v) = text.parse::<u64>() {
            ParamValue::U64(v)
        } else if let Ok(v) = text.parse::<f64>() {
            ParamValue::F64(v)
        } else {
            ParamValue::Str(text.to_string())
        }
    }

    /// A value from its JSON spelling (integral non-negative numbers
    /// become [`ParamValue::U64`]).
    pub fn from_json(v: &JsonValue) -> Option<ParamValue> {
        match v {
            JsonValue::Bool(b) => Some(ParamValue::Bool(*b)),
            JsonValue::Num(n) => {
                if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 {
                    Some(ParamValue::U64(*n as u64))
                } else {
                    Some(ParamValue::F64(*n))
                }
            }
            JsonValue::Str(s) => Some(ParamValue::Str(s.clone())),
            _ => None,
        }
    }

    /// Human name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            ParamValue::U64(_) => "an unsigned integer",
            ParamValue::F64(_) => "a number",
            ParamValue::Bool(_) => "a boolean",
            ParamValue::Str(_) => "a string",
        }
    }

    /// Coerces this value to the type of `default`, when sensible:
    /// integral floats narrow to integers, integers widen to floats,
    /// everything else must match exactly.
    pub fn coerce_to(&self, default: &ParamValue) -> Option<ParamValue> {
        match (self, default) {
            (ParamValue::U64(v), ParamValue::U64(_)) => Some(ParamValue::U64(*v)),
            (ParamValue::F64(v), ParamValue::U64(_)) if v.fract() == 0.0 && *v >= 0.0 => {
                Some(ParamValue::U64(*v as u64))
            }
            (ParamValue::F64(v), ParamValue::F64(_)) => Some(ParamValue::F64(*v)),
            (ParamValue::U64(v), ParamValue::F64(_)) => Some(ParamValue::F64(*v as f64)),
            (ParamValue::Bool(v), ParamValue::Bool(_)) => Some(ParamValue::Bool(*v)),
            (ParamValue::Str(v), ParamValue::Str(_)) => Some(ParamValue::Str(v.clone())),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn cli_spellings_infer_types() {
        assert_eq!(ParamValue::parse("true"), ParamValue::Bool(true));
        assert_eq!(ParamValue::parse("16"), ParamValue::U64(16));
        assert_eq!(ParamValue::parse("0.8"), ParamValue::F64(0.8));
        assert_eq!(ParamValue::parse("fft"), ParamValue::Str("fft".to_string()));
    }

    #[test]
    fn json_round_trips() {
        for v in [
            ParamValue::U64(4),
            ParamValue::F64(0.5),
            ParamValue::Bool(false),
            ParamValue::Str("a b".to_string()),
        ] {
            let parsed = parse(&v.to_json()).unwrap();
            assert_eq!(ParamValue::from_json(&parsed), Some(v));
        }
    }

    #[test]
    fn coercion_narrows_and_widens_numbers() {
        let u = ParamValue::U64(0);
        let f = ParamValue::F64(0.0);
        assert_eq!(ParamValue::F64(3.0).coerce_to(&u), Some(ParamValue::U64(3)));
        assert_eq!(ParamValue::F64(3.5).coerce_to(&u), None);
        assert_eq!(ParamValue::U64(3).coerce_to(&f), Some(ParamValue::F64(3.0)));
        assert_eq!(ParamValue::Bool(true).coerce_to(&u), None);
    }
}

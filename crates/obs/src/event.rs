//! The typed event taxonomy emitted by the simulator stack.
//!
//! Lines are identified by their raw index so the crate stays
//! dependency-free; emitters convert from their own `LineId` newtypes.
//! DFH states use the paper's 2-bit encoding (0 = Stable0, 1 = Unknown,
//! 2 = Stable1, 3 = Disabled).

/// One observable occurrence inside a simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KilliEvent {
    /// A line's DFH field changed state.
    DfhTransition { line: u32, from: u8, to: u8 },
    /// A segment-parity check ran on a read hit (`mismatch` = at least
    /// one segment disagreed with its stored parity).
    ParityObservation { line: u32, mismatch: bool },
    /// A SECDED/DECTED syndrome was evaluated for a training line.
    SyndromeObservation {
        line: u32,
        corrected: bool,
        detected: bool,
    },
    /// A new entry was installed in the ECC cache.
    EccInsert { line: u32, set: u32 },
    /// An existing ECC-cache entry was refreshed/promoted by reuse.
    EccPromote { line: u32 },
    /// Inserting `line` displaced `victim` from the ECC cache.
    EccDisplace { line: u32, victim: u32 },
    /// An ECC-cache entry was dropped (its L2 line left training).
    EccInvalidate { line: u32 },
    /// A read hit was turned into a miss by an uncorrectable error.
    ErrorMiss { line: u32 },
    /// A live L2 line was invalidated because its ECC-cache entry was
    /// displaced (the paper's "ECC-cache-induced miss").
    EccInducedMiss { line: u32 },
    /// The replacement policy chose a victim; `class` is the DFH-derived
    /// victim priority class, `valid` whether the way held live data.
    VictimDecision { line: u32, class: u8, valid: bool },
    /// A fill was refused by the protection scheme (line unusable).
    FillRejected { line: u32 },
}

impl KilliEvent {
    /// Stable snake_case tag used in the JSON-lines export.
    pub fn kind(&self) -> &'static str {
        match self {
            KilliEvent::DfhTransition { .. } => "dfh_transition",
            KilliEvent::ParityObservation { .. } => "parity_observation",
            KilliEvent::SyndromeObservation { .. } => "syndrome_observation",
            KilliEvent::EccInsert { .. } => "ecc_insert",
            KilliEvent::EccPromote { .. } => "ecc_promote",
            KilliEvent::EccDisplace { .. } => "ecc_displace",
            KilliEvent::EccInvalidate { .. } => "ecc_invalidate",
            KilliEvent::ErrorMiss { .. } => "error_miss",
            KilliEvent::EccInducedMiss { .. } => "ecc_induced_miss",
            KilliEvent::VictimDecision { .. } => "victim_decision",
            KilliEvent::FillRejected { .. } => "fill_rejected",
        }
    }

    /// The line the event is about.
    pub fn line(&self) -> u32 {
        match *self {
            KilliEvent::DfhTransition { line, .. }
            | KilliEvent::ParityObservation { line, .. }
            | KilliEvent::SyndromeObservation { line, .. }
            | KilliEvent::EccInsert { line, .. }
            | KilliEvent::EccPromote { line }
            | KilliEvent::EccDisplace { line, .. }
            | KilliEvent::EccInvalidate { line }
            | KilliEvent::ErrorMiss { line }
            | KilliEvent::EccInducedMiss { line }
            | KilliEvent::VictimDecision { line, .. }
            | KilliEvent::FillRejected { line } => line,
        }
    }

    /// Appends the event-specific JSON fields (after `"type"`/`"line"`)
    /// to `out`. Keys are emitted in a fixed order so exports are
    /// byte-deterministic.
    pub fn write_json_fields(&self, out: &mut String) {
        use std::fmt::Write;
        match *self {
            KilliEvent::DfhTransition { from, to, .. } => {
                let _ = write!(out, ",\"from\":{from},\"to\":{to}");
            }
            KilliEvent::ParityObservation { mismatch, .. } => {
                let _ = write!(out, ",\"mismatch\":{mismatch}");
            }
            KilliEvent::SyndromeObservation {
                corrected,
                detected,
                ..
            } => {
                let _ = write!(out, ",\"corrected\":{corrected},\"detected\":{detected}");
            }
            KilliEvent::EccInsert { set, .. } => {
                let _ = write!(out, ",\"set\":{set}");
            }
            KilliEvent::EccDisplace { victim, .. } => {
                let _ = write!(out, ",\"victim\":{victim}");
            }
            KilliEvent::VictimDecision { class, valid, .. } => {
                let _ = write!(out, ",\"class\":{class},\"valid\":{valid}");
            }
            KilliEvent::EccPromote { .. }
            | KilliEvent::EccInvalidate { .. }
            | KilliEvent::ErrorMiss { .. }
            | KilliEvent::EccInducedMiss { .. }
            | KilliEvent::FillRejected { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_unique_and_snake_case() {
        let events = [
            KilliEvent::DfhTransition {
                line: 1,
                from: 1,
                to: 2,
            },
            KilliEvent::ParityObservation {
                line: 1,
                mismatch: true,
            },
            KilliEvent::SyndromeObservation {
                line: 1,
                corrected: false,
                detected: true,
            },
            KilliEvent::EccInsert { line: 1, set: 0 },
            KilliEvent::EccPromote { line: 1 },
            KilliEvent::EccDisplace { line: 1, victim: 2 },
            KilliEvent::EccInvalidate { line: 1 },
            KilliEvent::ErrorMiss { line: 1 },
            KilliEvent::EccInducedMiss { line: 1 },
            KilliEvent::VictimDecision {
                line: 1,
                class: 3,
                valid: true,
            },
            KilliEvent::FillRejected { line: 1 },
        ];
        let mut kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), events.len(), "duplicate event kind tags");
        for k in kinds {
            assert!(k.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn line_accessor_covers_every_variant() {
        assert_eq!(KilliEvent::EccDisplace { line: 7, victim: 9 }.line(), 7);
        assert_eq!(KilliEvent::ErrorMiss { line: 42 }.line(), 42);
    }
}

//! A minimal recursive-descent JSON parser.
//!
//! The workspace is dependency-free by policy, but the CLI has to read
//! back the JSON the tooling emits (`killi-sweep/v2` reports,
//! `killi-obs/v1` trace lines), and the `killi-serve` daemon has to
//! parse request bodies from the network. This parser covers exactly
//! RFC 8259 — no extensions, no streaming — and keys preserve document
//! order so round-trip inspection stays deterministic.
//!
//! Hostile-input posture: every malformed document is a typed
//! [`JsonError`], never a panic. Nesting is bounded by [`MAX_DEPTH`] so
//! a few kilobytes of `[[[[…` cannot overflow the recursive-descent
//! stack; callers that read untrusted bodies additionally cap input
//! *size* before parsing (the parser itself is O(n) and
//! allocation-proportional to the document).

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<JsonValue>),
    /// Object entries in document order (duplicate keys are kept;
    /// [`JsonValue::get`] returns the first).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// First value under `key` when this is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements when this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer (rejects negatives/fractions).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean when this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse failure with the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting depth the parser accepts. Deeper documents
/// yield a typed [`JsonError`] ("nesting too deep") instead of risking
/// stack exhaustion on adversarial input. 128 is far beyond anything the
/// toolkit emits (reports nest 4 deep) while keeping worst-case stack
/// usage a few kilobytes.
pub const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    /// Bumps the container depth, rejecting documents nested beyond
    /// [`MAX_DEPTH`]. Paired with `descend` in `object`/`array`.
    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        Ok(())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid codepoint"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("bad number"))
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" -12.5e2 ").unwrap(), JsonValue::Num(-1250.0));
        assert_eq!(
            parse("\"a\\nb\"").unwrap(),
            JsonValue::Str("a\nb".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":{"d":false}}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[2].get("b"), Some(&JsonValue::Null));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_round_trip() {
        assert_eq!(
            parse("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            JsonValue::Str("é😀".to_string())
        );
        assert!(parse("\"\\ud800\"").is_err());
    }

    #[test]
    fn escape_produces_parseable_strings() {
        let nasty = "a\"b\\c\nd\te\u{1}";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap(), JsonValue::Str(nasty.to_string()));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
    }

    // ----- hostile network input (the killi-serve request path) -----

    #[test]
    fn truncated_documents_are_typed_errors() {
        // Every prefix of a valid document must fail cleanly, never panic.
        let doc = r#"{"name": "killi", "params": {"ratio": 16, "flags": [true, null]}}"#;
        for end in 0..doc.len() {
            if doc.is_char_boundary(end) {
                assert!(parse(&doc[..end]).is_err(), "prefix {end} should fail");
            }
        }
    }

    #[test]
    fn invalid_unicode_escapes_are_typed_errors() {
        for bad in [
            "\"\\u12\"",          // truncated escape
            "\"\\uzzzz\"",        // non-hex digits
            "\"\\ud800\"",        // lone high surrogate
            "\"\\ud800\\n\"",     // high surrogate followed by non-\u escape
            "\"\\udc00\"",        // lone low surrogate (invalid codepoint)
            "\"\\ud800\\ud800\"", // high surrogate followed by high surrogate
            "\"\\u\"",            // empty escape
        ] {
            let e = parse(bad).expect_err(bad);
            assert!(!e.message.is_empty());
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        // One over the limit fails with the typed error...
        let too_deep = "[".repeat(MAX_DEPTH + 1);
        let e = parse(&too_deep).unwrap_err();
        assert!(e.message.contains("nesting too deep"), "{e}");
        // ...as does an adversarial megabyte of opening brackets (this
        // would previously recurse ~1M frames deep).
        let hostile = "[".repeat(1 << 20);
        assert!(parse(&hostile).is_err());
        let hostile_obj = "{\"a\":".repeat(1 << 16);
        assert!(parse(&hostile_obj).is_err());
        // A document at exactly the limit still parses.
        let at_limit = format!("{}{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&at_limit).is_ok());
        // Depth is about nesting, not element count: a wide flat document
        // is fine.
        let wide = format!("[{}1]", "1,".repeat(10_000));
        assert!(parse(&wide).is_ok());
    }

    #[test]
    fn sibling_containers_do_not_accumulate_depth() {
        // Depth must be released when a container closes: many sibling
        // arrays at modest depth stay parseable.
        let siblings = format!("[{}[] ]", "[],".repeat(MAX_DEPTH * 4));
        assert!(parse(&siblings).is_ok());
    }

    #[test]
    fn duplicate_keys_are_kept_in_order_and_get_returns_the_first() {
        let v = parse(r#"{"a": 1, "b": 2, "a": 3}"#).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(1));
        match &v {
            JsonValue::Object(entries) => {
                assert_eq!(entries.len(), 3, "duplicates are preserved, not merged");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn control_bytes_and_garbage_are_typed_errors() {
        for bad in [
            "\"\u{0}\"",
            "\"\t\"",
            "{\"a\" 1}",
            "[1 2]",
            "nul",
            "+1",
            "01x",
            "\u{7f}",
            "{\"a\":1}}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn large_flat_documents_parse_linearly() {
        // ~1 MiB of benign numbers: the parser must handle it (size caps
        // are the *server's* job; the parser only bounds depth).
        let big = format!("[{}0]", "123456789,".repeat(110_000));
        assert!(big.len() > (1 << 20));
        let v = parse(&big).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 110_001);
    }
}

//! Structured observability for the Killi simulator stack.
//!
//! The crate is dependency-free and deliberately small: a typed event
//! taxonomy ([`KilliEvent`]), a mergeable counter/histogram registry
//! ([`MetricSet`]), a cheap [`Sink`] handle the simulator components
//! emit through (the default no-op sink is a single `Option` check),
//! and a bounded ring-buffer trace with JSON-lines export under the
//! `killi-obs/v1` schema. A minimal JSON parser rides along so the CLI
//! can read reports and traces back without external dependencies.
//!
//! Ownership of numbers is partitioned to keep every metric
//! single-sourced: protection schemes snapshot their authoritative
//! counters into a [`MetricSet`] via `LineProtection::metrics()`, while
//! the [`Sink`] carries the *event stream* (trace) plus its own
//! bookkeeping. Aggregation across Monte-Carlo replicates is plain
//! element-wise [`MetricSet::merge`], which is associative and
//! commutative by construction.

pub mod event;
pub mod json;
pub mod metrics;
pub mod params;
pub mod serve;
pub mod sink;
pub mod trace;
pub mod vmin;

pub use event::KilliEvent;
pub use json::{escape as escape_json, parse as parse_json, JsonError, JsonValue};
pub use metrics::{Counter, Histogram, MetricSet};
pub use params::ParamValue;
pub use serve::{ServeCounter, ServeEvent, ServeMetrics};
pub use sink::Sink;
pub use trace::TraceBuffer;
pub use vmin::{VminCounter, VminEvent, VminMetrics};

/// Schema tag stamped on the header line of every exported trace.
pub const OBS_SCHEMA: &str = "killi-obs/v1";

//! Observability for the `killi vmin` campaign subsystem.
//!
//! The Vmin campaign gets its own event taxonomy and counter registry,
//! separate from the simulator-side [`crate::KilliEvent`] /
//! [`crate::MetricSet`] pair for the same reason the serve daemon does
//! ([`crate::serve`]): the simulator counters are part of the
//! byte-stable `killi-sweep/v2` schema and cannot grow without
//! invalidating golden files, while campaign counters (dies streamed,
//! search probes, store traffic) describe a different machine and are
//! free to evolve with it.
//!
//! [`VminMetrics`] follows the same design rules: plain data,
//! element-wise [`VminMetrics::merge`], fixed JSON field order so equal
//! snapshots serialise to identical bytes, and a single
//! [`VminMetrics::apply`] routing point. Campaign search paths are fully
//! deterministic, so a campaign's aggregated `VminMetrics` snapshot is
//! itself deterministic and may be embedded in the `killi-vmin/v1`
//! report.

/// Everything observable that happens inside a Vmin campaign.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VminEvent {
    /// A campaign began over `dies` dies and `schemes` schemes.
    CampaignStarted { dies: u64, schemes: u64 },
    /// One die's per-scheme Vmin search finished. The probe counters
    /// describe the search work: `probes` grid-point evaluations split
    /// across `binary_searches` bisections (nested models) and
    /// `linear_scans` exhaustive fallbacks (non-nested models).
    DieEvaluated {
        die: u64,
        probes: u64,
        binary_searches: u64,
        linear_scans: u64,
    },
    /// A die store finished building: `dies` records, `bytes` on disk.
    StoreBuilt { dies: u64, bytes: u64 },
    /// An existing die store was opened and its index validated.
    StoreOpened { dies: u64 },
    /// One die record was streamed out of the store.
    DieStreamed { die: u64 },
    /// The campaign finished and its report was assembled.
    CampaignCompleted { dies: u64 },
}

impl VminEvent {
    /// Stable event-kind label (used in logs and tests).
    pub fn kind(&self) -> &'static str {
        match self {
            VminEvent::CampaignStarted { .. } => "campaign_started",
            VminEvent::DieEvaluated { .. } => "die_evaluated",
            VminEvent::StoreBuilt { .. } => "store_built",
            VminEvent::StoreOpened { .. } => "store_opened",
            VminEvent::DieStreamed { .. } => "die_streamed",
            VminEvent::CampaignCompleted { .. } => "campaign_completed",
        }
    }
}

/// Every monotonic counter the campaign taxonomy can increment.
///
/// The discriminant doubles as the index into `VminMetrics::counters`,
/// and [`VminCounter::NAMES`] carries the stable JSON names in the same
/// order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum VminCounter {
    CampaignsStarted = 0,
    CampaignsCompleted,
    DiesEvaluated,
    VoltageProbes,
    BinarySearches,
    LinearScans,
    StoresOpened,
    StoreDiesWritten,
    StoreBytesWritten,
    StoreDiesRead,
}

impl VminCounter {
    /// Number of counters (length of [`VminCounter::NAMES`]).
    pub const COUNT: usize = 10;

    /// Stable JSON names, indexed by discriminant.
    pub const NAMES: [&'static str; VminCounter::COUNT] = [
        "campaigns_started",
        "campaigns_completed",
        "dies_evaluated",
        "voltage_probes",
        "binary_searches",
        "linear_scans",
        "stores_opened",
        "store_dies_written",
        "store_bytes_written",
        "store_dies_read",
    ];

    /// All counters in index order.
    pub const ALL: [VminCounter; VminCounter::COUNT] = [
        VminCounter::CampaignsStarted,
        VminCounter::CampaignsCompleted,
        VminCounter::DiesEvaluated,
        VminCounter::VoltageProbes,
        VminCounter::BinarySearches,
        VminCounter::LinearScans,
        VminCounter::StoresOpened,
        VminCounter::StoreDiesWritten,
        VminCounter::StoreBytesWritten,
        VminCounter::StoreDiesRead,
    ];

    /// JSON name of this counter.
    pub fn name(self) -> &'static str {
        VminCounter::NAMES[self as usize]
    }
}

/// Aggregate counter state for a campaign (or a whole process).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VminMetrics {
    counters: [u64; VminCounter::COUNT],
}

impl VminMetrics {
    /// An all-zero set (the merge identity).
    pub fn new() -> Self {
        VminMetrics::default()
    }

    /// Adds `n` to a counter.
    pub fn add(&mut self, counter: VminCounter, n: u64) {
        self.counters[counter as usize] += n;
    }

    /// Current value of a counter.
    pub fn get(&self, counter: VminCounter) -> u64 {
        self.counters[counter as usize]
    }

    /// Routes an event to the counters it implies — the single place
    /// the campaign taxonomy maps onto the registry.
    pub fn apply(&mut self, event: &VminEvent) {
        match event {
            VminEvent::CampaignStarted { .. } => self.add(VminCounter::CampaignsStarted, 1),
            VminEvent::DieEvaluated {
                probes,
                binary_searches,
                linear_scans,
                ..
            } => {
                self.add(VminCounter::DiesEvaluated, 1);
                self.add(VminCounter::VoltageProbes, *probes);
                self.add(VminCounter::BinarySearches, *binary_searches);
                self.add(VminCounter::LinearScans, *linear_scans);
            }
            VminEvent::StoreBuilt { dies, bytes } => {
                self.add(VminCounter::StoreDiesWritten, *dies);
                self.add(VminCounter::StoreBytesWritten, *bytes);
            }
            VminEvent::StoreOpened { .. } => self.add(VminCounter::StoresOpened, 1),
            VminEvent::DieStreamed { .. } => self.add(VminCounter::StoreDiesRead, 1),
            VminEvent::CampaignCompleted { .. } => self.add(VminCounter::CampaignsCompleted, 1),
        }
    }

    /// Element-wise addition of `other` into `self`. Associative and
    /// commutative; `VminMetrics::new()` is the identity.
    pub fn merge(&mut self, other: &VminMetrics) {
        for (c, o) in self.counters.iter_mut().zip(other.counters.iter()) {
            *c += o;
        }
    }

    /// Serialises the set as a compact JSON object. Field order is
    /// fixed, so equal snapshots produce identical bytes.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\"schema\":\"killi-vmin-metrics/v1\",\"counters\":{");
        for (i, name) in VminCounter::NAMES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{}", self.counters[i]);
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_routes_every_event_kind() {
        let mut m = VminMetrics::new();
        let events = [
            VminEvent::CampaignStarted {
                dies: 4,
                schemes: 2,
            },
            VminEvent::DieEvaluated {
                die: 0,
                probes: 6,
                binary_searches: 1,
                linear_scans: 1,
            },
            VminEvent::StoreBuilt {
                dies: 4,
                bytes: 512,
            },
            VminEvent::StoreOpened { dies: 4 },
            VminEvent::DieStreamed { die: 0 },
            VminEvent::CampaignCompleted { dies: 4 },
        ];
        for e in &events {
            m.apply(e);
        }
        for c in VminCounter::ALL {
            assert!(m.get(c) >= 1, "counter {} untouched", c.name());
        }
        assert_eq!(m.get(VminCounter::VoltageProbes), 6);
        assert_eq!(m.get(VminCounter::StoreBytesWritten), 512);
    }

    #[test]
    fn merge_is_elementwise_with_identity() {
        let mut a = VminMetrics::new();
        a.add(VminCounter::VoltageProbes, 3);
        let mut b = VminMetrics::new();
        b.add(VminCounter::VoltageProbes, 4);
        b.add(VminCounter::LinearScans, 1);
        let mut ab = a;
        ab.merge(&b);
        assert_eq!(ab.get(VminCounter::VoltageProbes), 7);
        assert_eq!(ab.get(VminCounter::LinearScans), 1);
        let mut with_id = ab;
        with_id.merge(&VminMetrics::new());
        assert_eq!(with_id, ab);
    }

    #[test]
    fn json_shape_is_stable_and_parses() {
        let mut m = VminMetrics::new();
        m.add(VminCounter::DiesEvaluated, 64);
        let text = m.to_json();
        let v = crate::json::parse(&text).expect("vmin metrics JSON parses");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("killi-vmin-metrics/v1")
        );
        let counters = v.get("counters").expect("counters object");
        for name in VminCounter::NAMES {
            assert!(counters.get(name).is_some(), "missing counter {name}");
        }
        assert_eq!(
            counters.get("dies_evaluated").and_then(|c| c.as_u64()),
            Some(64)
        );
    }

    #[test]
    fn event_kinds_are_distinct() {
        let kinds = [
            VminEvent::CampaignStarted {
                dies: 0,
                schemes: 0,
            }
            .kind(),
            VminEvent::DieEvaluated {
                die: 0,
                probes: 0,
                binary_searches: 0,
                linear_scans: 0,
            }
            .kind(),
            VminEvent::StoreBuilt { dies: 0, bytes: 0 }.kind(),
            VminEvent::StoreOpened { dies: 0 }.kind(),
            VminEvent::DieStreamed { die: 0 }.kind(),
            VminEvent::CampaignCompleted { dies: 0 }.kind(),
        ];
        let mut seen = std::collections::HashSet::new();
        for k in kinds {
            assert!(seen.insert(k), "duplicate event kind {k}");
        }
    }
}

//! The `killi-diestore/v1` streaming die store.
//!
//! A campaign over 10,000+ dies cannot hold every fault map in memory —
//! a die is `lines x 560` cells across a whole voltage grid. The store
//! serializes each die as a *sparse grid-folded record*: one entry per
//! cell that is faulty anywhere on the grid, carrying a 64-bit mask
//! whose bit `i` says "faulty at grid point `i`" (the grid is sorted
//! ascending, so for voltage-nested models the mask is a prefix of
//! ones). The die's fault population at every grid point reconstructs
//! exactly by masking, which is all the campaign's admissibility rules
//! need.
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! magic   "killi-diestore/v1\n"
//! header  root_seed u64 | lines u32 | grid_len u32 | grid f64-bits...
//!         | label_len u32 | fault-model label | dies u32
//! records per die: seed u64 | entry_count u32 | entries
//!         entry: line u32 | cell u16 | stuck u8 | pad u8 | mask u64
//! index   per die: absolute record offset u64
//! footer  index_offset u64 | checksum u64 | "kds1end\n"
//! ```
//!
//! The format is write-once append: records stream out one die at a
//! time in die order, and the index + footer land at the end, so a
//! build never seeks and a crash leaves an unfinished file without a
//! valid footer (opens fail cleanly). The checksum is FNV-1a over the
//! header and index bytes — the metadata that, if corrupted, would
//! silently misdirect reads; record payloads are instead validated
//! structurally on every read (sorted entries, in-range cells, masks
//! inside the grid).

use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Leading magic of a `killi-diestore/v1` file.
pub const STORE_MAGIC: &[u8; 18] = b"killi-diestore/v1\n";
/// Trailing magic sealing a completely written store.
pub const STORE_TAIL: &[u8; 8] = b"kds1end\n";
/// Grid masks are 64-bit, so a store grid holds at most 64 points.
pub const MAX_GRID_POINTS: usize = 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(hash, |h, &b| (h ^ b as u64).wrapping_mul(FNV_PRIME))
}

/// Why a store could not be written or read.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The bytes are not a valid `killi-diestore/v1` store.
    Format {
        /// What is wrong.
        reason: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "die store I/O error: {e}"),
            StoreError::Format { reason } => write!(f, "invalid die store: {reason}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

fn format_err<T>(reason: impl Into<String>) -> Result<T, StoreError> {
    Err(StoreError::Format {
        reason: reason.into(),
    })
}

/// The campaign identity a store is built for. Two stores with equal
/// metadata and equal root seeds hold byte-identical records, so a
/// campaign can safely reuse any store whose metadata matches its
/// config (a larger die count serves a smaller campaign: die `i`'s seed
/// depends only on the root seed and `i`).
#[derive(Debug, Clone, PartialEq)]
pub struct StoreMeta {
    /// Root seed die seeds derive from.
    pub root_seed: u64,
    /// Cache lines per die.
    pub lines: u32,
    /// Ascending voltage grid (at most [`MAX_GRID_POINTS`] points).
    pub grid: Vec<f64>,
    /// Canonical fault-model label the records were drawn from.
    pub fault_model: String,
    /// Number of die records.
    pub dies: u32,
}

impl StoreMeta {
    fn validate(&self) -> Result<(), StoreError> {
        if self.grid.len() < 2 || self.grid.len() > MAX_GRID_POINTS {
            return format_err(format!(
                "grid must have 2..={MAX_GRID_POINTS} points, got {}",
                self.grid.len()
            ));
        }
        if !self.grid.windows(2).all(|w| w[0] < w[1]) {
            return format_err("grid must be strictly ascending");
        }
        if self.dies == 0 {
            return format_err("a store needs at least one die");
        }
        if self.lines == 0 {
            return format_err("a die needs at least one line");
        }
        if self.fault_model.len() > 4096 {
            return format_err("fault-model label too long");
        }
        Ok(())
    }
}

/// One sparse grid-folded cell fault of a die.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DieEntry {
    /// Line index within the die.
    pub line: u32,
    /// Cell index within the line.
    pub cell: u16,
    /// Stuck-at polarity at the lowest grid point where the cell fails.
    /// Admissibility depends only on fault *presence*, so a polarity
    /// that varies across a non-nested model's redraws is folded here
    /// without affecting any campaign result.
    pub stuck: bool,
    /// Bit `i` set = faulty at grid point `i` (ascending grid order).
    pub mask: u64,
}

/// One die's record: its derived seed plus all grid-folded faults,
/// sorted by `(line, cell)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DieRecord {
    /// The die's derived seed (stored for integrity checking).
    pub seed: u64,
    /// Sparse fault entries, strictly sorted by `(line, cell)`.
    pub entries: Vec<DieEntry>,
}

fn validate_record(meta: &StoreMeta, rec: &DieRecord) -> Result<(), StoreError> {
    let grid_mask_limit = if meta.grid.len() == 64 {
        u64::MAX
    } else {
        (1u64 << meta.grid.len()) - 1
    };
    let mut prev: Option<(u32, u16)> = None;
    for e in &rec.entries {
        if e.line >= meta.lines {
            return format_err(format!("entry line {} out of range", e.line));
        }
        if e.cell >= killi_fault::map::layout::CELLS_PER_LINE {
            return format_err(format!("entry cell {} out of range", e.cell));
        }
        if e.mask == 0 || e.mask & !grid_mask_limit != 0 {
            return format_err(format!("entry mask {:#x} outside the grid", e.mask));
        }
        if let Some(p) = prev {
            if (e.line, e.cell) <= p {
                return format_err("entries not strictly sorted by (line, cell)");
            }
        }
        prev = Some((e.line, e.cell));
    }
    Ok(())
}

fn u32_of(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes.try_into().expect("4 bytes"))
}

fn u64_of(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes.try_into().expect("8 bytes"))
}

/// Serializes the header into bytes (shared by writer and the reader's
/// checksum recomputation).
fn header_bytes(meta: &StoreMeta) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + meta.fault_model.len() + 8 * meta.grid.len());
    out.extend_from_slice(STORE_MAGIC);
    out.extend_from_slice(&meta.root_seed.to_le_bytes());
    out.extend_from_slice(&meta.lines.to_le_bytes());
    out.extend_from_slice(&(meta.grid.len() as u32).to_le_bytes());
    for &v in &meta.grid {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out.extend_from_slice(&(meta.fault_model.len() as u32).to_le_bytes());
    out.extend_from_slice(meta.fault_model.as_bytes());
    out.extend_from_slice(&meta.dies.to_le_bytes());
    out
}

/// Streaming write-once store builder: append dies in order, then
/// [`DieStoreWriter::finish`] seals index and footer.
#[derive(Debug)]
pub struct DieStoreWriter {
    out: BufWriter<File>,
    meta: StoreMeta,
    offsets: Vec<u64>,
    pos: u64,
    hash: u64,
}

impl DieStoreWriter {
    /// Creates the store file and writes its header.
    pub fn create(path: &Path, meta: StoreMeta) -> Result<Self, StoreError> {
        meta.validate()?;
        let mut out = BufWriter::new(File::create(path)?);
        let header = header_bytes(&meta);
        out.write_all(&header)?;
        Ok(DieStoreWriter {
            out,
            pos: header.len() as u64,
            hash: fnv1a(FNV_OFFSET, &header),
            offsets: Vec::with_capacity(meta.dies as usize),
            meta,
        })
    }

    /// Appends the next die record (records must arrive in die order).
    pub fn append(&mut self, rec: &DieRecord) -> Result<(), StoreError> {
        if self.offsets.len() >= self.meta.dies as usize {
            return format_err(format!("store already holds {} dies", self.meta.dies));
        }
        validate_record(&self.meta, rec)?;
        self.offsets.push(self.pos);
        let mut buf = Vec::with_capacity(12 + 16 * rec.entries.len());
        buf.extend_from_slice(&rec.seed.to_le_bytes());
        buf.extend_from_slice(&(rec.entries.len() as u32).to_le_bytes());
        for e in &rec.entries {
            buf.extend_from_slice(&e.line.to_le_bytes());
            buf.extend_from_slice(&e.cell.to_le_bytes());
            buf.push(e.stuck as u8);
            buf.push(0);
            buf.extend_from_slice(&e.mask.to_le_bytes());
        }
        self.out.write_all(&buf)?;
        self.pos += buf.len() as u64;
        Ok(())
    }

    /// Writes index and footer; returns the total file size in bytes.
    pub fn finish(mut self) -> Result<u64, StoreError> {
        if self.offsets.len() != self.meta.dies as usize {
            return format_err(format!(
                "store declared {} dies but {} were appended",
                self.meta.dies,
                self.offsets.len()
            ));
        }
        let index_offset = self.pos;
        let mut index = Vec::with_capacity(8 * self.offsets.len());
        for &off in &self.offsets {
            index.extend_from_slice(&off.to_le_bytes());
        }
        let checksum = fnv1a(self.hash, &index);
        self.out.write_all(&index)?;
        self.out.write_all(&index_offset.to_le_bytes())?;
        self.out.write_all(&checksum.to_le_bytes())?;
        self.out.write_all(STORE_TAIL)?;
        self.out.flush()?;
        Ok(index_offset + index.len() as u64 + 24)
    }
}

/// Random-access reader over a sealed store. Campaigns read dies in
/// order, one chunk at a time, so peak memory stays bounded by the
/// chunk size, never the die count.
#[derive(Debug)]
pub struct DieStoreReader {
    file: File,
    meta: StoreMeta,
    offsets: Vec<u64>,
    records_end: u64,
}

impl DieStoreReader {
    /// Opens a store, validating magic, footer, index bounds and the
    /// header+index checksum.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let mut file = File::open(path)?;
        let file_len = file.seek(SeekFrom::End(0))?;

        // Header.
        file.seek(SeekFrom::Start(0))?;
        let mut magic = [0u8; 18];
        let mut fixed = [0u8; 16];
        read_exact_or(&mut file, &mut magic, "truncated magic")?;
        if &magic != STORE_MAGIC {
            return format_err("bad magic (not a killi-diestore/v1 file)");
        }
        read_exact_or(&mut file, &mut fixed, "truncated header")?;
        let root_seed = u64_of(&fixed[0..8]);
        let lines = u32_of(&fixed[8..12]);
        let grid_len = u32_of(&fixed[12..16]) as usize;
        if !(2..=MAX_GRID_POINTS).contains(&grid_len) {
            return format_err(format!("grid_len {grid_len} outside 2..={MAX_GRID_POINTS}"));
        }
        let mut grid_bytes = vec![0u8; 8 * grid_len];
        read_exact_or(&mut file, &mut grid_bytes, "truncated grid")?;
        let grid: Vec<f64> = grid_bytes
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64_of(c)))
            .collect();
        let mut len4 = [0u8; 4];
        read_exact_or(&mut file, &mut len4, "truncated label length")?;
        let label_len = u32_of(&len4) as usize;
        if label_len > 4096 {
            return format_err("fault-model label too long");
        }
        let mut label = vec![0u8; label_len];
        read_exact_or(&mut file, &mut label, "truncated label")?;
        let Ok(fault_model) = String::from_utf8(label) else {
            return format_err("fault-model label is not UTF-8");
        };
        read_exact_or(&mut file, &mut len4, "truncated die count")?;
        let dies = u32_of(&len4);
        let meta = StoreMeta {
            root_seed,
            lines,
            grid,
            fault_model,
            dies,
        };
        meta.validate()?;
        let header_end = file.stream_position()?;

        // Footer.
        if file_len < header_end + 24 {
            return format_err("file too short for a footer (unfinished build?)");
        }
        file.seek(SeekFrom::End(-24))?;
        let mut footer = [0u8; 24];
        read_exact_or(&mut file, &mut footer, "truncated footer")?;
        if &footer[16..24] != STORE_TAIL {
            return format_err("missing tail magic (unfinished build?)");
        }
        let index_offset = u64_of(&footer[0..8]);
        let checksum = u64_of(&footer[8..16]);
        let index_len = 8u64 * dies as u64;
        if index_offset < header_end || index_offset + index_len + 24 != file_len {
            return format_err("index offset inconsistent with file size");
        }

        // Index + checksum.
        file.seek(SeekFrom::Start(index_offset))?;
        let mut index = vec![0u8; index_len as usize];
        read_exact_or(&mut file, &mut index, "truncated index")?;
        if fnv1a(fnv1a(FNV_OFFSET, &header_bytes(&meta)), &index) != checksum {
            return format_err("header/index checksum mismatch");
        }
        let offsets: Vec<u64> = index.chunks_exact(8).map(u64_of).collect();
        for (i, w) in offsets.windows(2).enumerate() {
            if w[0] >= w[1] {
                return format_err(format!("index not strictly increasing at die {i}"));
            }
        }
        if let (Some(&first), Some(&last)) = (offsets.first(), offsets.last()) {
            if first != header_end || last + 12 > index_offset {
                return format_err("index offsets outside the record region");
            }
        }

        Ok(DieStoreReader {
            file,
            meta,
            offsets,
            records_end: index_offset,
        })
    }

    /// The store's identity metadata.
    pub fn meta(&self) -> &StoreMeta {
        &self.meta
    }

    /// Reads die `i`'s record, validating its structure.
    pub fn read_die(&mut self, i: usize) -> Result<DieRecord, StoreError> {
        let Some(&offset) = self.offsets.get(i) else {
            return format_err(format!("die {i} out of range ({} dies)", self.meta.dies));
        };
        let end = self.offsets.get(i + 1).copied().unwrap_or(self.records_end);
        self.file.seek(SeekFrom::Start(offset))?;
        let mut head = [0u8; 12];
        read_exact_or(&mut self.file, &mut head, "truncated record head")?;
        let seed = u64_of(&head[0..8]);
        let count = u32_of(&head[8..12]) as u64;
        if offset + 12 + 16 * count != end {
            return format_err(format!("die {i} record length inconsistent with index"));
        }
        let mut body = vec![0u8; (16 * count) as usize];
        read_exact_or(&mut self.file, &mut body, "truncated record body")?;
        let entries: Vec<DieEntry> = body
            .chunks_exact(16)
            .map(|c| DieEntry {
                line: u32_of(&c[0..4]),
                cell: u16::from_le_bytes(c[4..6].try_into().expect("2 bytes")),
                stuck: c[6] != 0,
                mask: u64_of(&c[8..16]),
            })
            .collect();
        let rec = DieRecord { seed, entries };
        validate_record(&self.meta, &rec)?;
        Ok(rec)
    }
}

fn read_exact_or(file: &mut File, buf: &mut [u8], what: &str) -> Result<(), StoreError> {
    file.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Format {
                reason: what.to_string(),
            }
        } else {
            StoreError::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("killi-vmin-store-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn meta(dies: u32) -> StoreMeta {
        StoreMeta {
            root_seed: 42,
            lines: 128,
            grid: vec![0.6, 0.625, 0.65],
            fault_model: "stuck-at".to_string(),
            dies,
        }
    }

    fn record(seed: u64) -> DieRecord {
        DieRecord {
            seed,
            entries: vec![
                DieEntry {
                    line: 0,
                    cell: 3,
                    stuck: true,
                    mask: 0b111,
                },
                DieEntry {
                    line: 0,
                    cell: 512,
                    stuck: false,
                    mask: 0b001,
                },
                DieEntry {
                    line: 77,
                    cell: 10,
                    stuck: false,
                    mask: 0b011,
                },
            ],
        }
    }

    #[test]
    fn round_trips_records_exactly() {
        let path = tmp("roundtrip.kds");
        let mut w = DieStoreWriter::create(&path, meta(3)).unwrap();
        let records = [
            record(1),
            DieRecord {
                seed: 2,
                entries: Vec::new(),
            },
            record(3),
        ];
        for r in &records {
            w.append(r).unwrap();
        }
        let bytes = w.finish().unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());

        let mut r = DieStoreReader::open(&path).unwrap();
        assert_eq!(r.meta(), &meta(3));
        for (i, expected) in records.iter().enumerate() {
            assert_eq!(&r.read_die(i).unwrap(), expected, "die {i}");
        }
        // Reads are random-access and repeatable.
        assert_eq!(&r.read_die(0).unwrap(), &records[0]);
        assert!(r.read_die(3).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn writer_rejects_malformed_records_and_counts() {
        let path = tmp("reject.kds");
        let mut w = DieStoreWriter::create(&path, meta(1)).unwrap();
        // Unsorted entries.
        let bad = DieRecord {
            seed: 1,
            entries: vec![
                DieEntry {
                    line: 1,
                    cell: 0,
                    stuck: false,
                    mask: 1,
                },
                DieEntry {
                    line: 0,
                    cell: 0,
                    stuck: false,
                    mask: 1,
                },
            ],
        };
        assert!(matches!(w.append(&bad), Err(StoreError::Format { .. })));
        // Mask outside the 3-point grid.
        let bad = DieRecord {
            seed: 1,
            entries: vec![DieEntry {
                line: 0,
                cell: 0,
                stuck: false,
                mask: 0b1000,
            }],
        };
        assert!(matches!(w.append(&bad), Err(StoreError::Format { .. })));
        // Finishing before every declared die arrived.
        assert!(matches!(w.finish(), Err(StoreError::Format { .. })));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_truncation_and_corruption() {
        let path = tmp("corrupt.kds");
        let mut w = DieStoreWriter::create(&path, meta(2)).unwrap();
        w.append(&record(1)).unwrap();
        w.append(&record(2)).unwrap();
        w.finish().unwrap();
        let good = std::fs::read(&path).unwrap();

        // Truncated file (simulates a crashed build: no footer).
        std::fs::write(&path, &good[..good.len() - 30]).unwrap();
        assert!(matches!(
            DieStoreReader::open(&path),
            Err(StoreError::Format { .. })
        ));

        // Flipped header byte breaks the checksum.
        let mut bad = good.clone();
        bad[20] ^= 0xff;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            DieStoreReader::open(&path),
            Err(StoreError::Format { .. })
        ));

        std::fs::write(&path, &good).unwrap();
        assert!(DieStoreReader::open(&path).is_ok());
        std::fs::remove_file(&path).unwrap();
    }
}

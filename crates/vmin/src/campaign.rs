//! Fleet-scale Vmin campaigns.
//!
//! A campaign answers the deployment question the paper's §6 yield
//! discussion raises: across a fleet of dies, what is the minimum safe
//! operating voltage *per protection scheme*, and what fraction of dies
//! bins at each grid point? Each die is synthesized from the registered
//! fault model (or streamed out of a [`crate::store`] die store),
//! reduced to per-rule usable-line tables over the voltage grid, and
//! searched with the nesting-aware engine in [`crate::search`].
//!
//! Determinism contract: the parallel phase produces only per-die
//! integer outcomes (grid indices and counts); every floating-point
//! aggregation folds sequentially in die order, so the `killi-vmin/v1`
//! report is byte-identical at any thread count and across the
//! store/direct synthesis paths.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use killi::registry::{BuildError, LineRule, SchemeConfig};
use killi_bench::exec::{par_map, Progress};
use killi_bench::fault_models::{
    build_fault_model, fault_model_label, FaultModelBuildError, FaultModelConfig,
};
use killi_bench::schemes::{default_registry, scheme_admissibility, scheme_label};
use killi_bench::sweep::{validate_voltage_grid, Accumulator};
use killi_fault::model::default_registry as default_fault_registry;
use killi_fault::rng::derive_seed;
use killi_fault::{CellFault, FaultModel, FreqGhz, NormVdd};
use killi_obs::{VminEvent, VminMetrics};

use crate::search::{grid_vmin, SearchMode, SearchStats};
use crate::store::{
    DieEntry, DieRecord, DieStoreReader, DieStoreWriter, StoreError, StoreMeta, MAX_GRID_POINTS,
};

/// The default campaign voltage grid: the paper's 0.6–0.65 operating
/// window widened one step in both directions so binning has headroom.
pub const DEFAULT_GRID: [f64; 7] = [0.55, 0.575, 0.6, 0.625, 0.65, 0.675, 0.7];

/// Declarative description of one Vmin campaign.
#[derive(Debug, Clone)]
pub struct VminConfig {
    /// Root seed every die seed derives from (die `i` uses the same
    /// derivation as sweep replicate `i`, so stores and sweeps agree).
    pub root_seed: u64,
    /// Dies in the fleet.
    pub dies: usize,
    /// Cache lines per die.
    pub lines: usize,
    /// Usable-line fraction a die must keep to pass a grid point.
    pub target: f64,
    /// Voltage grid to search (canonicalized ascending by validation).
    pub vdds: Vec<f64>,
    /// Protection schemes to bin, resolved through the scheme registry.
    pub schemes: Vec<SchemeConfig>,
    /// Fault model dies are drawn from.
    pub fault_model: FaultModelConfig,
    /// Worker threads.
    pub threads: usize,
    /// Progress cadence (print every N completed dies; 0 = silent).
    pub progress_every: usize,
    /// Optional die-store path: reused when it exists, built (then
    /// streamed from) when it does not.
    pub store: Option<PathBuf>,
    /// Search algorithm selection (the default `Auto` is production;
    /// `Exhaustive` is the oracle the property tests compare against).
    pub search: SearchMode,
}

impl Default for VminConfig {
    fn default() -> Self {
        VminConfig {
            root_seed: 42,
            dies: 100,
            lines: 4096,
            target: 0.99,
            vdds: DEFAULT_GRID.to_vec(),
            schemes: vec![killi_bench::schemes::SchemeSpec::Killi(64).config()],
            fault_model: FaultModelConfig::default(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            progress_every: 0,
            store: None,
            search: SearchMode::Auto,
        }
    }
}

/// Why a [`VminConfig`] was rejected.
#[derive(Debug)]
pub enum VminConfigError {
    /// A scheme config failed registry resolution.
    Scheme(BuildError),
    /// The fault-model config failed registry resolution.
    FaultModel(FaultModelBuildError),
    /// The voltage grid is unusable as a search axis.
    Grid {
        /// What is wrong with it.
        reason: String,
    },
    /// A scalar knob is out of range.
    Config {
        /// What is wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for VminConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VminConfigError::Scheme(e) => write!(f, "invalid scheme: {e}"),
            VminConfigError::FaultModel(e) => write!(f, "invalid fault model: {e}"),
            VminConfigError::Grid { reason } => write!(f, "invalid voltage grid: {reason}"),
            VminConfigError::Config { reason } => write!(f, "invalid campaign config: {reason}"),
        }
    }
}

impl std::error::Error for VminConfigError {}

impl From<BuildError> for VminConfigError {
    fn from(e: BuildError) -> Self {
        VminConfigError::Scheme(e)
    }
}

impl From<FaultModelBuildError> for VminConfigError {
    fn from(e: FaultModelBuildError) -> Self {
        VminConfigError::FaultModel(e)
    }
}

impl VminConfig {
    /// Validates the config and canonicalizes it: grid sorted ascending,
    /// every scheme and the fault model respelled canonically. The
    /// returned proof type is what [`run_campaign`] takes, and its
    /// [`ValidatedVminConfig::canonical_json`] is the content-address
    /// key the sweep service caches campaigns under.
    pub fn validated(mut self) -> Result<ValidatedVminConfig, VminConfigError> {
        validate_voltage_grid(&self.vdds).map_err(|reason| VminConfigError::Grid { reason })?;
        if self.vdds.len() > MAX_GRID_POINTS {
            return Err(VminConfigError::Grid {
                reason: format!(
                    "at most {MAX_GRID_POINTS} grid points (die-store masks are 64-bit), got {}",
                    self.vdds.len()
                ),
            });
        }
        if self.schemes.is_empty() {
            return Err(VminConfigError::Config {
                reason: "a campaign needs at least one scheme".to_string(),
            });
        }
        let registry = default_registry();
        for scheme in &mut self.schemes {
            // Resolving the admissibility rule exercises name + param
            // validation and proves the scheme supports static binning.
            scheme_admissibility(scheme)?;
            *scheme = registry.canonicalize(scheme)?;
        }
        build_fault_model(&self.fault_model)?;
        self.fault_model = default_fault_registry().canonicalize(&self.fault_model)?;
        if self.dies == 0 {
            return Err(VminConfigError::Config {
                reason: "a campaign needs at least one die".to_string(),
            });
        }
        if self.lines == 0 {
            return Err(VminConfigError::Config {
                reason: "a die needs at least one line".to_string(),
            });
        }
        if !(self.target > 0.0 && self.target <= 1.0) {
            return Err(VminConfigError::Config {
                reason: format!("target {:?} outside (0, 1]", self.target),
            });
        }
        // validate_voltage_grid accepts either strict direction; the
        // campaign's grid semantics (and the die-store format) are
        // ascending, so canonicalize here.
        if self.vdds.first() > self.vdds.last() {
            self.vdds.reverse();
        }
        Ok(ValidatedVminConfig { config: self })
    }
}

/// A [`VminConfig`] that passed [`VminConfig::validated`]: schemes and
/// fault model are canonical and the grid is strictly ascending.
#[derive(Debug, Clone)]
pub struct ValidatedVminConfig {
    config: VminConfig,
}

impl ValidatedVminConfig {
    /// The validated config.
    pub fn config(&self) -> &VminConfig {
        &self.config
    }

    /// Deterministic JSON over exactly the fields that shape report
    /// bytes (schema `killi-vmin-config/v1`). Execution knobs —
    /// `threads`, `progress_every`, `store`, `search` — are excluded:
    /// the report is byte-identical across them, so configs differing
    /// only there must share a cache key.
    pub fn canonical_json(&self) -> String {
        let c = &self.config;
        let mut out = String::from("{\"schema\":\"killi-vmin-config/v1\"");
        out.push_str(&format!(",\"root_seed\":{}", c.root_seed));
        out.push_str(&format!(",\"dies\":{}", c.dies));
        out.push_str(&format!(",\"lines\":{}", c.lines));
        out.push_str(&format!(",\"target\":{}", json_f64(c.target)));
        out.push_str(&format!(
            ",\"vdds\":[{}]",
            c.vdds
                .iter()
                .map(|&v| json_f64(v))
                .collect::<Vec<_>>()
                .join(",")
        ));
        out.push_str(&format!(
            ",\"schemes\":[{}]",
            c.schemes
                .iter()
                .map(SchemeConfig::to_json)
                .collect::<Vec<_>>()
                .join(",")
        ));
        out.push_str(&format!(",\"fault_model\":{}", c.fault_model.to_json()));
        out.push('}');
        out
    }
}

/// Why a validated campaign still failed to run.
#[derive(Debug)]
pub enum CampaignError {
    /// The die store could not be written or read.
    Store(StoreError),
    /// An existing die store does not match the campaign config.
    StoreMismatch {
        /// Which metadata field disagrees.
        reason: String,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Store(e) => write!(f, "{e}"),
            CampaignError::StoreMismatch { reason } => {
                write!(f, "die store does not match the campaign: {reason}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<StoreError> for CampaignError {
    fn from(e: StoreError) -> Self {
        CampaignError::Store(e)
    }
}

/// Per-scheme binning aggregate of a finished campaign.
#[derive(Debug, Clone)]
pub struct SchemeBin {
    /// Canonical scheme label.
    pub scheme: String,
    /// `hist[g]` = dies whose Vmin is exactly `vdds[g]`.
    pub hist: Vec<u64>,
    /// Dies that fail even the highest grid voltage.
    pub failed: u64,
    /// Welford accumulator over passing dies' Vmin voltages.
    pub vmin: Accumulator,
    /// Lowest / highest observed Vmin grid index among passing dies.
    pub min_idx: Option<usize>,
    /// See [`SchemeBin::min_idx`].
    pub max_idx: Option<usize>,
    /// Usable-line fraction per grid point, accumulated over all dies.
    pub capacity: Vec<Accumulator>,
}

impl SchemeBin {
    /// Exact order statistic over passing dies: the smallest grid index
    /// whose cumulative histogram count reaches `ceil(q * n)`.
    pub fn quantile_idx(&self, q: f64) -> Option<usize> {
        let n = self.vmin.n();
        if n == 0 {
            return None;
        }
        let rank = ((q * n as f64).ceil() as u64).max(1);
        let mut cum = 0;
        for (g, &count) in self.hist.iter().enumerate() {
            cum += count;
            if cum >= rank {
                return Some(g);
            }
        }
        Some(self.hist.len() - 1)
    }
}

/// A finished campaign: everything the `killi-vmin/v1` report carries.
#[derive(Debug, Clone)]
pub struct VminReport {
    /// Root seed the fleet derives from.
    pub root_seed: u64,
    /// Dies evaluated.
    pub dies: usize,
    /// Lines per die.
    pub lines: usize,
    /// Usable-line fraction target.
    pub target: f64,
    /// Canonical fault-model label.
    pub fault_model: String,
    /// Whether the model is voltage-nested (bisection-eligible).
    pub nested: bool,
    /// Ascending voltage grid.
    pub vdds: Vec<f64>,
    /// Per-scheme binning aggregates, in config scheme order.
    pub schemes: Vec<SchemeBin>,
    /// Search-probe accounting summed over every die. Deliberately the
    /// only observability in the report: store traffic counters differ
    /// between the streamed and direct paths, and the report must not.
    pub stats: SearchStats,
}

/// A campaign result: the deterministic report plus the full (path-
/// dependent) observability counters, kept apart so the report bytes
/// stay identical with and without a die store.
#[derive(Debug, Clone)]
pub struct CampaignOutput {
    /// The deterministic `killi-vmin/v1` report.
    pub report: VminReport,
    /// Full campaign counters (includes store traffic).
    pub metrics: VminMetrics,
}

fn json_f64(x: f64) -> String {
    // Shortest round-trip float formatting, matching the sweep report.
    format!("{x:?}")
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_opt_f64(x: Option<f64>) -> String {
    match x {
        Some(v) => json_f64(v),
        None => "null".to_string(),
    }
}

impl VminReport {
    /// Serializes the report as `killi-vmin/v1` JSON. Byte-determinism
    /// is part of the schema contract (golden-tested at 1/2/8 threads).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"killi-vmin/v1\",\n");
        out.push_str(&format!("  \"root_seed\": {},\n", self.root_seed));
        out.push_str(&format!("  \"dies\": {},\n", self.dies));
        out.push_str(&format!("  \"lines\": {},\n", self.lines));
        out.push_str(&format!("  \"target\": {},\n", json_f64(self.target)));
        out.push_str(&format!(
            "  \"fault_model\": {},\n",
            json_str(&self.fault_model)
        ));
        out.push_str(&format!("  \"nested_search\": {},\n", self.nested));
        out.push_str(&format!(
            "  \"vdds\": [{}],\n",
            self.vdds
                .iter()
                .map(|&v| json_f64(v))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str("  \"schemes\": [\n");
        for (i, bin) in self.schemes.iter().enumerate() {
            let n = bin.vmin.n();
            out.push_str("    {\n");
            out.push_str(&format!("      \"scheme\": {},\n", json_str(&bin.scheme)));
            out.push_str(&format!(
                "      \"vmin\": {{\"n\": {}, \"failed\": {}, \"mean\": {}, \"stddev\": {}, \
                 \"min\": {}, \"max\": {}, \"quantiles\": ",
                n,
                bin.failed,
                json_opt_f64((n > 0).then(|| bin.vmin.mean())),
                json_opt_f64((n > 0).then(|| bin.vmin.stddev())),
                json_opt_f64(bin.min_idx.map(|g| self.vdds[g])),
                json_opt_f64(bin.max_idx.map(|g| self.vdds[g])),
            ));
            if n > 0 {
                let q = |q: f64| json_opt_f64(bin.quantile_idx(q).map(|g| self.vdds[g]));
                out.push_str(&format!(
                    "{{\"p10\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                    q(0.10),
                    q(0.50),
                    q(0.90),
                    q(0.99)
                ));
            } else {
                out.push_str("null");
            }
            out.push_str("},\n");
            out.push_str("      \"cdf\": [\n");
            let mut cum = 0u64;
            for (g, &count) in bin.hist.iter().enumerate() {
                cum += count;
                out.push_str(&format!(
                    "        {{\"vdd\": {}, \"dies_at_or_below\": {}, \"yield\": {}}}{}\n",
                    json_f64(self.vdds[g]),
                    cum,
                    json_f64(cum as f64 / self.dies as f64),
                    if g + 1 < bin.hist.len() { "," } else { "" }
                ));
            }
            out.push_str("      ],\n");
            out.push_str("      \"capacity\": [\n");
            for (g, acc) in bin.capacity.iter().enumerate() {
                out.push_str(&format!(
                    "        {{\"vdd\": {}, \"mean\": {}, \"stddev\": {}}}{}\n",
                    json_f64(self.vdds[g]),
                    json_f64(acc.mean()),
                    json_f64(acc.stddev()),
                    if g + 1 < bin.capacity.len() { "," } else { "" }
                ));
            }
            out.push_str("      ]\n");
            out.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.schemes.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"search\": {\n");
        out.push_str(&format!("    \"dies_evaluated\": {},\n", self.dies));
        out.push_str(&format!("    \"voltage_probes\": {},\n", self.stats.probes));
        out.push_str(&format!(
            "    \"binary_searches\": {},\n",
            self.stats.binary_searches
        ));
        out.push_str(&format!(
            "    \"linear_scans\": {}\n",
            self.stats.linear_scans
        ));
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }
}

/// Synthesizes one die's grid-folded sparse record from the fault
/// model, preferring the memoized per-die factorization when the model
/// offers one (one RNG pass at the cap voltage instead of one per grid
/// point).
pub fn synth_record(model: &dyn FaultModel, lines: usize, grid: &[f64], seed: u64) -> DieRecord {
    let die = model.die(lines, NormVdd(grid[0]), FreqGhz::PEAK, seed);
    let mut folded: BTreeMap<(u32, u16), (bool, u64)> = BTreeMap::new();
    for (g, &vdd) in grid.iter().enumerate() {
        let map = match &die {
            Some(d) => d.map_at(NormVdd(vdd)),
            None => model.map(lines, NormVdd(vdd), FreqGhz::PEAK, seed),
        };
        for line in 0..lines {
            for fault in map.line(line) {
                let entry = folded
                    .entry((line as u32, fault.cell))
                    .or_insert((fault.stuck, 0));
                entry.1 |= 1 << g;
            }
        }
    }
    DieRecord {
        seed,
        entries: folded
            .into_iter()
            .map(|((line, cell), (stuck, mask))| DieEntry {
                line,
                cell,
                stuck,
                mask,
            })
            .collect(),
    }
}

/// One die's integer outcome: everything the sequential aggregation
/// phase needs, with no floats computed in parallel.
#[derive(Debug, Clone)]
struct DieOutcome {
    /// Per-scheme Vmin grid index (`-1` = fails the whole grid).
    vmin_idx: Vec<i32>,
    /// `usable[rule][g]` admissible-line counts per distinct rule.
    usable: Vec<Vec<u32>>,
    stats: SearchStats,
}

/// The shared, per-campaign inputs of [`evaluate_die`] (everything but
/// the die itself).
struct EvalContext<'a> {
    lines: usize,
    grid_len: usize,
    rules: &'a [LineRule],
    rule_of: &'a [usize],
    min_usable: u32,
    nested: bool,
    mode: SearchMode,
}

/// Reduces one die record to usable-line tables and per-scheme Vmin
/// indices.
fn evaluate_die(rec: &DieRecord, ctx: &EvalContext<'_>) -> DieOutcome {
    let &EvalContext {
        lines,
        grid_len,
        rules,
        rule_of,
        min_usable,
        nested,
        mode,
    } = ctx;
    let mut usable = vec![vec![0u32; grid_len]; rules.len()];
    let mut lines_with_entries = 0u32;
    let mut buf: Vec<CellFault> = Vec::new();
    let mut i = 0;
    while i < rec.entries.len() {
        let line = rec.entries[i].line;
        let mut j = i;
        while j < rec.entries.len() && rec.entries[j].line == line {
            j += 1;
        }
        lines_with_entries += 1;
        let group = &rec.entries[i..j];
        let union = group.iter().fold(0u64, |m, e| m | e.mask);
        for g in 0..grid_len {
            let bit = 1u64 << g;
            if union & bit == 0 {
                for table in usable.iter_mut() {
                    table[g] += 1;
                }
                continue;
            }
            buf.clear();
            buf.extend(
                group
                    .iter()
                    .filter(|e| e.mask & bit != 0)
                    .map(|e| CellFault {
                        cell: e.cell,
                        stuck: e.stuck,
                    }),
            );
            for (r, rule) in rules.iter().enumerate() {
                if rule.admits(&buf) {
                    usable[r][g] += 1;
                }
            }
        }
        i = j;
    }
    let fault_free = lines as u32 - lines_with_entries;
    for table in usable.iter_mut() {
        for count in table.iter_mut() {
            *count += fault_free;
        }
    }

    let mut stats = SearchStats::default();
    let vmin_idx = rule_of
        .iter()
        .map(|&r| {
            grid_vmin(
                grid_len,
                nested,
                mode,
                |g| usable[r][g] >= min_usable,
                &mut stats,
            )
            .map_or(-1, |g| g as i32)
        })
        .collect();
    DieOutcome {
        vmin_idx,
        usable,
        stats,
    }
}

fn check_store_meta(meta: &StoreMeta, c: &VminConfig, fm_label: &str) -> Result<(), CampaignError> {
    let mismatch = |reason: String| Err(CampaignError::StoreMismatch { reason });
    if meta.root_seed != c.root_seed {
        return mismatch(format!(
            "store root_seed {} != campaign {}",
            meta.root_seed, c.root_seed
        ));
    }
    if meta.lines as usize != c.lines {
        return mismatch(format!(
            "store lines {} != campaign {}",
            meta.lines, c.lines
        ));
    }
    if meta.grid.len() != c.vdds.len()
        || meta
            .grid
            .iter()
            .zip(c.vdds.iter())
            .any(|(a, b)| a.to_bits() != b.to_bits())
    {
        return mismatch(format!(
            "store grid {:?} != campaign {:?}",
            meta.grid, c.vdds
        ));
    }
    if meta.fault_model != fm_label {
        return mismatch(format!(
            "store fault model '{}' != campaign '{}'",
            meta.fault_model, fm_label
        ));
    }
    if (meta.dies as usize) < c.dies {
        return mismatch(format!(
            "store holds {} dies, campaign needs {} (die seeds depend only on index, so a larger store serves a smaller campaign — not vice versa)",
            meta.dies, c.dies
        ));
    }
    Ok(())
}

fn build_store(
    path: &Path,
    c: &VminConfig,
    model: &dyn FaultModel,
    fm_label: &str,
    metrics: &mut VminMetrics,
) -> Result<(), CampaignError> {
    let meta = StoreMeta {
        root_seed: c.root_seed,
        lines: c.lines as u32,
        grid: c.vdds.clone(),
        fault_model: fm_label.to_string(),
        dies: c.dies as u32,
    };
    let mut writer = DieStoreWriter::create(path, meta)?;
    let threads = c.threads.max(1);
    let chunk = (threads * 4).max(1);
    let mut start = 0;
    while start < c.dies {
        let end = (start + chunk).min(c.dies);
        let seeds: Vec<u64> = (start..end)
            .map(|i| derive_seed(c.root_seed, "die", &[i as u64]))
            .collect();
        let records = par_map(threads, &seeds, None, |_, &seed| {
            synth_record(model, c.lines, &c.vdds, seed)
        });
        for rec in &records {
            writer.append(rec)?;
        }
        start = end;
    }
    let bytes = writer.finish()?;
    metrics.apply(&VminEvent::StoreBuilt {
        dies: c.dies as u64,
        bytes,
    });
    Ok(())
}

/// Runs a validated campaign: streams (or synthesizes) every die,
/// searches its per-scheme Vmin, and folds the fleet into a
/// [`VminReport`]. Peak memory is bounded by the chunk size (a few
/// dies per worker thread), never by the fleet size.
pub fn run_campaign(config: &ValidatedVminConfig) -> Result<CampaignOutput, CampaignError> {
    let c = config.config();
    let model = build_fault_model(&c.fault_model).expect("config validated");
    let fm_label = fault_model_label(&c.fault_model).expect("config validated");
    let nested = model.voltage_nested();
    let labels: Vec<String> = c
        .schemes
        .iter()
        .map(|s| scheme_label(s).expect("config validated"))
        .collect();
    // Distinct admissibility rules: schemes sharing a rule (killi and
    // its policy ablations, flair and secded, ...) share one usable-line
    // table per die.
    let mut rules: Vec<LineRule> = Vec::new();
    let rule_of: Vec<usize> = c
        .schemes
        .iter()
        .map(|s| {
            let rule = scheme_admissibility(s).expect("config validated");
            rules.iter().position(|&r| r == rule).unwrap_or_else(|| {
                rules.push(rule);
                rules.len() - 1
            })
        })
        .collect();

    let grid_len = c.vdds.len();
    let min_usable = (c.target * c.lines as f64).ceil() as u32;
    let mut metrics = VminMetrics::new();
    metrics.apply(&VminEvent::CampaignStarted {
        dies: c.dies as u64,
        schemes: c.schemes.len() as u64,
    });

    let mut reader = match &c.store {
        Some(path) => {
            if !path.exists() {
                build_store(path, c, model.as_ref(), &fm_label, &mut metrics)?;
            }
            let reader = DieStoreReader::open(path)?;
            check_store_meta(reader.meta(), c, &fm_label)?;
            metrics.apply(&VminEvent::StoreOpened {
                dies: reader.meta().dies as u64,
            });
            Some(reader)
        }
        None => None,
    };

    let mut bins: Vec<SchemeBin> = labels
        .iter()
        .map(|label| SchemeBin {
            scheme: label.clone(),
            hist: vec![0; grid_len],
            failed: 0,
            vmin: Accumulator::default(),
            min_idx: None,
            max_idx: None,
            capacity: vec![Accumulator::default(); grid_len],
        })
        .collect();
    let mut stats = SearchStats::default();

    let ctx = EvalContext {
        lines: c.lines,
        grid_len,
        rules: &rules,
        rule_of: &rule_of,
        min_usable,
        nested,
        mode: c.search,
    };
    let threads = c.threads.max(1);
    let chunk = (threads * 4).max(1);
    let progress = (c.progress_every > 0).then(|| Progress::new("vmin", c.dies, c.progress_every));
    let mut start = 0;
    while start < c.dies {
        let end = (start + chunk).min(c.dies);
        let outcomes: Vec<DieOutcome> = match reader.as_mut() {
            Some(r) => {
                // Sequential chunk read (the store is a single file),
                // parallel evaluation.
                let mut records = Vec::with_capacity(end - start);
                for i in start..end {
                    records.push(r.read_die(i)?);
                    metrics.apply(&VminEvent::DieStreamed { die: i as u64 });
                }
                par_map(threads, &records, progress.as_ref(), |_, rec| {
                    evaluate_die(rec, &ctx)
                })
            }
            None => {
                // Direct path: fuse synthesis and evaluation per die so
                // no chunk of fault maps is ever resident at once.
                let seeds: Vec<u64> = (start..end)
                    .map(|i| derive_seed(c.root_seed, "die", &[i as u64]))
                    .collect();
                par_map(threads, &seeds, progress.as_ref(), |_, &seed| {
                    let rec = synth_record(model.as_ref(), c.lines, &c.vdds, seed);
                    evaluate_die(&rec, &ctx)
                })
            }
        };
        // Sequential fold in die order: the only place floats happen.
        for (offset, outcome) in outcomes.iter().enumerate() {
            let die = (start + offset) as u64;
            metrics.apply(&VminEvent::DieEvaluated {
                die,
                probes: outcome.stats.probes,
                binary_searches: outcome.stats.binary_searches,
                linear_scans: outcome.stats.linear_scans,
            });
            stats.merge(&outcome.stats);
            for (s, bin) in bins.iter_mut().enumerate() {
                let idx = outcome.vmin_idx[s];
                if idx < 0 {
                    bin.failed += 1;
                } else {
                    let g = idx as usize;
                    bin.hist[g] += 1;
                    bin.vmin.add(c.vdds[g]);
                    bin.min_idx = Some(bin.min_idx.map_or(g, |m| m.min(g)));
                    bin.max_idx = Some(bin.max_idx.map_or(g, |m| m.max(g)));
                }
                let table = &outcome.usable[rule_of[s]];
                for (g, acc) in bin.capacity.iter_mut().enumerate() {
                    acc.add(table[g] as f64 / c.lines as f64);
                }
            }
        }
        start = end;
    }
    metrics.apply(&VminEvent::CampaignCompleted {
        dies: c.dies as u64,
    });

    Ok(CampaignOutput {
        report: VminReport {
            root_seed: c.root_seed,
            dies: c.dies,
            lines: c.lines,
            target: c.target,
            fault_model: fm_label,
            nested,
            vdds: c.vdds.clone(),
            schemes: bins,
            stats,
        },
        metrics,
    })
}

/// Validates a `killi-vmin/v1` report: schema tag, required fields, and
/// internal consistency (histogram totals, CDF monotonicity, grid
/// alignment). The checker behind `killi vmin --check`.
pub fn check_report(text: &str) -> Result<(), String> {
    let v = killi_obs::json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(|s| s.as_str())
        .ok_or("missing schema tag")?;
    if schema != "killi-vmin/v1" {
        return Err(format!("schema is '{schema}', expected 'killi-vmin/v1'"));
    }
    let dies = v
        .get("dies")
        .and_then(|d| d.as_u64())
        .ok_or("missing dies")?;
    if dies == 0 {
        return Err("dies must be positive".to_string());
    }
    v.get("root_seed")
        .and_then(|s| s.as_u64())
        .ok_or("missing root_seed")?;
    v.get("lines")
        .and_then(|l| l.as_u64())
        .ok_or("missing lines")?;
    let target = v
        .get("target")
        .and_then(|t| t.as_f64())
        .ok_or("missing target")?;
    if !(target > 0.0 && target <= 1.0) {
        return Err(format!("target {target} outside (0, 1]"));
    }
    v.get("fault_model")
        .and_then(|f| f.as_str())
        .ok_or("missing fault_model")?;
    v.get("nested_search")
        .and_then(|n| n.as_bool())
        .ok_or("missing nested_search")?;
    let vdds = v
        .get("vdds")
        .and_then(|g| g.as_array())
        .ok_or("missing vdds array")?;
    let grid: Vec<f64> = vdds
        .iter()
        .map(|p| p.as_f64().ok_or("non-numeric grid point"))
        .collect::<Result<_, _>>()?;
    validate_voltage_grid(&grid)?;
    if grid.windows(2).any(|w| w[0] > w[1]) {
        return Err("report grid must be ascending".to_string());
    }
    let schemes = v
        .get("schemes")
        .and_then(|s| s.as_array())
        .ok_or("missing schemes array")?;
    if schemes.is_empty() {
        return Err("report has no schemes".to_string());
    }
    for (i, s) in schemes.iter().enumerate() {
        let label = s
            .get("scheme")
            .and_then(|l| l.as_str())
            .ok_or(format!("scheme {i}: missing label"))?;
        let vmin = s
            .get("vmin")
            .ok_or(format!("scheme '{label}': missing vmin block"))?;
        let n = vmin
            .get("n")
            .and_then(|n| n.as_u64())
            .ok_or(format!("scheme '{label}': missing vmin.n"))?;
        let failed = vmin
            .get("failed")
            .and_then(|f| f.as_u64())
            .ok_or(format!("scheme '{label}': missing vmin.failed"))?;
        if n + failed != dies {
            return Err(format!(
                "scheme '{label}': n {n} + failed {failed} != dies {dies}"
            ));
        }
        let cdf = s
            .get("cdf")
            .and_then(|c| c.as_array())
            .ok_or(format!("scheme '{label}': missing cdf"))?;
        if cdf.len() != grid.len() {
            return Err(format!(
                "scheme '{label}': cdf has {} rows, grid has {} points",
                cdf.len(),
                grid.len()
            ));
        }
        let mut prev = 0u64;
        for (g, row) in cdf.iter().enumerate() {
            let at = row
                .get("dies_at_or_below")
                .and_then(|d| d.as_u64())
                .ok_or(format!("scheme '{label}': cdf row {g} malformed"))?;
            if at < prev {
                return Err(format!("scheme '{label}': cdf not monotone at row {g}"));
            }
            let y = row
                .get("yield")
                .and_then(|y| y.as_f64())
                .ok_or(format!("scheme '{label}': cdf row {g} missing yield"))?;
            if !(0.0..=1.0).contains(&y) {
                return Err(format!("scheme '{label}': yield {y} outside [0, 1]"));
            }
            prev = at;
        }
        if prev != n {
            return Err(format!(
                "scheme '{label}': cdf total {prev} != passing dies {n}"
            ));
        }
        let capacity = s
            .get("capacity")
            .and_then(|c| c.as_array())
            .ok_or(format!("scheme '{label}': missing capacity"))?;
        if capacity.len() != grid.len() {
            return Err(format!(
                "scheme '{label}': capacity has {} rows, grid has {} points",
                capacity.len(),
                grid.len()
            ));
        }
    }
    let search = v.get("search").ok_or("missing search block")?;
    for key in [
        "dies_evaluated",
        "voltage_probes",
        "binary_searches",
        "linear_scans",
    ] {
        search
            .get(key)
            .and_then(|k| k.as_u64())
            .ok_or(format!("search block missing {key}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> VminConfig {
        VminConfig {
            root_seed: 7,
            dies: 12,
            lines: 256,
            target: 0.99,
            vdds: vec![0.55, 0.6, 0.65, 0.7],
            schemes: vec![
                killi_bench::schemes::SchemeSpec::Killi(64).config(),
                killi_bench::schemes::SchemeSpec::Flair.config(),
            ],
            threads: 2,
            ..VminConfig::default()
        }
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = small_config();
        c.vdds = vec![0.6];
        assert!(matches!(c.validated(), Err(VminConfigError::Grid { .. })));
        let mut c = small_config();
        c.schemes.clear();
        assert!(matches!(c.validated(), Err(VminConfigError::Config { .. })));
        let mut c = small_config();
        c.dies = 0;
        assert!(matches!(c.validated(), Err(VminConfigError::Config { .. })));
        let mut c = small_config();
        c.target = 0.0;
        assert!(matches!(c.validated(), Err(VminConfigError::Config { .. })));
        let mut c = small_config();
        c.schemes[0] = SchemeConfig::new("no-such-scheme");
        assert!(matches!(c.validated(), Err(VminConfigError::Scheme(_))));
    }

    #[test]
    fn validation_canonicalizes_grid_ascending() {
        let mut c = small_config();
        c.vdds = vec![0.7, 0.65, 0.6, 0.55];
        let v = c.validated().unwrap();
        assert_eq!(v.config().vdds, vec![0.55, 0.6, 0.65, 0.7]);
    }

    #[test]
    fn canonical_json_ignores_execution_knobs() {
        let base = small_config().validated().unwrap().canonical_json();
        let mut retuned = small_config();
        retuned.threads = 9;
        retuned.progress_every = 100;
        retuned.store = Some(PathBuf::from("/tmp/somewhere.kds"));
        retuned.search = SearchMode::Exhaustive;
        assert_eq!(retuned.validated().unwrap().canonical_json(), base);
        let mut reseeded = small_config();
        reseeded.root_seed ^= 1;
        assert_ne!(reseeded.validated().unwrap().canonical_json(), base);
    }

    #[test]
    fn report_is_thread_count_invariant() {
        let mut texts = Vec::new();
        for threads in [1, 3] {
            let mut c = small_config();
            c.threads = threads;
            let out = run_campaign(&c.validated().unwrap()).unwrap();
            texts.push(out.report.to_json());
        }
        assert_eq!(texts[0], texts[1]);
        check_report(&texts[0]).expect("report validates");
    }

    #[test]
    fn store_and_direct_paths_produce_identical_reports() {
        let dir = std::env::temp_dir().join("killi-vmin-campaign-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("campaign-{}.kds", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let direct = run_campaign(&small_config().validated().unwrap()).unwrap();
        let mut c = small_config();
        c.store = Some(path.clone());
        let stored = run_campaign(&c.clone().validated().unwrap()).unwrap();
        assert_eq!(direct.report.to_json(), stored.report.to_json());
        // Second run reuses the store rather than rebuilding.
        let reused = run_campaign(&c.validated().unwrap()).unwrap();
        assert_eq!(direct.report.to_json(), reused.report.to_json());
        assert_eq!(
            reused
                .metrics
                .get(killi_obs::VminCounter::StoreBytesWritten),
            0,
            "second run must not rebuild the store"
        );
        assert!(
            reused.metrics.get(killi_obs::VminCounter::StoreDiesRead) > 0,
            "second run must stream from the store"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mismatched_store_is_rejected() {
        let dir = std::env::temp_dir().join("killi-vmin-campaign-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("mismatch-{}.kds", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let mut c = small_config();
        c.store = Some(path.clone());
        run_campaign(&c.validated().unwrap()).unwrap();
        // Same store, different seed: refuse rather than silently reuse.
        let mut other = small_config();
        other.root_seed ^= 0xdead;
        other.store = Some(path.clone());
        assert!(matches!(
            run_campaign(&other.validated().unwrap()),
            Err(CampaignError::StoreMismatch { .. })
        ));
        // A larger store serves a smaller campaign.
        let mut fewer = small_config();
        fewer.dies = 5;
        fewer.store = Some(path.clone());
        let out = run_campaign(&fewer.validated().unwrap()).unwrap();
        assert_eq!(out.report.dies, 5);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checker_rejects_tampered_reports() {
        let out = run_campaign(&small_config().validated().unwrap()).unwrap();
        let good = out.report.to_json();
        check_report(&good).unwrap();
        assert!(check_report("{}").is_err());
        assert!(check_report(&good.replace("killi-vmin/v1", "killi-vmin/v9")).is_err());
        assert!(check_report("not json").is_err());
        // Break the n + failed == dies invariant.
        let tampered = good.replace("\"dies\": 12", "\"dies\": 13");
        assert!(check_report(&tampered).is_err());
    }
}

//! Fleet-scale Vmin campaigns for the Killi reproduction.
//!
//! The sweep engine in `killi-bench` answers "how does scheme S perform
//! at voltage V?" for a handful of replicates. This crate answers the
//! deployment-side question the paper's yield discussion (§6) raises:
//! over a *fleet* of dies, what minimum safe voltage does each
//! protection scheme bin at, and what fraction of the fleet is usable
//! at each grid point?
//!
//! Three pieces:
//!
//! - [`search`] — the nesting-aware grid search. Voltage-nested fault
//!   models (the property `killi-fault` tests and every model declares
//!   via `voltage_nested`) make the pass predicate monotone along the
//!   grid, so Vmin bisects in `O(log G)` probes; non-nested models
//!   (`transient`) deterministically fall back to a linear scan.
//! - [`store`] — the `killi-diestore/v1` streaming die store: a
//!   write-once sparse serialization of a fleet's fault maps, folded
//!   across the whole voltage grid into per-cell bitmasks, so campaigns
//!   re-run against identical silicon without re-synthesis and peak
//!   memory stays bounded by the chunk size rather than the fleet size.
//! - [`campaign`] — the engine: per-die usable-line tables under each
//!   scheme's static admissibility rule (`killi::registry::LineRule`),
//!   parallel integer-only evaluation on the shared scoped-thread pool,
//!   sequential aggregation, and the byte-deterministic `killi-vmin/v1`
//!   report (Vmin CDF with exact order statistics, capacity-vs-vdd
//!   curves, yield tables).

pub mod bench;
pub mod campaign;
pub mod search;
pub mod store;

pub use campaign::{
    check_report, run_campaign, CampaignError, CampaignOutput, SchemeBin, ValidatedVminConfig,
    VminConfig, VminConfigError, VminReport, DEFAULT_GRID,
};
pub use search::{grid_vmin, SearchMode, SearchStats};
pub use store::{
    DieEntry, DieRecord, DieStoreReader, DieStoreWriter, StoreError, StoreMeta, MAX_GRID_POINTS,
};

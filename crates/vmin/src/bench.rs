//! The `killi bench --suite vmin` campaign benchmark.
//!
//! One macro-benchmark, `vmin_campaign`: a full fleet campaign with the
//! exhaustive linear-scan oracle ([`SearchMode::Exhaustive`]) as the
//! "before" side against the production nesting-aware search
//! ([`SearchMode::Auto`]) as "after". Both sides bin every die at the
//! same Vmin (the property the search engine's tests pin); only probe
//! counts and wall time differ. The report reuses the `killi-bench/v1`
//! schema with a [`Throughput`] annotation carrying the headline
//! number — campaign dies/sec — which CI records into
//! `results/BENCH_vmin.json`.

use killi_bench::perf::{PerfBenchmark, PerfReport, Throughput};
use killi_bench::timing::measure;

use crate::campaign::{run_campaign, ValidatedVminConfig, VminConfig, DEFAULT_GRID};
use crate::search::SearchMode;

/// The benchmark names of the vmin suite, in emission order. `killi
/// bench --check` accepts this set as an alternative to the perf
/// suite's.
pub const VMIN_BENCHMARK_NAMES: [&str; 1] = ["vmin_campaign"];

fn bench_config(quick: bool, search: SearchMode) -> ValidatedVminConfig {
    VminConfig {
        root_seed: 42,
        dies: if quick { 64 } else { 512 },
        lines: if quick { 1024 } else { 4096 },
        target: 0.99,
        vdds: DEFAULT_GRID.to_vec(),
        search,
        ..VminConfig::default()
    }
    .validated()
    .expect("bench config is valid")
}

/// Runs the campaign benchmark and returns the `killi-bench/v1` report.
pub fn run_vmin_bench(quick: bool) -> PerfReport {
    let samples = if quick { 1 } else { 3 };
    let exhaustive = bench_config(quick, SearchMode::Exhaustive);
    let auto = bench_config(quick, SearchMode::Auto);
    let dies = auto.config().dies as f64;
    let before_ns = measure(samples, || {
        run_campaign(&exhaustive).expect("bench campaign runs")
    });
    let after_ns = measure(samples, || {
        run_campaign(&auto).expect("bench campaign runs")
    });
    let rate = |ns: u128| dies / (ns.max(1) as f64 / 1e9);
    PerfReport {
        quick,
        // The campaign is simulation-free: no per-CU trace exists.
        ops_per_cu: 0,
        benchmarks: vec![PerfBenchmark {
            name: VMIN_BENCHMARK_NAMES[0],
            before_ns,
            after_ns,
            throughput: Some(Throughput {
                unit: "dies_per_sec",
                before: rate(before_ns),
                after: rate(after_ns),
            }),
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_and_production_configs_share_a_cache_key() {
        // SearchMode is an execution knob: both sides of the benchmark
        // describe the same campaign.
        assert_eq!(
            bench_config(true, SearchMode::Exhaustive).canonical_json(),
            bench_config(true, SearchMode::Auto).canonical_json()
        );
    }

    #[test]
    fn vmin_report_carries_throughput() {
        let report = PerfReport {
            quick: true,
            ops_per_cu: 0,
            benchmarks: vec![PerfBenchmark {
                name: VMIN_BENCHMARK_NAMES[0],
                before_ns: 2_000_000_000,
                after_ns: 1_000_000_000,
                throughput: Some(Throughput {
                    unit: "dies_per_sec",
                    before: 32.0,
                    after: 64.0,
                }),
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"throughput\": {\"unit\": \"dies_per_sec\""));
        assert!(json.contains("\"after\": 64.000"));
        let parsed = killi_obs::parse_json(&json).expect("valid JSON");
        let bench = &parsed
            .get("benchmarks")
            .and_then(|b| b.as_array())
            .expect("benchmarks array")[0];
        assert_eq!(
            bench
                .get("throughput")
                .and_then(|t| t.get("unit"))
                .and_then(|u| u.as_str()),
            Some("dies_per_sec")
        );
    }
}

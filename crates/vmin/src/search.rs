//! Nesting-aware Vmin grid search.
//!
//! The voltage grid is sorted ascending and a die either *passes* a grid
//! point (enough admissible lines for the capacity target) or fails it.
//! For fault models with the voltage-nesting property — every fault at a
//! higher voltage is also present at any lower voltage, declared via
//! `FaultModel::voltage_nested` and property-tested in `killi-fault` —
//! the pass predicate is monotone non-decreasing along the grid, so the
//! first passing point can be bisected in `O(log G)` probes. Models that
//! break nesting (the `transient` overlay redraws per operating point)
//! get a deterministic linear fallback that scans from the top of the
//! grid down and reports the start of the longest passing suffix: the
//! only sound notion of "minimum safe voltage" when the safe region is
//! merely upward-closed rather than an interval boundary.
//!
//! When the predicate *is* monotone the two searches agree exactly —
//! that equivalence is the subsystem's core property test.

/// Probe accounting for one or more searches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Grid-point pass/fail evaluations.
    pub probes: u64,
    /// Searches answered by bisection.
    pub binary_searches: u64,
    /// Searches answered by the exhaustive top-down fallback.
    pub linear_scans: u64,
}

impl SearchStats {
    /// Element-wise accumulation.
    pub fn merge(&mut self, other: &SearchStats) {
        self.probes += other.probes;
        self.binary_searches += other.binary_searches;
        self.linear_scans += other.linear_scans;
    }
}

/// How [`grid_vmin`] chooses its algorithm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SearchMode {
    /// Bisect when the model is voltage-nested, linear fallback
    /// otherwise (the production mode).
    #[default]
    Auto,
    /// Always scan linearly — the oracle the property tests and the
    /// `killi bench --suite vmin` "before" side compare against.
    Exhaustive,
}

/// The minimum passing grid index of one (die, scheme) pair, or `None`
/// when the die fails even the highest grid voltage.
///
/// `pass(g)` must be a pure function of `g` for the duration of the
/// call. With `nested` (and [`SearchMode::Auto`]) it must additionally
/// be monotone non-decreasing in `g`; the bisection silently assumes it,
/// which is why non-nested models are routed to the linear fallback.
pub fn grid_vmin(
    grid_len: usize,
    nested: bool,
    mode: SearchMode,
    mut pass: impl FnMut(usize) -> bool,
    stats: &mut SearchStats,
) -> Option<usize> {
    assert!(grid_len >= 2, "a Vmin search needs at least 2 grid points");
    let bisect = nested && mode == SearchMode::Auto;
    if bisect {
        stats.binary_searches += 1;
        stats.probes += 1;
        if !pass(grid_len - 1) {
            return None;
        }
        // Invariant: pass(hi) is true, every index below lo fails.
        let (mut lo, mut hi) = (0, grid_len - 1);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            stats.probes += 1;
            if pass(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Some(hi)
    } else {
        stats.linear_scans += 1;
        let mut vmin = None;
        for g in (0..grid_len).rev() {
            stats.probes += 1;
            if pass(g) {
                vmin = Some(g);
            } else {
                break;
            }
        }
        vmin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A monotone predicate passing at indices `>= first_pass`.
    fn step(first_pass: usize) -> impl Fn(usize) -> bool {
        move |g| g >= first_pass
    }

    #[test]
    fn binary_and_linear_agree_on_every_monotone_predicate() {
        for grid_len in 2..10 {
            for first_pass in 0..=grid_len {
                // first_pass == grid_len means the die always fails.
                let mut s1 = SearchStats::default();
                let mut s2 = SearchStats::default();
                let b = grid_vmin(grid_len, true, SearchMode::Auto, step(first_pass), &mut s1);
                let l = grid_vmin(
                    grid_len,
                    true,
                    SearchMode::Exhaustive,
                    step(first_pass),
                    &mut s2,
                );
                assert_eq!(b, l, "grid_len={grid_len} first_pass={first_pass}");
                let expected = (first_pass < grid_len).then_some(first_pass);
                assert_eq!(b, expected);
                assert_eq!(s1.binary_searches, 1);
                assert_eq!(s1.linear_scans, 0);
                assert_eq!(s2.linear_scans, 1);
            }
        }
    }

    #[test]
    fn bisection_probe_count_is_logarithmic() {
        let mut stats = SearchStats::default();
        let grid_len = 64;
        grid_vmin(grid_len, true, SearchMode::Auto, step(17), &mut stats);
        // 1 top probe + ceil(log2(64)) bisection probes.
        assert!(stats.probes <= 1 + 6, "{} probes", stats.probes);
    }

    #[test]
    fn non_nested_models_take_the_linear_fallback() {
        let mut stats = SearchStats::default();
        let got = grid_vmin(4, false, SearchMode::Auto, step(1), &mut stats);
        assert_eq!(got, Some(1));
        assert_eq!(stats.binary_searches, 0);
        assert_eq!(stats.linear_scans, 1);
    }

    #[test]
    fn linear_scan_reports_the_longest_passing_suffix() {
        // Non-monotone pass pattern: F T F T. The safe (suffix) region
        // is {3}; index 1 passes but 2 fails above it, so 1 is not safe.
        let pattern = [false, true, false, true];
        let mut stats = SearchStats::default();
        let got = grid_vmin(4, false, SearchMode::Auto, |g| pattern[g], &mut stats);
        assert_eq!(got, Some(3));
        // All-fail at the top: no Vmin.
        let mut stats = SearchStats::default();
        assert_eq!(
            grid_vmin(4, false, SearchMode::Auto, |_| false, &mut stats),
            None
        );
        assert_eq!(stats.probes, 1, "scan stops at the first failure");
    }
}

//! Trace characterization: the workload-level properties Figures 4/5
//! actually depend on (footprint, op mix, reuse, write share), computable
//! for any trace — generated or recorded.

use std::collections::HashMap;

use killi_sim::trace::{Trace, TraceOp};

/// Summary statistics of a multi-CU trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProfile {
    /// Compute units.
    pub cus: usize,
    /// Total operations (memory + compute ops).
    pub ops: u64,
    /// Total instructions (compute ops weighted by their cycle count).
    pub instructions: u64,
    /// Load operations.
    pub loads: u64,
    /// Store operations.
    pub stores: u64,
    /// Distinct 64-byte lines touched.
    pub footprint_lines: u64,
    /// Footprint in bytes.
    pub footprint_bytes: u64,
    /// Mean accesses per touched line (a coarse reuse measure).
    pub mean_reuse: f64,
    /// Fraction of memory accesses that are stores.
    pub write_share: f64,
    /// Compute cycles per memory access.
    pub compute_per_access: f64,
}

impl TraceProfile {
    /// Profiles a trace (consumes it; generators are deterministic, so
    /// re-generate to run the same workload afterwards).
    pub fn of(trace: Trace) -> Self {
        let streams = trace.into_streams();
        let cus = streams.len();
        let mut ops = 0u64;
        let mut instructions = 0u64;
        let mut loads = 0u64;
        let mut stores = 0u64;
        let mut compute = 0u64;
        let mut lines: HashMap<u64, u64> = HashMap::new();
        for stream in streams {
            for op in stream {
                ops += 1;
                match op {
                    TraceOp::Load(a) => {
                        loads += 1;
                        instructions += 1;
                        *lines.entry(a / 64).or_insert(0) += 1;
                    }
                    TraceOp::Store(a) => {
                        stores += 1;
                        instructions += 1;
                        *lines.entry(a / 64).or_insert(0) += 1;
                    }
                    TraceOp::Compute(c) => {
                        compute += u64::from(c);
                        instructions += u64::from(c);
                    }
                }
            }
        }
        let accesses = loads + stores;
        let footprint_lines = lines.len() as u64;
        TraceProfile {
            cus,
            ops,
            instructions,
            loads,
            stores,
            footprint_lines,
            footprint_bytes: footprint_lines * 64,
            mean_reuse: if footprint_lines == 0 {
                0.0
            } else {
                accesses as f64 / footprint_lines as f64
            },
            write_share: if accesses == 0 {
                0.0
            } else {
                stores as f64 / accesses as f64
            },
            compute_per_access: if accesses == 0 {
                0.0
            } else {
                compute as f64 / accesses as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceParams, Workload};

    fn params() -> TraceParams {
        TraceParams {
            cus: 2,
            ops_per_cu: 5_000,
            seed: 42,
            l2_bytes: 256 * 1024,
        }
    }

    #[test]
    fn profile_counts_are_consistent() {
        let p = TraceProfile::of(Workload::Xsbench.trace(&params()));
        assert_eq!(p.cus, 2);
        assert!(p.ops > 0);
        assert_eq!(
            p.instructions,
            p.loads + p.stores + ((p.compute_per_access * (p.loads + p.stores) as f64) as u64)
        );
        assert!(p.footprint_bytes > 0);
        assert!((0.0..=1.0).contains(&p.write_share));
    }

    #[test]
    fn footprints_scale_with_the_configured_l2() {
        let small = TraceProfile::of(Workload::Xsbench.trace(&params()));
        let mut big_params = params();
        big_params.l2_bytes *= 4;
        big_params.ops_per_cu *= 8; // enough ops to touch the larger table
        let big = TraceProfile::of(Workload::Xsbench.trace(&big_params));
        assert!(
            big.footprint_bytes > 2 * small.footprint_bytes,
            "{} vs {}",
            big.footprint_bytes,
            small.footprint_bytes
        );
    }

    #[test]
    fn compute_bound_kernels_have_high_compute_per_access() {
        let hacc = TraceProfile::of(Workload::Hacc.trace(&params()));
        let snap = TraceProfile::of(Workload::Snap.trace(&params()));
        assert!(hacc.compute_per_access > 4.0 * snap.compute_per_access);
    }

    #[test]
    fn streaming_kernels_have_low_reuse() {
        let mut p = params();
        p.ops_per_cu = 20_000;
        let snap = TraceProfile::of(Workload::Snap.trace(&p));
        let hacc = TraceProfile::of(Workload::Hacc.trace(&p));
        assert!(snap.mean_reuse < hacc.mean_reuse / 4.0);
    }

    #[test]
    fn write_shares_differ_by_kernel_character() {
        let fft = TraceProfile::of(Workload::Fft.trace(&params()));
        let xsbench = TraceProfile::of(Workload::Xsbench.trace(&params()));
        assert!(fft.write_share > xsbench.write_share);
    }
}

//! Synthetic GPGPU workload traces — the stand-in for the paper's ten HPC
//! gem5 workloads (§5.1).
//!
//! The paper's traces (XSBench, FFT and eight more DOE proxy apps run under
//! gem5's GCN3 model) are not public. Figures 4 and 5 depend on three
//! workload properties the generators here control directly: memory
//! footprint relative to the 2 MB L2, reuse pattern (random-reuse, strided
//! passes, stencil neighbourhoods, streaming), and compute-to-memory ratio.
//! Each generator is named for the proxy app whose L2-level access signature
//! it imitates, and is calibrated so the suite splits into the paper's
//! compute-bound (MPKI < 50) and memory-bound (MPKI > 100) buckets.
//!
//! All traces are deterministic functions of `(workload, params, cu)`.

pub mod analysis;

use killi_fault::rng::StreamRng;
use killi_sim::trace::{Trace, TraceOp};

/// Trace generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct TraceParams {
    /// Number of compute units (one op stream each).
    pub cus: usize,
    /// Approximate operations per CU stream.
    pub ops_per_cu: usize,
    /// Trace seed.
    pub seed: u64,
    /// L2 capacity the footprints are scaled against.
    pub l2_bytes: usize,
}

impl TraceParams {
    /// The paper's configuration: 8 CUs over a 2 MB L2.
    pub fn paper(ops_per_cu: usize, seed: u64) -> Self {
        TraceParams {
            cus: 8,
            ops_per_cu,
            seed,
            l2_bytes: 2 * 1024 * 1024,
        }
    }
}

/// The ten workloads of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Monte-Carlo neutronics: random lookups into a cross-section table
    /// about the size of the L2. Memory-bound, capacity-sensitive.
    Xsbench,
    /// Radix-2 passes with doubling strides over a >L2 array; read-modify-
    /// write. Memory-bound, capacity- and conflict-sensitive.
    Fft,
    /// Hydrodynamics stencil: 7-point neighbourhoods over a 2x-L2 grid.
    Lulesh,
    /// Molecular dynamics with cell lists: clustered neighbour reads, heavy
    /// force compute. Compute-bound.
    Comd,
    /// Multigrid V-cycles: level footprints halving from 1.25x L2 down.
    Hpgmg,
    /// Discrete-ordinates sweep: pure streaming over a footprint far beyond
    /// the L2. High MPKI but insensitive to capacity loss.
    Snap,
    /// Adaptive mesh refinement: long block-local phases with occasional
    /// jumps between blocks. Compute-bound.
    Miniamr,
    /// Unstructured-mesh hydro: indirection-driven gathers over a 0.75x-L2
    /// mesh. Mid memory-bound.
    Pennant,
    /// Cosmology particle forces: small resident chunk, very high compute.
    Hacc,
    /// Spectral-element solver: small dense matrices, cache-resident.
    Nekbone,
}

impl Workload {
    /// All ten workloads in the order figures report them.
    pub const ALL: [Workload; 10] = [
        Workload::Xsbench,
        Workload::Fft,
        Workload::Lulesh,
        Workload::Comd,
        Workload::Hpgmg,
        Workload::Snap,
        Workload::Miniamr,
        Workload::Pennant,
        Workload::Hacc,
        Workload::Nekbone,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Xsbench => "xsbench",
            Workload::Fft => "fft",
            Workload::Lulesh => "lulesh",
            Workload::Comd => "comd",
            Workload::Hpgmg => "hpgmg",
            Workload::Snap => "snap",
            Workload::Miniamr => "miniamr",
            Workload::Pennant => "pennant",
            Workload::Hacc => "hacc",
            Workload::Nekbone => "nekbone",
        }
    }

    /// The comma-separated list of every workload name (for error
    /// messages and CLI help).
    pub fn all_names() -> String {
        Self::ALL
            .iter()
            .map(|w| w.name())
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Expected Figure 5 bucket: true for the MPKI > 100 (memory-bound)
    /// plot.
    pub fn is_memory_bound(&self) -> bool {
        matches!(
            self,
            Workload::Xsbench
                | Workload::Fft
                | Workload::Snap
                | Workload::Pennant
                | Workload::Lulesh
        )
    }

    /// Generates the multi-CU trace.
    ///
    /// # Panics
    ///
    /// Panics if `params.cus == 0`.
    pub fn trace(&self, params: &TraceParams) -> Trace {
        Trace::from_vecs(self.ops(params))
    }

    /// Generates the raw per-CU op vectors behind [`Self::trace`]. Callers
    /// that replay one workload trace many times (the sweep's scheme grid)
    /// generate these once, share them in an `Arc`, and wrap each replay
    /// with [`Trace::from_shared`].
    ///
    /// # Panics
    ///
    /// Panics if `params.cus == 0`.
    pub fn ops(&self, params: &TraceParams) -> Vec<Vec<TraceOp>> {
        assert!(params.cus > 0, "need at least one CU");
        (0..params.cus)
            .map(|cu| self.ops_for_cu(params, cu))
            .collect()
    }

    fn ops_for_cu(&self, params: &TraceParams, cu: usize) -> Vec<TraceOp> {
        let mut rng = StreamRng::new(
            params.seed ^ (cu as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.id(),
        );
        let l2 = params.l2_bytes as u64;
        let n = params.ops_per_cu;
        match self {
            Workload::Xsbench => gen_table_lookup(&mut rng, n, cu, l2),
            Workload::Fft => gen_fft(&mut rng, n, cu, l2),
            Workload::Lulesh => gen_stencil(&mut rng, n, cu, l2),
            Workload::Comd => gen_cell_list(&mut rng, n, cu, l2),
            Workload::Hpgmg => gen_multigrid(&mut rng, n, cu, l2),
            Workload::Snap => gen_stream(&mut rng, n, cu, l2),
            Workload::Miniamr => gen_amr_blocks(&mut rng, n, cu, l2),
            Workload::Pennant => gen_gather(&mut rng, n, cu, l2),
            Workload::Hacc => gen_particle(&mut rng, n, cu, l2),
            Workload::Nekbone => gen_small_matrix(&mut rng, n, cu, l2),
        }
    }

    fn id(&self) -> u64 {
        Workload::ALL.iter().position(|w| w == self).unwrap() as u64 * 0x1234_5677
    }
}

/// The error of an unrecognized workload name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownWorkload(pub String);

impl std::fmt::Display for UnknownWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "a known workload (choose from {})",
            Workload::all_names()
        )
    }
}

impl std::error::Error for UnknownWorkload {}

impl std::str::FromStr for Workload {
    type Err = UnknownWorkload;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Workload::ALL
            .iter()
            .copied()
            .find(|w| w.name() == s)
            .ok_or_else(|| UnknownWorkload(s.to_string()))
    }
}

/// XSBench: uniform random lookups into one shared table (~1.1x L2), 2
/// nuclide reads per lookup plus a little compute.
fn gen_table_lookup(rng: &mut StreamRng, n: usize, _cu: usize, l2: u64) -> Vec<TraceOp> {
    let table = l2 + l2 / 8;
    let mut ops = Vec::with_capacity(n);
    while ops.len() + 4 <= n {
        let e = rng.next_below(table / 64) * 64;
        ops.push(TraceOp::Load(e));
        ops.push(TraceOp::Load(e + 64));
        ops.push(TraceOp::Compute(2));
        ops.push(TraceOp::Load(table + rng.next_below(l2 / 4 / 64) * 64));
    }
    ops
}

/// FFT: butterfly passes over a 1.5x-L2 array interleaved with
/// bit-reversal permutation gathers (random reuse), read-modify-write.
/// The permutation phase gives the graded capacity sensitivity the paper's
/// FFT exhibits (it is their most scheme-sensitive workload).
fn gen_fft(rng: &mut StreamRng, n: usize, cu: usize, l2: u64) -> Vec<TraceOp> {
    let array = l2 + l2 / 2;
    let points = array / 64;
    let mut ops = Vec::with_capacity(n);
    let mut stride: u64 = 1;
    let mut idx = (cu as u64 * 977) % points;
    while ops.len() + 7 <= n {
        // Butterfly: two strided operands, updated in place.
        let a = (idx % points) * 64;
        let b = ((idx + stride) % points) * 64;
        ops.push(TraceOp::Load(a));
        ops.push(TraceOp::Load(b));
        ops.push(TraceOp::Compute(1));
        ops.push(TraceOp::Store(a));
        // Bit-reversal permutation: a uniformly random partner element.
        ops.push(TraceOp::Load(rng.next_below(points) * 64));
        ops.push(TraceOp::Load(rng.next_below(points) * 64));
        ops.push(TraceOp::Compute(1));
        idx += 2 * stride;
        if idx >= points {
            idx = rng.next_below(stride.min(points));
            stride *= 2;
            if stride >= points / 2 {
                stride = 1;
            }
        }
    }
    ops
}

/// LULESH: 7-point stencil over a 2x-L2 grid with planes assigned per CU.
fn gen_stencil(rng: &mut StreamRng, n: usize, cu: usize, l2: u64) -> Vec<TraceOp> {
    let grid = 2 * l2;
    let lines = grid / 64;
    let dim = 64u64; // lines per row
    let plane = dim * dim;
    let mut ops = Vec::with_capacity(n);
    let mut i = (cu as u64 * plane * 3) % lines;
    while ops.len() + 9 <= n {
        for neighbour in [0, 1, dim, plane] {
            let fwd = neighbour % lines;
            ops.push(TraceOp::Load(((i + fwd) % lines) * 64));
            ops.push(TraceOp::Load(((i + lines - fwd.max(1)) % lines) * 64));
        }
        ops.push(TraceOp::Compute(4));
        if rng.next_below(4) == 0 {
            ops.push(TraceOp::Store((i % lines) * 64));
        }
        i = (i + 1) % lines;
    }
    ops
}

/// CoMD: per-CU particle cells (~0.2x L2 total), long force loops over the
/// cell neighbourhood, occasional neighbour-cell reads.
fn gen_cell_list(rng: &mut StreamRng, n: usize, cu: usize, l2: u64) -> Vec<TraceOp> {
    let footprint = l2 / 5;
    let cell_bytes = 8 * 1024u64;
    let cells = (footprint / cell_bytes).max(1);
    let mut ops = Vec::with_capacity(n);
    let mut cell = cu as u64 % cells;
    while ops.len() + 8 <= n {
        let base = cell * cell_bytes;
        for _ in 0..3 {
            ops.push(TraceOp::Load(base + rng.next_below(cell_bytes / 64) * 64));
        }
        ops.push(TraceOp::Compute(24));
        ops.push(TraceOp::Load(
            ((cell + 1) % cells) * cell_bytes + rng.next_below(cell_bytes / 64) * 64,
        ));
        ops.push(TraceOp::Compute(12));
        if rng.next_below(8) == 0 {
            ops.push(TraceOp::Store(base + rng.next_below(cell_bytes / 64) * 64));
        }
        if rng.next_below(16) == 0 {
            cell = rng.next_below(cells);
        }
    }
    ops
}

/// HPGMG: V-cycles over levels whose footprints halve from 1.25x L2.
fn gen_multigrid(rng: &mut StreamRng, n: usize, cu: usize, l2: u64) -> Vec<TraceOp> {
    let top = l2 + l2 / 4;
    let mut ops = Vec::with_capacity(n);
    let levels = 5;
    let mut level = 0usize;
    let mut down = true;
    let mut idx = cu as u64 * 131;
    while ops.len() + 4 <= n {
        let size = (top >> level).max(64 * 64);
        let lines = size / 64;
        // Smooth: a short sequential burst with occasional writes.
        for _ in 0..2 {
            ops.push(TraceOp::Load((idx % lines) * 64));
            idx += 1;
        }
        ops.push(TraceOp::Compute(3));
        if rng.next_below(8) == 0 {
            ops.push(TraceOp::Store(((idx + 7) % lines) * 64));
        }
        if idx.is_multiple_of((lines / 4).max(1)) {
            if down {
                level += 1;
                if level == levels {
                    down = false;
                }
            } else if level == 0 {
                down = true;
            } else {
                level -= 1;
            }
        }
    }
    ops
}

/// SNAP: pure wavefront streaming over an 8x-L2 footprint — compulsory
/// misses dominate, so capacity loss barely matters.
fn gen_stream(_rng: &mut StreamRng, n: usize, cu: usize, l2: u64) -> Vec<TraceOp> {
    let space = 8 * l2;
    let lines = space / 64;
    let mut ops = Vec::with_capacity(n);
    let mut i = (cu as u64 * lines / 8) % lines;
    while ops.len() + 4 <= n {
        ops.push(TraceOp::Load((i % lines) * 64));
        ops.push(TraceOp::Load(((i + 1) % lines) * 64));
        ops.push(TraceOp::Compute(5));
        ops.push(TraceOp::Store(((i + lines / 2) % lines) * 64));
        i += 2;
    }
    ops
}

/// miniAMR: long dwell inside a 32 KB block, then jump to another block of
/// a 0.4x-L2 set; mostly compute.
fn gen_amr_blocks(rng: &mut StreamRng, n: usize, cu: usize, l2: u64) -> Vec<TraceOp> {
    let footprint = 2 * l2 / 5;
    let block_bytes = 32 * 1024u64;
    let blocks = (footprint / block_bytes).max(1);
    let mut ops = Vec::with_capacity(n);
    let mut block = cu as u64 % blocks;
    while ops.len() + 6 <= n {
        let base = block * block_bytes;
        for _ in 0..2 {
            ops.push(TraceOp::Load(base + rng.next_below(block_bytes / 64) * 64));
        }
        ops.push(TraceOp::Compute(14));
        ops.push(TraceOp::Load(base + rng.next_below(block_bytes / 64) * 64));
        ops.push(TraceOp::Compute(10));
        if rng.next_below(32) == 0 {
            block = rng.next_below(blocks);
            ops.push(TraceOp::Store(base));
        }
    }
    ops
}

/// PENNANT: gathers driven by an indirection array over a 1.5x-L2 mesh.
fn gen_gather(rng: &mut StreamRng, n: usize, cu: usize, l2: u64) -> Vec<TraceOp> {
    let mesh = l2 + l2 / 2;
    let index = l2 / 8;
    let mut ops = Vec::with_capacity(n);
    let mut i = cu as u64 * 59;
    while ops.len() + 5 <= n {
        ops.push(TraceOp::Load((i % (index / 64)) * 64)); // indirection read
        let target = mesh / 64;
        ops.push(TraceOp::Load(index + rng.next_below(target) * 64));
        ops.push(TraceOp::Load(index + rng.next_below(target) * 64));
        ops.push(TraceOp::Compute(3));
        if rng.next_below(6) == 0 {
            ops.push(TraceOp::Store(index + rng.next_below(target) * 64));
        }
        i += 1;
    }
    ops
}

/// HACC: a small per-CU resident particle chunk with very heavy compute.
fn gen_particle(rng: &mut StreamRng, n: usize, cu: usize, l2: u64) -> Vec<TraceOp> {
    let chunk = (l2 / 64).max(4096); // per-CU slice of a ~0.125x-L2 set
    let base = cu as u64 * chunk;
    let mut ops = Vec::with_capacity(n);
    while ops.len() + 5 <= n {
        ops.push(TraceOp::Load(base + rng.next_below(chunk / 64) * 64));
        ops.push(TraceOp::Load(base + rng.next_below(chunk / 64) * 64));
        ops.push(TraceOp::Compute(40));
        if rng.next_below(10) == 0 {
            ops.push(TraceOp::Store(base + rng.next_below(chunk / 64) * 64));
        }
    }
    ops
}

/// Nekbone: tiny dense-matrix kernels, essentially cache-resident.
fn gen_small_matrix(rng: &mut StreamRng, n: usize, cu: usize, l2: u64) -> Vec<TraceOp> {
    let matrices = (l2 / 80).max(4096);
    let base = cu as u64 * matrices;
    let mut ops = Vec::with_capacity(n);
    let mut row = 0u64;
    while ops.len() + 4 <= n {
        ops.push(TraceOp::Load(base + (row % (matrices / 64)) * 64));
        ops.push(TraceOp::Compute(30));
        row += 1;
        if rng.next_below(64) == 0 {
            ops.push(TraceOp::Store(base + rng.next_below(matrices / 64) * 64));
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TraceParams {
        TraceParams {
            cus: 2,
            ops_per_cu: 2000,
            seed: 42,
            l2_bytes: 64 * 1024,
        }
    }

    #[test]
    fn all_ten_workloads_generate() {
        for w in Workload::ALL {
            let t = w.trace(&params());
            assert_eq!(t.cus(), 2, "{}", w.name());
            let ops: Vec<_> = t.into_streams().remove(0).collect();
            assert!(
                ops.len() >= params().ops_per_cu - 16,
                "{}: {} ops",
                w.name(),
                ops.len()
            );
        }
    }

    #[test]
    fn traces_are_deterministic() {
        for w in [Workload::Xsbench, Workload::Comd, Workload::Fft] {
            let a: Vec<Vec<TraceOp>> = w
                .trace(&params())
                .into_streams()
                .into_iter()
                .map(|s| s.collect())
                .collect();
            let b: Vec<Vec<TraceOp>> = w
                .trace(&params())
                .into_streams()
                .into_iter()
                .map(|s| s.collect())
                .collect();
            assert_eq!(a, b, "{}", w.name());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut p2 = params();
        p2.seed = 43;
        let a: Vec<TraceOp> = Workload::Xsbench
            .trace(&params())
            .into_streams()
            .remove(0)
            .collect();
        let b: Vec<TraceOp> = Workload::Xsbench
            .trace(&p2)
            .into_streams()
            .remove(0)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn cus_see_different_streams() {
        let streams: Vec<Vec<TraceOp>> = Workload::Lulesh
            .trace(&params())
            .into_streams()
            .into_iter()
            .map(|s| s.collect())
            .collect();
        assert_ne!(streams[0], streams[1]);
    }

    #[test]
    fn addresses_are_line_aligned() {
        for w in Workload::ALL {
            for op in w.trace(&params()).into_streams().remove(0).take(500) {
                if let TraceOp::Load(a) | TraceOp::Store(a) = op {
                    assert_eq!(a % 64, 0, "{}: unaligned {a:#x}", w.name());
                }
            }
        }
    }

    #[test]
    fn compute_bound_workloads_have_more_compute() {
        let ratio = |w: Workload| {
            let mut mem = 0u64;
            let mut comp = 0u64;
            for op in w.trace(&params()).into_streams().remove(0) {
                match op {
                    TraceOp::Compute(c) => comp += u64::from(c),
                    _ => mem += 1,
                }
            }
            comp as f64 / mem as f64
        };
        assert!(ratio(Workload::Hacc) > ratio(Workload::Xsbench));
        assert!(ratio(Workload::Nekbone) > ratio(Workload::Fft));
        assert!(ratio(Workload::Comd) > ratio(Workload::Snap));
    }

    #[test]
    fn memory_bound_bucket_is_five_and_five() {
        let memory = Workload::ALL.iter().filter(|w| w.is_memory_bound()).count();
        assert_eq!(memory, 5);
    }

    #[test]
    fn paper_params_shape() {
        let p = TraceParams::paper(1000, 1);
        assert_eq!(p.cus, 8);
        assert_eq!(p.l2_bytes, 2 * 1024 * 1024);
        let t = Workload::Snap.trace(&p);
        assert_eq!(t.cus(), 8);
    }
}

//! Trace operations consumed by the compute-unit model.
//!
//! Workload generators (the `killi-workloads` crate) produce one op stream
//! per compute unit; the simulator executes them in order with a bounded
//! outstanding-load window, which is how a GPU wavefront scheduler hides
//! memory latency.

/// One operation in a compute unit's instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Load from a byte address.
    Load(u64),
    /// Store to a byte address (write-through; bypasses the L2 per the
    /// paper's footnote 2).
    Store(u64),
    /// `n` cycles of compute, counting `n` instructions.
    Compute(u32),
}

/// A per-CU operation stream. Boxed iterators keep multi-million-op traces
/// out of memory.
pub type OpStream = Box<dyn Iterator<Item = TraceOp>>;

/// A complete multi-CU workload trace.
pub struct Trace {
    streams: Vec<OpStream>,
}

impl Trace {
    /// Builds a trace from per-CU op streams.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty.
    pub fn new(streams: Vec<OpStream>) -> Self {
        assert!(!streams.is_empty(), "trace needs at least one CU stream");
        Trace { streams }
    }

    /// Convenience constructor from in-memory op vectors (tests, examples).
    pub fn from_vecs(per_cu: Vec<Vec<TraceOp>>) -> Self {
        Self::new(
            per_cu
                .into_iter()
                .map(|v| Box::new(v.into_iter()) as OpStream)
                .collect(),
        )
    }

    /// Number of compute units in the trace.
    pub fn cus(&self) -> usize {
        self.streams.len()
    }

    /// Consumes the trace into its streams.
    pub fn into_streams(self) -> Vec<OpStream> {
        self.streams
    }
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace").field("cus", &self.cus()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vecs_roundtrip() {
        let t = Trace::from_vecs(vec![
            vec![TraceOp::Load(0), TraceOp::Compute(5)],
            vec![TraceOp::Store(64)],
        ]);
        assert_eq!(t.cus(), 2);
        let streams = t.into_streams();
        let first: Vec<_> = streams.into_iter().next().unwrap().collect();
        assert_eq!(first, vec![TraceOp::Load(0), TraceOp::Compute(5)]);
    }

    #[test]
    #[should_panic(expected = "at least one CU")]
    fn empty_trace_rejected() {
        Trace::new(Vec::new());
    }
}

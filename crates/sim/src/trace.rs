//! Trace operations consumed by the compute-unit model.
//!
//! Workload generators (the `killi-workloads` crate) produce one op stream
//! per compute unit; the simulator executes them in order with a bounded
//! outstanding-load window, which is how a GPU wavefront scheduler hides
//! memory latency.

/// One operation in a compute unit's instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Load from a byte address.
    Load(u64),
    /// Store to a byte address (write-through; bypasses the L2 per the
    /// paper's footnote 2).
    Store(u64),
    /// `n` cycles of compute, counting `n` instructions.
    Compute(u32),
}

/// A per-CU operation stream. Boxed iterators keep multi-million-op traces
/// out of memory.
pub type OpStream = Box<dyn Iterator<Item = TraceOp>>;

/// A complete multi-CU workload trace.
pub struct Trace {
    streams: Vec<OpStream>,
}

impl Trace {
    /// Builds a trace from per-CU op streams.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty.
    pub fn new(streams: Vec<OpStream>) -> Self {
        assert!(!streams.is_empty(), "trace needs at least one CU stream");
        Trace { streams }
    }

    /// Convenience constructor from in-memory op vectors (tests, examples).
    pub fn from_vecs(per_cu: Vec<Vec<TraceOp>>) -> Self {
        Self::new(
            per_cu
                .into_iter()
                .map(|v| Box::new(v.into_iter()) as OpStream)
                .collect(),
        )
    }

    /// Builds a trace over a shared op buffer without copying it. Many
    /// simulations of the same (workload, seed) — e.g. every scheme cell of
    /// a sweep replicate — can each call this on one `Arc`'d buffer; each
    /// per-CU stream is a cursor into the shared vectors, yielding exactly
    /// the ops `from_vecs` would.
    ///
    /// # Panics
    ///
    /// Panics if `per_cu` is empty.
    pub fn from_shared(per_cu: std::sync::Arc<Vec<Vec<TraceOp>>>) -> Self {
        Self::new(
            (0..per_cu.len())
                .map(|cu| {
                    Box::new(SharedStream {
                        buf: std::sync::Arc::clone(&per_cu),
                        cu,
                        next: 0,
                    }) as OpStream
                })
                .collect(),
        )
    }

    /// Number of compute units in the trace.
    pub fn cus(&self) -> usize {
        self.streams.len()
    }

    /// Consumes the trace into its streams.
    pub fn into_streams(self) -> Vec<OpStream> {
        self.streams
    }
}

/// Cursor over one CU's ops inside a shared buffer (see
/// [`Trace::from_shared`]).
struct SharedStream {
    buf: std::sync::Arc<Vec<Vec<TraceOp>>>,
    cu: usize,
    next: usize,
}

impl Iterator for SharedStream {
    type Item = TraceOp;

    fn next(&mut self) -> Option<TraceOp> {
        let op = self.buf[self.cu].get(self.next).copied();
        self.next += 1;
        op
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.buf[self.cu].len().saturating_sub(self.next);
        (rem, Some(rem))
    }
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace").field("cus", &self.cus()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vecs_roundtrip() {
        let t = Trace::from_vecs(vec![
            vec![TraceOp::Load(0), TraceOp::Compute(5)],
            vec![TraceOp::Store(64)],
        ]);
        assert_eq!(t.cus(), 2);
        let streams = t.into_streams();
        let first: Vec<_> = streams.into_iter().next().unwrap().collect();
        assert_eq!(first, vec![TraceOp::Load(0), TraceOp::Compute(5)]);
    }

    #[test]
    #[should_panic(expected = "at least one CU")]
    fn empty_trace_rejected() {
        Trace::new(Vec::new());
    }

    #[test]
    fn shared_trace_yields_same_ops_as_owned() {
        let ops = vec![
            vec![TraceOp::Load(0), TraceOp::Compute(5), TraceOp::Store(64)],
            vec![TraceOp::Store(128)],
            vec![],
        ];
        let shared = std::sync::Arc::new(ops.clone());
        // Two traces over one buffer, plus the owned reference.
        for _ in 0..2 {
            let t = Trace::from_shared(std::sync::Arc::clone(&shared));
            assert_eq!(t.cus(), 3);
            let got: Vec<Vec<TraceOp>> =
                t.into_streams().into_iter().map(|s| s.collect()).collect();
            assert_eq!(got, ops);
        }
    }
}

//! Compact binary trace persistence.
//!
//! The synthetic generators cover the paper's workloads, but a downstream
//! user will want to drive the simulator with *their own* memory traces.
//! This module defines a simple streaming format:
//!
//! ```text
//! magic "KTRC" | version u8 | cu_count varint
//! per CU: op_count varint, then ops
//! op: tag byte (0 = load, 1 = store, 2 = compute)
//!     loads/stores: zigzag-varint delta from the previous address
//!     compute:      varint cycle count
//! ```
//!
//! Address deltas plus varints shrink typical traces by ~6-10x versus
//! fixed-width encoding.

use std::io::{self, Read, Write};

use crate::trace::{Trace, TraceOp};

const MAGIC: &[u8; 4] = b"KTRC";
const VERSION: u8 = 1;

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        if shift >= 63 && b > 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflow",
            ));
        }
        out |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Serializes a trace. Consumes the op streams (they are single-pass
/// iterators); to both save and run a trace, generate it twice — the
/// generators are deterministic.
///
/// # Errors
///
/// Propagates writer errors.
pub fn save<W: Write>(trace: Trace, w: &mut W) -> io::Result<()> {
    let streams = trace.into_streams();
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    write_varint(w, streams.len() as u64)?;
    for stream in streams {
        let ops: Vec<TraceOp> = stream.collect();
        write_varint(w, ops.len() as u64)?;
        let mut prev_addr = 0i64;
        for op in ops {
            match op {
                TraceOp::Load(a) => {
                    w.write_all(&[0])?;
                    write_varint(w, zigzag(a as i64 - prev_addr))?;
                    prev_addr = a as i64;
                }
                TraceOp::Store(a) => {
                    w.write_all(&[1])?;
                    write_varint(w, zigzag(a as i64 - prev_addr))?;
                    prev_addr = a as i64;
                }
                TraceOp::Compute(c) => {
                    w.write_all(&[2])?;
                    write_varint(w, u64::from(c))?;
                }
            }
        }
    }
    Ok(())
}

/// Deserializes a trace.
///
/// # Errors
///
/// Returns an error on a bad magic/version or corrupt stream.
pub fn load<R: Read>(r: &mut R) -> io::Result<Trace> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a killi trace file",
        ));
    }
    let mut version = [0u8; 1];
    r.read_exact(&mut version)?;
    if version[0] != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {}", version[0]),
        ));
    }
    let cus = read_varint(r)? as usize;
    if cus == 0 || cus > 4096 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("implausible CU count {cus}"),
        ));
    }
    let mut streams = Vec::with_capacity(cus);
    for _ in 0..cus {
        let n = read_varint(r)? as usize;
        let mut ops = Vec::with_capacity(n.min(1 << 24));
        let mut prev_addr = 0i64;
        for _ in 0..n {
            let mut tag = [0u8; 1];
            r.read_exact(&mut tag)?;
            let op = match tag[0] {
                0 | 1 => {
                    let addr = prev_addr.wrapping_add(unzigzag(read_varint(r)?));
                    prev_addr = addr;
                    let addr = u64::try_from(addr).map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "negative address")
                    })?;
                    if tag[0] == 0 {
                        TraceOp::Load(addr)
                    } else {
                        TraceOp::Store(addr)
                    }
                }
                2 => TraceOp::Compute(u32::try_from(read_varint(r)?).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "compute count overflow")
                })?),
                t => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unknown op tag {t}"),
                    ))
                }
            };
            ops.push(op);
        }
        streams.push(Box::new(ops.into_iter()) as crate::trace::OpStream);
    }
    Ok(Trace::new(streams))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(per_cu: Vec<Vec<TraceOp>>) -> Vec<Vec<TraceOp>> {
        let mut buf = Vec::new();
        save(Trace::from_vecs(per_cu), &mut buf).unwrap();
        load(&mut buf.as_slice())
            .unwrap()
            .into_streams()
            .into_iter()
            .map(|s| s.collect())
            .collect()
    }

    #[test]
    fn roundtrip_preserves_ops() {
        let ops = vec![
            vec![
                TraceOp::Load(0x1000),
                TraceOp::Load(0x1040),
                TraceOp::Compute(12),
                TraceOp::Store(0x8_0000_0000),
                TraceOp::Load(0x40),
            ],
            vec![TraceOp::Compute(u32::MAX), TraceOp::Store(0)],
        ];
        assert_eq!(roundtrip(ops.clone()), ops);
    }

    #[test]
    fn sequential_traces_compress_well() {
        let ops: Vec<TraceOp> = (0..10_000).map(|i| TraceOp::Load(i * 64)).collect();
        let mut buf = Vec::new();
        save(Trace::from_vecs(vec![ops]), &mut buf).unwrap();
        // 10k sequential loads: tag + 1-2 byte delta each.
        assert!(buf.len() < 10_000 * 4, "{} bytes", buf.len());
    }

    #[test]
    fn varint_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN + 1] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(load(&mut &b"NOPE"[..]).is_err());
        let mut bad = Vec::new();
        bad.extend_from_slice(MAGIC);
        bad.push(99); // bad version
        assert!(load(&mut bad.as_slice()).is_err());
    }

    #[test]
    fn generated_workload_roundtrips() {
        // Cross-check with a real generator output via the sim boundary.
        let ops: Vec<TraceOp> = (0..500)
            .map(|i| match i % 3 {
                0 => TraceOp::Load((i * 977) % 65536 * 64),
                1 => TraceOp::Store((i * 31) % 4096 * 64),
                _ => TraceOp::Compute((i % 40) as u32 + 1),
            })
            .collect();
        assert_eq!(
            roundtrip(vec![ops.clone(), ops.clone()]),
            vec![ops.clone(), ops]
        );
    }
}

//! Simulation statistics: the raw counters behind Figures 4 and 5 and
//! Table 6.

/// Counters collected by one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total simulated cycles (kernel execution time; Figure 4 metric).
    pub cycles: u64,
    /// Instructions executed (memory ops + compute ops).
    pub instructions: u64,
    /// Load operations issued.
    pub loads: u64,
    /// Store operations issued.
    pub stores: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L1 misses (forwarded to the L2).
    pub l1_misses: u64,
    /// L2 demand hits.
    pub l2_hits: u64,
    /// L2 demand misses (includes error-induced and bypassed accesses).
    pub l2_misses: u64,
    /// L2 misses caused by a detected error on a hit (Table 2's
    /// "error-induced cache miss").
    pub l2_error_misses: u64,
    /// L2 line invalidations forced by ECC-cache evictions.
    pub ecc_induced_invalidations: u64,
    /// Accesses bypassing the L2 because no usable way existed in the set.
    pub l2_bypasses: u64,
    /// Lines delivered to the compute units whose payload differed from the
    /// architecturally-correct value (silent data corruptions).
    pub sdc_events: u64,
    /// Corrections performed by the protection scheme on delivered data.
    pub corrections: u64,
    /// Reads serviced by main memory.
    pub mem_reads: u64,
    /// Writes sent to main memory (write-through traffic).
    pub mem_writes: u64,
    /// L2 tag lookups (for the energy model).
    pub l2_tag_accesses: u64,
    /// L2 data-array accesses (for the energy model).
    pub l2_data_accesses: u64,
    /// ECC-cache accesses performed by the scheme (for the energy model).
    pub ecc_cache_accesses: u64,
    /// Dirty lines written back to memory (write-back mode only).
    pub writebacks: u64,
    /// Detected-uncorrectable errors on *dirty* lines: in write-back mode
    /// the memory copy is stale, so these are real data-loss events.
    pub dirty_data_loss: u64,
}

impl SimStats {
    /// L2 misses per kilo-instruction (Figure 5 metric).
    ///
    /// Returns 0 when no instruction was executed.
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.l2_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// L2 hit rate over demand accesses.
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_hits as f64 / total as f64
        }
    }

    /// Kernel execution time relative to a baseline run.
    ///
    /// # Panics
    ///
    /// Panics if the baseline ran zero cycles.
    pub fn normalized_time(&self, baseline: &SimStats) -> f64 {
        assert!(baseline.cycles > 0, "baseline ran zero cycles");
        self.cycles as f64 / baseline.cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_definition() {
        let s = SimStats {
            instructions: 10_000,
            l2_misses: 150,
            ..SimStats::default()
        };
        assert!((s.mpki() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn mpki_zero_instructions() {
        assert_eq!(SimStats::default().mpki(), 0.0);
    }

    #[test]
    fn hit_rate() {
        let s = SimStats {
            l2_hits: 75,
            l2_misses: 25,
            ..SimStats::default()
        };
        assert!((s.l2_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(SimStats::default().l2_hit_rate(), 0.0);
    }

    #[test]
    fn normalized_time() {
        let base = SimStats {
            cycles: 1000,
            ..SimStats::default()
        };
        let run = SimStats {
            cycles: 1080,
            ..SimStats::default()
        };
        assert!((run.normalized_time(&base) - 1.08).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero cycles")]
    fn normalized_time_requires_baseline() {
        SimStats::default().normalized_time(&SimStats::default());
    }
}

//! Cache structures: geometry, a tag-only L1, and the banked, protected,
//! write-through GPU L2 data cache.
//!
//! The L2 stores real 64-byte payloads *as the faulty SRAM array would hold
//! them*: fills apply the fault map's stuck-at corruption, reads hand the
//! corrupted content to the protection scheme, and the simulator compares
//! delivered data against the architectural value from memory to count
//! silent data corruptions.

use std::sync::Arc;

use killi_ecc::bits::Line512;
use killi_fault::map::{FaultMap, LineId};
use killi_fault::soft::SoftErrorInjector;
use killi_obs::{KilliEvent, Sink};

use crate::mem::MainMemory;
use crate::protection::{LineProtection, ReadOutcome};
use crate::stats::SimStats;

/// Size/shape of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
}

impl CacheGeometry {
    /// The paper's GPU L2: 2 MB, 16-way, 64 B lines (Table 3).
    pub const PAPER_L2: CacheGeometry = CacheGeometry {
        size_bytes: 2 * 1024 * 1024,
        ways: 16,
        line_bytes: 64,
    };

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible by
    /// `ways * line_bytes`, or non-power-of-two sets/lines).
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes / self.line_bytes;
        assert_eq!(self.size_bytes % self.line_bytes, 0, "size vs line size");
        assert_eq!(lines % self.ways, 0, "lines vs ways");
        let sets = lines / self.ways;
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(self.line_bytes.is_power_of_two(), "line size power of two");
        sets
    }

    /// Total physical lines.
    pub fn lines(&self) -> usize {
        self.size_bytes / self.line_bytes
    }

    /// Line-aligned address of `addr`.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes as u64 - 1)
    }

    /// Set index of `addr`.
    pub fn set_of(&self, addr: u64) -> usize {
        ((addr / self.line_bytes as u64) % self.sets() as u64) as usize
    }

    /// Tag of `addr`.
    pub fn tag_of(&self, addr: u64) -> u64 {
        addr / self.line_bytes as u64 / self.sets() as u64
    }

    /// Physical line id of (set, way).
    pub fn line_id(&self, set: usize, way: usize) -> LineId {
        set * self.ways + way
    }
}

/// Precomputed power-of-two address decomposition of a validated
/// [`CacheGeometry`]: shift/mask replacements for the division-based
/// `set_of`/`tag_of`, paid for once at cache construction instead of on
/// every access.
#[derive(Debug, Clone, Copy)]
struct AddrMap {
    sets: usize,
    line_shift: u32,
    tag_shift: u32,
}

impl AddrMap {
    /// Validates `geom` (via [`CacheGeometry::sets`]) and captures its
    /// decomposition constants.
    fn new(geom: &CacheGeometry) -> Self {
        let sets = geom.sets();
        let line_shift = geom.line_bytes.trailing_zeros();
        AddrMap {
            sets,
            line_shift,
            tag_shift: line_shift + sets.trailing_zeros(),
        }
    }

    #[inline]
    fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.line_shift) as usize) & (self.sets - 1)
    }

    #[inline]
    fn tag_of(&self, addr: u64) -> u64 {
        addr >> self.tag_shift
    }
}

/// Packed one-bit-per-line flags (valid/dirty): 64 lines per word, so the
/// flag sweep of a victim search stays within one metadata cache line.
#[derive(Debug, Clone)]
struct BitVec {
    words: Vec<u64>,
}

impl BitVec {
    fn zeroed(bits: usize) -> Self {
        BitVec {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        (self.words[i >> 6] >> (i & 63)) & 1 != 0
    }

    #[inline]
    fn set(&mut self, i: usize, v: bool) {
        let mask = 1u64 << (i & 63);
        if v {
            self.words[i >> 6] |= mask;
        } else {
            self.words[i >> 6] &= !mask;
        }
    }
}

/// A tag-only cache (the per-CU L1: it runs at nominal voltage, so no data
/// payload needs modelling).
#[derive(Debug, Clone)]
pub struct TagCache {
    geom: CacheGeometry,
    addr_map: AddrMap,
    tags: Vec<Option<u64>>,
    lru: Vec<u64>,
    clock: u64,
}

impl TagCache {
    /// Creates an empty tag cache.
    pub fn new(geom: CacheGeometry) -> Self {
        let lines = geom.lines();
        let addr_map = AddrMap::new(&geom); // validates
        TagCache {
            geom,
            addr_map,
            tags: vec![None; lines],
            lru: vec![0; lines],
            clock: 0,
        }
    }

    /// Looks up `addr`, updating LRU on hit. Returns true on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let set = self.addr_map.set_of(addr);
        let tag = self.addr_map.tag_of(addr);
        self.clock += 1;
        for way in 0..self.geom.ways {
            let id = self.geom.line_id(set, way);
            if self.tags[id] == Some(tag) {
                self.lru[id] = self.clock;
                return true;
            }
        }
        false
    }

    /// Installs `addr`, evicting LRU.
    pub fn fill(&mut self, addr: u64) {
        let set = self.addr_map.set_of(addr);
        let tag = self.addr_map.tag_of(addr);
        self.clock += 1;
        let mut victim = self.geom.line_id(set, 0);
        for way in 0..self.geom.ways {
            let id = self.geom.line_id(set, way);
            if self.tags[id].is_none() {
                victim = id;
                break;
            }
            if self.lru[id] < self.lru[victim] {
                victim = id;
            }
        }
        self.tags[victim] = Some(tag);
        self.lru[victim] = self.clock;
    }

    /// Invalidates `addr` if present.
    pub fn invalidate(&mut self, addr: u64) {
        let set = self.addr_map.set_of(addr);
        let tag = self.addr_map.tag_of(addr);
        for way in 0..self.geom.ways {
            let id = self.geom.line_id(set, way);
            if self.tags[id] == Some(tag) {
                self.tags[id] = None;
            }
        }
    }
}

/// Result of an L2 load access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadResult {
    /// Total latency in cycles from request arrival.
    pub latency: u32,
    /// True when the access hit in the L2 (no memory fetch on the critical
    /// path).
    pub hit: bool,
}

/// How the L2 treats stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WritePolicy {
    /// Writes bypass the L2 (invalidating any stale copy) and go straight
    /// to memory — the paper's GPU coherence configuration (footnote 2).
    #[default]
    BypassInvalidate,
    /// Write-through with update: a store hit refreshes the cached line.
    WriteThroughUpdate,
    /// Write-back with write-allocate: stores coalesce in the L2 and reach
    /// memory on eviction. Detected-uncorrectable errors on dirty lines
    /// are data loss (the §5.6.1 scenario Killi's escalated protection
    /// addresses).
    WriteBack,
}

/// The banked, write-through, fault-injected GPU L2 cache.
///
/// Line metadata is struct-of-arrays: valid/dirty flags are bit-packed 64
/// lines to the word and tags/LRU stamps live in their own contiguous
/// arrays, so victim search and tag match sweep flat memory instead of
/// striding over per-line records.
pub struct L2Cache {
    geom: CacheGeometry,
    addr_map: AddrMap,
    tag_latency: u32,
    data_latency: u32,
    banks: usize,
    write_policy: WritePolicy,
    valid: BitVec,
    dirty: BitVec,
    tags: Vec<u64>,
    data: Vec<Line512>,
    lru: Vec<u64>,
    clock: u64,
    bank_free: Vec<u64>,
    pending_writebacks: Vec<u64>,
    map: Arc<FaultMap>,
    protection: Box<dyn LineProtection>,
    soft: SoftErrorInjector,
    sink: Sink,
    /// L2-side counters (merged into the run's [`SimStats`]).
    pub stats: SimStats,
}

impl L2Cache {
    /// Builds an L2 over a fault map and a protection scheme.
    ///
    /// # Panics
    ///
    /// Panics if the fault map does not cover the geometry's line count or
    /// if `banks` is not a power of two.
    pub fn new(
        geom: CacheGeometry,
        banks: usize,
        tag_latency: u32,
        data_latency: u32,
        map: Arc<FaultMap>,
        protection: Box<dyn LineProtection>,
    ) -> Self {
        let lines = geom.lines();
        let addr_map = AddrMap::new(&geom); // validates geometry
        assert!(banks.is_power_of_two(), "banks must be a power of two");
        assert!(
            map.lines() >= lines,
            "fault map covers {} lines, cache has {}",
            map.lines(),
            lines
        );
        L2Cache {
            geom,
            addr_map,
            tag_latency,
            data_latency,
            banks,
            write_policy: WritePolicy::default(),
            valid: BitVec::zeroed(lines),
            dirty: BitVec::zeroed(lines),
            tags: vec![0; lines],
            data: vec![Line512::zero(); lines],
            lru: vec![0; lines],
            clock: 0,
            bank_free: vec![0; banks],
            pending_writebacks: Vec::new(),
            map,
            protection,
            soft: SoftErrorInjector::disabled(),
            sink: Sink::none(),
            stats: SimStats::default(),
        }
    }

    /// Routes cache-level events into `sink` and hands the protection
    /// scheme a clone so both layers share one trace/op-clock.
    pub fn attach_sink(&mut self, sink: Sink) {
        self.protection.attach_sink(sink.clone());
        self.sink = sink;
    }

    /// Sets the store-handling policy.
    pub fn set_write_policy(&mut self, policy: WritePolicy) {
        self.write_policy = policy;
    }

    /// Enables transient-error injection on the read path.
    pub fn set_soft_errors(&mut self, injector: SoftErrorInjector) {
        self.soft = injector;
    }

    /// The cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// The protection scheme (for end-of-run stats).
    pub fn protection(&self) -> &dyn LineProtection {
        &*self.protection
    }

    /// Mutable access to the protection scheme (DFH resets, scrubbing).
    pub fn protection_mut(&mut self) -> &mut dyn LineProtection {
        &mut *self.protection
    }

    /// Clears the run counters and bank-queue clocks (multi-phase
    /// experiments measure each phase separately, each starting at cycle
    /// zero); cache contents and learned protection state are untouched.
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::default();
        for b in &mut self.bank_free {
            *b = 0;
        }
    }

    /// The fault map backing this cache.
    pub fn fault_map(&self) -> &Arc<FaultMap> {
        &self.map
    }

    fn bank_of(&self, line_addr: u64) -> usize {
        ((line_addr >> self.addr_map.line_shift) as usize) & (self.banks - 1)
    }

    /// Charges the bank queue and returns the queueing delay.
    fn bank_delay(&mut self, line_addr: u64, now: u64) -> u32 {
        let b = self.bank_of(line_addr);
        let start = now.max(self.bank_free[b]);
        self.bank_free[b] = start + 1;
        (start - now) as u32
    }

    fn find_way(&self, set: usize, tag: u64) -> Option<usize> {
        (0..self.geom.ways).find(|&w| {
            let id = self.geom.line_id(set, w);
            self.valid.get(id) && self.tags[id] == tag
        })
    }

    /// Chooses a victim way for `set`: invalid usable ways first (ordered by
    /// the scheme's victim class), then LRU among usable valid ways.
    /// `None` when every way is disabled.
    fn pick_victim(&self, set: usize) -> Option<usize> {
        let mut best_invalid: Option<(u8, usize)> = None;
        let mut best_valid: Option<(u64, usize)> = None;
        for w in 0..self.geom.ways {
            let id = self.geom.line_id(set, w);
            let Some(class) = self.protection.victim_class(id) else {
                continue; // disabled
            };
            if !self.valid.get(id) {
                if best_invalid.is_none_or(|(c, _)| class < c) {
                    best_invalid = Some((class, w));
                }
            } else if best_valid.is_none_or(|(l, _)| self.lru[id] < l) {
                best_valid = Some((self.lru[id], w));
            }
        }
        best_invalid.map(|(_, w)| w).or(best_valid.map(|(_, w)| w))
    }

    fn invalidate_line(&mut self, id: LineId, notify: bool) {
        if self.valid.get(id) {
            if notify {
                let stored = self.data[id];
                self.protection.on_evict(id, &stored);
            }
            self.retire_dirty(id);
            self.valid.set(id, false);
        }
    }

    /// Queues the write-back of a dirty line being removed; drained into
    /// memory by the access that triggered the eviction.
    fn retire_dirty(&mut self, id: LineId) {
        if self.dirty.get(id) {
            self.dirty.set(id, false);
            self.stats.writebacks += 1;
            let set = id / self.geom.ways;
            let addr = (self.tags[id] * self.addr_map.sets as u64 + set as u64)
                * self.geom.line_bytes as u64;
            self.pending_writebacks.push(addr);
        }
    }

    fn drain_writebacks(&mut self, mem: &mut MainMemory) {
        for addr in self.pending_writebacks.drain(..) {
            mem.writeback(addr);
        }
    }

    /// A line lost its protection metadata: let the scheme try to
    /// reclassify it in place (an extra data-array read); invalidate it
    /// only if it cannot stand on its own.
    fn handle_displaced(&mut self, victim: LineId) {
        if self.valid.get(victim) {
            self.stats.l2_data_accesses += 1;
            let stored = self.data[victim];
            if self.protection.on_displaced(victim, &stored) {
                return; // salvaged: verified and re-protected in place
            }
            self.stats.ecc_induced_invalidations += 1;
            self.sink.emit(|| KilliEvent::EccInducedMiss {
                line: victim as u32,
            });
            self.retire_dirty(victim);
            self.valid.set(victim, false);
        }
    }

    /// Invalidates any copy of `addr` (store path / external request),
    /// notifying the scheme so eviction-time training still happens.
    pub fn invalidate_addr(&mut self, addr: u64) {
        let set = self.addr_map.set_of(addr);
        let tag = self.addr_map.tag_of(addr);
        if let Some(w) = self.find_way(set, tag) {
            self.invalidate_line(self.geom.line_id(set, w), true);
        }
    }

    /// Fills `addr` into `set`; returns extra fill latency and the line
    /// installed into (None when the set was unusable). Does not charge
    /// the memory latency (the caller accounts it).
    fn fill(&mut self, addr: u64, mem: &MainMemory) -> (u32, Option<LineId>) {
        let set = self.addr_map.set_of(addr);
        // Eviction-time training may reclassify the chosen victim as
        // disabled; re-pick until a usable way survives its own eviction.
        let id = loop {
            let Some(way) = self.pick_victim(set) else {
                self.stats.l2_bypasses += 1;
                return (0, None); // whole set disabled: serve from memory
            };
            let id = self.geom.line_id(set, way);
            let was_valid = self.valid.get(id);
            self.invalidate_line(id, true); // train on eviction if it held data
            if let Some(class) = self.protection.victim_class(id) {
                self.sink.emit(|| KilliEvent::VictimDecision {
                    line: id as u32,
                    class,
                    valid: was_valid,
                });
                break id;
            }
        };
        let intended = mem.line_data(self.geom.line_addr(addr));
        let outcome = self.protection.on_fill(id, &intended);
        for victim in &outcome.invalidate {
            debug_assert_ne!(*victim, id, "scheme invalidated the line it filled");
            if *victim != id {
                self.handle_displaced(*victim);
            }
        }
        if !outcome.accepted {
            self.stats.l2_bypasses += 1;
            self.sink
                .emit(|| KilliEvent::FillRejected { line: id as u32 });
            return (outcome.extra_cycles, None);
        }
        let mut stored = intended;
        self.map.corrupt_data(id, &mut stored);
        self.data[id] = stored;
        self.tags[id] = self.addr_map.tag_of(addr);
        self.valid.set(id, true);
        self.dirty.set(id, false);
        self.clock += 1;
        self.lru[id] = self.clock;
        self.stats.l2_data_accesses += 1;
        (outcome.extra_cycles, Some(id))
    }

    /// Services a load at time `now`. Returns total latency and hit/miss.
    pub fn access_load(&mut self, addr: u64, now: u64, mem: &mut MainMemory) -> LoadResult {
        let line_addr = self.geom.line_addr(addr);
        let set = self.addr_map.set_of(addr);
        let tag = self.addr_map.tag_of(addr);
        let mut latency = self.bank_delay(line_addr, now) + self.tag_latency;
        self.stats.l2_tag_accesses += 1;

        if let Some(way) = self.find_way(set, tag) {
            let id = self.geom.line_id(set, way);
            self.clock += 1;
            self.lru[id] = self.clock;
            self.protection.on_promote(id);
            self.stats.l2_data_accesses += 1;
            // Transient upsets strike the array content itself.
            self.soft.maybe_upset(&mut self.data[id]);
            let mut delivered = self.data[id];
            match self.protection.on_read_hit(id, &mut delivered) {
                ReadOutcome::Clean {
                    extra_cycles,
                    corrected,
                } => {
                    latency +=
                        self.data_latency + self.protection.hit_latency_extra() + extra_cycles;
                    if corrected {
                        self.stats.corrections += 1;
                    }
                    if delivered != mem.line_data(line_addr) {
                        self.stats.sdc_events += 1;
                    }
                    self.stats.l2_hits += 1;
                    return LoadResult { latency, hit: true };
                }
                ReadOutcome::ErrorMiss { extra_cycles } => {
                    latency += self.data_latency + extra_cycles;
                    self.stats.l2_error_misses += 1;
                    self.sink.emit(|| KilliEvent::ErrorMiss { line: id as u32 });
                    if self.dirty.get(id) {
                        // The only valid copy was corrupt: real data loss.
                        // (The refetch below returns the architecturally
                        // correct value so the simulation can continue.)
                        self.stats.dirty_data_loss += 1;
                        self.dirty.set(id, false);
                    }
                    self.invalidate_line(id, false); // scheme already updated
                }
            }
        }
        // Miss path (demand miss or error-induced refetch).
        self.stats.l2_misses += 1;
        self.stats.mem_reads += 1;
        mem.read(line_addr);
        let (extra, _) = self.fill(addr, mem);
        latency += mem.latency() + extra;
        self.drain_writebacks(mem);
        LoadResult {
            latency,
            hit: false,
        }
    }

    /// Services a store at time `now`. Returns the L2-side latency (stores
    /// are posted; CUs do not stall on them).
    pub fn access_store(&mut self, addr: u64, now: u64, mem: &mut MainMemory) -> u32 {
        let line_addr = self.geom.line_addr(addr);
        let latency = self.bank_delay(line_addr, now) + self.tag_latency;
        self.stats.l2_tag_accesses += 1;
        if self.write_policy != WritePolicy::WriteBack {
            mem.write(line_addr);
            self.stats.mem_writes += 1;
        }
        match self.write_policy {
            WritePolicy::BypassInvalidate => {
                self.invalidate_addr(addr);
            }
            WritePolicy::WriteThroughUpdate => {
                let set = self.addr_map.set_of(addr);
                let tag = self.addr_map.tag_of(addr);
                if let Some(way) = self.find_way(set, tag) {
                    let id = self.geom.line_id(set, way);
                    // Re-install the fresh value through the scheme.
                    let intended = mem.line_data(line_addr);
                    let outcome = self.protection.on_fill(id, &intended);
                    for victim in &outcome.invalidate {
                        if *victim != id {
                            self.handle_displaced(*victim);
                        }
                    }
                    if outcome.accepted {
                        let mut stored = intended;
                        self.map.corrupt_data(id, &mut stored);
                        self.data[id] = stored;
                        self.stats.l2_data_accesses += 1;
                    } else {
                        self.invalidate_line(id, false);
                    }
                }
            }
            WritePolicy::WriteBack => {
                // The architectural value advances; traffic happens only
                // when the dirty line is eventually written back.
                mem.bump_version(line_addr);
                let set = self.addr_map.set_of(addr);
                let tag = self.addr_map.tag_of(addr);
                let id = match self.find_way(set, tag) {
                    Some(way) => {
                        let id = self.geom.line_id(set, way);
                        self.clock += 1;
                        self.lru[id] = self.clock;
                        Some(id)
                    }
                    None => {
                        // Write-allocate: fetch and install, then update.
                        self.stats.mem_reads += 1;
                        mem.read(line_addr);
                        self.fill(addr, mem).1
                    }
                };
                if let Some(id) = id {
                    let intended = mem.line_data(line_addr);
                    let outcome = self.protection.on_write(id, &intended);
                    for victim in &outcome.invalidate {
                        if *victim != id {
                            self.handle_displaced(*victim);
                        }
                    }
                    if outcome.accepted {
                        let mut stored = intended;
                        self.map.corrupt_data(id, &mut stored);
                        self.data[id] = stored;
                        self.dirty.set(id, true);
                        self.stats.l2_data_accesses += 1;
                    } else {
                        // The scheme refuses to hold this dirty data: send
                        // it straight to memory instead.
                        self.invalidate_line(id, false);
                        mem.writeback(line_addr);
                        self.stats.mem_writes += 1;
                    }
                } else {
                    // No usable way: the store goes through to memory.
                    mem.writeback(line_addr);
                    self.stats.mem_writes += 1;
                }
                self.drain_writebacks(mem);
            }
        }
        latency
    }

    /// Drains all valid lines through the eviction path (end-of-kernel or
    /// test introspection). In write-back mode any dirty lines are queued
    /// for write-back and drained by the next memory-carrying access.
    pub fn flush(&mut self) {
        for id in 0..self.geom.lines() {
            self.invalidate_line(id, true);
        }
    }

    /// Merges protection-scheme counters into the L2 stats and returns a
    /// snapshot.
    pub fn finalized_stats(&mut self) -> SimStats {
        let p = self.protection.protection_stats();
        self.stats.ecc_cache_accesses = p.ecc_cache_accesses;
        self.stats
    }
}

impl std::fmt::Debug for L2Cache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("L2Cache")
            .field("geom", &self.geom)
            .field("banks", &self.banks)
            .field("scheme", &self.protection.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protection::Unprotected;
    use killi_fault::cell_model::{FreqGhz, NormVdd};
    use killi_fault::model::{default_registry, FaultModelConfig};

    fn small_geom() -> CacheGeometry {
        CacheGeometry {
            size_bytes: 16 * 1024,
            ways: 4,
            line_bytes: 64,
        }
    }

    fn l2(geom: CacheGeometry) -> L2Cache {
        L2Cache::new(
            geom,
            4,
            2,
            2,
            Arc::new(FaultMap::fault_free(geom.lines())),
            Box::new(Unprotected::new()),
        )
    }

    #[test]
    fn geometry_decomposition() {
        let g = CacheGeometry::PAPER_L2;
        assert_eq!(g.sets(), 2048);
        assert_eq!(g.lines(), 32768);
        let addr = 0xDEAD_BEEF;
        assert_eq!(g.line_addr(addr), addr & !63);
        assert!(g.set_of(addr) < g.sets());
        // Round-trip: tag + set + offset reconstruct the line address.
        let rebuilt =
            (g.tag_of(addr) * g.sets() as u64 + g.set_of(addr) as u64) * g.line_bytes as u64;
        assert_eq!(rebuilt, g.line_addr(addr));
    }

    #[test]
    fn load_miss_then_hit() {
        let mut c = l2(small_geom());
        let mut mem = MainMemory::new(1, 300);
        let r1 = c.access_load(0x1000, 0, &mut mem);
        assert!(!r1.hit);
        assert!(r1.latency >= 300);
        let r2 = c.access_load(0x1000, 400, &mut mem);
        assert!(r2.hit);
        assert!(r2.latency < 10);
        assert_eq!(c.stats.l2_hits, 1);
        assert_eq!(c.stats.l2_misses, 1);
        assert_eq!(c.stats.sdc_events, 0);
    }

    #[test]
    fn lru_replacement_within_set() {
        let g = small_geom(); // 4 ways, 64 sets
        let mut c = l2(g);
        let mut mem = MainMemory::new(1, 10);
        let sets = g.sets() as u64;
        let stride = 64 * sets; // same set
                                // Fill 4 ways, then touch first to make it MRU, then add a 5th line.
        for i in 0..4 {
            c.access_load(i * stride, i * 1000, &mut mem);
        }
        c.access_load(0, 5000, &mut mem); // promote way holding addr 0
        c.access_load(4 * stride, 6000, &mut mem); // evicts LRU = line 1
        assert!(c.access_load(0, 7000, &mut mem).hit, "MRU line survived");
        assert!(
            !c.access_load(stride, 8000, &mut mem).hit,
            "LRU line evicted"
        );
    }

    #[test]
    fn store_bypass_invalidates() {
        let mut c = l2(small_geom());
        let mut mem = MainMemory::new(1, 10);
        c.access_load(0x40, 0, &mut mem);
        assert!(c.access_load(0x40, 100, &mut mem).hit);
        c.access_store(0x40, 200, &mut mem);
        assert!(!c.access_load(0x40, 300, &mut mem).hit, "stale copy served");
        assert_eq!(c.stats.mem_writes, 1);
    }

    #[test]
    fn store_update_policy_keeps_line_fresh() {
        let mut c = l2(small_geom());
        c.set_write_policy(WritePolicy::WriteThroughUpdate);
        let mut mem = MainMemory::new(1, 10);
        c.access_load(0x40, 0, &mut mem);
        c.access_store(0x40, 100, &mut mem);
        let r = c.access_load(0x40, 200, &mut mem);
        assert!(r.hit, "updated line still resident");
        assert_eq!(c.stats.sdc_events, 0, "updated line content is fresh");
    }

    #[test]
    fn bank_contention_adds_delay() {
        let mut c = l2(small_geom());
        let mut mem = MainMemory::new(1, 10);
        // Two same-cycle misses to different lines of the same bank: the
        // second queues one cycle behind the first.
        let a = c.access_load(0x0, 0, &mut mem);
        let b = c.access_load(0x100, 0, &mut mem); // (0x100/64) % 4 banks == 0
        assert_eq!(b.latency, a.latency + 1);
    }

    #[test]
    fn corrupted_line_without_protection_is_sdc() {
        // With real faults and no protection, a faulty line read back is a
        // silent data corruption — this validates the SDC detector.
        let g = small_geom();
        let model = default_registry()
            .build(&FaultModelConfig::default())
            .expect("stuck-at always builds");
        let map = model.map(g.lines(), NormVdd(0.55), FreqGhz::PEAK, 3);
        let faulty_line = (0..g.lines())
            .find(|&l| map.data_fault_count(l) > 0)
            .expect("a faulty line at 0.55 VDD");
        let set = faulty_line / g.ways;
        let way = faulty_line % g.ways;
        let mut c = L2Cache::new(g, 4, 2, 2, Arc::new(map), Box::new(Unprotected::new()));
        let mut mem = MainMemory::new(1, 10);
        // Fill every way of the target set; one of them lands on the faulty
        // physical line.
        let sets = g.sets() as u64;
        for i in 0..g.ways as u64 {
            let addr = (set as u64) * 64 + i * 64 * sets;
            c.access_load(addr, i * 1000, &mut mem);
        }
        let _ = way;
        // Read them all back.
        for i in 0..g.ways as u64 {
            let addr = (set as u64) * 64 + i * 64 * sets;
            c.access_load(addr, 100_000 + i * 1000, &mut mem);
        }
        assert!(c.stats.sdc_events > 0, "expected an SDC on the faulty way");
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = l2(small_geom());
        let mut mem = MainMemory::new(1, 10);
        c.access_load(0x40, 0, &mut mem);
        c.flush();
        assert!(!c.access_load(0x40, 100, &mut mem).hit);
    }

    #[test]
    fn tag_cache_hit_miss_and_invalidate() {
        let mut t = TagCache::new(CacheGeometry {
            size_bytes: 16 * 1024,
            ways: 4,
            line_bytes: 64,
        });
        assert!(!t.access(0x40));
        t.fill(0x40);
        assert!(t.access(0x40));
        t.invalidate(0x40);
        assert!(!t.access(0x40));
    }

    #[test]
    fn tag_cache_lru() {
        let g = CacheGeometry {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 64,
        }; // 8 sets
        let mut t = TagCache::new(g);
        let stride = 64 * 8;
        t.fill(0);
        t.fill(stride);
        assert!(t.access(0)); // make 0 MRU
        t.fill(2 * stride); // evicts `stride`
        assert!(t.access(0));
        assert!(!t.access(stride));
        assert!(t.access(2 * stride));
    }
}

#[cfg(test)]
mod write_back_tests {
    use super::*;
    use crate::mem::MainMemory;
    use crate::protection::Unprotected;
    use killi_fault::map::FaultMap;

    fn wb_l2() -> L2Cache {
        let geom = CacheGeometry {
            size_bytes: 16 * 1024,
            ways: 4,
            line_bytes: 64,
        };
        let mut c = L2Cache::new(
            geom,
            4,
            2,
            2,
            Arc::new(FaultMap::fault_free(geom.lines())),
            Box::new(Unprotected::new()),
        );
        c.set_write_policy(WritePolicy::WriteBack);
        c
    }

    #[test]
    fn stores_coalesce_until_eviction() {
        let mut c = wb_l2();
        let mut mem = MainMemory::new(1, 10);
        c.access_store(0x40, 0, &mut mem);
        c.access_store(0x40, 10, &mut mem);
        c.access_store(0x40, 20, &mut mem);
        assert_eq!(mem.writes(), 0, "dirty data coalesces in the cache");
        // Evict the set: fill 4 conflicting lines.
        let stride = 64 * c.geometry().sets() as u64;
        for i in 1..=4u64 {
            c.access_load(0x40 + i * stride, 100 * i, &mut mem);
        }
        assert_eq!(mem.writes(), 1, "one write-back on eviction");
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn dirty_line_reads_latest_value() {
        let mut c = wb_l2();
        let mut mem = MainMemory::new(1, 10);
        c.access_store(0x40, 0, &mut mem);
        let r = c.access_load(0x40, 100, &mut mem);
        assert!(r.hit);
        assert_eq!(c.stats.sdc_events, 0, "the dirty copy is architectural");
    }

    #[test]
    fn write_allocate_fetches_line() {
        let mut c = wb_l2();
        let mut mem = MainMemory::new(1, 10);
        c.access_store(0x80, 0, &mut mem);
        assert_eq!(mem.reads(), 1, "write-allocate fetch");
        assert!(c.access_load(0x80, 100, &mut mem).hit);
    }

    #[test]
    fn writeback_preserves_content_through_round_trip() {
        let mut c = wb_l2();
        let mut mem = MainMemory::new(1, 10);
        c.access_store(0x40, 0, &mut mem);
        let expected = mem.line_data(0x40);
        // Evict the dirty line, then reload it from memory.
        let stride = 64 * c.geometry().sets() as u64;
        for i in 1..=4u64 {
            c.access_load(0x40 + i * stride, 100 * i, &mut mem);
        }
        c.access_load(0x40, 10_000, &mut mem);
        assert_eq!(mem.line_data(0x40), expected);
        assert_eq!(c.stats.sdc_events, 0);
    }
}

//! The interface between the L2 cache model and a protection scheme.
//!
//! Killi and every baseline implement [`LineProtection`]; the L2 model calls
//! the hooks at fill, hit, promotion and eviction time, so all schemes run
//! on the identical timing and fault substrate and differ only in their
//! protection behaviour.

use killi_ecc::bits::Line512;
use killi_fault::map::LineId;
use killi_obs::{Counter, MetricSet, Sink};

/// Result of a fill-time hook.
#[derive(Debug, Clone)]
pub struct FillOutcome {
    /// False when the scheme refuses the fill (e.g. an inverted-write check
    /// discovered a multi-bit fault at install time); the L2 serves the
    /// request uncached.
    pub accepted: bool,
    /// Physical lines the L2 must invalidate as collateral (e.g. Killi's
    /// ECC-cache evictions displace the protection of other L2 lines).
    pub invalidate: Vec<LineId>,
    /// Extra cycles charged to the fill (usually 0: encode latency is
    /// hidden under the memory access).
    pub extra_cycles: u32,
}

impl Default for FillOutcome {
    fn default() -> Self {
        FillOutcome {
            accepted: true,
            invalidate: Vec::new(),
            extra_cycles: 0,
        }
    }
}

/// Result of a read-hit check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Data is delivered (after in-place correction, if any).
    Clean {
        /// Extra cycles beyond the base hit latency (e.g. correction).
        extra_cycles: u32,
        /// True when the scheme corrected the delivered data.
        corrected: bool,
    },
    /// A detected, uncorrectable error: the L2 must invalidate the line and
    /// refetch from memory (the paper's "error-induced cache miss").
    ErrorMiss {
        /// Extra cycles charged before the refetch starts.
        extra_cycles: u32,
    },
}

/// Per-scheme counters surfaced into experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtectionStats {
    /// Lines currently classified/known as disabled.
    pub disabled_lines: u64,
    /// Error corrections performed on the read path.
    pub corrections: u64,
    /// Detected-uncorrectable events (error-induced misses signalled).
    pub detections: u64,
    /// ECC-cache accesses (0 for schemes without one).
    pub ecc_cache_accesses: u64,
    /// L2 lines invalidated because their ECC-cache entry was evicted.
    pub ecc_cache_evictions: u64,
    /// Lines per DFH state, indexed by the hardware encoding
    /// (`None` for schemes without DFH bits).
    pub dfh_census: Option<[u64; 4]>,
}

impl ProtectionStats {
    /// Projects the legacy flat counters out of a [`MetricSet`] — the
    /// bridge that lets `protection_stats()` be a default method on top
    /// of the richer `metrics()` snapshot.
    pub fn from_metrics(m: &MetricSet) -> Self {
        ProtectionStats {
            disabled_lines: m.get(Counter::DisabledLines),
            corrections: m.get(Counter::Corrections),
            detections: m.get(Counter::Detections),
            ecc_cache_accesses: m.get(Counter::EccCacheAccesses),
            ecc_cache_evictions: m.get(Counter::EccCacheDisplacements),
            dfh_census: m.dfh_census,
        }
    }
}

/// Protection-scheme hooks invoked by the L2 cache model.
///
/// `LineId` identifies a *physical* line (`set * ways + way`); per-line
/// scheme state (like Killi's DFH bits) persists across data evictions, as
/// in the paper.
pub trait LineProtection {
    /// Scheme name for reports.
    fn name(&self) -> &str;

    /// Resets learned state (voltage change / reboot — the paper's "DFH
    /// reset").
    fn reset(&mut self);

    /// Victim preference for allocating into `line`: lower class = preferred
    /// (Killi orders `b'01 > b'00 > b'10`), `None` = unusable (disabled).
    fn victim_class(&self, line: LineId) -> Option<u8>;

    /// Called when `data` (the architecturally-correct value) is installed
    /// into `line`. The scheme generates and stores its metadata here.
    fn on_fill(&mut self, line: LineId, data: &Line512) -> FillOutcome;

    /// Called on a read hit with the (possibly corrupted) array content.
    /// The scheme checks, may correct `stored` in place, and reports the
    /// outcome.
    fn on_read_hit(&mut self, line: LineId, stored: &mut Line512) -> ReadOutcome;

    /// Called when `line` is evicted or invalidated while holding data.
    /// Killi trains DFH bits here for lines still in the initial state.
    fn on_evict(&mut self, line: LineId, stored: &Line512);

    /// Called when `line` is promoted to MRU (Killi promotes the associated
    /// ECC-cache entry in tandem, §4.4).
    fn on_promote(&mut self, line: LineId) {
        let _ = line;
    }

    /// Called when a store updates `line` in place (write-back or
    /// write-through-update). Defaults to the fill hook; schemes that
    /// escalate protection for dirty data (Killi §5.6.1) override it.
    fn on_write(&mut self, line: LineId, data: &Line512) -> FillOutcome {
        self.on_fill(line, data)
    }

    /// Called when the scheme reported `line` in a fill's `invalidate` list
    /// (its protection metadata was displaced). `stored` is the line's
    /// current array content; the scheme may reclassify the line into a
    /// self-sufficient state and return `true` to keep it valid (Killi
    /// salvages lines it can verify fault-free with parity alone).
    fn on_displaced(&mut self, line: LineId, stored: &Line512) -> bool {
        let _ = (line, stored);
        false
    }

    /// Additional cycles on every L2 hit (e.g. 1 cycle of SECDED/parity
    /// checking per Table 3).
    fn hit_latency_extra(&self) -> u32 {
        0
    }

    /// Hands the scheme an observability [`Sink`] to emit events
    /// through. Default: ignore it, so stateless schemes like
    /// [`Unprotected`] opt out without boilerplate.
    fn attach_sink(&mut self, sink: Sink) {
        let _ = sink;
    }

    /// Snapshot of the scheme's metric registry. This is the primary
    /// reporting path; schemes fill in the counters they own (disabled
    /// lines, corrections, DFH transition matrix, …). Default: empty.
    fn metrics(&self) -> MetricSet {
        MetricSet::new()
    }

    /// Legacy flat counters, derived from [`LineProtection::metrics`].
    /// Kept as the stable accessor for existing reports and tests.
    fn protection_stats(&self) -> ProtectionStats {
        ProtectionStats::from_metrics(&self.metrics())
    }
}

/// The trivial scheme of the fault-free nominal-voltage baseline: no
/// metadata, no checks, every line usable.
#[derive(Debug, Default)]
pub struct Unprotected {
    _private: (),
}

impl Unprotected {
    /// Creates the no-op scheme.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LineProtection for Unprotected {
    fn name(&self) -> &str {
        "fault-free"
    }

    fn reset(&mut self) {}

    fn victim_class(&self, _line: LineId) -> Option<u8> {
        Some(0)
    }

    fn on_fill(&mut self, _line: LineId, _data: &Line512) -> FillOutcome {
        FillOutcome::default()
    }

    fn on_read_hit(&mut self, _line: LineId, _stored: &mut Line512) -> ReadOutcome {
        ReadOutcome::Clean {
            extra_cycles: 0,
            corrected: false,
        }
    }

    fn on_evict(&mut self, _line: LineId, _stored: &Line512) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unprotected_is_transparent() {
        let mut u = Unprotected::new();
        assert_eq!(u.name(), "fault-free");
        assert_eq!(u.victim_class(3), Some(0));
        let mut d = Line512::from_seed(4);
        let before = d;
        match u.on_read_hit(0, &mut d) {
            ReadOutcome::Clean { corrected, .. } => assert!(!corrected),
            other => panic!("{other:?}"),
        }
        assert_eq!(d, before);
        assert_eq!(u.on_fill(0, &d).invalidate.len(), 0);
        assert_eq!(u.protection_stats(), ProtectionStats::default());
        assert_eq!(u.hit_latency_extra(), 0);
    }
}

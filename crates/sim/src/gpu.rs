//! The 8-CU GPU timing model (Table 3 configuration).
//!
//! Each compute unit executes its trace in order with a bounded window of
//! outstanding loads (GPUs hide memory latency with massive thread-level
//! parallelism; the window is its aggregate stand-in). CUs share the banked
//! L2; the driver interleaves them in global-time order so bank contention
//! and ECC-cache contention are seen in a realistic order.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use killi_fault::map::FaultMap;
use killi_obs::Sink;

use crate::cache::{CacheGeometry, L2Cache, TagCache, WritePolicy};
use crate::mem::MainMemory;
use crate::protection::LineProtection;
use crate::stats::SimStats;
use crate::trace::{Trace, TraceOp};

/// GPU hardware configuration (defaults reproduce the paper's Table 3).
#[derive(Debug, Clone, Copy)]
pub struct GpuConfig {
    /// Number of compute units.
    pub cus: usize,
    /// Per-CU L1 geometry.
    pub l1: CacheGeometry,
    /// L1 hit latency in cycles.
    pub l1_latency: u32,
    /// Shared L2 geometry.
    pub l2: CacheGeometry,
    /// Number of L2 banks.
    pub l2_banks: usize,
    /// L2 tag latency in cycles.
    pub l2_tag_latency: u32,
    /// L2 data latency in cycles.
    pub l2_data_latency: u32,
    /// Main-memory latency in cycles.
    pub mem_latency: u32,
    /// Maximum outstanding loads per CU.
    pub max_outstanding: usize,
    /// Store policy of the L2.
    pub write_policy: WritePolicy,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            cus: 8,
            l1: CacheGeometry {
                size_bytes: 16 * 1024,
                ways: 4,
                line_bytes: 64,
            },
            l1_latency: 1,
            l2: CacheGeometry::PAPER_L2,
            l2_banks: 16,
            l2_tag_latency: 2,
            l2_data_latency: 2,
            mem_latency: 300,
            max_outstanding: 56,
            write_policy: WritePolicy::WriteThroughUpdate,
        }
    }
}

impl GpuConfig {
    /// A scaled-down configuration for fast tests (64 KB L2, 2 CUs).
    pub fn small_test() -> Self {
        GpuConfig {
            cus: 2,
            l2: CacheGeometry {
                size_bytes: 64 * 1024,
                ways: 16,
                line_bytes: 64,
            },
            l2_banks: 4,
            mem_latency: 100,
            ..GpuConfig::default()
        }
    }
}

struct CuState {
    time: u64,
    pending: BinaryHeap<Reverse<u64>>,
    done: bool,
}

/// The GPU simulator: drives a [`Trace`] through L1s, the protected L2 and
/// memory, producing [`SimStats`].
pub struct GpuSim {
    config: GpuConfig,
    l2: L2Cache,
    mem: MainMemory,
    sink: Sink,
}

impl GpuSim {
    /// Builds a simulator over a fault map and protection scheme.
    ///
    /// # Panics
    ///
    /// Panics if the fault map does not cover the L2's line count.
    pub fn new(
        config: GpuConfig,
        map: Arc<FaultMap>,
        protection: Box<dyn LineProtection>,
        mem_seed: u64,
    ) -> Self {
        let mut l2 = L2Cache::new(
            config.l2,
            config.l2_banks,
            config.l2_tag_latency,
            config.l2_data_latency,
            map,
            protection,
        );
        l2.set_write_policy(config.write_policy);
        GpuSim {
            config,
            l2,
            mem: MainMemory::new(mem_seed, config.mem_latency),
            sink: Sink::none(),
        }
    }

    /// Mutable access to the L2 (to enable soft errors, etc.) before a run.
    pub fn l2_mut(&mut self) -> &mut L2Cache {
        &mut self.l2
    }

    /// Attaches an observability sink for the whole hierarchy: the
    /// driver advances its op clock, and the L2 and protection scheme
    /// emit events into it. The default no-op sink costs one branch per
    /// op and changes no simulation behaviour.
    pub fn attach_sink(&mut self, sink: Sink) {
        self.l2.attach_sink(sink.clone());
        self.sink = sink;
    }

    /// Runs the trace to completion and returns the merged statistics.
    ///
    /// # Panics
    ///
    /// Panics if the trace's CU count does not match the configuration.
    pub fn run(&mut self, trace: Trace) -> SimStats {
        assert_eq!(
            trace.cus(),
            self.config.cus,
            "trace CU count mismatches config"
        );
        let mut streams = trace.into_streams();
        let mut cus: Vec<CuState> = (0..self.config.cus)
            .map(|_| CuState {
                time: 0,
                pending: BinaryHeap::new(),
                done: false,
            })
            .collect();
        let mut stats = SimStats::default();
        let mut l1s: Vec<TagCache> = (0..self.config.cus)
            .map(|_| TagCache::new(self.config.l1))
            .collect();

        // Each turn services the live CU with the smallest local time.
        while let Some(cu) = (0..cus.len())
            .filter(|&i| !cus[i].done)
            .min_by_key(|&i| cus[i].time)
        {
            let Some(op) = streams[cu].next() else {
                // Drain outstanding loads, then retire the CU.
                let drained = cus[cu]
                    .pending
                    .iter()
                    .map(|Reverse(t)| *t)
                    .max()
                    .unwrap_or(0);
                cus[cu].time = cus[cu].time.max(drained);
                cus[cu].done = true;
                continue;
            };
            self.sink.tick();
            let state = &mut cus[cu];
            match op {
                TraceOp::Compute(n) => {
                    stats.instructions += u64::from(n);
                    state.time += u64::from(n);
                }
                TraceOp::Load(addr) => {
                    stats.instructions += 1;
                    stats.loads += 1;
                    if state.pending.len() >= self.config.max_outstanding {
                        let Reverse(t) = state.pending.pop().expect("window nonempty");
                        state.time = state.time.max(t);
                    }
                    let completion = if l1s[cu].access(addr) {
                        stats.l1_hits += 1;
                        state.time + u64::from(self.config.l1_latency)
                    } else {
                        stats.l1_misses += 1;
                        let issue = state.time + u64::from(self.config.l1_latency);
                        let r = self.l2.access_load(addr, issue, &mut self.mem);
                        l1s[cu].fill(addr);
                        issue + u64::from(r.latency)
                    };
                    state.pending.push(Reverse(completion));
                    state.time += 1;
                }
                TraceOp::Store(addr) => {
                    stats.instructions += 1;
                    stats.stores += 1;
                    l1s[cu].invalidate(addr);
                    // Posted store: latency absorbed by the write buffer.
                    let _ = self.l2.access_store(addr, state.time, &mut self.mem);
                    state.time += 1;
                }
            }
        }

        stats.cycles = cus.iter().map(|c| c.time).max().unwrap_or(0);
        let l2_stats = self.l2.finalized_stats();
        stats.l2_hits = l2_stats.l2_hits;
        stats.l2_misses = l2_stats.l2_misses;
        stats.l2_error_misses = l2_stats.l2_error_misses;
        stats.ecc_induced_invalidations = l2_stats.ecc_induced_invalidations;
        stats.l2_bypasses = l2_stats.l2_bypasses;
        stats.sdc_events = l2_stats.sdc_events;
        stats.corrections = l2_stats.corrections;
        stats.l2_tag_accesses = l2_stats.l2_tag_accesses;
        stats.l2_data_accesses = l2_stats.l2_data_accesses;
        stats.ecc_cache_accesses = l2_stats.ecc_cache_accesses;
        stats.writebacks = l2_stats.writebacks;
        stats.dirty_data_loss = l2_stats.dirty_data_loss;
        stats.mem_reads = self.mem.reads();
        stats.mem_writes = self.mem.writes();
        stats
    }

    /// The L2 after a run (protection state inspection in tests).
    pub fn l2(&self) -> &L2Cache {
        &self.l2
    }

    /// Clears all run counters so a follow-up `run` measures only itself;
    /// cache contents and learned protection state persist (warm restart).
    pub fn reset_counters(&mut self) {
        self.l2.reset_stats();
        self.mem.reset_counters();
    }
}

impl std::fmt::Debug for GpuSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuSim")
            .field("config", &self.config)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protection::Unprotected;
    use crate::trace::TraceOp::*;

    fn run_small(per_cu: Vec<Vec<TraceOp>>) -> SimStats {
        let mut config = GpuConfig::small_test();
        config.cus = per_cu.len();
        let map = Arc::new(FaultMap::fault_free(config.l2.lines()));
        let mut sim = GpuSim::new(config, map, Box::new(Unprotected::new()), 1);
        sim.run(Trace::from_vecs(per_cu))
    }

    #[test]
    fn compute_only_trace_costs_its_cycles() {
        let s = run_small(vec![vec![Compute(100), Compute(50)]]);
        assert_eq!(s.cycles, 150);
        assert_eq!(s.instructions, 150);
        assert_eq!(s.loads, 0);
    }

    #[test]
    fn repeated_loads_hit_the_l1() {
        let s = run_small(vec![vec![Load(0x40), Load(0x40), Load(0x40)]]);
        assert_eq!(s.loads, 3);
        assert_eq!(s.l1_misses, 1);
        assert_eq!(s.l1_hits, 2);
        assert_eq!(s.l2_misses, 1);
    }

    #[test]
    fn streaming_misses_compulsory() {
        let ops: Vec<TraceOp> = (0..100).map(|i| Load(i * 64)).collect();
        let s = run_small(vec![ops]);
        assert_eq!(s.l2_misses, 100);
        assert_eq!(s.l1_hits, 0);
        assert!(s.cycles > 100, "memory latency should show up");
    }

    #[test]
    fn window_hides_latency() {
        // 64 independent loads: with a 32-deep window the total time is far
        // below 64 * mem_latency.
        let ops: Vec<TraceOp> = (0..64).map(|i| Load(i * 64)).collect();
        let s = run_small(vec![ops]);
        assert!(s.cycles < 64 * 100, "cycles = {}", s.cycles);
        assert!(s.cycles >= 100, "at least one memory round trip");
    }

    #[test]
    fn two_cus_run_in_parallel() {
        let ops: Vec<TraceOp> = vec![Compute(1000)];
        let s = run_small(vec![ops.clone(), ops]);
        assert_eq!(s.cycles, 1000, "parallel CUs should overlap");
        assert_eq!(s.instructions, 2000);
    }

    #[test]
    fn stores_reach_memory() {
        let s = run_small(vec![vec![Store(0x40), Store(0x80), Load(0x40)]]);
        assert_eq!(s.mem_writes, 2);
        assert_eq!(s.stores, 2);
    }

    #[test]
    fn deterministic_runs() {
        let ops: Vec<TraceOp> = (0..500)
            .map(|i| {
                if i % 3 == 0 {
                    Load((i * 97) % 8192 * 64)
                } else {
                    Compute(2)
                }
            })
            .collect();
        let a = run_small(vec![ops.clone(), ops.clone()]);
        let b = run_small(vec![ops.clone(), ops]);
        assert_eq!(a, b);
    }

    #[test]
    fn mpki_reflects_misses() {
        let ops: Vec<TraceOp> = (0..1000).map(|i| Load(i * 64)).collect();
        let s = run_small(vec![ops]);
        assert!(s.mpki() > 500.0, "all-miss stream: mpki = {}", s.mpki());
    }

    #[test]
    fn write_back_mode_coalesces_store_traffic() {
        let mut config = GpuConfig::small_test();
        config.write_policy = WritePolicy::WriteBack;
        let map = Arc::new(FaultMap::fault_free(config.l2.lines()));
        let mut sim = GpuSim::new(config, map, Box::new(Unprotected::new()), 5);
        // Hammer a small set of lines with stores, then spill them.
        let mut ops = Vec::new();
        for round in 0..20u64 {
            for line in 0..8u64 {
                ops.push(Store(line * 64));
            }
            let _ = round;
        }
        for i in 0..2000u64 {
            ops.push(Load(0x10_0000 + i * 64));
        }
        let stats = sim.run(Trace::from_vecs(vec![ops.clone(), ops]));
        assert!(stats.writebacks > 0, "dirty lines must spill");
        assert!(
            stats.mem_writes < stats.stores / 4,
            "coalescing: {} writes for {} stores",
            stats.mem_writes,
            stats.stores
        );
        assert_eq!(stats.sdc_events, 0);
        assert_eq!(stats.dirty_data_loss, 0);
    }

    #[test]
    fn reset_counters_gives_fresh_second_run() {
        let config = GpuConfig::small_test();
        let map = Arc::new(FaultMap::fault_free(config.l2.lines()));
        let mut sim = GpuSim::new(config, map, Box::new(Unprotected::new()), 5);
        let ops: Vec<TraceOp> = (0..2000).map(|i| Load((i % 512) * 64)).collect();
        let cold = sim.run(Trace::from_vecs(vec![ops.clone(), ops.clone()]));
        sim.reset_counters();
        let warm = sim.run(Trace::from_vecs(vec![ops.clone(), ops]));
        assert!(warm.l2_misses < cold.l2_misses, "cache stays warm");
        assert!(warm.cycles <= cold.cycles, "warm run not slower");
    }

    #[test]
    #[should_panic(expected = "mismatches config")]
    fn trace_cu_count_checked() {
        let config = GpuConfig::small_test(); // 2 CUs
        let map = Arc::new(FaultMap::fault_free(config.l2.lines()));
        let mut sim = GpuSim::new(config, map, Box::new(Unprotected::new()), 1);
        sim.run(Trace::from_vecs(vec![vec![Compute(1)]])); // 1 CU
    }
}

//! Main-memory model.
//!
//! Memory is the architectural source of truth: the L2 is write-through, so
//! any detected-but-uncorrectable L2 error is recoverable by refetching from
//! here. Content is synthesized on demand — every line address maps to a
//! deterministic pseudo-random payload, and stores bump a per-line version —
//! so whole-GPU footprints cost a few bytes per *written* line only.

use std::collections::HashMap;

use killi_ecc::bits::Line512;
use killi_fault::rng::{hash3, splitmix64};

/// Fixed-latency main memory with synthesized content.
#[derive(Debug, Clone)]
pub struct MainMemory {
    seed: u64,
    latency: u32,
    versions: HashMap<u64, u32>,
    reads: u64,
    writes: u64,
}

impl MainMemory {
    /// Creates a memory with the given access latency in cycles.
    pub fn new(seed: u64, latency: u32) -> Self {
        MainMemory {
            seed,
            latency,
            versions: HashMap::new(),
            reads: 0,
            writes: 0,
        }
    }

    /// Access latency in cycles.
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// The architecturally-correct content of the line containing
    /// `line_addr` (a line-aligned address).
    pub fn line_data(&self, line_addr: u64) -> Line512 {
        let version = self.versions.get(&line_addr).copied().unwrap_or(0);
        Line512::from_seed(hash3(self.seed, splitmix64(line_addr), u64::from(version)))
    }

    /// Performs a read access (for stats) and returns the line content.
    pub fn read(&mut self, line_addr: u64) -> Line512 {
        self.reads += 1;
        self.line_data(line_addr)
    }

    /// Performs a write access: the line's content changes to a fresh
    /// deterministic value (the simulator does not track store payloads at
    /// byte granularity; a store rewrites its line).
    pub fn write(&mut self, line_addr: u64) {
        self.writes += 1;
        *self.versions.entry(line_addr).or_insert(0) += 1;
    }

    /// Advances the *architectural* content of a line without memory
    /// traffic — a store absorbed by a write-back cache. The new value
    /// reaches memory only on [`Self::writeback`].
    pub fn bump_version(&mut self, line_addr: u64) {
        *self.versions.entry(line_addr).or_insert(0) += 1;
    }

    /// A write-back of an already-tracked dirty line: traffic without a
    /// content change.
    pub fn writeback(&mut self, line_addr: u64) {
        self.writes += 1;
        let _ = line_addr;
    }

    /// Clears the access counters (content versions persist).
    pub fn reset_counters(&mut self) {
        self.reads = 0;
        self.writes = 0;
    }

    /// Number of reads serviced.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of writes serviced.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_is_deterministic() {
        let m = MainMemory::new(1, 300);
        assert_eq!(m.line_data(0x1000), m.line_data(0x1000));
        assert_ne!(m.line_data(0x1000), m.line_data(0x1040));
    }

    #[test]
    fn writes_change_content() {
        let mut m = MainMemory::new(1, 300);
        let before = m.line_data(0x40);
        m.write(0x40);
        let after = m.line_data(0x40);
        assert_ne!(before, after);
        m.write(0x40);
        assert_ne!(after, m.line_data(0x40));
        assert_eq!(m.writes(), 2);
    }

    #[test]
    fn writes_do_not_alias_other_lines() {
        let mut m = MainMemory::new(2, 300);
        let other = m.line_data(0x80);
        m.write(0x40);
        assert_eq!(m.line_data(0x80), other);
    }

    #[test]
    fn read_counts() {
        let mut m = MainMemory::new(3, 300);
        let a = m.read(0);
        let b = m.read(0);
        assert_eq!(a, b);
        assert_eq!(m.reads(), 2);
    }

    #[test]
    fn bump_version_changes_content_without_traffic() {
        let mut m = MainMemory::new(4, 300);
        let before = m.line_data(0x40);
        m.bump_version(0x40);
        assert_ne!(m.line_data(0x40), before);
        assert_eq!(m.writes(), 0);
        m.writeback(0x40);
        assert_eq!(m.writes(), 1);
    }

    #[test]
    fn different_seeds_differ() {
        let a = MainMemory::new(10, 300);
        let b = MainMemory::new(11, 300);
        assert_ne!(a.line_data(0x40), b.line_data(0x40));
    }
}

//! GPU cache-hierarchy timing simulator for the Killi reproduction.
//!
//! This crate is the stand-in for the paper's gem5 + GCN3 GPU setup. It
//! provides:
//!
//! - [`mem`] — a fixed-latency main memory with synthesized, versioned
//!   content (the architectural source of truth for the write-through L2),
//! - [`cache`] — cache geometry, a tag-only L1, and the banked,
//!   fault-injected, write-through GPU L2 that stores real payloads,
//! - [`protection`] — the [`protection::LineProtection`] trait every scheme
//!   (Killi and all baselines) implements,
//! - [`gpu`] — the 8-CU timing driver with bounded outstanding-load windows,
//! - [`trace`] — the trace-op vocabulary consumed by the driver,
//! - [`tracefile`] — compact binary trace persistence (record/replay),
//! - [`stats`] — counters and derived metrics (cycles, MPKI, SDCs).
//!
//! # Example
//!
//! ```
//! use killi_fault::map::FaultMap;
//! use killi_sim::gpu::{GpuConfig, GpuSim};
//! use killi_sim::protection::Unprotected;
//! use killi_sim::trace::{Trace, TraceOp};
//!
//! let config = GpuConfig::small_test();
//! let map = std::sync::Arc::new(FaultMap::fault_free(config.l2.lines()));
//! let mut sim = GpuSim::new(config, map, Box::new(Unprotected::new()), 42);
//! let ops = vec![TraceOp::Load(0x1000), TraceOp::Compute(10), TraceOp::Load(0x1000)];
//! let stats = sim.run(Trace::from_vecs(vec![ops.clone(), ops]));
//! assert!(stats.cycles > 0);
//! ```

pub mod cache;
pub mod gpu;
pub mod mem;
pub mod protection;
pub mod stats;
pub mod trace;
pub mod tracefile;

pub use cache::{CacheGeometry, L2Cache, WritePolicy};
pub use gpu::{GpuConfig, GpuSim};
pub use protection::{FillOutcome, LineProtection, ProtectionStats, ReadOutcome};
pub use stats::SimStats;
pub use trace::{Trace, TraceOp};

/// One-stop imports for implementing or driving a protection scheme:
/// the trait, its outcome types, the cache geometry, and the
/// observability vocabulary it speaks.
pub mod prelude {
    pub use crate::cache::{CacheGeometry, WritePolicy};
    pub use crate::gpu::{GpuConfig, GpuSim};
    pub use crate::protection::{
        FillOutcome, LineProtection, ProtectionStats, ReadOutcome, Unprotected,
    };
    pub use crate::stats::SimStats;
    pub use killi_obs::{Counter, KilliEvent, MetricSet, Sink};
}

//! Minimal flag parsing for the CLI (the workspace is fully
//! dependency-free, so there is no clap to lean on).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` flags.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    /// The first positional argument.
    pub command: Option<String>,
    flags: HashMap<String, String>,
}

/// A flag-parsing error, named by failure mode so subcommands and tests
/// can match on what went wrong instead of string-matching messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// `--flag` appeared with no value after it.
    MissingValue { flag: String },
    /// A required flag was not given.
    MissingFlag { flag: String, hint: &'static str },
    /// A flag's value did not parse; `expected` describes the legal form.
    InvalidValue {
        flag: String,
        value: String,
        expected: String,
    },
    /// A positional argument after the subcommand.
    UnexpectedPositional { arg: String },
    /// An unrecognized subcommand; `known` is the full dispatch table
    /// so the message always lists every real command.
    UnknownCommand { command: String, known: Vec<String> },
    /// An I/O failure while executing a subcommand.
    Io { message: String },
}

impl ArgError {
    /// Convenience constructor for [`ArgError::InvalidValue`].
    pub fn invalid(flag: &str, value: &str, expected: impl Into<String>) -> Self {
        ArgError::InvalidValue {
            flag: flag.to_string(),
            value: value.to_string(),
            expected: expected.into(),
        }
    }
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingValue { flag } => write!(f, "--{flag} needs a value"),
            ArgError::MissingFlag { flag, hint } => write!(f, "{hint} needs --{flag}"),
            ArgError::InvalidValue {
                flag,
                value,
                expected,
            } => write!(f, "--{flag}: '{value}' is not {expected}"),
            ArgError::UnexpectedPositional { arg } => write!(f, "unexpected argument '{arg}'"),
            ArgError::UnknownCommand { command, known } => write!(
                f,
                "unknown command '{command}' (commands: {})",
                known.join(", ")
            ),
            ArgError::Io { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl From<std::io::Error> for ArgError {
    fn from(e: std::io::Error) -> Self {
        ArgError::Io {
            message: e.to_string(),
        }
    }
}

/// Flags that take no value: their presence is the value (`--quick`,
/// `--build-check`, `--help`, `--wait`).
const BOOLEAN_FLAGS: [&str; 4] = ["quick", "build-check", "help", "wait"];

impl Args {
    /// Parses an iterator of arguments (exclusive of the binary name).
    ///
    /// # Errors
    ///
    /// Returns an error for a flag without a value or a stray positional
    /// after the command.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut iter = args.into_iter();
        while let Some(a) = iter.next() {
            if let Some(name) = a.strip_prefix("--") {
                if BOOLEAN_FLAGS.contains(&name) {
                    out.flags.insert(name.to_string(), "true".to_string());
                    continue;
                }
                let value = iter.next().ok_or_else(|| ArgError::MissingValue {
                    flag: name.to_string(),
                })?;
                out.flags.insert(name.to_string(), value);
            } else if out.command.is_none() {
                out.command = Some(a);
            } else {
                return Err(ArgError::UnexpectedPositional { arg: a });
            }
        }
        Ok(out)
    }

    /// Reads a flag, falling back to `default`.
    pub fn get_or(&self, name: &str, default: &str) -> String {
        self.flags
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Reads a required flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::MissingFlag`] when the flag is absent.
    pub fn require(&self, name: &str, hint: &'static str) -> Result<String, ArgError> {
        self.flags
            .get(name)
            .cloned()
            .ok_or_else(|| ArgError::MissingFlag {
                flag: name.to_string(),
                hint,
            })
    }

    /// Reads and parses a numeric flag.
    ///
    /// # Errors
    ///
    /// Returns an error when the value does not parse as `T`.
    pub fn get_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError::invalid(name, v, "a valid number")),
        }
    }

    /// Reads and parses an unsigned 64-bit flag (seeds, counts).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::InvalidValue`] on a malformed value.
    pub fn flag_u64(&self, name: &str, default: u64) -> Result<u64, ArgError> {
        self.get_num(name, default)
    }

    /// Reads and parses a floating-point flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::InvalidValue`] on a malformed value.
    pub fn flag_f64(&self, name: &str, default: f64) -> Result<f64, ArgError> {
        self.get_num(name, default)
    }

    /// Parses a comma-separated list of floats (`--vdds 0.65,0.625,0.6`),
    /// falling back to `defaults` when the flag is absent.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::InvalidValue`] on a malformed element or an
    /// empty list.
    pub fn flag_f64_list(&self, name: &str, defaults: &str) -> Result<Vec<f64>, ArgError> {
        self.flag_list(name, defaults, |s| {
            s.parse::<f64>()
                .map_err(|_| ArgError::invalid(name, s, "a number"))
        })
    }

    /// Reads a flag and parses it with `T`'s [`std::str::FromStr`]
    /// (workloads, codes, schemes), falling back to `default` when the
    /// flag is absent.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::InvalidValue`] carrying the parse error's
    /// message as the expectation.
    pub fn flag_enum<T>(&self, name: &str, default: &str) -> Result<T, ArgError>
    where
        T: std::str::FromStr,
        T::Err: std::fmt::Display,
    {
        let raw = self.get_or(name, default);
        raw.parse()
            .map_err(|e: T::Err| ArgError::invalid(name, &raw, e.to_string()))
    }

    /// Parses a comma-separated flag value element-wise through `parse`,
    /// or `defaults` when the flag is absent.
    ///
    /// # Errors
    ///
    /// Propagates element errors; an empty list is
    /// [`ArgError::InvalidValue`].
    pub fn flag_list<T>(
        &self,
        name: &str,
        defaults: &str,
        parse: impl Fn(&str) -> Result<T, ArgError>,
    ) -> Result<Vec<T>, ArgError> {
        let raw = self.get_or(name, defaults);
        let items: Result<Vec<T>, ArgError> = raw
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(parse)
            .collect();
        let items = items?;
        if items.is_empty() {
            return Err(ArgError::invalid(name, &raw, "at least one value"));
        }
        Ok(items)
    }

    /// True when the flag is present (any value).
    #[allow(dead_code)] // part of the flag-parsing API; used by tests
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Result<Args, ArgError> {
        Args::parse(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse(&["simulate", "--vdd", "0.6", "--ops", "1000"]).unwrap();
        assert_eq!(a.command.as_deref(), Some("simulate"));
        assert_eq!(a.get_or("vdd", "0.625"), "0.6");
        assert_eq!(a.get_num::<usize>("ops", 0).unwrap(), 1000);
        assert_eq!(a.flag_u64("seed", 42).unwrap(), 42);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert_eq!(
            parse(&["x", "--vdd"]),
            Err(ArgError::MissingValue {
                flag: "vdd".to_string()
            })
        );
    }

    #[test]
    fn stray_positional_is_an_error() {
        assert_eq!(
            parse(&["a", "b"]),
            Err(ArgError::UnexpectedPositional {
                arg: "b".to_string()
            })
        );
    }

    #[test]
    fn bad_number_is_a_named_error() {
        let a = parse(&["x", "--ops", "many"]).unwrap();
        match a.get_num::<usize>("ops", 0) {
            Err(ArgError::InvalidValue { flag, value, .. }) => {
                assert_eq!(flag, "ops");
                assert_eq!(value, "many");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn f64_list_parses_and_rejects() {
        let a = parse(&["x", "--vdds", "0.65, 0.6"]).unwrap();
        assert_eq!(a.flag_f64_list("vdds", "0.7").unwrap(), vec![0.65, 0.6]);
        assert_eq!(a.flag_f64_list("other", "0.7").unwrap(), vec![0.7]);
        let bad = parse(&["x", "--vdds", "0.65,volts"]).unwrap();
        assert!(matches!(
            bad.flag_f64_list("vdds", "0.7"),
            Err(ArgError::InvalidValue { .. })
        ));
        let empty = parse(&["x", "--vdds", " , "]).unwrap();
        assert!(matches!(
            empty.flag_f64_list("vdds", "0.7"),
            Err(ArgError::InvalidValue { .. })
        ));
    }

    #[test]
    fn flag_enum_parses_via_fromstr() {
        let a = parse(&["x", "--workload", "hacc"]).unwrap();
        let w: killi_workloads::Workload = a.flag_enum("workload", "fft").unwrap();
        assert_eq!(w, killi_workloads::Workload::Hacc);
        let d: killi_workloads::Workload = a.flag_enum("other", "fft").unwrap();
        assert_eq!(d, killi_workloads::Workload::Fft);
        let bad = parse(&["x", "--workload", "doom"]).unwrap();
        match bad.flag_enum::<killi_workloads::Workload>("workload", "fft") {
            Err(ArgError::InvalidValue {
                value, expected, ..
            }) => {
                assert_eq!(value, "doom");
                assert!(expected.contains("choose from"), "{expected}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn require_names_the_missing_flag() {
        let a = parse(&["record"]).unwrap();
        assert_eq!(
            a.require("out", "record"),
            Err(ArgError::MissingFlag {
                flag: "out".to_string(),
                hint: "record"
            })
        );
    }

    #[test]
    fn has_detects_presence() {
        let a = parse(&["x", "--verbose", "1"]).unwrap();
        assert!(a.has("verbose"));
        assert!(!a.has("quiet"));
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let a = parse(&["bench", "--quick", "--out", "x.json"]).unwrap();
        assert!(a.has("quick"));
        assert_eq!(a.get_or("out", ""), "x.json");
        let trailing = parse(&["bench", "--quick"]).unwrap();
        assert!(trailing.has("quick"));
        let schemes = parse(&["schemes", "--build-check"]).unwrap();
        assert!(schemes.has("build-check"));
        let help = parse(&["serve", "--help"]).unwrap();
        assert!(help.has("help"));
        let wait = parse(&["submit", "--wait", "--file", "j.json"]).unwrap();
        assert!(wait.has("wait"));
        assert_eq!(wait.get_or("file", ""), "j.json");
    }

    #[test]
    fn unknown_command_lists_every_known_command() {
        let e = ArgError::UnknownCommand {
            command: "swep".to_string(),
            known: vec!["sweep".to_string(), "serve".to_string()],
        };
        let text = e.to_string();
        assert!(text.contains("'swep'"), "{text}");
        assert!(text.contains("sweep, serve"), "{text}");
    }
}

//! Minimal flag parsing for the CLI (the workspace is fully
//! dependency-free, so there is no clap to lean on).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The first positional argument.
    pub command: Option<String>,
    flags: HashMap<String, String>,
}

/// A flag parsing error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses an iterator of arguments (exclusive of the binary name).
    ///
    /// # Errors
    ///
    /// Returns an error for a flag without a value or a stray positional
    /// after the command.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut iter = args.into_iter();
        while let Some(a) = iter.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| ArgError(format!("--{name} needs a value")))?;
                out.flags.insert(name.to_string(), value);
            } else if out.command.is_none() {
                out.command = Some(a);
            } else {
                return Err(ArgError(format!("unexpected argument '{a}'")));
            }
        }
        Ok(out)
    }

    /// Reads a flag, falling back to `default`.
    pub fn get_or(&self, name: &str, default: &str) -> String {
        self.flags
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Reads and parses a numeric flag.
    ///
    /// # Errors
    ///
    /// Returns an error when the value does not parse as `T`.
    pub fn get_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{name}: '{v}' is not a valid number"))),
        }
    }

    /// True when the flag is present (any value).
    #[allow(dead_code)] // part of the flag-parsing API; used by tests
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Result<Args, ArgError> {
        Args::parse(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse(&["simulate", "--vdd", "0.6", "--ops", "1000"]).unwrap();
        assert_eq!(a.command.as_deref(), Some("simulate"));
        assert_eq!(a.get_or("vdd", "0.625"), "0.6");
        assert_eq!(a.get_num::<usize>("ops", 0).unwrap(), 1000);
        assert_eq!(a.get_num::<u64>("seed", 42).unwrap(), 42);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&["x", "--vdd"]).is_err());
    }

    #[test]
    fn stray_positional_is_an_error() {
        assert!(parse(&["a", "b"]).is_err());
    }

    #[test]
    fn bad_number_is_an_error() {
        let a = parse(&["x", "--ops", "many"]).unwrap();
        assert!(a.get_num::<usize>("ops", 0).is_err());
    }

    #[test]
    fn has_detects_presence() {
        let a = parse(&["x", "--verbose", "1"]).unwrap();
        assert!(a.has("verbose"));
        assert!(!a.has("quiet"));
    }
}

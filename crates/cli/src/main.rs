//! `killi` — command-line interface to the Killi low-voltage cache toolkit.
//!
//! ```text
//! killi coverage  [--vdd 0.6]
//! killi area      [--ratio 64] [--code secded|dected|tecqed|6ec7ed]
//! killi faultmap  [--vdd 0.625] [--lines 32768] [--seed 42]
//! killi simulate  [--workload xsbench] [--scheme killi] [--ratio 64]
//!                 [--vdd 0.625] [--ops 100000] [--seed 42]
//! killi sweep     [--replications 8] [--threads 4] [--vdds 0.65,0.625,0.6]
//!                 [--workloads xsbench,hacc] [--schemes killi] [--ratio 64]
//!                 [--ops 10000] [--seed 42] [--l2kb 512] [--out FILE.json]
//! killi record    --out trace.ktrc [--workload fft] [--ops 100000]
//! killi replay    --in trace.ktrc [--scheme killi] [--vdd 0.625]
//! killi profile   [--workload fft | --in trace.ktrc] [--ops 100000]
//! ```

mod args;

use std::process::ExitCode;
use std::sync::Arc;

use args::{ArgError, Args};
use killi_bench::report::Table;
use killi_bench::runner::{baseline_of, run_matrix, MatrixConfig};
use killi_bench::schemes::SchemeSpec;
use killi_bench::sweep::{run_sweep, SweepConfig};
use killi_fault::cell_model::{CellFailureModel, FreqGhz, NormVdd};
use killi_fault::line_stats::LineFaultDistribution;
use killi_fault::map::FaultMap;
use killi_model::area::{checkbits, AreaModel};
use killi_model::coverage::coverage_at;
use killi_sim::gpu::{GpuConfig, GpuSim};
use killi_workloads::{TraceParams, Workload};

const USAGE: &str = "\
killi-cli — low-voltage cache toolkit (reproduction of HPCA'19 'Killi')

USAGE:
  killi coverage  [--vdd 0.6]
  killi area      [--ratio 64] [--code secded|dected|tecqed|6ec7ed]
  killi faultmap  [--vdd 0.625] [--lines 32768] [--seed 42]
  killi simulate  [--workload xsbench] [--scheme killi|dected|flair|ms-ecc]
                  [--ratio 64] [--vdd 0.625] [--ops 100000] [--seed 42]
  killi sweep     [--replications 8] [--threads N] [--vdds 0.65,0.625,0.6]
                  [--workloads xsbench,hacc] [--schemes killi] [--ratio 64]
                  [--ops 10000] [--seed 42] [--l2kb 512] [--progress 10]
                  [--out results/BENCH_sweep.json]
                  Monte-Carlo sweep: statistics (mean/stddev/95% CI) over
                  seed-derived replicate fault maps, written as JSON.
  killi record    --out trace.ktrc [--workload fft] [--ops 100000] [--seed 42]
  killi replay    --in trace.ktrc  [--scheme killi] [--ratio 64] [--vdd 0.625]
  killi profile   [--workload fft | --in trace.ktrc] [--ops 100000]
";

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_deref() {
        Some("coverage") => cmd_coverage(&args),
        Some("area") => cmd_area(&args),
        Some("faultmap") => cmd_faultmap(&args),
        Some("simulate") => cmd_simulate(&args),
        Some("sweep") => cmd_sweep(&args),
        Some("record") => cmd_record(&args),
        Some("replay") => cmd_replay(&args),
        Some("profile") => cmd_profile(&args),
        Some(other) => Err(ArgError(format!("unknown command '{other}'"))),
        None => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_coverage(args: &Args) -> Result<(), ArgError> {
    let vdd = args.get_num("vdd", 0.6f64)?;
    let model = CellFailureModel::finfet14();
    let c = coverage_at(&model, NormVdd(vdd));
    let mut t = Table::new(vec!["technique", "coverage"]);
    for (name, v) in [
        ("16-bit parity", c.parity16),
        ("SECDED", c.secded),
        ("DECTED", c.dected),
        ("MS-ECC", c.msecc),
        ("FLAIR (training)", c.flair),
        ("Killi", c.killi),
    ] {
        t.row(vec![name.to_string(), format!("{:.6}%", v * 100.0)]);
    }
    println!("classification coverage at {vdd} x VDD:\n{}", t.render());
    Ok(())
}

fn cmd_area(args: &Args) -> Result<(), ArgError> {
    let ratio: usize = args.get_num("ratio", 64)?;
    let code = args.get_or("code", "secded");
    let bits = match code.as_str() {
        "secded" => checkbits::SECDED,
        "dected" => checkbits::DECTED,
        "tecqed" => checkbits::TECQED,
        "6ec7ed" => checkbits::SIX_EC,
        other => return Err(ArgError(format!("unknown code '{other}'"))),
    };
    let m = AreaModel::paper();
    let killi = m.killi_bits(ratio, bits);
    println!(
        "Killi at 1:{ratio} with {code} in the ECC cache over a 2 MB L2:\n\
         - added storage: {:.2} KiB ({} entries x {} bits + 6 bits/line)\n\
         - {:.2}x the per-line SECDED baseline\n\
         - {:.2}% of the L2 data array",
        AreaModel::kib(killi),
        32768 / ratio,
        m.ecc_entry_bits(bits),
        m.ratio_to_secded(killi),
        m.fraction_of_l2(killi) * 100.0,
    );
    Ok(())
}

fn cmd_faultmap(args: &Args) -> Result<(), ArgError> {
    let vdd = args.get_num("vdd", 0.625f64)?;
    let lines: usize = args.get_num("lines", 32768)?;
    let seed: u64 = args.get_num("seed", 42)?;
    let model = CellFailureModel::finfet14();
    let map = FaultMap::build(lines, &model, NormVdd(vdd), FreqGhz::PEAK, seed);
    let measured = LineFaultDistribution::measured(&map);
    let hist = map.data_fault_histogram(13);
    println!(
        "fault map: {lines} lines at {vdd} x VDD, seed {seed}\n\
         zero faults: {:.2}%   one: {:.2}%   two-plus: {:.2}%",
        measured.zero * 100.0,
        measured.one * 100.0,
        measured.two_plus * 100.0
    );
    let mut t = Table::new(vec!["faults/line", "lines"]);
    for (k, &n) in hist.iter().enumerate() {
        if n > 0 {
            let label = if k == hist.len() - 1 {
                format!("{k}+")
            } else {
                k.to_string()
            };
            t.row(vec![label, n.to_string()]);
        }
    }
    println!("{}", t.render());
    Ok(())
}

fn parse_workload(name: &str) -> Result<Workload, ArgError> {
    Workload::ALL
        .iter()
        .copied()
        .find(|w| w.name() == name)
        .ok_or_else(|| {
            let names: Vec<&str> = Workload::ALL.iter().map(|w| w.name()).collect();
            ArgError(format!(
                "unknown workload '{name}' (choose from {})",
                names.join(", ")
            ))
        })
}

fn parse_scheme(name: &str, ratio: usize) -> Result<SchemeSpec, ArgError> {
    Ok(match name {
        "killi" => SchemeSpec::Killi(ratio),
        "killi-dected" => SchemeSpec::KilliDected(ratio),
        "killi-invchk" => SchemeSpec::KilliInverted(ratio),
        "killi-olsc" => SchemeSpec::KilliOlsc(ratio),
        "dected" => SchemeSpec::Dected,
        "flair" => SchemeSpec::Flair,
        "flair-online" => SchemeSpec::FlairOnline,
        "ms-ecc" => SchemeSpec::MsEcc,
        other => return Err(ArgError(format!("unknown scheme '{other}'"))),
    })
}

fn cmd_simulate(args: &Args) -> Result<(), ArgError> {
    let workload = parse_workload(&args.get_or("workload", "xsbench"))?;
    let ratio: usize = args.get_num("ratio", 64)?;
    let spec = parse_scheme(&args.get_or("scheme", "killi"), ratio)?;
    let vdd = args.get_num("vdd", 0.625f64)?;
    let ops: usize = args.get_num("ops", 100_000)?;
    let seed: u64 = args.get_num("seed", 42)?;

    let mut config = MatrixConfig::paper(ops, seed);
    config.vdd = NormVdd(vdd);
    let results = run_matrix(&[workload], &[spec], &config);
    let base = baseline_of(&results, workload.name());
    let r = results
        .iter()
        .find(|r| r.scheme != "baseline")
        .expect("scheme result");
    println!(
        "{} / {} at {vdd} x VDD ({} ops/CU, seed {seed}):",
        r.workload, r.scheme, ops
    );
    println!(
        "  cycles            {:>12}  ({:.4}x the fault-free baseline)",
        r.stats.cycles,
        r.stats.normalized_time(&base.stats)
    );
    println!("  L2 MPKI           {:>12.2}", r.stats.mpki());
    println!("  error misses      {:>12}", r.stats.l2_error_misses);
    println!("  corrections       {:>12}", r.stats.corrections);
    println!("  disabled lines    {:>12}", r.disabled_lines);
    println!("  silent corruption {:>12}", r.stats.sdc_events);
    Ok(())
}

fn io_err(e: std::io::Error) -> ArgError {
    ArgError(e.to_string())
}

fn cmd_record(args: &Args) -> Result<(), ArgError> {
    let workload = parse_workload(&args.get_or("workload", "fft"))?;
    let ops: usize = args.get_num("ops", 100_000)?;
    let seed: u64 = args.get_num("seed", 42)?;
    let out = args.get_or("out", "");
    if out.is_empty() {
        return Err(ArgError("record needs --out <file>".into()));
    }
    let trace = workload.trace(&TraceParams::paper(ops, seed));
    let mut file = std::io::BufWriter::new(std::fs::File::create(&out).map_err(io_err)?);
    killi_sim::tracefile::save(trace, &mut file).map_err(io_err)?;
    use std::io::Write as _;
    file.flush().map_err(io_err)?;
    let bytes = std::fs::metadata(&out).map_err(io_err)?.len();
    println!(
        "recorded {} ({} ops/CU x 8 CUs, seed {seed}) to {out} ({bytes} bytes)",
        workload.name(),
        ops
    );
    Ok(())
}

fn cmd_replay(args: &Args) -> Result<(), ArgError> {
    let input = args.get_or("in", "");
    if input.is_empty() {
        return Err(ArgError("replay needs --in <file>".into()));
    }
    let ratio: usize = args.get_num("ratio", 64)?;
    let spec = parse_scheme(&args.get_or("scheme", "killi"), ratio)?;
    let vdd = args.get_num("vdd", 0.625f64)?;
    let seed: u64 = args.get_num("seed", 42)?;

    let mut file = std::io::BufReader::new(std::fs::File::open(&input).map_err(io_err)?);
    let trace = killi_sim::tracefile::load(&mut file).map_err(io_err)?;
    let config = GpuConfig {
        cus: trace.cus(),
        ..GpuConfig::default()
    };
    let model = CellFailureModel::finfet14();
    let map = Arc::new(FaultMap::build(
        config.l2.lines(),
        &model,
        NormVdd(vdd),
        FreqGhz::PEAK,
        seed,
    ));
    let protection = spec.build(&map, config.l2.lines(), config.l2.ways);
    let mut sim = GpuSim::new(config, map, protection, seed);
    let stats = sim.run(trace);
    println!("replayed {input} under {} at {vdd} x VDD:", spec.label());
    println!("  cycles       {:>12}", stats.cycles);
    println!("  L2 MPKI      {:>12.2}", stats.mpki());
    println!("  error misses {:>12}", stats.l2_error_misses);
    println!("  corrections  {:>12}", stats.corrections);
    println!("  SDC events   {:>12}", stats.sdc_events);
    Ok(())
}

fn cmd_profile(args: &Args) -> Result<(), ArgError> {
    use killi_workloads::analysis::TraceProfile;
    let input = args.get_or("in", "");
    let profile = if input.is_empty() {
        let workload = parse_workload(&args.get_or("workload", "fft"))?;
        let ops: usize = args.get_num("ops", 100_000)?;
        let seed: u64 = args.get_num("seed", 42)?;
        println!("profile of generated {} ({} ops/CU):", workload.name(), ops);
        TraceProfile::of(workload.trace(&TraceParams::paper(ops, seed)))
    } else {
        let mut file = std::io::BufReader::new(std::fs::File::open(&input).map_err(io_err)?);
        println!("profile of {input}:");
        TraceProfile::of(killi_sim::tracefile::load(&mut file).map_err(io_err)?)
    };
    println!("  CUs                 {:>12}", profile.cus);
    println!("  operations          {:>12}", profile.ops);
    println!("  instructions        {:>12}", profile.instructions);
    println!(
        "  loads / stores      {:>6} / {}",
        profile.loads, profile.stores
    );
    println!(
        "  footprint           {:>9.2} MiB ({} lines)",
        profile.footprint_bytes as f64 / 1024.0 / 1024.0,
        profile.footprint_lines
    );
    println!("  mean reuse          {:>12.2}", profile.mean_reuse);
    println!(
        "  write share         {:>11.1}%",
        profile.write_share * 100.0
    );
    println!("  compute per access  {:>12.2}", profile.compute_per_access);
    Ok(())
}

/// Parses a comma-separated flag value through `parse`, or `defaults`
/// when the flag is absent.
fn parse_list<T>(
    args: &Args,
    name: &str,
    defaults: &str,
    parse: impl Fn(&str) -> Result<T, ArgError>,
) -> Result<Vec<T>, ArgError> {
    let raw = args.get_or(name, defaults);
    let items: Result<Vec<T>, ArgError> = raw
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse)
        .collect();
    let items = items?;
    if items.is_empty() {
        return Err(ArgError(format!("--{name} needs at least one value")));
    }
    Ok(items)
}

fn cmd_sweep(args: &Args) -> Result<(), ArgError> {
    let replications: usize = args.get_num("replications", 8)?;
    let ratio: usize = args.get_num("ratio", 64)?;
    let ops: usize = args.get_num("ops", 10_000)?;
    let seed: u64 = args.get_num("seed", 42)?;
    let threads: usize = args
        .get_num(
            "threads",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        )?
        .max(1);
    let l2_kb: usize = args.get_num("l2kb", 512)?;
    let out = args.get_or("out", "results/BENCH_sweep.json");
    let vdds = parse_list(args, "vdds", "0.65,0.625,0.6", |s| {
        s.parse::<f64>()
            .map_err(|_| ArgError(format!("--vdds: '{s}' is not a number")))
    })?;
    let workloads = parse_list(args, "workloads", "xsbench,hacc", parse_workload)?;
    let schemes = parse_list(args, "schemes", "killi", |s| parse_scheme(s, ratio))?;

    let gpu = GpuConfig {
        l2: killi_sim::cache::CacheGeometry {
            size_bytes: l2_kb * 1024,
            ways: 16,
            line_bytes: 64,
        },
        ..GpuConfig::default()
    };
    let config = SweepConfig {
        root_seed: seed,
        replications,
        vdds,
        schemes,
        workloads,
        ops_per_cu: ops,
        gpu,
        threads,
        progress_every: args.get_num("progress", 10)?,
    };
    eprintln!(
        "sweep: {} simulations ({} replications x {} vdds x {} schemes x {} workloads \
         + baselines) on {} threads",
        config.job_count(),
        config.replications,
        config.vdds.len(),
        config.schemes.len(),
        config.workloads.len(),
        config.threads,
    );
    let report = run_sweep(&config);
    println!(
        "Monte-Carlo sweep (root seed {seed}, {replications} replications, \
         {ops} ops/CU, {l2_kb} KiB L2) — mean over replicates:\n{}",
        report.summary_table().render()
    );
    println!("wall time: {:.1}s on {} threads", report.wall_secs, threads);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(io_err)?;
        }
    }
    std::fs::write(&out, report.to_json()).map_err(io_err)?;
    println!("wrote {out}");
    Ok(())
}

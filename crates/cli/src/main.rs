//! `killi` — command-line interface to the Killi low-voltage cache toolkit.
//!
//! ```text
//! killi coverage  [--vdd 0.6] [--fault-model stuck-at]
//! killi area      [--ratio 64] [--code secded|dected|tecqed|6ec7ed]
//! killi faultmap  [--vdd 0.625] [--lines 32768] [--seed 42]
//!                 [--fault-model clustered:rows=4,corr=0.8]
//! killi schemes   [--build-check]
//! killi fault-models [--build-check]
//! killi simulate  [--workload xsbench] [--scheme killi] [--ratio 64]
//!                 [--vdd 0.625] [--ops 100000] [--seed 42]
//!                 [--fault-model stuck-at]
//! killi sweep     [--replications 8] [--threads 4] [--vdds 0.65,0.625,0.6]
//!                 [--workloads xsbench,hacc] [--schemes killi] [--ratio 64]
//!                 [--scheme-file FILE.json] [--fault-model stuck-at]
//!                 [--ops 10000] [--seed 42] [--l2kb 512] [--out FILE.json]
//!                 [--trace FILE.jsonl] [--trace-capacity 4096]
//! killi bench     [--quick] [--out results/BENCH_perf.json]
//!                 | --check FILE.json
//! killi record    --out trace.ktrc [--workload fft] [--ops 100000]
//! killi replay    --in trace.ktrc [--scheme killi] [--vdd 0.625]
//!                 [--fault-model stuck-at]
//! killi profile   [--workload fft | --in trace.ktrc] [--ops 100000]
//! killi stats     --in results/BENCH_sweep.json
//! killi trace     [--workload fft] [--scheme killi] [--capacity 4096]
//!                 [--out FILE.jsonl] | --check FILE.jsonl
//! killi serve     [--host 127.0.0.1] [--port 7171] [--workers 2]
//!                 [--queue-depth 32] [--cache-cap 64]
//! killi submit    [--url http://127.0.0.1:7171] [--file JOB.json] [--wait]
//! killi status    --job ID [--url http://127.0.0.1:7171]
//! killi fetch     --job ID [--url http://127.0.0.1:7171] [--out FILE.json]
//!                 [--wait]
//! ```

mod args;

use std::process::ExitCode;
use std::sync::Arc;

use args::{ArgError, Args};
use killi_bench::fault_models::{
    build_fault_model, default_fault_registry, fault_model_label, FaultModelBuildError,
    FaultModelConfig, STUCK_AT,
};
use killi_bench::perf::{run_perf_suite, BENCHMARK_NAMES};
use killi_bench::report::Table;
use killi_bench::runner::{baseline_of, run_cell, run_matrix, MatrixConfig, ObsConfig};
use killi_bench::schemes::{
    build_scheme, default_registry, scheme_label, BuildCtx, ParamValue, SchemeConfig,
};
use killi_bench::sweep::{run_sweep, SweepConfig};
use killi_fault::cell_model::{FreqGhz, NormVdd};
use killi_fault::line_stats::LineFaultDistribution;
use killi_fault::map::FaultMap;
use killi_model::area::{checkbits, AreaModel};
use killi_model::coverage::coverage_at;
use killi_obs::{parse_json, JsonValue};
use killi_serve::{Client, Server, ServerConfig};
use killi_sim::gpu::{GpuConfig, GpuSim};
use killi_vmin::bench::{run_vmin_bench, VMIN_BENCHMARK_NAMES};
use killi_vmin::{run_campaign, SearchMode, VminConfig, DEFAULT_GRID};
use killi_workloads::{TraceParams, Workload};

const USAGE: &str = "\
killi-cli — low-voltage cache toolkit (reproduction of HPCA'19 'Killi')

USAGE:
  killi coverage  [--vdd 0.6] [--fault-model stuck-at]
  killi area      [--ratio 64] [--code secded|dected|tecqed|6ec7ed]
  killi faultmap  [--vdd 0.625] [--lines 32768] [--seed 42]
                  [--fault-model clustered:rows=4,corr=0.8]
  killi schemes   [--build-check]
                  Lists every registered protection scheme with its
                  parameters and defaults; --build-check also builds each
                  from its defaults (CI smoke).
  killi fault-models [--build-check]
                  Lists every registered fault model (stuck-at, clustered,
                  transient, table) with its parameters, defaults and
                  voltage-nesting contract; --build-check also builds each
                  from its defaults and round-trips it through the service
                  job payload (CI smoke).
  killi simulate  [--workload xsbench] [--scheme killi|dected|flair|ms-ecc]
                  [--ratio 64] [--vdd 0.625] [--ops 100000] [--seed 42]
                  [--fault-model stuck-at]
  killi sweep     [--replications 8] [--threads N] [--vdds 0.65,0.625,0.6]
                  [--workloads xsbench,hacc] [--schemes killi] [--ratio 64]
                  [--scheme-file FILE.json] [--fault-model stuck-at]
                  [--ops 10000] [--seed 42] [--l2kb 512] [--progress 10]
                  [--out results/BENCH_sweep.json]
                  [--trace FILE.jsonl] [--trace-capacity 4096]
                  Monte-Carlo sweep: statistics (mean/stddev/95% CI) over
                  seed-derived replicate fault maps, written as JSON.
                  --scheme entries accept registry shorthand, e.g.
                  killi:ratio=16,ecc_sets=64,ecc_ways=8; --scheme-file
                  reads a JSON list of {\"scheme\": ..., params} objects.
                  --fault-model picks the map generator (see
                  'killi fault-models'), e.g. transient:rate=0.001.
  killi vmin      [--dies 100] [--lines 4096] [--target 0.99] [--seed 42]
                  [--vdds 0.55,0.575,0.6,0.625,0.65,0.675,0.7]
                  [--schemes killi,flair|all] [--ratio 64]
                  [--scheme-file FILE.json] [--fault-model stuck-at]
                  [--threads N] [--progress 0] [--store FILE.kds]
                  [--out results/VMIN.json]
                  Fleet Vmin campaign: per-die minimum-voltage binning per
                  scheme over the voltage grid (bisected for voltage-nested
                  fault models, linear fallback otherwise), reported as
                  killi-vmin/v1 JSON with Vmin CDFs, capacity-vs-vdd curves
                  and yield tables. --schemes all bins every registered
                  scheme. --store streams dies through a killi-diestore/v1
                  file (built on first use, reused afterwards) so memory
                  stays flat in the fleet size.
  killi vmin      --check FILE.json
                  Validates a killi-vmin/v1 report (schema + binning
                  invariants).
  killi bench     [--quick] [--suite perf|vmin] [--out FILE.json]
                  Before/after performance suite as killi-bench/v1 JSON.
                  Suite 'perf' (default, results/BENCH_perf.json) times the
                  sweep hot path (fault-map build, single simulation, full
                  sweep); suite 'vmin' (results/BENCH_vmin.json) times a
                  fleet campaign with the exhaustive scan as 'before' and
                  the nesting-aware search as 'after', recording dies/sec
                  throughput. --quick runs a seconds-scale configuration
                  for CI smoke.
  killi bench     --check FILE.json
                  Validates a killi-bench/v1 report (schema + the expected
                  benchmark entries of whichever suite produced it).
  killi record    --out trace.ktrc [--workload fft] [--ops 100000] [--seed 42]
  killi replay    --in trace.ktrc  [--scheme killi] [--ratio 64] [--vdd 0.625]
                  [--fault-model stuck-at]
  killi profile   [--workload fft | --in trace.ktrc] [--ops 100000]
  killi stats     --in results/BENCH_sweep.json
                  Per-scheme observability digest of a killi-sweep/v2
                  report: DFH transitions and the error-induced vs
                  ECC-cache-induced miss split.
  killi trace     [--workload fft] [--scheme killi] [--ratio 64]
                  [--vdd 0.625] [--ops 20000] [--seed 42] [--capacity 4096]
                  [--fault-model stuck-at] [--out FILE.jsonl]
                  Runs one traced simulation and emits the killi-obs/v1
                  JSON-lines event trace (stdout unless --out).
  killi trace     --check FILE.jsonl
                  Validates a JSON-lines event trace (schema + line syntax).
  killi serve     [--host 127.0.0.1] [--port 7171] [--workers 2]
                  [--queue-depth 32] [--cache-cap 64]
                  Runs the sweep engine as an HTTP service. POST /v1/jobs
                  takes a sweep config (JSON), GET /v1/jobs/ID and
                  /v1/jobs/ID/report poll and fetch, /v1/metrics and
                  /v1/healthz observe. Identical configs share one
                  content-addressed result; a full queue answers 429 with
                  Retry-After; SIGTERM/ctrl-c drains in-flight jobs and
                  exits. --port 0 picks an ephemeral port (printed on the
                  first stdout line).
  killi submit    [--url http://127.0.0.1:7171] [--file JOB.json] [--wait]
                  Submits a job (reads stdin when --file is absent or '-')
                  and prints 'job:', 'cache:' and 'state:' lines; --wait
                  polls until the job is done or failed.
  killi status    --job ID [--url http://127.0.0.1:7171]
  killi fetch     --job ID [--url http://127.0.0.1:7171] [--out FILE.json]
                  [--wait]
                  Downloads the killi-sweep/v2 report of a finished job
                  (stdout unless --out).

Run 'killi <command> --help' (or bare 'killi') to print this text.
";

/// A subcommand implementation.
type Command = fn(&Args) -> Result<(), ArgError>;

/// The dispatch table. Both command lookup and the unknown-command
/// error derive from this one list, so the error can never advertise a
/// stale set of subcommands.
const COMMANDS: &[(&str, Command)] = &[
    ("coverage", cmd_coverage),
    ("area", cmd_area),
    ("faultmap", cmd_faultmap),
    ("schemes", cmd_schemes),
    ("fault-models", cmd_fault_models),
    ("simulate", cmd_simulate),
    ("sweep", cmd_sweep),
    ("vmin", cmd_vmin),
    ("bench", cmd_bench),
    ("record", cmd_record),
    ("replay", cmd_replay),
    ("profile", cmd_profile),
    ("stats", cmd_stats),
    ("trace", cmd_trace),
    ("serve", cmd_serve),
    ("submit", cmd_submit),
    ("status", cmd_status),
    ("fetch", cmd_fetch),
];

/// Every registered subcommand name, in table order.
fn command_names() -> Vec<String> {
    COMMANDS
        .iter()
        .map(|(name, _)| (*name).to_string())
        .collect()
}

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let Some(command) = args.command.as_deref() else {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    };
    if args.has("help") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let result = match COMMANDS.iter().find(|(name, _)| *name == command) {
        Some((_, run)) => run(&args),
        None => Err(ArgError::UnknownCommand {
            command: command.to_string(),
            known: command_names(),
        }),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_coverage(args: &Args) -> Result<(), ArgError> {
    let vdd = args.flag_f64("vdd", 0.6)?;
    let fault_model = parse_fault_model(&args.get_or("fault-model", "stuck-at"))?;
    let built = build_fault_model(&fault_model).map_err(|e| io_msg(e.to_string()))?;
    let model = built.cell_model().cloned().ok_or_else(|| {
        io_msg(format!(
            "fault model `{fault_model}` exposes no analytic cell-failure curve \
             (coverage needs one)"
        ))
    })?;
    let c = coverage_at(&model, NormVdd(vdd));
    let mut t = Table::new(vec!["technique", "coverage"]);
    for (name, v) in [
        ("16-bit parity", c.parity16),
        ("SECDED", c.secded),
        ("DECTED", c.dected),
        ("MS-ECC", c.msecc),
        ("FLAIR (training)", c.flair),
        ("Killi", c.killi),
    ] {
        t.row(vec![name.to_string(), format!("{:.6}%", v * 100.0)]);
    }
    println!("classification coverage at {vdd} x VDD:\n{}", t.render());
    Ok(())
}

fn cmd_area(args: &Args) -> Result<(), ArgError> {
    let ratio: usize = args.get_num("ratio", 64)?;
    let code = args.get_or("code", "secded");
    let bits = match code.as_str() {
        "secded" => checkbits::SECDED,
        "dected" => checkbits::DECTED,
        "tecqed" => checkbits::TECQED,
        "6ec7ed" => checkbits::SIX_EC,
        other => {
            return Err(ArgError::invalid(
                "code",
                other,
                "one of secded, dected, tecqed, 6ec7ed",
            ))
        }
    };
    let m = AreaModel::paper();
    let killi = m.killi_bits(ratio, bits);
    println!(
        "Killi at 1:{ratio} with {code} in the ECC cache over a 2 MB L2:\n\
         - added storage: {:.2} KiB ({} entries x {} bits + 6 bits/line)\n\
         - {:.2}x the per-line SECDED baseline\n\
         - {:.2}% of the L2 data array",
        AreaModel::kib(killi),
        32768 / ratio,
        m.ecc_entry_bits(bits),
        m.ratio_to_secded(killi),
        m.fraction_of_l2(killi) * 100.0,
    );
    Ok(())
}

fn cmd_faultmap(args: &Args) -> Result<(), ArgError> {
    let vdd = args.flag_f64("vdd", 0.625)?;
    let lines: usize = args.get_num("lines", 32768)?;
    let seed = args.flag_u64("seed", 42)?;
    let fault_model = parse_fault_model(&args.get_or("fault-model", "stuck-at"))?;
    let model = build_fault_model(&fault_model).map_err(|e| io_msg(e.to_string()))?;
    let map = model.map(lines, NormVdd(vdd), FreqGhz::PEAK, seed);
    let measured = LineFaultDistribution::measured(&map);
    let hist = map.data_fault_histogram(13);
    println!(
        "fault map ({fault_model}): {lines} lines at {vdd} x VDD, seed {seed}\n\
         zero faults: {:.2}%   one: {:.2}%   two-plus: {:.2}%",
        measured.zero * 100.0,
        measured.one * 100.0,
        measured.two_plus * 100.0
    );
    let mut t = Table::new(vec!["faults/line", "lines"]);
    for (k, &n) in hist.iter().enumerate() {
        if n > 0 {
            let label = if k == hist.len() - 1 {
                format!("{k}+")
            } else {
                k.to_string()
            };
            t.row(vec![label, n.to_string()]);
        }
    }
    println!("{}", t.render());
    Ok(())
}

/// Parses a `--scheme` value through the registry. Accepts the plain name
/// (`killi`) and the parameterized shorthand
/// (`killi:ratio=16,ecc_sets=64`). For back-compat, `--ratio N` is
/// injected into any scheme that declares a `ratio` parameter the
/// shorthand left unset.
fn parse_scheme(input: &str, ratio: usize) -> Result<SchemeConfig, ArgError> {
    let registry = default_registry();
    let scheme_err = |e: killi_bench::schemes::BuildError| {
        ArgError::invalid(
            "scheme",
            input,
            format!("valid ({e}); registered: {}", registry.names().join(", ")),
        )
    };
    let mut config = SchemeConfig::parse(input).map_err(scheme_err)?;
    if config.get("ratio").is_none() {
        let declares_ratio = registry
            .descriptor(&config.name)
            .is_some_and(|d| d.params.iter().any(|p| p.name == "ratio"));
        if declares_ratio {
            config = config.with("ratio", ParamValue::U64(ratio as u64));
        }
    }
    registry.validate(&config).map_err(scheme_err)?;
    Ok(config)
}

/// Parses a `--fault-model` value through the fault-model registry.
/// Accepts the plain name (`stuck-at`) and the parameterized shorthand
/// (`clustered:rows=4,corr=0.8`).
fn parse_fault_model(input: &str) -> Result<FaultModelConfig, ArgError> {
    let registry = default_fault_registry();
    let model_err = |e: FaultModelBuildError| {
        ArgError::invalid(
            "fault-model",
            input,
            format!("valid ({e}); registered: {}", registry.names().join(", ")),
        )
    };
    let config = FaultModelConfig::parse(input).map_err(model_err)?;
    registry.validate(&config).map_err(model_err)?;
    Ok(config)
}

/// `killi fault-models`: lists every registered fault model with its
/// parameters, defaults and voltage-nesting contract; `--build-check`
/// additionally builds each model from its defaults, draws a small map,
/// and round-trips it through the service job payload (the CI smoke that
/// keeps the registry, the constructors and the service in sync).
fn cmd_fault_models(args: &Args) -> Result<(), ArgError> {
    let registry = default_fault_registry();
    let io_err = |e: FaultModelBuildError| io_msg(e.to_string());
    let mut t = Table::new(vec!["model", "default label", "nested", "description"]);
    for d in registry.descriptors() {
        let label = registry
            .label(&FaultModelConfig::new(d.name))
            .map_err(io_err)?;
        t.row(vec![
            d.name.to_string(),
            label,
            if d.voltage_nested { "yes" } else { "no" }.to_string(),
            d.doc.to_string(),
        ]);
    }
    println!(
        "registered fault models (use --fault-model NAME or \
         NAME:key=value,key=value; `nested` = faults at a higher voltage \
         are a subset of faults at any lower voltage):\n{}",
        t.render()
    );
    let with_params: Vec<_> = registry
        .descriptors()
        .iter()
        .filter(|d| !d.params.is_empty())
        .collect();
    if !with_params.is_empty() {
        println!("parameters:");
        for d in with_params {
            println!("  {}:", d.name);
            for p in &d.params {
                let default = p.default.to_string();
                let default = if default.len() > 40 {
                    format!("{}...", &default[..37])
                } else {
                    default
                };
                println!("    {} = {}  ({})", p.name, default, p.doc);
            }
        }
    }
    if args.has("build-check") {
        for d in registry.descriptors() {
            let config = FaultModelConfig::new(d.name);
            let model = registry
                .build(&config)
                .map_err(|e| io_msg(format!("{}: {e}", d.name)))?;
            let map = model.map(64, NormVdd(0.6), FreqGhz::PEAK, 1);
            if map.lines() != 64 {
                return Err(io_msg(format!(
                    "{}: drew {} lines instead of 64",
                    d.name,
                    map.lines()
                )));
            }
            if model.voltage_nested() != d.voltage_nested {
                return Err(io_msg(format!(
                    "{}: built model contradicts the descriptor's nesting contract",
                    d.name
                )));
            }
            // Every model must also round-trip through the service's
            // job-payload path, so `killi serve` can sweep it.
            let payload = format!(
                "{{\"root_seed\":1,\"replications\":1,\"vdds\":[0.65,0.625],\
                 \"schemes\":[\"killi\"],\"fault_model\":\"{}\",\
                 \"workloads\":[\"fft\"],\"ops_per_cu\":100}}",
                d.name
            );
            killi_serve::parse_job_spec(payload.as_bytes()).map_err(|e| {
                io_msg(format!("{}: not submittable as a service job: {e}", d.name))
            })?;
        }
        println!(
            "build check: all {} registered fault models build from their \
             defaults, draw maps, and validate as service job payloads",
            registry.descriptors().len()
        );
    }
    Ok(())
}

/// `killi schemes`: lists every registered scheme with its parameters and
/// defaults; `--build-check` additionally builds each scheme from its
/// default config against a small fault-free cache (the CI smoke that
/// keeps the registry and the constructors in sync).
fn cmd_schemes(args: &Args) -> Result<(), ArgError> {
    let registry = default_registry();
    let io_err = |e: killi_bench::schemes::BuildError| ArgError::Io {
        message: e.to_string(),
    };
    let mut t = Table::new(vec!["scheme", "default label", "description"]);
    for d in registry.descriptors() {
        let label = registry.label(&SchemeConfig::new(d.name)).map_err(io_err)?;
        t.row(vec![d.name.to_string(), label, d.doc.to_string()]);
    }
    println!(
        "registered protection schemes (use --scheme NAME or \
         NAME:key=value,key=value):\n{}",
        t.render()
    );
    let with_params: Vec<_> = registry
        .descriptors()
        .iter()
        .filter(|d| !d.params.is_empty())
        .collect();
    if !with_params.is_empty() {
        println!("parameters:");
        for d in with_params {
            println!("  {}:", d.name);
            for p in &d.params {
                println!("    {} = {}  ({})", p.name, p.default, p.doc);
            }
        }
    }
    if args.has("build-check") {
        let geometry = killi_sim::cache::CacheGeometry {
            size_bytes: 64 * 1024,
            ways: 16,
            line_bytes: 64,
        };
        let ctx = BuildCtx::new(Arc::new(FaultMap::fault_free(geometry.lines())), geometry);
        for d in registry.descriptors() {
            build_scheme(&SchemeConfig::new(d.name), &ctx).map_err(|e| ArgError::Io {
                message: format!("{}: {e}", d.name),
            })?;
            // Every scheme must also round-trip through the service's
            // job-payload path, so `killi serve` can run whatever the
            // registry can build.
            let payload = format!(
                "{{\"root_seed\":1,\"replications\":1,\"vdds\":[0.65,0.625],\
                 \"schemes\":[\"{}\"],\"workloads\":[\"fft\"],\"ops_per_cu\":100}}",
                d.name
            );
            killi_serve::parse_job_spec(payload.as_bytes()).map_err(|e| ArgError::Io {
                message: format!("{}: not submittable as a service job: {e}", d.name),
            })?;
        }
        println!(
            "build check: all {} registered schemes build from their defaults \
             and validate as service job payloads",
            registry.descriptors().len()
        );
    }
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), ArgError> {
    let workload: Workload = args.flag_enum("workload", "xsbench")?;
    let ratio: usize = args.get_num("ratio", 64)?;
    let scheme = parse_scheme(&args.get_or("scheme", "killi"), ratio)?;
    let vdd = args.flag_f64("vdd", 0.625)?;
    let ops: usize = args.get_num("ops", 100_000)?;
    let seed = args.flag_u64("seed", 42)?;

    let mut config = MatrixConfig::paper(ops, seed);
    config.vdd = NormVdd(vdd);
    config.fault_model = parse_fault_model(&args.get_or("fault-model", "stuck-at"))?;
    let results = run_matrix(&[workload], &[scheme], &config);
    let base = baseline_of(&results, workload.name());
    let r = results
        .iter()
        .find(|r| r.scheme != "baseline")
        .expect("scheme result");
    println!(
        "{} / {} at {vdd} x VDD ({} ops/CU, seed {seed}):",
        r.workload, r.scheme, ops
    );
    println!(
        "  cycles            {:>12}  ({:.4}x the fault-free baseline)",
        r.stats.cycles,
        r.stats.normalized_time(&base.stats)
    );
    println!("  L2 MPKI           {:>12.2}", r.stats.mpki());
    println!("  error misses      {:>12}", r.stats.l2_error_misses);
    println!("  corrections       {:>12}", r.stats.corrections);
    println!("  disabled lines    {:>12}", r.disabled_lines);
    println!("  silent corruption {:>12}", r.stats.sdc_events);
    Ok(())
}

fn cmd_record(args: &Args) -> Result<(), ArgError> {
    let workload: Workload = args.flag_enum("workload", "fft")?;
    let ops: usize = args.get_num("ops", 100_000)?;
    let seed = args.flag_u64("seed", 42)?;
    let out = args.require("out", "record")?;
    let trace = workload.trace(&TraceParams::paper(ops, seed));
    let mut file = std::io::BufWriter::new(std::fs::File::create(&out)?);
    killi_sim::tracefile::save(trace, &mut file)?;
    use std::io::Write as _;
    file.flush()?;
    let bytes = std::fs::metadata(&out)?.len();
    println!(
        "recorded {} ({} ops/CU x 8 CUs, seed {seed}) to {out} ({bytes} bytes)",
        workload.name(),
        ops
    );
    Ok(())
}

fn cmd_replay(args: &Args) -> Result<(), ArgError> {
    let input = args.require("in", "replay")?;
    let ratio: usize = args.get_num("ratio", 64)?;
    let scheme = parse_scheme(&args.get_or("scheme", "killi"), ratio)?;
    let vdd = args.flag_f64("vdd", 0.625)?;
    let seed = args.flag_u64("seed", 42)?;

    let mut file = std::io::BufReader::new(std::fs::File::open(&input)?);
    let trace = killi_sim::tracefile::load(&mut file)?;
    let config = GpuConfig {
        cus: trace.cus(),
        ..GpuConfig::default()
    };
    let fault_model = parse_fault_model(&args.get_or("fault-model", "stuck-at"))?;
    let model = build_fault_model(&fault_model).map_err(|e| io_msg(e.to_string()))?;
    let map = Arc::new(model.map(config.l2.lines(), NormVdd(vdd), FreqGhz::PEAK, seed));
    let ctx = BuildCtx::new(Arc::clone(&map), config.l2);
    let protection = build_scheme(&scheme, &ctx).map_err(|e| ArgError::Io {
        message: e.to_string(),
    })?;
    let label = scheme_label(&scheme).map_err(|e| ArgError::Io {
        message: e.to_string(),
    })?;
    let mut sim = GpuSim::new(config, map, protection, seed);
    let stats = sim.run(trace);
    println!("replayed {input} under {label} at {vdd} x VDD:");
    println!("  cycles       {:>12}", stats.cycles);
    println!("  L2 MPKI      {:>12.2}", stats.mpki());
    println!("  error misses {:>12}", stats.l2_error_misses);
    println!("  corrections  {:>12}", stats.corrections);
    println!("  SDC events   {:>12}", stats.sdc_events);
    Ok(())
}

fn cmd_profile(args: &Args) -> Result<(), ArgError> {
    use killi_workloads::analysis::TraceProfile;
    let input = args.get_or("in", "");
    let profile = if input.is_empty() {
        let workload: Workload = args.flag_enum("workload", "fft")?;
        let ops: usize = args.get_num("ops", 100_000)?;
        let seed = args.flag_u64("seed", 42)?;
        println!("profile of generated {} ({} ops/CU):", workload.name(), ops);
        TraceProfile::of(workload.trace(&TraceParams::paper(ops, seed)))
    } else {
        let mut file = std::io::BufReader::new(std::fs::File::open(&input)?);
        println!("profile of {input}:");
        TraceProfile::of(killi_sim::tracefile::load(&mut file)?)
    };
    println!("  CUs                 {:>12}", profile.cus);
    println!("  operations          {:>12}", profile.ops);
    println!("  instructions        {:>12}", profile.instructions);
    println!(
        "  loads / stores      {:>6} / {}",
        profile.loads, profile.stores
    );
    println!(
        "  footprint           {:>9.2} MiB ({} lines)",
        profile.footprint_bytes as f64 / 1024.0 / 1024.0,
        profile.footprint_lines
    );
    println!("  mean reuse          {:>12.2}", profile.mean_reuse);
    println!(
        "  write share         {:>11.1}%",
        profile.write_share * 100.0
    );
    println!("  compute per access  {:>12.2}", profile.compute_per_access);
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), ArgError> {
    let replications: usize = args.get_num("replications", 8)?;
    let ratio: usize = args.get_num("ratio", 64)?;
    let ops: usize = args.get_num("ops", 10_000)?;
    let seed = args.flag_u64("seed", 42)?;
    let threads: usize = args
        .get_num(
            "threads",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        )?
        .max(1);
    let l2_kb: usize = args.get_num("l2kb", 512)?;
    let out = args.get_or("out", "results/BENCH_sweep.json");
    let trace_out = args.get_or("trace", "");
    let vdds = args.flag_f64_list("vdds", "0.65,0.625,0.6")?;
    let workloads = args.flag_list("workloads", "xsbench,hacc", |s| {
        s.parse::<Workload>()
            .map_err(|e| ArgError::invalid("workloads", s, e.to_string()))
    })?;
    // --scheme-file (declarative JSON) takes precedence over --schemes.
    let scheme_file = args.get_or("scheme-file", "");
    let schemes = if scheme_file.is_empty() {
        args.flag_list("schemes", "killi", |s| parse_scheme(s, ratio))?
    } else {
        let text = std::fs::read_to_string(&scheme_file).map_err(|e| ArgError::Io {
            message: format!("{scheme_file}: {e}"),
        })?;
        SchemeConfig::list_from_json(&text).map_err(|e| ArgError::Io {
            message: format!("{scheme_file}: {e}"),
        })?
    };

    let gpu = GpuConfig {
        l2: killi_sim::cache::CacheGeometry {
            size_bytes: l2_kb * 1024,
            ways: 16,
            line_bytes: 64,
        },
        ..GpuConfig::default()
    };
    let config = SweepConfig {
        root_seed: seed,
        replications,
        vdds,
        schemes,
        fault_model: parse_fault_model(&args.get_or("fault-model", "stuck-at"))?,
        workloads,
        ops_per_cu: ops,
        gpu,
        threads,
        progress_every: args.get_num("progress", 10)?,
        trace_capacity: if trace_out.is_empty() {
            None
        } else {
            Some(args.get_num("trace-capacity", 4096)?)
        },
    };
    // Catch unknown names, bad params, and geometry mismatches before the
    // fan-out phase spins up.
    config.validate().map_err(|e| ArgError::Io {
        message: e.to_string(),
    })?;
    eprintln!(
        "sweep: {} simulations ({} replications x {} vdds x {} schemes x {} workloads \
         + baselines) on {} threads",
        config.job_count(),
        config.replications,
        config.vdds.len(),
        config.schemes.len(),
        config.workloads.len(),
        config.threads,
    );
    let report = run_sweep(&config);
    println!(
        "Monte-Carlo sweep (root seed {seed}, {replications} replications, \
         {ops} ops/CU, {l2_kb} KiB L2) — mean over replicates:\n{}",
        report.summary_table().render()
    );
    println!("wall time: {:.1}s on {} threads", report.wall_secs, threads);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(&out, report.to_json())?;
    println!("wrote {out}");
    if let Some(trace) = &report.trace {
        std::fs::write(&trace_out, trace)?;
        println!("wrote {trace_out}");
    }
    Ok(())
}

/// `killi vmin`: fleet-scale minimum-voltage campaign. Bins every die
/// of a seed-derived fleet at its per-scheme Vmin over the voltage
/// grid, optionally streaming the fleet through a `killi-diestore/v1`
/// file, and writes the byte-deterministic `killi-vmin/v1` report.
fn cmd_vmin(args: &Args) -> Result<(), ArgError> {
    if args.has("check") {
        let path = args.require("check", "vmin --check")?;
        let text = std::fs::read_to_string(&path)?;
        killi_vmin::check_report(&text).map_err(|message| ArgError::Io {
            message: format!("{path}: {message}"),
        })?;
        println!("{path}: OK (killi-vmin/v1)");
        return Ok(());
    }
    let dies: usize = args.get_num("dies", 100)?;
    let lines: usize = args.get_num("lines", 4096)?;
    let target = args.flag_f64("target", 0.99)?;
    let seed = args.flag_u64("seed", 42)?;
    let ratio: usize = args.get_num("ratio", 64)?;
    let threads: usize = args
        .get_num(
            "threads",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        )?
        .max(1);
    let default_grid = DEFAULT_GRID
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let vdds = args.flag_f64_list("vdds", &default_grid)?;
    // --scheme-file (declarative JSON) takes precedence over --schemes;
    // the special value `all` bins every registered scheme at defaults.
    let scheme_file = args.get_or("scheme-file", "");
    let schemes = if !scheme_file.is_empty() {
        let text = std::fs::read_to_string(&scheme_file).map_err(|e| ArgError::Io {
            message: format!("{scheme_file}: {e}"),
        })?;
        SchemeConfig::list_from_json(&text).map_err(|e| ArgError::Io {
            message: format!("{scheme_file}: {e}"),
        })?
    } else if args.get_or("schemes", "killi") == "all" {
        default_registry()
            .descriptors()
            .iter()
            .map(|d| SchemeConfig::new(d.name))
            .collect()
    } else {
        args.flag_list("schemes", "killi", |s| parse_scheme(s, ratio))?
    };
    let store = args.get_or("store", "");
    let out = args.get_or("out", "results/VMIN.json");

    let config = VminConfig {
        root_seed: seed,
        dies,
        lines,
        target,
        vdds,
        schemes,
        fault_model: parse_fault_model(&args.get_or("fault-model", "stuck-at"))?,
        threads,
        progress_every: args.get_num("progress", 0)?,
        store: (!store.is_empty()).then(|| std::path::PathBuf::from(&store)),
        search: SearchMode::Auto,
    };
    let validated = config.validated().map_err(|e| ArgError::Io {
        message: e.to_string(),
    })?;
    let c = validated.config();
    eprintln!(
        "vmin: {} dies x {} schemes over {} grid points ({} lines/die, target {:.2}%) \
         on {} threads",
        c.dies,
        c.schemes.len(),
        c.vdds.len(),
        c.lines,
        c.target * 100.0,
        c.threads,
    );
    let result = run_campaign(&validated).map_err(|e| ArgError::Io {
        message: e.to_string(),
    })?;
    let report = &result.report;

    let fmt_vdd = |v: Option<f64>| v.map_or("-".to_string(), |v| format!("{v:.3}"));
    let mut t = Table::new(vec![
        "scheme",
        "p50 vmin",
        "p99 vmin",
        "yield@min vdd",
        "failed",
    ]);
    for bin in &report.schemes {
        let p50 = bin.quantile_idx(0.50).map(|g| report.vdds[g]);
        let p99 = bin.quantile_idx(0.99).map(|g| report.vdds[g]);
        let yield_at_bottom = bin.hist[0] as f64 / report.dies as f64;
        t.row(vec![
            bin.scheme.clone(),
            fmt_vdd(p50),
            fmt_vdd(p99),
            format!("{:.1}%", yield_at_bottom * 100.0),
            bin.failed.to_string(),
        ]);
    }
    println!(
        "Vmin campaign (root seed {seed}, {dies} dies, fault model {}, {} search):\n{}",
        report.fault_model,
        if report.nested {
            "bisection"
        } else {
            "linear-fallback"
        },
        t.render()
    );
    let m = &result.metrics;
    use killi_obs::VminCounter;
    println!(
        "search: {} probes across {} bisections + {} linear scans; store: {} dies read, \
         {} bytes written",
        m.get(VminCounter::VoltageProbes),
        m.get(VminCounter::BinarySearches),
        m.get(VminCounter::LinearScans),
        m.get(VminCounter::StoreDiesRead),
        m.get(VminCounter::StoreBytesWritten),
    );
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(&out, report.to_json())?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_bench(args: &Args) -> Result<(), ArgError> {
    if args.has("check") {
        return check_bench_report(&args.require("check", "bench --check")?);
    }
    let quick = args.has("quick");
    let suite = args.get_or("suite", "perf");
    let default_out = match suite.as_str() {
        "vmin" => "results/BENCH_vmin.json",
        _ => "results/BENCH_perf.json",
    };
    let out = args.get_or("out", default_out);
    let report = match suite.as_str() {
        "perf" => {
            eprintln!(
                "running the {} perf suite (before = unshared reference path, \
                 after = shared-artifact path) ...",
                if quick { "quick" } else { "full" }
            );
            run_perf_suite(quick)
        }
        "vmin" => {
            eprintln!(
                "running the {} vmin campaign suite (before = exhaustive scan, \
                 after = nesting-aware search) ...",
                if quick { "quick" } else { "full" }
            );
            run_vmin_bench(quick)
        }
        other => {
            return Err(ArgError::invalid(
                "suite",
                other,
                "expected 'perf' or 'vmin'".to_string(),
            ))
        }
    };
    println!(
        "{} ({}):\n{}",
        if suite == "vmin" {
            "vmin campaign benchmarks"
        } else {
            "sweep hot-path benchmarks"
        },
        if quick {
            "quick configuration"
        } else {
            "full configuration"
        },
        report.summary_table().render()
    );
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(&out, report.to_json())?;
    println!("wrote {out}");
    Ok(())
}

/// Validates a `killi-bench/v1` report: parses, carries the schema, and
/// has every expected benchmark entry with numeric timings. Accepts
/// both suites — the perf suite's name set and the vmin campaign's
/// (detected by the presence of a `vmin_campaign` entry).
fn check_bench_report(path: &str) -> Result<(), ArgError> {
    let bad = |message: String| ArgError::Io {
        message: format!("{path}: {message}"),
    };
    let text = std::fs::read_to_string(path)?;
    let root = parse_json(&text).map_err(|e| bad(e.to_string()))?;
    let schema = root.get("schema").and_then(|v| v.as_str()).unwrap_or("");
    if schema != "killi-bench/v1" {
        return Err(bad(format!(
            "schema '{schema}' is not killi-bench/v1 (re-run killi bench)"
        )));
    }
    let benchmarks = root
        .get("benchmarks")
        .and_then(|v| v.as_array())
        .ok_or_else(|| bad("report has no benchmarks array".to_string()))?;
    let is_vmin = benchmarks
        .iter()
        .any(|b| b.get("name").and_then(|v| v.as_str()) == Some(VMIN_BENCHMARK_NAMES[0]));
    let expected: &[&str] = if is_vmin {
        &VMIN_BENCHMARK_NAMES
    } else {
        &BENCHMARK_NAMES
    };
    for &name in expected {
        let entry = benchmarks
            .iter()
            .find(|b| b.get("name").and_then(|v| v.as_str()) == Some(name))
            .ok_or_else(|| bad(format!("missing benchmark '{name}'")))?;
        for field in ["before_ns", "after_ns"] {
            if entry.get(field).and_then(|v| v.as_u64()).is_none() {
                return Err(bad(format!("'{name}' has no numeric '{field}'")));
            }
        }
        if entry.get("speedup").and_then(|v| v.as_f64()).is_none() {
            return Err(bad(format!("'{name}' has no numeric 'speedup'")));
        }
    }
    println!("{path}: OK ({} benchmark(s))", benchmarks.len());
    Ok(())
}

/// DFH state names in hardware-encoding order, for `killi stats` output.
const DFH_NAMES: [&str; 4] = ["stable0", "unknown", "stable1", "disabled"];

fn cmd_stats(args: &Args) -> Result<(), ArgError> {
    let input = args.require("in", "stats")?;
    let text = std::fs::read_to_string(&input)?;
    let root = parse_json(&text).map_err(|e| ArgError::Io {
        message: format!("{input}: {e}"),
    })?;
    // Accept both a single report and the json_array wrapper.
    let reports: Vec<&JsonValue> = match root.as_array() {
        Some(items) => items.iter().collect(),
        None => vec![&root],
    };

    // Per-scheme aggregation across every cell of every report.
    let mut order: Vec<String> = Vec::new();
    let mut totals: std::collections::HashMap<String, [u64; 4]> = std::collections::HashMap::new();
    let mut matrices: std::collections::HashMap<String, [[u64; 4]; 4]> =
        std::collections::HashMap::new();
    for report in &reports {
        let schema = report.get("schema").and_then(|v| v.as_str()).unwrap_or("");
        if schema != "killi-sweep/v2" {
            return Err(ArgError::Io {
                message: format!(
                    "{input}: schema '{schema}' is not killi-sweep/v2 (re-run the sweep \
                     with this version to get the per-cell obs block)"
                ),
            });
        }
        let cells = report
            .get("cells")
            .and_then(|v| v.as_array())
            .ok_or_else(|| ArgError::Io {
                message: format!("{input}: report has no cells array"),
            })?;
        for cell in cells {
            let scheme = cell
                .get("scheme")
                .and_then(|v| v.as_str())
                .unwrap_or("?")
                .to_string();
            let obs = match cell.get("obs") {
                Some(o) => o,
                None => continue,
            };
            let counter = |name: &str| {
                obs.get("counters")
                    .and_then(|c| c.get(name))
                    .and_then(|v| v.as_u64())
                    .unwrap_or(0)
            };
            if !totals.contains_key(&scheme) {
                order.push(scheme.clone());
            }
            let t = totals.entry(scheme.clone()).or_default();
            t[0] += counter("dfh_transitions");
            t[1] += counter("error_induced_misses");
            t[2] += counter("ecc_induced_misses");
            t[3] += counter("corrections");
            if let Some(rows) = obs.get("dfh_transitions").and_then(|v| v.as_array()) {
                let m = matrices.entry(scheme).or_default();
                for (i, row) in rows.iter().take(4).enumerate() {
                    if let Some(cols) = row.as_array() {
                        for (j, v) in cols.iter().take(4).enumerate() {
                            m[i][j] += v.as_u64().unwrap_or(0);
                        }
                    }
                }
            }
        }
    }

    println!(
        "observability digest of {input} ({} report(s)):",
        reports.len()
    );
    let mut t = Table::new(vec![
        "scheme",
        "dfh transitions",
        "error misses",
        "ecc-induced misses",
        "corrections",
    ]);
    for scheme in &order {
        let v = totals[scheme];
        t.row(vec![
            scheme.clone(),
            v[0].to_string(),
            v[1].to_string(),
            v[2].to_string(),
            v[3].to_string(),
        ]);
    }
    println!("{}", t.render());

    let mut any = false;
    for scheme in &order {
        let Some(m) = matrices.get(scheme) else {
            continue;
        };
        let nonzero: Vec<String> = (0..4)
            .flat_map(|i| (0..4).map(move |j| (i, j)))
            .filter(|&(i, j)| m[i][j] > 0)
            .map(|(i, j)| format!("{} -> {}: {}", DFH_NAMES[i], DFH_NAMES[j], m[i][j]))
            .collect();
        if !nonzero.is_empty() {
            any = true;
            println!("{scheme} DFH transitions:");
            for line in nonzero {
                println!("  {line}");
            }
        }
    }
    if !any {
        println!("(no DFH transitions recorded — schemes without DFH bits, or idle runs)");
    }
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), ArgError> {
    if args.has("check") {
        return check_trace(&args.require("check", "trace --check")?);
    }
    let workload: Workload = args.flag_enum("workload", "fft")?;
    let ratio: usize = args.get_num("ratio", 64)?;
    let scheme = parse_scheme(&args.get_or("scheme", "killi"), ratio)?;
    let vdd = args.flag_f64("vdd", 0.625)?;
    let ops: usize = args.get_num("ops", 20_000)?;
    let seed = args.flag_u64("seed", 42)?;
    let capacity: usize = args.get_num("capacity", 4096)?;
    let out = args.get_or("out", "");

    let gpu = GpuConfig::default();
    let fault_model = parse_fault_model(&args.get_or("fault-model", "stuck-at"))?;
    let map = if scheme.is_baseline() {
        Arc::new(FaultMap::fault_free(gpu.l2.lines()))
    } else {
        let model = build_fault_model(&fault_model).map_err(|e| io_msg(e.to_string()))?;
        Arc::new(model.map(gpu.l2.lines(), NormVdd(vdd), FreqGhz::PEAK, seed))
    };
    let mut context = vec![("vdd", format!("{vdd}"))];
    // Mirror the sweep's gating: the default model stays silent so traces
    // keep their pre-registry bytes; any other model stamps its label.
    let fm_label = fault_model_label(&fault_model).map_err(|e| io_msg(e.to_string()))?;
    if fm_label != STUCK_AT {
        context.push(("fault_model", fm_label));
    }
    let obs = ObsConfig {
        trace_capacity: Some(capacity),
        context,
    };
    let r = run_cell(workload, &scheme, &gpu, ops, &map, seed, &obs);
    let trace = r.trace.expect("tracing was requested");
    if out.is_empty() {
        print!("{trace}");
    } else {
        std::fs::write(&out, &trace)?;
        eprintln!(
            "traced {}/{} at {vdd} x VDD: {} line(s) to {out}",
            r.workload,
            r.scheme,
            trace.lines().count()
        );
    }
    Ok(())
}

/// Validates a `killi-obs/v1` JSON-lines trace: every line parses, the
/// header carries the schema, and events carry `seq`/`type`.
fn check_trace(path: &str) -> Result<(), ArgError> {
    let text = std::fs::read_to_string(path)?;
    let bad = |line_no: usize, message: String| ArgError::Io {
        message: format!("{path}:{line_no}: {message}"),
    };
    let mut headers = 0usize;
    let mut events = 0usize;
    let mut expect_header = true;
    for (i, line) in text.lines().enumerate() {
        let v = parse_json(line).map_err(|e| bad(i + 1, e.to_string()))?;
        if expect_header || v.get("schema").is_some() {
            let schema = v.get("schema").and_then(|s| s.as_str()).unwrap_or("");
            if schema != "killi-obs/v1" {
                return Err(bad(i + 1, format!("bad or missing schema '{schema}'")));
            }
            headers += 1;
            expect_header = false;
            continue;
        }
        if v.get("seq").and_then(|s| s.as_u64()).is_none() {
            return Err(bad(i + 1, "event line without a numeric 'seq'".into()));
        }
        if v.get("type").and_then(|s| s.as_str()).is_none() {
            return Err(bad(i + 1, "event line without a 'type'".into()));
        }
        events += 1;
    }
    if headers == 0 {
        return Err(ArgError::Io {
            message: format!("{path}: empty trace (no killi-obs/v1 header)"),
        });
    }
    println!("{path}: OK ({headers} header(s), {events} event(s))");
    Ok(())
}

/// Default service address shared by `serve` (bind port) and the client
/// subcommands (base URL).
const DEFAULT_PORT: u16 = 7171;

fn io_msg(message: impl Into<String>) -> ArgError {
    ArgError::Io {
        message: message.into(),
    }
}

/// `killi serve`: the sweep engine as an HTTP daemon. The first stdout
/// line is `listening on http://HOST:PORT` (machine-scrapable — CI uses
/// it to recover an ephemeral `--port 0`); SIGTERM/ctrl-c drains.
fn cmd_serve(args: &Args) -> Result<(), ArgError> {
    let config = ServerConfig {
        host: args.get_or("host", "127.0.0.1"),
        port: args.get_num("port", DEFAULT_PORT)?,
        workers: args.get_num::<usize>("workers", 2)?.max(1),
        queue_depth: args.get_num::<usize>("queue-depth", 32)?.max(1),
        cache_cap: args.get_num::<usize>("cache-cap", 64)?.max(1),
        ..ServerConfig::default()
    };
    killi_serve::signal::install();
    let workers = config.workers;
    let server = Server::bind(config)?;
    println!("listening on http://{}", server.local_addr());
    // The port announcement must reach a piped stdout before the accept
    // loop starts, or CI would poll a file that never fills.
    use std::io::Write as _;
    std::io::stdout().flush()?;
    eprintln!(
        "{workers} worker(s); POST /v1/jobs, GET /v1/jobs/ID[/report], \
         /v1/metrics, /v1/healthz; SIGTERM or ctrl-c drains and exits"
    );
    server.run()?;
    eprintln!("drained; all queued jobs finished");
    Ok(())
}

/// Shared `--url` handling for the client subcommands.
fn service_client(args: &Args) -> Result<Client, ArgError> {
    let url = args.get_or("url", &format!("http://127.0.0.1:{DEFAULT_PORT}"));
    Client::new(&url).map_err(io_msg)
}

/// Polls `GET /v1/jobs/:id` until the job settles; returns the final
/// state name (`done` or `failed`).
fn wait_for_job(client: &Client, job: &str) -> Result<String, ArgError> {
    loop {
        let resp = client.get(&format!("/v1/jobs/{job}")).map_err(io_msg)?;
        if resp.status != 200 {
            return Err(io_msg(format!(
                "status poll failed: HTTP {} {}",
                resp.status,
                resp.text()
            )));
        }
        let root = parse_json(&resp.text()).map_err(|e| io_msg(e.to_string()))?;
        let state = root
            .get("state")
            .and_then(|v| v.as_str())
            .unwrap_or("?")
            .to_string();
        if state == "done" || state == "failed" {
            return Ok(state);
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
}

/// `killi submit`: POST a job spec, print awk-friendly `job:`/`cache:`/
/// `state:` lines; `--wait` blocks until the job settles and fails the
/// process when the job failed.
fn cmd_submit(args: &Args) -> Result<(), ArgError> {
    let client = service_client(args)?;
    let file = args.get_or("file", "");
    let payload = if file.is_empty() || file == "-" {
        use std::io::Read as _;
        let mut buf = Vec::new();
        std::io::stdin().read_to_end(&mut buf)?;
        buf
    } else {
        std::fs::read(&file)?
    };
    let resp = client.post("/v1/jobs", &payload).map_err(io_msg)?;
    if resp.status != 200 && resp.status != 202 {
        return Err(io_msg(format!(
            "submit rejected: HTTP {} {}",
            resp.status,
            resp.text()
        )));
    }
    let root = parse_json(&resp.text()).map_err(|e| io_msg(e.to_string()))?;
    let job = root
        .get("job")
        .and_then(|v| v.as_str())
        .ok_or_else(|| io_msg("submit response has no job id"))?
        .to_string();
    let cached = root
        .get("cached")
        .and_then(|v| v.as_bool())
        .unwrap_or(false);
    let mut state = root
        .get("state")
        .and_then(|v| v.as_str())
        .unwrap_or("?")
        .to_string();
    println!("job: {job}");
    println!("cache: {}", if cached { "hit" } else { "miss" });
    if args.has("wait") {
        state = wait_for_job(&client, &job)?;
    }
    println!("state: {state}");
    if state == "failed" {
        return Err(io_msg(format!("job {job} failed")));
    }
    Ok(())
}

/// `killi status`: one status poll, printed as `job:`/`state:` lines.
fn cmd_status(args: &Args) -> Result<(), ArgError> {
    let client = service_client(args)?;
    let job = args.require("job", "status")?;
    let resp = client.get(&format!("/v1/jobs/{job}")).map_err(io_msg)?;
    if resp.status != 200 {
        return Err(io_msg(format!("HTTP {} {}", resp.status, resp.text())));
    }
    let root = parse_json(&resp.text()).map_err(|e| io_msg(e.to_string()))?;
    println!("job: {job}");
    println!(
        "state: {}",
        root.get("state").and_then(|v| v.as_str()).unwrap_or("?")
    );
    if let Some(error) = root.get("error").and_then(|v| v.as_str()) {
        println!("error: {error}");
    }
    Ok(())
}

/// `killi fetch`: download a finished job's `killi-sweep/v2` report
/// bytes exactly as the server stored them (stdout unless `--out`).
fn cmd_fetch(args: &Args) -> Result<(), ArgError> {
    let client = service_client(args)?;
    let job = args.require("job", "fetch")?;
    if args.has("wait") {
        let state = wait_for_job(&client, &job)?;
        if state == "failed" {
            return Err(io_msg(format!("job {job} failed")));
        }
    }
    let resp = client
        .get(&format!("/v1/jobs/{job}/report"))
        .map_err(io_msg)?;
    if resp.status != 200 {
        return Err(io_msg(format!(
            "fetch failed: HTTP {} {}",
            resp.status,
            resp.text()
        )));
    }
    let out = args.get_or("out", "");
    if out.is_empty() {
        use std::io::Write as _;
        std::io::stdout().write_all(&resp.body)?;
    } else {
        if let Some(dir) = std::path::Path::new(&out).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(&out, &resp.body)?;
        eprintln!("wrote {out} ({} bytes)", resp.body.len());
    }
    Ok(())
}

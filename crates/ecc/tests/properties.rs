//! Property-based tests for the error-coding substrate.

use killi_ecc::bch::{dected, DectedDecode};
use killi_ecc::bits::{Line512, LINE_BITS};
use killi_ecc::olsc::{OlscDecode, OlscLine};
use killi_ecc::parity::{seg16, seg4, SegObservation};
use killi_ecc::secded::{secded, SecdedDecode};
use proptest::prelude::*;

fn arb_line() -> impl Strategy<Value = Line512> {
    any::<u64>().prop_map(Line512::from_seed)
}

proptest! {
    #[test]
    fn secded_corrects_any_single_bit(seed in any::<u64>(), bit in 0usize..LINE_BITS) {
        let data = Line512::from_seed(seed);
        let code = secded().encode(&data);
        let mut corrupted = data;
        corrupted.flip_bit(bit);
        let d = secded().decode(&corrupted, code);
        prop_assert_eq!(d, SecdedDecode::CorrectedData { bit });
        let mut fixed = corrupted;
        prop_assert!(secded().apply(&mut fixed, d));
        prop_assert_eq!(fixed, data);
    }

    #[test]
    fn secded_detects_any_double_bit(
        seed in any::<u64>(),
        a in 0usize..LINE_BITS,
        b in 0usize..LINE_BITS,
    ) {
        prop_assume!(a != b);
        let data = Line512::from_seed(seed);
        let code = secded().encode(&data);
        let mut corrupted = data;
        corrupted.flip_bit(a);
        corrupted.flip_bit(b);
        prop_assert_eq!(
            secded().decode(&corrupted, code),
            SecdedDecode::DetectedDouble
        );
    }

    #[test]
    fn dected_corrects_any_double_bit(
        seed in any::<u64>(),
        a in 0usize..LINE_BITS,
        b in 0usize..LINE_BITS,
    ) {
        prop_assume!(a != b);
        let data = Line512::from_seed(seed);
        let code = dected().encode(&data);
        let mut corrupted = data;
        corrupted.flip_bit(a);
        corrupted.flip_bit(b);
        let d = dected().decode(&corrupted, code);
        let mut fixed = corrupted;
        prop_assert!(dected().apply(&mut fixed, d), "{:?}", d);
        prop_assert_eq!(fixed, data);
    }

    #[test]
    fn dected_never_reports_triple_as_clean(
        seed in any::<u64>(),
        mut bits in proptest::collection::btree_set(0usize..LINE_BITS, 3),
    ) {
        let data = Line512::from_seed(seed);
        let code = dected().encode(&data);
        let mut corrupted = data;
        for &b in bits.iter() {
            corrupted.flip_bit(b);
        }
        bits.clear();
        prop_assert_ne!(dected().decode(&corrupted, code), DectedDecode::Clean);
    }

    #[test]
    fn seg16_flags_every_single_flip(seed in any::<u64>(), bit in 0usize..LINE_BITS) {
        let data = Line512::from_seed(seed);
        let stored = seg16(&data);
        let mut corrupted = data;
        corrupted.flip_bit(bit);
        prop_assert_eq!(
            SegObservation::observe16(stored, seg16(&corrupted)),
            SegObservation::OneSegment((bit % 16) as u8)
        );
    }

    #[test]
    fn seg4_flags_every_single_flip(seed in any::<u64>(), bit in 0usize..LINE_BITS) {
        let data = Line512::from_seed(seed);
        let stored = seg4(&data);
        let mut corrupted = data;
        corrupted.flip_bit(bit);
        prop_assert_eq!(
            SegObservation::observe4(stored, seg4(&corrupted)),
            SegObservation::OneSegment((bit % 4) as u8)
        );
    }

    #[test]
    fn parity_mismatch_count_equals_odd_residue_classes(
        seed in any::<u64>(),
        bits in proptest::collection::btree_set(0usize..LINE_BITS, 0..8),
    ) {
        let data = Line512::from_seed(seed);
        let stored = seg16(&data);
        let mut corrupted = data;
        let mut per_class = [0usize; 16];
        for &b in &bits {
            corrupted.flip_bit(b);
            per_class[b % 16] += 1;
        }
        let odd_classes = per_class.iter().filter(|&&n| n % 2 == 1).count();
        let diff = (stored ^ seg16(&corrupted)).count_ones() as usize;
        prop_assert_eq!(diff, odd_classes);
    }

    #[test]
    fn olsc_corrects_up_to_t_spread_errors(
        seed in any::<u64>(),
        blocks in proptest::collection::vec(0usize..64, 1..8),
    ) {
        // At most t=2 errors per 64-bit block: pick distinct blocks, flip
        // up to two bits in each.
        let codec = OlscLine::new(8, 2);
        let data = Line512::from_seed(seed);
        let check = codec.encode(&data);
        let mut corrupted = data;
        for (i, &off) in blocks.iter().enumerate().take(8) {
            let block = i % 8;
            corrupted.flip_bit(block * 64 + off);
        }
        let mut fixed = corrupted;
        let d = codec.decode(&mut fixed, &check);
        prop_assert!(!matches!(d, OlscDecode::Detected), "{:?}", d);
        prop_assert_eq!(fixed, data);
    }

    #[test]
    fn line_xor_roundtrip(a in arb_line(), b in arb_line()) {
        prop_assert_eq!((a ^ b) ^ b, a);
    }

    #[test]
    fn inversion_preserves_segment_parity_of_even_segments(l in arb_line()) {
        // Every interleaved segment has an even bit count, so inversion
        // never changes segment parity — the §5.6.2 analysis relies on it.
        prop_assert_eq!(seg16(&l), seg16(&l.inverted()));
        prop_assert_eq!(seg4(&l), seg4(&l.inverted()));
    }
}

mod bch_t_props {
    use super::*;
    use killi_ecc::bch_t::{bch_t, BchDecode};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn bch_corrects_any_pattern_up_to_t(
            seed in any::<u64>(),
            t in 2usize..=6,
            bits in proptest::collection::btree_set(0usize..LINE_BITS, 1..6),
        ) {
            prop_assume!(bits.len() <= t);
            let codec = bch_t(t);
            let data = Line512::from_seed(seed);
            let code = codec.encode(&data);
            let mut corrupted = data;
            for &b in &bits {
                corrupted.flip_bit(b);
            }
            let d = codec.decode(&corrupted, code);
            let mut fixed = corrupted;
            prop_assert!(codec.apply(&mut fixed, &d), "{:?}", d);
            prop_assert_eq!(fixed, data);
        }

        #[test]
        fn bch_never_reports_t_plus_one_clean(
            seed in any::<u64>(),
            t in 2usize..=4,
            extra in 0usize..LINE_BITS,
        ) {
            let codec = bch_t(t);
            let data = Line512::from_seed(seed);
            let code = codec.encode(&data);
            let mut corrupted = data;
            let mut flipped = std::collections::BTreeSet::new();
            let mut k = 0usize;
            while flipped.len() < t + 1 {
                let b = (extra + k * 89) % LINE_BITS;
                k += 1;
                if flipped.insert(b) {
                    corrupted.flip_bit(b);
                }
            }
            prop_assert_ne!(codec.decode(&corrupted, code), BchDecode::Clean);
        }
    }
}

//! Property-based tests for the error-coding substrate (killi-check
//! harness).

use killi_check::{check, check_cases, Gen};
use killi_ecc::bch::{dected, DectedDecode};
use killi_ecc::bits::{Line512, LINE_BITS};
use killi_ecc::olsc::{OlscDecode, OlscLine};
use killi_ecc::parity::{seg16, seg4, SegObservation};
use killi_ecc::secded::{secded, SecdedDecode};

fn gen_line(g: &mut Gen) -> Line512 {
    Line512::from_seed(g.u64())
}

#[test]
fn secded_corrects_any_single_bit() {
    check("secded_corrects_any_single_bit", |g| {
        let data = gen_line(g);
        let bit = g.usize_in(0, LINE_BITS);
        let code = secded().encode(&data);
        let mut corrupted = data;
        corrupted.flip_bit(bit);
        let d = secded().decode(&corrupted, code);
        assert_eq!(d, SecdedDecode::CorrectedData { bit });
        let mut fixed = corrupted;
        assert!(secded().apply(&mut fixed, d));
        assert_eq!(fixed, data);
    });
}

#[test]
fn secded_detects_any_double_bit() {
    check("secded_detects_any_double_bit", |g| {
        let data = gen_line(g);
        let bits: Vec<usize> = g.distinct(LINE_BITS, 2, 2).into_iter().collect();
        let code = secded().encode(&data);
        let mut corrupted = data;
        corrupted.flip_bit(bits[0]);
        corrupted.flip_bit(bits[1]);
        assert_eq!(
            secded().decode(&corrupted, code),
            SecdedDecode::DetectedDouble
        );
    });
}

#[test]
fn dected_corrects_any_double_bit() {
    check("dected_corrects_any_double_bit", |g| {
        let data = gen_line(g);
        let bits: Vec<usize> = g.distinct(LINE_BITS, 2, 2).into_iter().collect();
        let code = dected().encode(&data);
        let mut corrupted = data;
        corrupted.flip_bit(bits[0]);
        corrupted.flip_bit(bits[1]);
        let d = dected().decode(&corrupted, code);
        let mut fixed = corrupted;
        assert!(dected().apply(&mut fixed, d), "{d:?}");
        assert_eq!(fixed, data);
    });
}

#[test]
fn dected_never_reports_triple_as_clean() {
    check("dected_never_reports_triple_as_clean", |g| {
        let data = gen_line(g);
        let bits = g.distinct(LINE_BITS, 3, 3);
        let code = dected().encode(&data);
        let mut corrupted = data;
        for &b in &bits {
            corrupted.flip_bit(b);
        }
        assert_ne!(dected().decode(&corrupted, code), DectedDecode::Clean);
    });
}

#[test]
fn seg16_flags_every_single_flip() {
    check("seg16_flags_every_single_flip", |g| {
        let data = gen_line(g);
        let bit = g.usize_in(0, LINE_BITS);
        let stored = seg16(&data);
        let mut corrupted = data;
        corrupted.flip_bit(bit);
        assert_eq!(
            SegObservation::observe16(stored, seg16(&corrupted)),
            SegObservation::OneSegment((bit % 16) as u8)
        );
    });
}

#[test]
fn seg4_flags_every_single_flip() {
    check("seg4_flags_every_single_flip", |g| {
        let data = gen_line(g);
        let bit = g.usize_in(0, LINE_BITS);
        let stored = seg4(&data);
        let mut corrupted = data;
        corrupted.flip_bit(bit);
        assert_eq!(
            SegObservation::observe4(stored, seg4(&corrupted)),
            SegObservation::OneSegment((bit % 4) as u8)
        );
    });
}

#[test]
fn parity_mismatch_count_equals_odd_residue_classes() {
    check("parity_mismatch_count_equals_odd_residue_classes", |g| {
        let data = gen_line(g);
        let bits = g.distinct(LINE_BITS, 0, 7);
        let stored = seg16(&data);
        let mut corrupted = data;
        let mut per_class = [0usize; 16];
        for &b in &bits {
            corrupted.flip_bit(b);
            per_class[b % 16] += 1;
        }
        let odd_classes = per_class.iter().filter(|&&n| n % 2 == 1).count();
        let diff = (stored ^ seg16(&corrupted)).count_ones() as usize;
        assert_eq!(diff, odd_classes);
    });
}

#[test]
fn olsc_corrects_up_to_t_spread_errors() {
    check("olsc_corrects_up_to_t_spread_errors", |g| {
        // At most t=2 errors per 64-bit block: distinct blocks, one flip
        // in each.
        let codec = OlscLine::new(8, 2);
        let data = gen_line(g);
        let offsets = g.vec(1, 7, |g| g.usize_in(0, 64));
        let check = codec.encode(&data);
        let mut corrupted = data;
        for (i, &off) in offsets.iter().enumerate().take(8) {
            let block = i % 8;
            corrupted.flip_bit(block * 64 + off);
        }
        let mut fixed = corrupted;
        let d = codec.decode(&mut fixed, &check);
        assert!(!matches!(d, OlscDecode::Detected), "{d:?}");
        assert_eq!(fixed, data);
    });
}

#[test]
fn line_xor_roundtrip() {
    check("line_xor_roundtrip", |g| {
        let a = gen_line(g);
        let b = gen_line(g);
        assert_eq!((a ^ b) ^ b, a);
    });
}

#[test]
fn inversion_preserves_segment_parity_of_even_segments() {
    check("inversion_preserves_segment_parity_of_even_segments", |g| {
        // Every interleaved segment has an even bit count, so inversion
        // never changes segment parity — the §5.6.2 analysis relies on it.
        let l = gen_line(g);
        assert_eq!(seg16(&l), seg16(&l.inverted()));
        assert_eq!(seg4(&l), seg4(&l.inverted()));
    });
}

mod bch_t_props {
    use super::*;
    use killi_ecc::bch_t::{bch_t, BchDecode};

    #[test]
    fn bch_corrects_any_pattern_up_to_t() {
        check_cases("bch_corrects_any_pattern_up_to_t", 48, |g| {
            let t = g.usize_in(2, 7);
            let bits = g.distinct(LINE_BITS, 1, t.min(5));
            let codec = bch_t(t);
            let data = gen_line(g);
            let code = codec.encode(&data);
            let mut corrupted = data;
            for &b in &bits {
                corrupted.flip_bit(b);
            }
            let d = codec.decode(&corrupted, code);
            let mut fixed = corrupted;
            assert!(codec.apply(&mut fixed, &d), "{d:?}");
            assert_eq!(fixed, data);
        });
    }

    #[test]
    fn bch_never_reports_t_plus_one_clean() {
        check_cases("bch_never_reports_t_plus_one_clean", 48, |g| {
            let t = g.usize_in(2, 5);
            let extra = g.usize_in(0, LINE_BITS);
            let codec = bch_t(t);
            let data = gen_line(g);
            let code = codec.encode(&data);
            let mut corrupted = data;
            let mut flipped = std::collections::BTreeSet::new();
            let mut k = 0usize;
            while flipped.len() < t + 1 {
                let b = (extra + k * 89) % LINE_BITS;
                k += 1;
                if flipped.insert(b) {
                    corrupted.flip_bit(b);
                }
            }
            assert_ne!(codec.decode(&corrupted, code), BchDecode::Clean);
        });
    }
}

//! Generic `t`-error-correcting BCH codes over GF(2^10) with
//! Berlekamp-Massey decoding.
//!
//! The fixed-strength [`crate::bch`] module implements the paper's DEC-TED
//! code with a hand-rolled quadratic solver; this module generalizes to any
//! `t <= 7`, providing *functional* versions of every code the paper
//! tabulates: DECTED (t = 2, 21 bits), TECQED (t = 3, 31 bits) and 6EC7ED
//! (t = 6, 61 bits), each as `10 t` BCH checkbits plus one overall-parity
//! bit that upgrades detection to `t + 1` errors.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use crate::bits::{Line512, LINE_BITS};
use crate::gf1024::{minimal_polynomial, Gf10};

/// Maximum supported correction strength (7 x 10 + 1 checkbits still fit
/// the 72-bit budget of a [`BchCodeword`]).
pub const MAX_T: usize = 7;

/// The stored checkbits of a [`BchT`] codeword: `10 t` BCH remainder bits
/// in the low bits, the overall-parity bit just above them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BchCodeword(pub u128);

impl BchCodeword {
    /// Flips stored checkbit `i` (a faulty checkbit cell).
    pub fn flip_bit(&mut self, i: usize) {
        self.0 ^= 1 << i;
    }
}

/// Decode verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BchDecode {
    /// No error detected.
    Clean,
    /// Up to `t` errors corrected at the listed *data* bit indices
    /// (checkbit-cell corrections are absorbed silently).
    Corrected {
        /// Data bits that were flipped back.
        bits: Vec<usize>,
    },
    /// More than `t` errors detected; not correctable.
    Detected,
}

impl BchDecode {
    /// True when the data cannot be recovered.
    pub fn is_uncorrectable(&self) -> bool {
        matches!(self, BchDecode::Detected)
    }
}

/// A `t`-error-correcting, `(t+1)`-error-detecting BCH codec for 512-bit
/// lines.
#[derive(Debug)]
pub struct BchT {
    t: usize,
    /// Generator polynomial degree (= number of BCH checkbits).
    deg: usize,
    /// Generator polynomial (bit i = coefficient of x^i), degree <= 70.
    generator: u128,
    /// Per-byte syndrome tables for the odd syndromes S_1, S_3, ... :
    /// `tables[j][byte_idx][byte]`.
    tables: Vec<Vec<[u16; 256]>>,
}

impl BchT {
    /// Builds the codec for strength `t`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= t <= 7`.
    pub fn new(t: usize) -> Self {
        assert!((1..=MAX_T).contains(&t), "t = {t} out of range");
        // g(x) = lcm of the minimal polynomials of alpha^(2i-1), i = 1..=t.
        // Conjugacy classes can coincide for larger roots; deduplicate.
        let mut polys: Vec<u32> = Vec::new();
        for i in 0..t {
            let m = minimal_polynomial(2 * i + 1);
            if !polys.contains(&m) {
                polys.push(m);
            }
        }
        let mut generator: u128 = 1;
        for m in polys {
            let m = u128::from(m);
            let mut next: u128 = 0;
            for b in 0..=31 {
                if (m >> b) & 1 == 1 {
                    next ^= generator << b;
                }
            }
            generator = next;
        }
        let deg = 127 - generator.leading_zeros() as usize;

        let code_len = LINE_BITS + deg;
        let nbytes = code_len.div_ceil(8);
        let mut tables = Vec::with_capacity(t);
        for i in 0..t {
            let power = 2 * i + 1;
            let mut per_byte = vec![[0u16; 256]; nbytes];
            for (byte_idx, table) in per_byte.iter_mut().enumerate() {
                for byte in 0u16..256 {
                    let mut acc = Gf10::ZERO;
                    for bit in 0..8 {
                        if (byte >> bit) & 1 == 1 {
                            let degree = byte_idx * 8 + bit;
                            if degree < code_len {
                                acc = acc.add(Gf10::alpha_pow(power * degree));
                            }
                        }
                    }
                    table[byte as usize] = acc.0;
                }
            }
            tables.push(per_byte);
        }
        BchT {
            t,
            deg,
            generator,
            tables,
        }
    }

    /// Correction strength.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Stored checkbits: `deg` BCH bits + 1 overall parity.
    pub fn check_bits(&self) -> usize {
        self.deg + 1
    }

    /// Codeword length in polynomial positions.
    fn code_len(&self) -> usize {
        LINE_BITS + self.deg
    }

    /// Encodes `data`, returning the checkbits.
    pub fn encode(&self, data: &Line512) -> BchCodeword {
        // LFSR division of d(x) * x^deg by g(x).
        let mask = (1u128 << self.deg) - 1;
        let glow = self.generator & mask;
        let mut reg: u128 = 0;
        for i in (0..LINE_BITS).rev() {
            let fb = ((reg >> (self.deg - 1)) & 1) ^ u128::from(data.bit(i));
            reg = (reg << 1) & mask;
            if fb == 1 {
                reg ^= glow;
            }
        }
        let ones = reg.count_ones() % 2 == 1;
        let mut code = reg;
        if data.parity() ^ ones {
            code |= 1 << self.deg;
        }
        BchCodeword(code)
    }

    /// Packs the received codeword into bytes (checkbits at degrees
    /// `0..deg`, data at `deg..deg+512`).
    fn pack(&self, data: &Line512, stored: BchCodeword) -> Vec<u8> {
        let mut buf = vec![0u8; self.code_len().div_ceil(8) + 8];
        let check = stored.0 & ((1u128 << self.deg) - 1);
        for (b, byte) in buf.iter_mut().enumerate().take(self.deg.div_ceil(8)) {
            *byte = ((check >> (8 * b)) & 0xFF) as u8;
        }
        for (w_idx, w) in data.words().iter().enumerate() {
            for b in 0..8 {
                let byte = ((w >> (8 * b)) & 0xFF) as u8;
                let bit_base = w_idx * 64 + b * 8 + self.deg;
                buf[bit_base / 8] |= byte << (bit_base % 8);
                if !bit_base.is_multiple_of(8) {
                    buf[bit_base / 8 + 1] |= byte >> (8 - bit_base % 8);
                }
            }
        }
        buf.truncate(self.code_len().div_ceil(8));
        buf
    }

    /// Computes all `2t` syndromes (even ones from squaring) and the
    /// overall-parity mismatch.
    fn syndromes(&self, data: &Line512, stored: BchCodeword) -> (Vec<Gf10>, bool) {
        let buf = self.pack(data, stored);
        let mut odd = vec![Gf10::ZERO; self.t];
        let mut ones = 0u32;
        for (i, &byte) in buf.iter().enumerate() {
            if byte != 0 {
                ones += byte.count_ones();
                for (j, table) in self.tables.iter().enumerate() {
                    odd[j] = odd[j].add(Gf10(table[i][byte as usize]));
                }
            }
        }
        // S_{2k} = S_k^2 (binary BCH). Fill S_1..S_2t.
        let mut s = vec![Gf10::ZERO; 2 * self.t + 1]; // 1-indexed
        for (j, &v) in odd.iter().enumerate() {
            s[2 * j + 1] = v;
        }
        let mut k = 2;
        while k <= 2 * self.t {
            s[k] = s[k / 2].mul(s[k / 2]);
            k += 2;
        }
        let stored_overall = (stored.0 >> self.deg) & 1 == 1;
        let mismatch = (ones % 2 == 1) != stored_overall;
        (s, mismatch)
    }

    /// Berlekamp-Massey: returns the error-locator polynomial
    /// (coefficients `sigma[0..=L]`, `sigma[0] = 1`) or `None` when the
    /// syndrome sequence is inconsistent with `<= t` errors.
    fn berlekamp_massey(&self, s: &[Gf10]) -> Option<Vec<Gf10>> {
        let n = 2 * self.t;
        let mut sigma = vec![Gf10::ONE];
        let mut b = vec![Gf10::ONE];
        let mut l = 0usize;
        let mut m = 1usize;
        let mut bb = Gf10::ONE;
        for r in 0..n {
            // Discrepancy (syndromes are 1-indexed; s[0] is unused).
            let mut d = s[r + 1];
            for i in 1..=l.min(sigma.len() - 1).min(r) {
                d = d.add(sigma[i].mul(s[r + 1 - i]));
            }
            if d.is_zero() {
                m += 1;
            } else if 2 * l <= r {
                let t_poly = sigma.clone();
                let coef = d.mul(bb.inv());
                let shift = m;
                if sigma.len() < b.len() + shift {
                    sigma.resize(b.len() + shift, Gf10::ZERO);
                }
                for (i, &bc) in b.iter().enumerate() {
                    sigma[i + shift] = sigma[i + shift].add(coef.mul(bc));
                }
                l = r + 1 - l;
                b = t_poly;
                bb = d;
                m = 1;
            } else {
                let coef = d.mul(bb.inv());
                let shift = m;
                if sigma.len() < b.len() + shift {
                    sigma.resize(b.len() + shift, Gf10::ZERO);
                }
                for (i, &bc) in b.iter().enumerate() {
                    sigma[i + shift] = sigma[i + shift].add(coef.mul(bc));
                }
                m += 1;
            }
        }
        sigma.truncate(l + 1);
        (l <= self.t).then_some(sigma)
    }

    /// Decodes a received (data, checkbits) pair.
    pub fn decode(&self, data: &Line512, stored: BchCodeword) -> BchDecode {
        let (s, parity_mismatch) = self.syndromes(data, stored);
        let all_zero = s[1..].iter().all(|x| x.is_zero());
        if all_zero {
            return if parity_mismatch {
                // Only the overall-parity cell flipped.
                BchDecode::Corrected { bits: Vec::new() }
            } else {
                BchDecode::Clean
            };
        }
        let Some(sigma) = self.berlekamp_massey(&s) else {
            return BchDecode::Detected;
        };
        let errors = sigma.len() - 1;
        // Parity consistency: the error count's parity must match the
        // overall-parity observation, otherwise >= t+1 errors aliased.
        if (errors % 2 == 1) != parity_mismatch {
            return BchDecode::Detected;
        }
        // Chien search over the codeword positions.
        let mut found = Vec::with_capacity(errors);
        for degree in 0..self.code_len() {
            let x_inv = Gf10::alpha_pow(degree);
            // sigma(X^-1) with X = alpha^degree: evaluate at alpha^degree
            // treating roots as inverse locators. For binary BCH the roots
            // of sigma are the *inverses* of the error locators, so test
            // sigma(alpha^{-degree}) = 0, i.e. evaluate at alpha^(1023-degree).
            let point = Gf10::alpha_pow(1023 - (degree % 1023));
            let mut acc = Gf10::ZERO;
            let mut pw = Gf10::ONE;
            for &c in &sigma {
                acc = acc.add(c.mul(pw));
                pw = pw.mul(point);
            }
            let _ = x_inv;
            if acc.is_zero() {
                found.push(degree);
                if found.len() > errors {
                    return BchDecode::Detected;
                }
            }
        }
        if found.len() != errors {
            return BchDecode::Detected;
        }
        let bits = found
            .into_iter()
            .filter(|&d| d >= self.deg)
            .map(|d| d - self.deg)
            .collect();
        BchDecode::Corrected { bits }
    }

    /// Applies a correction verdict to `data`; returns true when the data
    /// is (believed) clean afterwards.
    pub fn apply(&self, data: &mut Line512, decode: &BchDecode) -> bool {
        match decode {
            BchDecode::Clean => true,
            BchDecode::Corrected { bits } => {
                for &bit in bits {
                    data.flip_bit(bit);
                }
                true
            }
            BchDecode::Detected => false,
        }
    }
}

/// Returns a process-wide shared codec for strength `t` (built lazily).
///
/// # Panics
///
/// Panics unless `1 <= t <= 7`.
pub fn bch_t(t: usize) -> &'static BchT {
    static CACHE: OnceLock<Mutex<HashMap<usize, &'static BchT>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = cache.lock().expect("bch cache poisoned");
    guard
        .entry(t)
        .or_insert_with(|| Box::leak(Box::new(BchT::new(t))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bch::dected;

    #[test]
    fn checkbit_counts_match_the_paper() {
        assert_eq!(BchT::new(2).check_bits(), 21, "DECTED");
        assert_eq!(BchT::new(3).check_bits(), 31, "TECQED");
        assert_eq!(BchT::new(6).check_bits(), 61, "6EC7ED");
    }

    #[test]
    fn clean_roundtrip_all_strengths() {
        for t in 1..=7 {
            let codec = BchT::new(t);
            let data = Line512::from_seed(t as u64);
            let code = codec.encode(&data);
            assert_eq!(codec.decode(&data, code), BchDecode::Clean, "t = {t}");
        }
    }

    #[test]
    fn corrects_exactly_t_errors() {
        for t in [2usize, 3, 6] {
            let codec = bch_t(t);
            let data = Line512::from_seed(100 + t as u64);
            let code = codec.encode(&data);
            for trial in 0..10u64 {
                let mut corrupted = data;
                let mut bits = Vec::new();
                let mut k = 0u64;
                while bits.len() < t {
                    let b = ((trial * 7919 + k * 104729 + 13) % LINE_BITS as u64) as usize;
                    k += 1;
                    if !bits.contains(&b) {
                        bits.push(b);
                        corrupted.flip_bit(b);
                    }
                }
                let d = codec.decode(&corrupted, code);
                let mut fixed = corrupted;
                assert!(codec.apply(&mut fixed, &d), "t={t} trial={trial}: {d:?}");
                assert_eq!(fixed, data, "t={t} trial={trial}");
            }
        }
    }

    #[test]
    fn detects_t_plus_one_errors() {
        for t in [2usize, 3, 6] {
            let codec = bch_t(t);
            let data = Line512::from_seed(200 + t as u64);
            let code = codec.encode(&data);
            let mut detected = 0;
            let total = 20;
            for trial in 0..total as u64 {
                let mut corrupted = data;
                let mut bits = Vec::new();
                let mut k = 0u64;
                while bits.len() < t + 1 {
                    let b = ((trial * 6151 + k * 31607 + 7) % LINE_BITS as u64) as usize;
                    k += 1;
                    if !bits.contains(&b) {
                        bits.push(b);
                        corrupted.flip_bit(b);
                    }
                }
                match codec.decode(&corrupted, code) {
                    BchDecode::Clean => panic!("t={t}: t+1 errors decoded clean"),
                    BchDecode::Detected => detected += 1,
                    BchDecode::Corrected { .. } => {} // rare aliasing
                }
            }
            assert!(detected >= total - 1, "t={t}: {detected}/{total}");
        }
    }

    #[test]
    fn corrects_checkbit_cell_errors() {
        let codec = bch_t(3);
        let data = Line512::from_seed(300);
        let code = codec.encode(&data);
        for cb in 0..codec.check_bits() {
            let mut bad = code;
            bad.flip_bit(cb);
            let d = codec.decode(&data, bad);
            let mut fixed = data;
            assert!(codec.apply(&mut fixed, &d), "checkbit {cb}: {d:?}");
            assert_eq!(fixed, data, "checkbit {cb}");
        }
    }

    #[test]
    fn t2_agrees_with_the_dedicated_dected_codec() {
        let generic = bch_t(2);
        let fixed = dected();
        let data = Line512::from_seed(400);
        let gcode = generic.encode(&data);
        let fcode = fixed.encode(&data);
        for bits in [vec![5usize], vec![9, 200], vec![1, 2], vec![511, 0]] {
            let mut corrupted = data;
            for &b in &bits {
                corrupted.flip_bit(b);
            }
            let mut via_generic = corrupted;
            let dg = generic.decode(&corrupted, gcode);
            assert!(generic.apply(&mut via_generic, &dg), "{bits:?}");
            let mut via_fixed = corrupted;
            let df = fixed.decode(&corrupted, fcode);
            assert!(fixed.apply(&mut via_fixed, df), "{bits:?}");
            assert_eq!(via_generic, via_fixed);
            assert_eq!(via_generic, data);
        }
    }

    #[test]
    fn mixed_data_and_checkbit_errors() {
        let codec = bch_t(3);
        let data = Line512::from_seed(500);
        let code = codec.encode(&data);
        let mut corrupted = data;
        corrupted.flip_bit(42);
        corrupted.flip_bit(300);
        let mut bad = code;
        bad.flip_bit(5);
        let d = codec.decode(&corrupted, bad);
        let mut fixed = corrupted;
        assert!(codec.apply(&mut fixed, &d), "{d:?}");
        assert_eq!(fixed, data);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn strength_bounds_checked() {
        BchT::new(8);
    }
}

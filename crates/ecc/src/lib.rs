//! Error-coding substrate for the Killi reproduction.
//!
//! This crate provides the bit-accurate error detection and correction codes
//! the paper builds on:
//!
//! - [`bits::Line512`] — the 512-bit cache-line payload type,
//! - [`parity`] — segmented interleaved parity (16-segment training mode and
//!   4-segment stable mode, §4.1),
//! - [`secded`] — SECDED(523, 512) extended Hamming code (11 checkbits),
//! - [`bch`] — DEC-TED shortened BCH over GF(2^10) (21 checkbits, §5.2),
//! - [`bch_t`] — generic t-error-correcting BCH with Berlekamp-Massey
//!   decoding (functional TECQED and 6EC7ED, Table 4),
//! - [`olsc`] — Orthogonal Latin Square codes with majority-logic decoding
//!   (MS-ECC and the low-Vmin Killi variant, §5.5),
//! - [`gf1024`] — the GF(2^10) field arithmetic behind the BCH code.
//!
//! All codecs operate on *received* (possibly corrupted) data and checkbits,
//! and expose both the raw syndrome observables (which Killi's Table 2 state
//! machine branches on) and interpreted correct/detect verdicts.
//!
//! # Example
//!
//! ```
//! use killi_ecc::bits::Line512;
//! use killi_ecc::secded::{secded, SecdedDecode};
//!
//! let data = Line512::from_seed(1);
//! let check = secded().encode(&data);
//!
//! let mut received = data;
//! received.flip_bit(42); // a low-voltage bit failure
//!
//! match secded().decode(&received, check) {
//!     SecdedDecode::CorrectedData { bit } => assert_eq!(bit, 42),
//!     other => panic!("unexpected: {other:?}"),
//! }
//! ```

pub mod bch;
pub mod bch_t;
pub mod bits;
pub mod gf1024;
pub mod olsc;
pub mod parity;
pub mod secded;

pub use bits::Line512;

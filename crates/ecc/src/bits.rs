//! Fixed-width bit-vector type for 512-bit (64-byte) cache lines.
//!
//! Every protection scheme in this repository operates on whole cache lines,
//! so the line payload gets a dedicated type instead of `[u64; 8]` flying
//! around ([C-NEWTYPE]). Bit index 0 is the least-significant bit of word 0.

use std::fmt;
use std::ops::{BitOr, BitOrAssign, BitXor, BitXorAssign};

/// Number of data bits in a cache line.
pub const LINE_BITS: usize = 512;
/// Number of 64-bit words backing a [`Line512`].
pub const LINE_WORDS: usize = LINE_BITS / 64;
/// Number of bytes in a cache line.
pub const LINE_BYTES: usize = LINE_BITS / 8;

/// A 512-bit cache-line payload.
///
/// # Examples
///
/// ```
/// use killi_ecc::bits::Line512;
///
/// let mut line = Line512::zero();
/// line.set_bit(100, true);
/// assert!(line.bit(100));
/// assert_eq!(line.count_ones(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Line512(pub [u64; LINE_WORDS]);

impl Line512 {
    /// The all-zero line.
    #[inline]
    pub const fn zero() -> Self {
        Line512([0; LINE_WORDS])
    }

    /// Creates a line from its backing words (word 0 holds bits 0..64).
    #[inline]
    pub const fn from_words(words: [u64; LINE_WORDS]) -> Self {
        Line512(words)
    }

    /// Deterministic pseudo-random line derived from `seed` via SplitMix64.
    ///
    /// Used by the simulator to give every memory address reproducible
    /// content without storing backing memory.
    pub fn from_seed(seed: u64) -> Self {
        let mut words = [0u64; LINE_WORDS];
        let mut s = seed;
        for w in &mut words {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *w = z ^ (z >> 31);
        }
        Line512(words)
    }

    /// Returns the backing words.
    #[inline]
    pub const fn words(&self) -> &[u64; LINE_WORDS] {
        &self.0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 512`.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < LINE_BITS, "bit index {i} out of range");
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 512`.
    #[inline]
    pub fn set_bit(&mut self, i: usize, v: bool) {
        assert!(i < LINE_BITS, "bit index {i} out of range");
        let mask = 1u64 << (i % 64);
        if v {
            self.0[i / 64] |= mask;
        } else {
            self.0[i / 64] &= !mask;
        }
    }

    /// Inverts bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 512`.
    #[inline]
    pub fn flip_bit(&mut self, i: usize) {
        assert!(i < LINE_BITS, "bit index {i} out of range");
        self.0[i / 64] ^= 1u64 << (i % 64);
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> u32 {
        self.0.iter().map(|w| w.count_ones()).sum()
    }

    /// Parity (XOR) of all 512 bits.
    #[inline]
    pub fn parity(&self) -> bool {
        let folded = self.0.iter().fold(0u64, |a, w| a ^ w);
        folded.count_ones() % 2 == 1
    }

    /// Parity of the bits selected by `mask`.
    #[inline]
    pub fn masked_parity(&self, mask: &Line512) -> bool {
        let mut folded = 0u64;
        for (w, m) in self.0.iter().zip(mask.0.iter()) {
            folded ^= w & m;
        }
        folded.count_ones() % 2 == 1
    }

    /// Returns the line with every bit inverted.
    #[inline]
    pub fn inverted(&self) -> Self {
        let mut out = *self;
        for w in &mut out.0 {
            *w = !*w;
        }
        out
    }

    /// Iterates over the indices of set bits in ascending order.
    ///
    /// ```
    /// use killi_ecc::bits::Line512;
    /// let mut l = Line512::zero();
    /// l.set_bit(3, true);
    /// l.set_bit(511, true);
    /// assert_eq!(l.iter_ones().collect::<Vec<_>>(), vec![3, 511]);
    /// ```
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            line: self,
            word: 0,
            bits: self.0[0],
        }
    }
}

/// Iterator over set-bit indices of a [`Line512`], produced by
/// [`Line512::iter_ones`].
#[derive(Debug, Clone)]
pub struct IterOnes<'a> {
    line: &'a Line512,
    word: usize,
    bits: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.bits == 0 {
            self.word += 1;
            if self.word >= LINE_WORDS {
                return None;
            }
            self.bits = self.line.0[self.word];
        }
        let tz = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some(self.word * 64 + tz)
    }
}

impl BitOr for Line512 {
    type Output = Line512;

    fn bitor(mut self, rhs: Line512) -> Line512 {
        self |= rhs;
        self
    }
}

impl BitOrAssign for Line512 {
    fn bitor_assign(&mut self, rhs: Line512) {
        for (a, b) in self.0.iter_mut().zip(rhs.0.iter()) {
            *a |= b;
        }
    }
}

impl BitXor for Line512 {
    type Output = Line512;

    fn bitxor(mut self, rhs: Line512) -> Line512 {
        self ^= rhs;
        self
    }
}

impl BitXorAssign for Line512 {
    fn bitxor_assign(&mut self, rhs: Line512) {
        for (a, b) in self.0.iter_mut().zip(rhs.0.iter()) {
            *a ^= b;
        }
    }
}

impl fmt::Debug for Line512 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Line512[")?;
        for (i, w) in self.0.iter().enumerate().rev() {
            if i != LINE_WORDS - 1 {
                write!(f, "_")?;
            }
            write!(f, "{w:016x}")?;
        }
        write!(f, "]")
    }
}

impl fmt::LowerHex for Line512 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for w in self.0.iter().rev() {
            write!(f, "{w:016x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_line_has_no_ones() {
        let l = Line512::zero();
        assert_eq!(l.count_ones(), 0);
        assert!(!l.parity());
        assert_eq!(l.iter_ones().count(), 0);
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut l = Line512::zero();
        for i in [0usize, 1, 63, 64, 100, 255, 256, 511] {
            assert!(!l.bit(i));
            l.set_bit(i, true);
            assert!(l.bit(i));
        }
        assert_eq!(l.count_ones(), 8);
        l.set_bit(100, false);
        assert!(!l.bit(100));
        assert_eq!(l.count_ones(), 7);
    }

    #[test]
    fn flip_toggles() {
        let mut l = Line512::zero();
        l.flip_bit(200);
        assert!(l.bit(200));
        l.flip_bit(200);
        assert!(!l.bit(200));
    }

    #[test]
    fn parity_counts_mod_two() {
        let mut l = Line512::zero();
        assert!(!l.parity());
        l.set_bit(7, true);
        assert!(l.parity());
        l.set_bit(300, true);
        assert!(!l.parity());
    }

    #[test]
    fn masked_parity_selects_bits() {
        let mut l = Line512::zero();
        l.set_bit(10, true);
        l.set_bit(20, true);
        let mut mask = Line512::zero();
        mask.set_bit(10, true);
        assert!(l.masked_parity(&mask));
        mask.set_bit(20, true);
        assert!(!l.masked_parity(&mask));
    }

    #[test]
    fn from_seed_is_deterministic_and_varied() {
        let a = Line512::from_seed(42);
        let b = Line512::from_seed(42);
        let c = Line512::from_seed(43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // A pseudo-random line should be roughly half ones.
        let ones = a.count_ones();
        assert!((100..400).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn xor_is_self_inverse() {
        let a = Line512::from_seed(1);
        let b = Line512::from_seed(2);
        assert_eq!((a ^ b) ^ b, a);
    }

    #[test]
    fn or_unions_bits() {
        let mut a = Line512::zero();
        a.set_bit(3, true);
        let mut b = Line512::zero();
        b.set_bit(3, true);
        b.set_bit(400, true);
        let u = a | b;
        assert!(u.bit(3) && u.bit(400));
        assert_eq!(u.count_ones(), 2);
    }

    #[test]
    fn inverted_flips_every_bit() {
        let a = Line512::from_seed(9);
        let inv = a.inverted();
        assert_eq!(a.count_ones() + inv.count_ones(), LINE_BITS as u32);
        assert_eq!(a ^ inv, Line512::from_words([u64::MAX; LINE_WORDS]));
    }

    #[test]
    fn iter_ones_matches_bits() {
        let a = Line512::from_seed(77);
        let from_iter: Vec<usize> = a.iter_ones().collect();
        let from_scan: Vec<usize> = (0..LINE_BITS).filter(|&i| a.bit(i)).collect();
        assert_eq!(from_iter, from_scan);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        Line512::zero().bit(512);
    }
}

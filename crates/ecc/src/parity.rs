//! Segmented, interleaved parity for cache lines (§4.1 of the paper).
//!
//! A 512-bit line is logically divided into 16 interleaved segments of 32
//! bits; segment `s` contains every bit whose index is congruent to `s`
//! modulo 16. Interleaving improves coverage for spatially-adjacent multi-bit
//! soft errors: a burst of up to 16 adjacent flipped bits lands in 16
//! *distinct* segments and is therefore always detected.
//!
//! After a line is classified as stable, Killi keeps only 4 parity bits,
//! again interleaved (bit `i` in segment `i mod 4`), each protecting a
//! 128-bit-wide segment.

use crate::bits::{Line512, LINE_BITS};

/// Number of interleaved segments in training mode.
pub const SEGMENTS_16: usize = 16;
/// Number of contiguous segments in stable mode.
pub const SEGMENTS_4: usize = 4;

/// Computes the 16 interleaved segment parities of a line.
///
/// Bit `s` of the result is the parity of all line bits `i` with
/// `i % 16 == s`.
///
/// # Examples
///
/// ```
/// use killi_ecc::bits::Line512;
/// use killi_ecc::parity::seg16;
///
/// let mut l = Line512::zero();
/// l.set_bit(21, true); // 21 % 16 == 5
/// assert_eq!(seg16(&l), 1 << 5);
/// ```
#[inline]
pub fn seg16(line: &Line512) -> u16 {
    // XOR-fold the eight words into one, then fold 64 -> 16. Bit j of the
    // result is the parity of all bits congruent to j mod 16, because both
    // folds preserve residue classes mod 16 (64 and 16 divide the shifts).
    let w = line.words().iter().fold(0u64, |a, w| a ^ w);
    let w = w ^ (w >> 32);
    let w = w ^ (w >> 16);
    (w & 0xFFFF) as u16
}

/// Computes the 4 interleaved stable-mode segment parities of a line.
///
/// Bit `q` of the result is the parity of all line bits `i` with
/// `i % 4 == q` (a 128-bit-wide segment). Interleaving keeps the
/// stable-mode parity able to detect adjacent multi-bit soft-error bursts,
/// just like the 16-segment training parity.
#[inline]
pub fn seg4(line: &Line512) -> u8 {
    let w = line.words().iter().fold(0u64, |a, w| a ^ w);
    let w = w ^ (w >> 32);
    let w = w ^ (w >> 16);
    let w = w ^ (w >> 8);
    let w = w ^ (w >> 4);
    (w & 0xF) as u8
}

/// Returns the mask of line bits belonging to interleaved segment `s`.
///
/// # Panics
///
/// Panics if `s >= 16`.
pub fn seg16_mask(s: usize) -> Line512 {
    assert!(s < SEGMENTS_16, "segment {s} out of range");
    let mut m = Line512::zero();
    let mut i = s;
    while i < LINE_BITS {
        m.set_bit(i, true);
        i += SEGMENTS_16;
    }
    m
}

/// Returns the mask of line bits belonging to interleaved stable-mode
/// segment `q`.
///
/// # Panics
///
/// Panics if `q >= 4`.
pub fn seg4_mask(q: usize) -> Line512 {
    assert!(q < SEGMENTS_4, "segment {q} out of range");
    let mut m = Line512::zero();
    let mut i = q;
    while i < LINE_BITS {
        m.set_bit(i, true);
        i += SEGMENTS_4;
    }
    m
}

/// Outcome of comparing stored segment parities against parities recomputed
/// from (possibly corrupted) array content.
///
/// The paper's Table 2 distinguishes a match (✓), a mismatch in exactly one
/// segment (×) and a mismatch in two or more segments (××).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegObservation {
    /// All segment parities match.
    Match,
    /// Exactly one segment mismatches (at the contained segment index).
    OneSegment(u8),
    /// Two or more segments mismatch (count contained).
    MultiSegment(u8),
}

impl SegObservation {
    /// Classifies a stored-vs-recomputed parity pair of `n`-bit vectors.
    fn from_diff(diff: u16) -> Self {
        match diff.count_ones() {
            0 => SegObservation::Match,
            1 => SegObservation::OneSegment(diff.trailing_zeros() as u8),
            n => SegObservation::MultiSegment(n as u8),
        }
    }

    /// Compares a stored 16-bit segment parity with one recomputed from data.
    pub fn observe16(stored: u16, recomputed: u16) -> Self {
        Self::from_diff(stored ^ recomputed)
    }

    /// Compares a stored 4-bit quarter parity with one recomputed from data.
    pub fn observe4(stored: u8, recomputed: u8) -> Self {
        Self::from_diff(u16::from(stored ^ recomputed))
    }

    /// True when at least one segment mismatches.
    pub fn is_mismatch(&self) -> bool {
        !matches!(self, SegObservation::Match)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_line_has_zero_parities() {
        let l = Line512::zero();
        assert_eq!(seg16(&l), 0);
        assert_eq!(seg4(&l), 0);
    }

    #[test]
    fn seg16_tracks_residue_classes() {
        for bit in [0usize, 5, 16, 31, 63, 64, 200, 511] {
            let mut l = Line512::zero();
            l.set_bit(bit, true);
            assert_eq!(seg16(&l), 1 << (bit % 16), "bit {bit}");
        }
    }

    #[test]
    fn seg16_matches_masked_parity_definition() {
        let l = Line512::from_seed(123);
        let p = seg16(&l);
        for s in 0..SEGMENTS_16 {
            let expect = l.masked_parity(&seg16_mask(s));
            assert_eq!((p >> s) & 1 == 1, expect, "segment {s}");
        }
    }

    #[test]
    fn seg4_matches_masked_parity_definition() {
        let l = Line512::from_seed(456);
        let p = seg4(&l);
        for q in 0..SEGMENTS_4 {
            let expect = l.masked_parity(&seg4_mask(q));
            assert_eq!((p >> q) & 1 == 1, expect, "segment {q}");
        }
    }

    #[test]
    fn seg4_detects_adjacent_bursts() {
        // Up to 4 adjacent flipped bits land in 4 distinct interleaved
        // segments — always detected in stable mode.
        let base = Line512::from_seed(77);
        let stored = seg4(&base);
        for burst in 1..=4usize {
            let mut corrupted = base;
            for b in 0..burst {
                corrupted.flip_bit(200 + b);
            }
            let diff = (stored ^ seg4(&corrupted)).count_ones() as usize;
            assert_eq!(diff, burst, "burst {burst}");
        }
    }

    #[test]
    fn single_flip_changes_exactly_one_segment() {
        let base = Line512::from_seed(7);
        let stored = seg16(&base);
        let mut corrupted = base;
        corrupted.flip_bit(37);
        match SegObservation::observe16(stored, seg16(&corrupted)) {
            SegObservation::OneSegment(s) => assert_eq!(s, (37 % 16) as u8),
            other => panic!("expected one-segment mismatch, got {other:?}"),
        }
    }

    #[test]
    fn two_flips_same_segment_are_masked() {
        let base = Line512::from_seed(8);
        let stored = seg16(&base);
        let mut corrupted = base;
        corrupted.flip_bit(5);
        corrupted.flip_bit(5 + 16); // same residue class
        assert_eq!(
            SegObservation::observe16(stored, seg16(&corrupted)),
            SegObservation::Match
        );
    }

    #[test]
    fn adjacent_burst_always_detected_by_interleaving() {
        // Any burst of 2..=16 adjacent flips touches distinct segments, so
        // every flipped bit produces a mismatching segment.
        let base = Line512::from_seed(9);
        let stored = seg16(&base);
        for burst in 2..=16usize {
            let mut corrupted = base;
            for b in 0..burst {
                corrupted.flip_bit(100 + b);
            }
            match SegObservation::observe16(stored, seg16(&corrupted)) {
                SegObservation::MultiSegment(n) => assert_eq!(n as usize, burst),
                SegObservation::OneSegment(_) if burst == 1 => {}
                other => panic!("burst {burst}: got {other:?}"),
            }
        }
    }

    #[test]
    fn observation_classification() {
        assert_eq!(SegObservation::observe16(0b0, 0b0), SegObservation::Match);
        assert_eq!(
            SegObservation::observe16(0b100, 0b0),
            SegObservation::OneSegment(2)
        );
        assert_eq!(
            SegObservation::observe16(0b101, 0b0),
            SegObservation::MultiSegment(2)
        );
        assert!(SegObservation::observe4(0b1, 0b0).is_mismatch());
        assert!(!SegObservation::observe4(0b11, 0b11).is_mismatch());
    }

    #[test]
    fn masks_partition_the_line() {
        let mut total = 0usize;
        for s in 0..SEGMENTS_16 {
            total += seg16_mask(s).count_ones() as usize;
        }
        assert_eq!(total, LINE_BITS);
        let mut total4 = 0usize;
        for q in 0..SEGMENTS_4 {
            total4 += seg4_mask(q).count_ones() as usize;
        }
        assert_eq!(total4, LINE_BITS);
    }
}

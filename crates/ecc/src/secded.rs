//! SECDED ECC: Single-Error-Correction, Double-Error-Detection for a
//! 64-byte cache line.
//!
//! The paper uses 11 checkbits protecting 523 bits (512 data + 11 check):
//! an *extended Hamming* code. We place the 512 data bits and 10 Hamming
//! checkbits at codeword positions `1..=522` (checkbits at the powers of
//! two), and add one overall-parity bit, for 523 bits total.
//!
//! The decoder exposes the raw *(syndrome, global-parity)* observation pair
//! because Killi's DFH state machine (Table 2 of the paper) branches on those
//! observables directly, not just on the final correct/detect verdict.

use std::sync::OnceLock;

use crate::bits::{Line512, LINE_BITS};

/// Number of Hamming checkbits.
pub const HAMMING_BITS: usize = 10;
/// Total checkbits including the overall parity bit.
pub const CHECK_BITS: usize = 11;
/// Highest Hamming codeword position (512 data + 10 check).
pub const MAX_POSITION: usize = LINE_BITS + HAMMING_BITS; // 522

/// The 11 stored checkbits of a SECDED codeword.
///
/// Bits 0..10 are the Hamming checkbits `c_0..c_9`; bit 10 is the overall
/// parity of all 522 Hamming positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SecdedCode(pub u16);

impl SecdedCode {
    /// Flips checkbit `i` (models a fault in a checkbit storage cell).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 11`.
    pub fn flip_bit(&mut self, i: usize) {
        assert!(i < CHECK_BITS, "checkbit index {i} out of range");
        self.0 ^= 1 << i;
    }

    /// Reads checkbit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 11`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < CHECK_BITS, "checkbit index {i} out of range");
        (self.0 >> i) & 1 == 1
    }
}

/// The raw observables the decoder produces before interpretation:
/// the 10-bit syndrome and whether the overall parity mismatched.
///
/// Table 2 of the paper keys its state transitions on exactly this pair
/// (`Syndrome` ✓/× and `G.Parity` ✓/×).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecdedObservation {
    /// XOR of the positions of flipped bits (0 = consistent).
    pub syndrome: u16,
    /// True when the overall parity check failed (odd number of bit errors).
    pub parity_mismatch: bool,
}

impl SecdedObservation {
    /// True when the syndrome is zero.
    pub fn syndrome_zero(&self) -> bool {
        self.syndrome == 0
    }
}

/// Interpreted decode outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecdedDecode {
    /// Zero syndrome and matching parity: no error detected.
    Clean,
    /// Single error located in a data bit; `bit` is the data-bit index that
    /// must be flipped to recover the original line.
    CorrectedData { bit: usize },
    /// Single error located in a checkbit cell; the data is intact.
    CorrectedCheck,
    /// Double (even-count) error detected; not correctable.
    DetectedDouble,
    /// Syndrome points outside the codeword: three or more errors detected.
    DetectedUncorrectable,
}

impl SecdedDecode {
    /// True when the data cannot be recovered from this observation.
    pub fn is_uncorrectable(&self) -> bool {
        matches!(
            self,
            SecdedDecode::DetectedDouble | SecdedDecode::DetectedUncorrectable
        )
    }
}

/// The SECDED(523, 512) codec with precomputed parity-check masks.
#[derive(Debug)]
pub struct Secded {
    /// `masks[i]` selects the data bits covered by Hamming checkbit `c_i`.
    masks: [Line512; HAMMING_BITS],
    /// Hamming position of each data-bit index.
    pos_of_data: [u16; LINE_BITS],
    /// Data-bit index of each Hamming position (`-1` for check positions).
    data_of_pos: [i16; MAX_POSITION + 1],
}

impl Secded {
    /// Builds the codec tables.
    #[allow(clippy::needless_range_loop)] // positions drive two tables at once
    pub fn new() -> Self {
        let mut masks = [Line512::zero(); HAMMING_BITS];
        let mut pos_of_data = [0u16; LINE_BITS];
        let mut data_of_pos = [-1i16; MAX_POSITION + 1];
        let mut d = 0usize;
        for pos in 1..=MAX_POSITION {
            if pos.is_power_of_two() {
                continue; // checkbit position
            }
            pos_of_data[d] = pos as u16;
            data_of_pos[pos] = d as i16;
            for (i, mask) in masks.iter_mut().enumerate() {
                if (pos >> i) & 1 == 1 {
                    mask.set_bit(d, true);
                }
            }
            d += 1;
        }
        assert_eq!(d, LINE_BITS);
        Secded {
            masks,
            pos_of_data,
            data_of_pos,
        }
    }

    /// Encodes `data`, returning the 11 checkbits.
    pub fn encode(&self, data: &Line512) -> SecdedCode {
        let mut code = 0u16;
        let mut hamming_parity = false;
        for (i, mask) in self.masks.iter().enumerate() {
            let c = data.masked_parity(mask);
            if c {
                code |= 1 << i;
                hamming_parity = !hamming_parity;
            }
        }
        let overall = data.parity() ^ hamming_parity;
        if overall {
            code |= 1 << HAMMING_BITS;
        }
        SecdedCode(code)
    }

    /// Computes the raw (syndrome, parity) observation for a received
    /// (data, checkbits) pair, both possibly corrupted.
    pub fn observe(&self, data: &Line512, stored: SecdedCode) -> SecdedObservation {
        let mut syndrome = 0u16;
        let mut recomputed_hamming_parity = false;
        let mut stored_hamming_parity = false;
        for (i, mask) in self.masks.iter().enumerate() {
            let recomputed = data.masked_parity(mask);
            let stored_bit = (stored.0 >> i) & 1 == 1;
            if recomputed != stored_bit {
                syndrome ^= 1 << i;
            }
            if recomputed {
                recomputed_hamming_parity = !recomputed_hamming_parity;
            }
            if stored_bit {
                stored_hamming_parity = !stored_hamming_parity;
            }
        }
        // Note: `syndrome ^= 1 << i` accumulates *which* checkbits disagree;
        // since checkbit i covers positions with bit i set, the XOR of the
        // disagreeing checkbit indices (as a binary number) is the XOR of the
        // positions of all flipped bits.
        let received_overall = (stored.0 >> HAMMING_BITS) & 1 == 1;
        let expected_overall = data.parity() ^ stored_hamming_parity;
        SecdedObservation {
            syndrome,
            parity_mismatch: received_overall != expected_overall,
        }
    }

    /// Interprets an observation into a decode verdict.
    pub fn interpret(&self, obs: SecdedObservation) -> SecdedDecode {
        match (obs.syndrome, obs.parity_mismatch) {
            (0, false) => SecdedDecode::Clean,
            (0, true) => SecdedDecode::CorrectedCheck, // overall-parity cell flipped
            (_, false) => SecdedDecode::DetectedDouble,
            (s, true) => {
                let pos = s as usize;
                if pos.is_power_of_two() && pos <= 512 {
                    SecdedDecode::CorrectedCheck
                } else if pos <= MAX_POSITION && self.data_of_pos[pos] >= 0 {
                    SecdedDecode::CorrectedData {
                        bit: self.data_of_pos[pos] as usize,
                    }
                } else {
                    SecdedDecode::DetectedUncorrectable
                }
            }
        }
    }

    /// One-shot decode: observe and interpret.
    pub fn decode(&self, data: &Line512, stored: SecdedCode) -> SecdedDecode {
        self.interpret(self.observe(data, stored))
    }

    /// Applies a correction verdict to `data`, returning `true` if the data
    /// is now (believed) clean.
    pub fn apply(&self, data: &mut Line512, decode: SecdedDecode) -> bool {
        match decode {
            SecdedDecode::Clean | SecdedDecode::CorrectedCheck => true,
            SecdedDecode::CorrectedData { bit } => {
                data.flip_bit(bit);
                true
            }
            SecdedDecode::DetectedDouble | SecdedDecode::DetectedUncorrectable => false,
        }
    }

    /// Hamming position of a data-bit index (used by fault-injection tests).
    pub fn position_of_data_bit(&self, bit: usize) -> usize {
        self.pos_of_data[bit] as usize
    }
}

impl Default for Secded {
    fn default() -> Self {
        Self::new()
    }
}

/// Returns the process-wide shared codec instance.
///
/// Building the tables costs a few microseconds; every cache model shares
/// one instance.
pub fn secded() -> &'static Secded {
    static INSTANCE: OnceLock<Secded> = OnceLock::new();
    INSTANCE.get_or_init(Secded::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_roundtrip() {
        let codec = secded();
        for seed in 0..32u64 {
            let data = Line512::from_seed(seed);
            let code = codec.encode(&data);
            assert_eq!(codec.decode(&data, code), SecdedDecode::Clean);
        }
    }

    #[test]
    fn corrects_every_single_data_bit_error() {
        let codec = secded();
        let data = Line512::from_seed(11);
        let code = codec.encode(&data);
        for bit in 0..LINE_BITS {
            let mut corrupted = data;
            corrupted.flip_bit(bit);
            match codec.decode(&corrupted, code) {
                SecdedDecode::CorrectedData { bit: b } => {
                    assert_eq!(b, bit);
                    let mut fixed = corrupted;
                    assert!(codec.apply(&mut fixed, SecdedDecode::CorrectedData { bit: b }));
                    assert_eq!(fixed, data);
                }
                other => panic!("bit {bit}: expected correction, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrects_every_single_checkbit_error() {
        let codec = secded();
        let data = Line512::from_seed(12);
        let code = codec.encode(&data);
        for cb in 0..CHECK_BITS {
            let mut corrupted_code = code;
            corrupted_code.flip_bit(cb);
            assert_eq!(
                codec.decode(&data, corrupted_code),
                SecdedDecode::CorrectedCheck,
                "checkbit {cb}"
            );
        }
    }

    #[test]
    fn detects_all_double_data_bit_errors_sampled() {
        let codec = secded();
        let data = Line512::from_seed(13);
        let code = codec.encode(&data);
        for (a, b) in [(0usize, 1usize), (0, 511), (17, 33), (100, 101), (250, 400)] {
            let mut corrupted = data;
            corrupted.flip_bit(a);
            corrupted.flip_bit(b);
            let d = codec.decode(&corrupted, code);
            assert_eq!(d, SecdedDecode::DetectedDouble, "bits {a},{b}");
            assert!(d.is_uncorrectable());
        }
    }

    #[test]
    fn detects_data_plus_checkbit_double_error() {
        let codec = secded();
        let data = Line512::from_seed(14);
        let code = codec.encode(&data);
        let mut corrupted = data;
        corrupted.flip_bit(42);
        let mut corrupted_code = code;
        corrupted_code.flip_bit(3);
        assert_eq!(
            codec.decode(&corrupted, corrupted_code),
            SecdedDecode::DetectedDouble
        );
    }

    #[test]
    fn observation_exposes_syndrome_and_parity() {
        let codec = secded();
        let data = Line512::from_seed(15);
        let code = codec.encode(&data);
        let clean = codec.observe(&data, code);
        assert!(clean.syndrome_zero());
        assert!(!clean.parity_mismatch);

        let mut one = data;
        one.flip_bit(77);
        let obs = codec.observe(&one, code);
        assert!(!obs.syndrome_zero());
        assert!(obs.parity_mismatch);
        assert_eq!(obs.syndrome as usize, codec.position_of_data_bit(77));
    }

    #[test]
    fn triple_error_never_reports_clean() {
        // SECDED may miscorrect 3 errors (alias to a single-error syndrome)
        // but must never report a clean line.
        let codec = secded();
        let data = Line512::from_seed(16);
        let code = codec.encode(&data);
        let mut miscorrects = 0usize;
        for t in 0..200usize {
            let mut corrupted = data;
            let b0 = (t * 7) % LINE_BITS;
            let b1 = (t * 13 + 1) % LINE_BITS;
            let b2 = (t * 29 + 2) % LINE_BITS;
            if b0 == b1 || b1 == b2 || b0 == b2 {
                continue;
            }
            corrupted.flip_bit(b0);
            corrupted.flip_bit(b1);
            corrupted.flip_bit(b2);
            match codec.decode(&corrupted, code) {
                SecdedDecode::Clean => panic!("3-bit error decoded as clean"),
                SecdedDecode::CorrectedData { .. } | SecdedDecode::CorrectedCheck => {
                    miscorrects += 1; // known SECDED aliasing, expected sometimes
                }
                _ => {}
            }
        }
        // Aliasing exists but should not dominate.
        assert!(miscorrects < 190);
    }

    #[test]
    fn default_builds_same_tables() {
        let a = Secded::default();
        let data = Line512::from_seed(20);
        assert_eq!(a.encode(&data), secded().encode(&data));
    }
}

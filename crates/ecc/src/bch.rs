//! DEC-TED ECC: Double-Error-Correction, Triple-Error-Detection via a
//! shortened binary BCH code over GF(2^10) plus an overall parity bit.
//!
//! The paper's §5.2 notes that "DECTED ECC for 64B data requires only 21
//! bits for checkbits": a designed-distance-5 BCH code needs 20 checkbits
//! (two degree-10 minimal polynomials), and the 21st bit is the overall
//! parity that upgrades detection to triple errors.
//!
//! Codeword layout (bit positions are polynomial degrees):
//! - degrees `0..20`: the 20 BCH remainder checkbits,
//! - degrees `20..532`: the 512 data bits (data bit `i` at degree `i + 20`),
//! - one overall-parity cell outside the polynomial.

use std::sync::OnceLock;

use crate::bits::{Line512, LINE_BITS};
use crate::gf1024::{minimal_polynomial, Gf10};

/// Number of BCH remainder checkbits.
pub const BCH_BITS: usize = 20;
/// Total stored checkbits including the overall parity.
pub const CHECK_BITS: usize = 21;
/// Codeword length in polynomial positions (data + BCH checkbits).
pub const CODE_LEN: usize = LINE_BITS + BCH_BITS; // 532

/// The 21 stored checkbits of a DEC-TED codeword.
///
/// Bits `0..20` are the BCH remainder; bit 20 is the overall parity of the
/// 532 codeword bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DectedCode(pub u32);

impl DectedCode {
    /// Flips stored checkbit `i` (models a faulty checkbit cell).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 21`.
    pub fn flip_bit(&mut self, i: usize) {
        assert!(i < CHECK_BITS, "checkbit index {i} out of range");
        self.0 ^= 1 << i;
    }
}

/// Decode verdict of the DEC-TED codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DectedDecode {
    /// No error detected.
    Clean,
    /// Up to two errors corrected; the listed data-bit indices must be
    /// flipped (checkbit-only errors contribute no entries).
    Corrected { bits: [Option<usize>; 2] },
    /// Three or more errors detected; not correctable.
    Detected,
}

impl DectedDecode {
    /// True when the data cannot be recovered.
    pub fn is_uncorrectable(&self) -> bool {
        matches!(self, DectedDecode::Detected)
    }
}

/// The DEC-TED(533, 512) codec.
#[derive(Debug)]
pub struct Dected {
    /// Generator polynomial `m1(x) * m3(x)`, degree 20 (bit i = coeff x^i).
    generator: u64,
    /// Per-byte syndrome tables: `s1_table[byte_idx][byte]` is the XOR of
    /// `alpha^degree` over the set bits, and likewise for `alpha^(3*degree)`.
    s1_table: Vec<[u16; 256]>,
    s3_table: Vec<[u16; 256]>,
}

/// Raw syndrome observation, exposed for schemes that branch on
/// syndrome-zero vs parity like Killi's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DectedObservation {
    /// Syndrome S1 = r(alpha).
    pub s1: Gf10,
    /// Syndrome S3 = r(alpha^3).
    pub s3: Gf10,
    /// True when the overall parity over all 533 cells mismatched.
    pub parity_mismatch: bool,
}

impl DectedObservation {
    /// True when both syndromes are zero.
    pub fn syndrome_zero(&self) -> bool {
        self.s1.is_zero() && self.s3.is_zero()
    }
}

impl Dected {
    /// Builds the codec (generator polynomial and syndrome tables).
    pub fn new() -> Self {
        let m1 = minimal_polynomial(1) as u64;
        let m3 = minimal_polynomial(3) as u64;
        // Carry-less multiply m1 * m3 over GF(2).
        let mut generator = 0u64;
        for i in 0..=10 {
            if (m1 >> i) & 1 == 1 {
                generator ^= m3 << i;
            }
        }
        debug_assert_eq!(64 - generator.leading_zeros() as usize - 1, BCH_BITS);

        let nbytes = CODE_LEN.div_ceil(8);
        let mut s1_table = vec![[0u16; 256]; nbytes];
        let mut s3_table = vec![[0u16; 256]; nbytes];
        for (byte_idx, (t1, t3)) in s1_table.iter_mut().zip(s3_table.iter_mut()).enumerate() {
            for byte in 0u16..256 {
                let mut a1 = Gf10::ZERO;
                let mut a3 = Gf10::ZERO;
                for bit in 0..8 {
                    if (byte >> bit) & 1 == 1 {
                        let degree = byte_idx * 8 + bit;
                        if degree < CODE_LEN {
                            a1 = a1.add(Gf10::alpha_pow(degree));
                            a3 = a3.add(Gf10::alpha_pow(3 * degree));
                        }
                    }
                }
                t1[byte as usize] = a1.0;
                t3[byte as usize] = a3.0;
            }
        }
        Dected {
            generator,
            s1_table,
            s3_table,
        }
    }

    /// Encodes `data`, returning the 21 checkbits.
    pub fn encode(&self, data: &Line512) -> DectedCode {
        // Compute d(x) * x^20 mod g(x) with an LFSR over the data bits,
        // highest degree first.
        let mut reg: u64 = 0;
        for i in (0..LINE_BITS).rev() {
            let fb = ((reg >> (BCH_BITS - 1)) & 1) ^ u64::from(data.bit(i));
            reg = (reg << 1) & ((1 << BCH_BITS) - 1);
            if fb == 1 {
                reg ^= self.generator & ((1 << BCH_BITS) - 1);
            }
        }
        let mut code = reg as u32;
        // Overall parity over all 532 codeword bits.
        let parity = data.parity() ^ ((reg.count_ones() % 2) == 1);
        if parity {
            code |= 1 << BCH_BITS;
        }
        DectedCode(code)
    }

    /// Computes the raw syndromes for a received (data, checkbits) pair.
    pub fn observe(&self, data: &Line512, stored: DectedCode) -> DectedObservation {
        let mut s1 = Gf10::ZERO;
        let mut s3 = Gf10::ZERO;
        // Checkbits occupy degrees 0..20: bytes 0..2 plus low nibble of byte 2.
        let check = stored.0 & ((1 << BCH_BITS) - 1);
        let mut buf = [0u8; CODE_LEN / 8 + 1];
        buf[0] = (check & 0xFF) as u8;
        buf[1] = ((check >> 8) & 0xFF) as u8;
        buf[2] = ((check >> 16) & 0x0F) as u8;
        // Data bit i at degree i + 20: starts mid-byte 2.
        for (w_idx, w) in data.words().iter().enumerate() {
            for b in 0..8 {
                let byte = ((w >> (8 * b)) & 0xFF) as u8;
                let bit_base = w_idx * 64 + b * 8 + BCH_BITS;
                buf[bit_base / 8] |= byte << (bit_base % 8);
                if !bit_base.is_multiple_of(8) && bit_base / 8 + 1 < buf.len() {
                    buf[bit_base / 8 + 1] |= byte >> (8 - bit_base % 8);
                }
            }
        }
        let mut ones = 0u32;
        for (i, &byte) in buf.iter().enumerate() {
            if byte != 0 {
                s1 = s1.add(Gf10(self.s1_table[i][byte as usize]));
                s3 = s3.add(Gf10(self.s3_table[i][byte as usize]));
                ones += byte.count_ones();
            }
        }
        let stored_overall = (stored.0 >> BCH_BITS) & 1 == 1;
        let parity_mismatch = (ones % 2 == 1) != stored_overall;
        DectedObservation {
            s1,
            s3,
            parity_mismatch,
        }
    }

    /// Interprets an observation, running a Chien search when two errors are
    /// hypothesized.
    pub fn interpret(&self, obs: DectedObservation) -> DectedDecode {
        let DectedObservation {
            s1,
            s3,
            parity_mismatch,
        } = obs;
        if parity_mismatch {
            // Odd number of errors: hypothesize exactly one.
            if s1.is_zero() && s3.is_zero() {
                // Only the overall-parity cell flipped; data intact.
                return DectedDecode::Corrected { bits: [None, None] };
            }
            if !s1.is_zero() && s3 == s1.pow(3) {
                let degree = s1.log();
                if degree < CODE_LEN {
                    return DectedDecode::Corrected {
                        bits: [Self::degree_to_data_bit(degree), None],
                    };
                }
            }
            DectedDecode::Detected
        } else {
            // Even number of errors: zero or two.
            if s1.is_zero() && s3.is_zero() {
                return DectedDecode::Clean;
            }
            if s1.is_zero() {
                // Two errors always give s1 != 0 (distinct locators XOR).
                return DectedDecode::Detected;
            }
            // sigma(x) = x^2 + s1*x + (s3 + s1^3)/s1, roots are the locators.
            let prod = s3.add(s1.pow(3)).mul(s1.inv());
            if prod.is_zero() {
                return DectedDecode::Detected;
            }
            let mut found: [Option<usize>; 2] = [None, None];
            let mut count = 0;
            for degree in 0..CODE_LEN {
                let x = Gf10::alpha_pow(degree);
                // x^2 + s1 x + prod == 0 ?
                if x.mul(x).add(s1.mul(x)).add(prod).is_zero() {
                    if count == 2 {
                        return DectedDecode::Detected;
                    }
                    found[count] = Some(degree);
                    count += 1;
                }
            }
            if count == 2 {
                DectedDecode::Corrected {
                    bits: [
                        Self::degree_to_data_bit(found[0].unwrap()),
                        Self::degree_to_data_bit(found[1].unwrap()),
                    ],
                }
            } else {
                DectedDecode::Detected
            }
        }
    }

    /// One-shot decode: observe then interpret.
    pub fn decode(&self, data: &Line512, stored: DectedCode) -> DectedDecode {
        self.interpret(self.observe(data, stored))
    }

    /// Applies a correction verdict to `data`, returning `true` if the data
    /// is now (believed) clean.
    pub fn apply(&self, data: &mut Line512, decode: DectedDecode) -> bool {
        match decode {
            DectedDecode::Clean => true,
            DectedDecode::Corrected { bits } => {
                for bit in bits.into_iter().flatten() {
                    data.flip_bit(bit);
                }
                true
            }
            DectedDecode::Detected => false,
        }
    }

    /// Maps a codeword degree to a data-bit index (`None` for checkbits).
    fn degree_to_data_bit(degree: usize) -> Option<usize> {
        (degree >= BCH_BITS).then(|| degree - BCH_BITS)
    }
}

impl Default for Dected {
    fn default() -> Self {
        Self::new()
    }
}

/// Returns the process-wide shared codec instance.
pub fn dected() -> &'static Dected {
    static INSTANCE: OnceLock<Dected> = OnceLock::new();
    INSTANCE.get_or_init(Dected::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_roundtrip() {
        let codec = dected();
        for seed in 0..16u64 {
            let data = Line512::from_seed(seed);
            let code = codec.encode(&data);
            assert_eq!(codec.decode(&data, code), DectedDecode::Clean);
        }
    }

    #[test]
    fn corrects_every_single_data_bit_error() {
        let codec = dected();
        let data = Line512::from_seed(31);
        let code = codec.encode(&data);
        for bit in 0..LINE_BITS {
            let mut corrupted = data;
            corrupted.flip_bit(bit);
            let d = codec.decode(&corrupted, code);
            let mut fixed = corrupted;
            assert!(codec.apply(&mut fixed, d), "bit {bit}: {d:?}");
            assert_eq!(fixed, data, "bit {bit}");
        }
    }

    #[test]
    fn corrects_every_single_checkbit_error() {
        let codec = dected();
        let data = Line512::from_seed(32);
        let code = codec.encode(&data);
        for cb in 0..CHECK_BITS {
            let mut bad = code;
            bad.flip_bit(cb);
            let d = codec.decode(&data, bad);
            let mut fixed = data;
            assert!(codec.apply(&mut fixed, d), "checkbit {cb}: {d:?}");
            assert_eq!(fixed, data, "checkbit {cb}");
        }
    }

    #[test]
    fn corrects_double_data_bit_errors() {
        let codec = dected();
        let data = Line512::from_seed(33);
        let code = codec.encode(&data);
        for (a, b) in [
            (0usize, 1usize),
            (0, 511),
            (17, 33),
            (100, 101),
            (250, 400),
            (5, 300),
        ] {
            let mut corrupted = data;
            corrupted.flip_bit(a);
            corrupted.flip_bit(b);
            let d = codec.decode(&corrupted, code);
            let mut fixed = corrupted;
            assert!(codec.apply(&mut fixed, d), "bits {a},{b}: {d:?}");
            assert_eq!(fixed, data, "bits {a},{b}");
        }
    }

    #[test]
    fn corrects_data_plus_checkbit_double_error() {
        let codec = dected();
        let data = Line512::from_seed(34);
        let code = codec.encode(&data);
        let mut corrupted = data;
        corrupted.flip_bit(42);
        let mut bad = code;
        bad.flip_bit(3);
        let d = codec.decode(&corrupted, bad);
        let mut fixed = corrupted;
        assert!(codec.apply(&mut fixed, d), "{d:?}");
        assert_eq!(fixed, data);
    }

    #[test]
    fn triple_errors_detected_never_clean() {
        let codec = dected();
        let data = Line512::from_seed(35);
        let code = codec.encode(&data);
        let mut detected = 0usize;
        let mut total = 0usize;
        for t in 0..100usize {
            let b0 = (t * 7) % LINE_BITS;
            let b1 = (t * 13 + 1) % LINE_BITS;
            let b2 = (t * 29 + 2) % LINE_BITS;
            if b0 == b1 || b1 == b2 || b0 == b2 {
                continue;
            }
            total += 1;
            let mut corrupted = data;
            corrupted.flip_bit(b0);
            corrupted.flip_bit(b1);
            corrupted.flip_bit(b2);
            match codec.decode(&corrupted, code) {
                DectedDecode::Clean => panic!("triple error decoded clean ({b0},{b1},{b2})"),
                DectedDecode::Detected => detected += 1,
                DectedDecode::Corrected { .. } => {} // rare aliasing allowed
            }
        }
        // TED should catch the overwhelming majority of triples.
        assert!(detected * 100 >= total * 95, "{detected}/{total}");
    }

    #[test]
    fn overall_parity_cell_flip_is_correctable() {
        let codec = dected();
        let data = Line512::from_seed(36);
        let mut code = codec.encode(&data);
        code.flip_bit(BCH_BITS); // the overall-parity cell
        let d = codec.decode(&data, code);
        assert_eq!(d, DectedDecode::Corrected { bits: [None, None] });
    }

    #[test]
    fn observation_reports_syndromes() {
        let codec = dected();
        let data = Line512::from_seed(37);
        let code = codec.encode(&data);
        let clean = codec.observe(&data, code);
        assert!(clean.syndrome_zero());
        assert!(!clean.parity_mismatch);

        let mut one = data;
        one.flip_bit(9);
        let obs = codec.observe(&one, code);
        assert!(!obs.syndrome_zero());
        assert!(obs.parity_mismatch);
        assert_eq!(obs.s1.log(), 9 + BCH_BITS);
    }
}

//! Orthogonal Latin Square Codes (OLSC) with one-step majority-logic
//! decoding.
//!
//! MS-ECC [Chishti et al., MICRO'09] and the low-Vmin Killi variant (§5.5)
//! protect lines with OLSC because the code strength scales smoothly: for an
//! `m x m` data block (`k = m^2` bits), a `t`-error-correcting OLSC uses
//! `2*t*m` checkbits organized as `2t` *groups* of `m` parity classes each
//! (rows, columns, and `2t - 2` Latin-square diagonals). Any two data cells
//! share at most one class across all groups, so a single pass of majority
//! voting over the `2t` check sums corrects up to `t` errors.

use crate::bits::Line512;

/// Maximum words backing an OLSC data block (`k <= 256` bits).
const DATA_WORDS: usize = 4;

/// A `k = m^2`-bit OLSC data block (bits beyond `k` must stay zero).
pub type OlscBlock = [u64; DATA_WORDS];

/// GF(2^e) multiply for tiny fields (m = 4, 8, 16), used to build the
/// mutually orthogonal Latin squares.
fn gf_mul_small(m: usize, a: usize, b: usize) -> usize {
    let poly = match m {
        4 => 0b111,    // x^2 + x + 1
        8 => 0b1011,   // x^3 + x + 1
        16 => 0b10011, // x^4 + x + 1
        _ => unreachable!(),
    };
    let bits = m.trailing_zeros() as usize;
    let mut acc = 0usize;
    let mut aa = a;
    let mut bb = b;
    while bb != 0 {
        if bb & 1 == 1 {
            acc ^= aa;
        }
        aa <<= 1;
        if aa & m != 0 {
            aa ^= poly;
        }
        bb >>= 1;
    }
    debug_assert!(acc < (1 << bits));
    acc
}

/// Decode verdict of the OLSC codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OlscDecode {
    /// No error detected.
    Clean,
    /// Errors corrected at the listed data-bit indices (checkbit-cell errors
    /// are absorbed silently).
    Corrected { bits: Vec<usize> },
    /// Residual inconsistency after majority voting: more than `t` errors.
    Detected,
}

impl OlscDecode {
    /// True when the data cannot be recovered.
    pub fn is_uncorrectable(&self) -> bool {
        matches!(self, OlscDecode::Detected)
    }
}

/// A `t`-error-correcting OLSC over an `m x m` data block.
#[derive(Debug, Clone)]
pub struct Olsc {
    m: usize,
    t: usize,
    k: usize,
    /// `class_of[g][cell]` = parity class of `cell` within group `g`.
    class_of: Vec<Vec<u16>>,
    /// `masks[g][class]` = data bits belonging to that parity class.
    masks: Vec<Vec<OlscBlock>>,
}

impl Olsc {
    /// Builds a codec for an `m x m` block correcting `t` errors.
    ///
    /// # Panics
    ///
    /// Panics unless `m` is 4, 8 or 16 and `1 <= t <= (m + 1) / 2` (the
    /// field supplies only `m - 1` Latin squares plus rows and columns).
    pub fn new(m: usize, t: usize) -> Self {
        assert!(
            matches!(m, 4 | 8 | 16),
            "OLSC block width {m} unsupported (use 4, 8 or 16)"
        );
        assert!(t >= 1 && 2 * t <= m + 1, "t = {t} out of range for m = {m}");
        let k = m * m;
        let groups = 2 * t;
        let mut class_of = vec![vec![0u16; k]; groups];
        for (g, table) in class_of.iter_mut().enumerate() {
            for i in 0..m {
                for j in 0..m {
                    let cell = i * m + j;
                    table[cell] = match g {
                        0 => i as u16,                               // rows
                        1 => j as u16,                               // columns
                        _ => (gf_mul_small(m, g - 1, i) ^ j) as u16, // L_{g-1}
                    };
                }
            }
        }
        let mut masks = vec![vec![[0u64; DATA_WORDS]; m]; groups];
        for g in 0..groups {
            for cell in 0..k {
                let cls = class_of[g][cell] as usize;
                masks[g][cls][cell / 64] |= 1u64 << (cell % 64);
            }
        }
        Olsc {
            m,
            t,
            k,
            class_of,
            masks,
        }
    }

    /// Number of data bits per block (`m^2`).
    pub fn data_bits(&self) -> usize {
        self.k
    }

    /// Number of checkbits per block (`2 * t * m`).
    pub fn check_bits(&self) -> usize {
        2 * self.t * self.m
    }

    /// Correction capability per block.
    pub fn t(&self) -> usize {
        self.t
    }

    fn block_parity(block: &OlscBlock, mask: &OlscBlock) -> bool {
        let mut folded = 0u64;
        for (w, m) in block.iter().zip(mask.iter()) {
            folded ^= w & m;
        }
        folded.count_ones() % 2 == 1
    }

    /// Encodes a data block into its checkbits, one `bool` per
    /// (group, class) in group-major order.
    pub fn encode(&self, data: &OlscBlock) -> Vec<bool> {
        let mut out = Vec::with_capacity(self.check_bits());
        for group in &self.masks {
            for mask in group {
                out.push(Self::block_parity(data, mask));
            }
        }
        out
    }

    /// Decodes a received (data, checkbits) pair, correcting `data` in place.
    ///
    /// # Panics
    ///
    /// Panics if `stored.len() != self.check_bits()`.
    pub fn decode(&self, data: &mut OlscBlock, stored: &[bool]) -> OlscDecode {
        assert_eq!(stored.len(), self.check_bits(), "checkbit count mismatch");
        let groups = 2 * self.t;
        // Check sums: recomputed parity XOR stored checkbit, per class.
        let mut sums = vec![false; groups * self.m];
        let mut any = false;
        for (g, group) in self.masks.iter().enumerate() {
            for (cls, mask) in group.iter().enumerate() {
                let b = Self::block_parity(data, mask) ^ stored[g * self.m + cls];
                sums[g * self.m + cls] = b;
                any |= b;
            }
        }
        if !any {
            return OlscDecode::Clean;
        }
        // Majority vote per data bit: flip when more than t check sums fire.
        let mut flipped = Vec::new();
        for cell in 0..self.k {
            let mut votes = 0usize;
            for g in 0..groups {
                if sums[g * self.m + self.class_of[g][cell] as usize] {
                    votes += 1;
                }
            }
            if votes > self.t {
                flipped.push(cell);
            }
        }
        for &cell in &flipped {
            data[cell / 64] ^= 1u64 << (cell % 64);
        }
        // Residual check: any remaining inconsistency means > t errors hit
        // the block (or its checkbits) in a pattern majority logic cannot fix.
        for (g, group) in self.masks.iter().enumerate() {
            for (cls, mask) in group.iter().enumerate() {
                if Self::block_parity(data, mask) != stored[g * self.m + cls] {
                    // Inconsistency may be a corrupted checkbit cell; that is
                    // tolerable only while few classes disagree. Count them.
                    let residual = self.residual_count(data, stored);
                    if residual > self.t {
                        return OlscDecode::Detected;
                    }
                    return if flipped.is_empty() {
                        OlscDecode::Clean // checkbit-cell errors only
                    } else {
                        OlscDecode::Corrected { bits: flipped }
                    };
                }
            }
        }
        OlscDecode::Corrected { bits: flipped }
    }

    fn residual_count(&self, data: &OlscBlock, stored: &[bool]) -> usize {
        let mut n = 0;
        for (g, group) in self.masks.iter().enumerate() {
            for (cls, mask) in group.iter().enumerate() {
                if Self::block_parity(data, mask) != stored[g * self.m + cls] {
                    n += 1;
                }
            }
        }
        n
    }
}

/// OLSC protection for a whole 512-bit cache line, built from
/// `512 / m^2` independent blocks.
#[derive(Debug, Clone)]
pub struct OlscLine {
    codec: Olsc,
    blocks: usize,
}

impl OlscLine {
    /// Builds a line codec from per-block parameters.
    ///
    /// # Panics
    ///
    /// Panics if `m^2` does not divide 512.
    pub fn new(m: usize, t: usize) -> Self {
        let codec = Olsc::new(m, t);
        assert_eq!(
            512 % codec.data_bits(),
            0,
            "block size {} does not divide the line",
            codec.data_bits()
        );
        let blocks = 512 / codec.data_bits();
        OlscLine { codec, blocks }
    }

    /// Total checkbits per line.
    pub fn check_bits(&self) -> usize {
        self.blocks * self.codec.check_bits()
    }

    /// Errors correctable per block (the per-line capability is
    /// `t * blocks` only when errors spread evenly).
    pub fn t_per_block(&self) -> usize {
        self.codec.t()
    }

    fn split(&self, line: &Line512) -> Vec<OlscBlock> {
        let k = self.codec.data_bits();
        let mut out = Vec::with_capacity(self.blocks);
        for b in 0..self.blocks {
            let mut block = [0u64; DATA_WORDS];
            for bit in 0..k {
                let idx = b * k + bit;
                if line.bit(idx) {
                    block[bit / 64] |= 1u64 << (bit % 64);
                }
            }
            out.push(block);
        }
        out
    }

    /// Encodes a line into its checkbit vector.
    pub fn encode(&self, line: &Line512) -> Vec<bool> {
        let mut out = Vec::with_capacity(self.check_bits());
        for block in self.split(line) {
            out.extend(self.codec.encode(&block));
        }
        out
    }

    /// Decodes a line in place against stored checkbits.
    ///
    /// # Panics
    ///
    /// Panics if `stored.len() != self.check_bits()`.
    pub fn decode(&self, line: &mut Line512, stored: &[bool]) -> OlscDecode {
        assert_eq!(stored.len(), self.check_bits(), "checkbit count mismatch");
        let k = self.codec.data_bits();
        let per_block = self.codec.check_bits();
        let mut all_flipped = Vec::new();
        let mut clean = true;
        for (b, mut block) in self.split(line).into_iter().enumerate() {
            let stored_block = &stored[b * per_block..(b + 1) * per_block];
            match self.codec.decode(&mut block, stored_block) {
                OlscDecode::Clean => {}
                OlscDecode::Corrected { bits } => {
                    clean = false;
                    for bit in bits {
                        let idx = b * k + bit;
                        line.flip_bit(idx);
                        all_flipped.push(idx);
                    }
                }
                OlscDecode::Detected => return OlscDecode::Detected,
            }
        }
        if clean {
            OlscDecode::Clean
        } else {
            OlscDecode::Corrected { bits: all_flipped }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_block(seed: u64, k: usize) -> OlscBlock {
        let line = Line512::from_seed(seed);
        let mut block = [0u64; DATA_WORDS];
        for bit in 0..k {
            if line.bit(bit) {
                block[bit / 64] |= 1 << (bit % 64);
            }
        }
        block
    }

    #[test]
    fn check_bit_counts() {
        assert_eq!(Olsc::new(8, 2).check_bits(), 32);
        assert_eq!(Olsc::new(8, 4).check_bits(), 64);
        assert_eq!(Olsc::new(16, 3).check_bits(), 96);
        assert_eq!(OlscLine::new(8, 2).check_bits(), 256); // 8 blocks x 32
        assert_eq!(OlscLine::new(16, 3).check_bits(), 192); // 2 blocks x 96
    }

    #[test]
    fn orthogonality_two_cells_share_at_most_one_class() {
        for m in [4usize, 8, 16] {
            let t = m.div_ceil(2);
            let codec = Olsc::new(m, t);
            let k = codec.data_bits();
            // Sample pairs (full cross product is large for m = 16).
            for a in (0..k).step_by(7) {
                for b in (0..k).step_by(11) {
                    if a == b {
                        continue;
                    }
                    let shared = (0..2 * t)
                        .filter(|&g| codec.class_of[g][a] == codec.class_of[g][b])
                        .count();
                    assert!(shared <= 1, "m={m}: cells {a},{b} share {shared} classes");
                }
            }
        }
    }

    #[test]
    fn clean_roundtrip() {
        for (m, t) in [(4usize, 2usize), (8, 2), (8, 4), (16, 3)] {
            let codec = Olsc::new(m, t);
            let mut data = random_block(99, codec.data_bits());
            let check = codec.encode(&data);
            assert_eq!(codec.decode(&mut data, &check), OlscDecode::Clean);
        }
    }

    #[test]
    fn corrects_up_to_t_errors_per_block() {
        for (m, t) in [(8usize, 2usize), (8, 4), (16, 3)] {
            let codec = Olsc::new(m, t);
            let k = codec.data_bits();
            let original = random_block(7, k);
            let check = codec.encode(&original);
            for ne in 1..=t {
                let mut data = original;
                for e in 0..ne {
                    let bit = (e * 37 + 5) % k;
                    data[bit / 64] ^= 1 << (bit % 64);
                }
                let d = codec.decode(&mut data, &check);
                assert!(
                    matches!(d, OlscDecode::Corrected { .. }),
                    "m={m} t={t} ne={ne}: {d:?}"
                );
                assert_eq!(data, original, "m={m} t={t} ne={ne}");
            }
        }
    }

    #[test]
    fn line_codec_corrects_spread_errors() {
        let codec = OlscLine::new(8, 2); // 2 per 64-bit block
        let original = Line512::from_seed(123);
        let check = codec.encode(&original);
        let mut line = original;
        // 11 errors spread across blocks with <= 2 per block.
        for (i, bit) in [3usize, 40, 70, 100, 140, 180, 210, 260, 330, 400, 480]
            .iter()
            .enumerate()
        {
            let _ = i;
            line.flip_bit(*bit);
        }
        let d = codec.decode(&mut line, &check);
        assert!(matches!(d, OlscDecode::Corrected { .. }), "{d:?}");
        assert_eq!(line, original);
    }

    #[test]
    fn too_many_errors_in_one_block_detected() {
        let codec = OlscLine::new(8, 2);
        let original = Line512::from_seed(124);
        let check = codec.encode(&original);
        let mut line = original;
        // 5 errors inside block 0 exceed t = 2.
        for bit in [0usize, 9, 18, 27, 36] {
            line.flip_bit(bit);
        }
        let d = codec.decode(&mut line, &check);
        // Majority logic must not silently "succeed" with wrong data: either
        // it detects, or any claimed correction must be wrong and caught here.
        match d {
            OlscDecode::Detected => {}
            _ => assert_ne!(line, original, "silent miscorrection to clean data"),
        }
    }

    #[test]
    fn checkbit_cell_errors_tolerated() {
        let codec = Olsc::new(8, 2);
        let original = random_block(55, codec.data_bits());
        let mut check = codec.encode(&original);
        check[5] = !check[5]; // one faulty checkbit cell
        let mut data = original;
        let d = codec.decode(&mut data, &check);
        assert!(!d.is_uncorrectable(), "{d:?}");
        assert_eq!(data, original);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_oversized_t() {
        Olsc::new(8, 5);
    }
}

//! Arithmetic in GF(2^10), the field underlying the DEC-TED BCH code.
//!
//! Elements are bit-vector polynomials over GF(2) reduced modulo the
//! primitive polynomial `x^10 + x^3 + 1`. Multiplication uses log/antilog
//! tables built once per process.

use std::sync::OnceLock;

/// Field order minus one: the multiplicative group size.
pub const GROUP_ORDER: usize = 1023;
/// Primitive polynomial `x^10 + x^3 + 1` (bit 10, bit 3, bit 0).
pub const PRIMITIVE_POLY: u16 = 0b100_0000_1001;

/// An element of GF(2^10), stored as a 10-bit polynomial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Gf10(pub u16);

struct Tables {
    /// `exp[i]` = alpha^i for i in 0..2046 (doubled to skip a mod).
    exp: Vec<u16>,
    /// `log[x]` = discrete log of x (undefined at 0).
    log: [u16; 1024],
}

fn tables() -> &'static Tables {
    static T: OnceLock<Tables> = OnceLock::new();
    T.get_or_init(|| {
        let mut exp = vec![0u16; 2 * GROUP_ORDER];
        let mut log = [0u16; 1024];
        let mut x = 1u16;
        for (i, e) in exp.iter_mut().enumerate().take(GROUP_ORDER) {
            *e = x;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & 0x400 != 0 {
                x ^= PRIMITIVE_POLY;
            }
        }
        for i in GROUP_ORDER..2 * GROUP_ORDER {
            exp[i] = exp[i - GROUP_ORDER];
        }
        Tables { exp, log }
    })
}

#[allow(clippy::should_implement_trait)] // GF ops are explicit by design
impl Gf10 {
    /// The additive identity.
    pub const ZERO: Gf10 = Gf10(0);
    /// The multiplicative identity.
    pub const ONE: Gf10 = Gf10(1);

    /// `alpha^i`, the `i`-th power of the primitive element.
    #[inline]
    pub fn alpha_pow(i: usize) -> Gf10 {
        Gf10(tables().exp[i % GROUP_ORDER])
    }

    /// True when this is the zero element.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Field addition (XOR).
    #[inline]
    pub fn add(self, rhs: Gf10) -> Gf10 {
        Gf10(self.0 ^ rhs.0)
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(self, rhs: Gf10) -> Gf10 {
        if self.is_zero() || rhs.is_zero() {
            return Gf10::ZERO;
        }
        let t = tables();
        let i = t.log[self.0 as usize] as usize + t.log[rhs.0 as usize] as usize;
        Gf10(t.exp[i])
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics on the zero element.
    #[inline]
    pub fn inv(self) -> Gf10 {
        assert!(!self.is_zero(), "inverse of zero in GF(2^10)");
        let t = tables();
        let l = t.log[self.0 as usize] as usize;
        Gf10(t.exp[GROUP_ORDER - l])
    }

    /// `self` raised to the `e`-th power.
    pub fn pow(self, e: usize) -> Gf10 {
        if self.is_zero() {
            return if e == 0 { Gf10::ONE } else { Gf10::ZERO };
        }
        let t = tables();
        let l = t.log[self.0 as usize] as usize;
        Gf10(t.exp[(l * e) % GROUP_ORDER])
    }

    /// Discrete logarithm base alpha.
    ///
    /// # Panics
    ///
    /// Panics on the zero element.
    #[inline]
    pub fn log(self) -> usize {
        assert!(!self.is_zero(), "log of zero in GF(2^10)");
        tables().log[self.0 as usize] as usize
    }

    /// Square root (every element of a binary field has exactly one).
    pub fn sqrt(self) -> Gf10 {
        // x^(2^9) squares to x^(2^10) = x.
        let mut v = self;
        for _ in 0..9 {
            v = v.mul(v);
        }
        v
    }
}

/// Computes the minimal polynomial over GF(2) of `alpha^r`, returned as a
/// bitmask (bit `i` = coefficient of `x^i`).
///
/// Used to construct BCH generator polynomials.
pub fn minimal_polynomial(r: usize) -> u32 {
    // Collect the conjugacy class {r, 2r, 4r, ...} mod 1023.
    let mut class = Vec::new();
    let mut e = r % GROUP_ORDER;
    loop {
        if class.contains(&e) {
            break;
        }
        class.push(e);
        e = (e * 2) % GROUP_ORDER;
    }
    // Multiply out prod (x + alpha^e) over GF(2^10); the result has GF(2)
    // coefficients by construction.
    let mut coeffs: Vec<Gf10> = vec![Gf10::ONE]; // polynomial "1"
    for &e in &class {
        let root = Gf10::alpha_pow(e);
        let mut next = vec![Gf10::ZERO; coeffs.len() + 1];
        for (i, &c) in coeffs.iter().enumerate() {
            next[i + 1] = next[i + 1].add(c); // x * c_i
            next[i] = next[i].add(c.mul(root)); // root * c_i
        }
        coeffs = next;
    }
    let mut mask = 0u32;
    for (i, c) in coeffs.iter().enumerate() {
        assert!(
            c.0 <= 1,
            "minimal polynomial coefficient not in GF(2): {c:?}"
        );
        if c.0 == 1 {
            mask |= 1 << i;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_has_full_order() {
        assert_eq!(Gf10::alpha_pow(0), Gf10::ONE);
        assert_eq!(Gf10::alpha_pow(GROUP_ORDER), Gf10::ONE);
        for i in 1..GROUP_ORDER {
            assert_ne!(Gf10::alpha_pow(i), Gf10::ONE, "order divides {i}");
        }
    }

    #[test]
    fn mul_matches_schoolbook() {
        // Carry-less multiply then reduce, compared against table mul.
        fn slow_mul(a: u16, b: u16) -> u16 {
            let mut acc: u32 = 0;
            for i in 0..10 {
                if (b >> i) & 1 == 1 {
                    acc ^= (a as u32) << i;
                }
            }
            for i in (10..20).rev() {
                if (acc >> i) & 1 == 1 {
                    acc ^= (PRIMITIVE_POLY as u32) << (i - 10);
                }
            }
            acc as u16
        }
        for a in [0u16, 1, 2, 3, 5, 100, 512, 1023] {
            for b in [0u16, 1, 7, 64, 999, 1023] {
                assert_eq!(Gf10(a).mul(Gf10(b)).0, slow_mul(a, b), "{a} * {b}");
            }
        }
    }

    #[test]
    fn inverse_is_inverse() {
        for v in 1..1024u16 {
            let x = Gf10(v);
            assert_eq!(x.mul(x.inv()), Gf10::ONE, "v = {v}");
        }
    }

    #[test]
    fn pow_and_log_agree() {
        for i in [0usize, 1, 5, 100, 1022] {
            let x = Gf10::alpha_pow(i);
            assert_eq!(x.log(), i);
        }
        let x = Gf10::alpha_pow(17);
        assert_eq!(x.pow(3), x.mul(x).mul(x));
        assert_eq!(x.pow(0), Gf10::ONE);
    }

    #[test]
    fn sqrt_squares_back() {
        for v in 0..1024u16 {
            let x = Gf10(v);
            let s = x.sqrt();
            assert_eq!(s.mul(s), x, "v = {v}");
        }
    }

    #[test]
    fn minimal_polynomial_of_alpha_is_primitive_poly() {
        assert_eq!(minimal_polynomial(1), PRIMITIVE_POLY as u32);
    }

    #[test]
    fn minimal_polynomial_of_alpha3_has_degree_10_and_root_alpha3() {
        let m3 = minimal_polynomial(3);
        assert_eq!(32 - m3.leading_zeros() - 1, 10, "degree of m3");
        // Evaluate m3 at alpha^3: must be zero.
        let x = Gf10::alpha_pow(3);
        let mut acc = Gf10::ZERO;
        for i in 0..=10 {
            if (m3 >> i) & 1 == 1 {
                acc = acc.add(x.pow(i));
            }
        }
        assert!(acc.is_zero());
    }
}

//! The daemon: accept loop, bounded FIFO queue, fixed worker pool, and
//! the content-addressed result store.
//!
//! Concurrency model: the accept loop handles one connection at a time
//! (every request is a cheap parse or a map lookup — the expensive work
//! happens on the workers), workers block on a `Condvar` over the
//! queue, and all shared state sits behind one `Mutex`. Reports are
//! `Arc<str>`-shared so serving a cached report never copies the bytes.
//!
//! Shutdown: [`Handle::shutdown`] (or a SIGTERM/SIGINT relayed through
//! [`crate::signal`]) flips the drain flag. From then on submissions
//! get 503, reads keep working, workers finish the queue, and
//! [`Server::run`] returns once the last job lands — completed results
//! are never lost mid-drain (regression-tested in `service_e2e`).

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use killi_obs::serve::{format_job_id, parse_job_id, JobId, ServeEvent, ServeMetrics};

use crate::http::{error_body, read_request, HttpError, Request, Response};
use crate::spec::{job_id_for, parse_job_spec, JobSpec};

/// Tuning of one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1` unless exposed deliberately).
    pub host: String,
    /// Bind port; 0 asks the OS for an ephemeral one.
    pub port: u16,
    /// Worker threads executing sweeps.
    pub workers: usize,
    /// Bounded queue depth; submissions beyond it get 429.
    pub queue_depth: usize,
    /// Completed reports kept before FIFO eviction.
    pub cache_cap: usize,
    /// Test-only: milliseconds each worker sleeps before starting a
    /// job, so tests can fill the queue deterministically. Zero in
    /// production.
    pub job_start_delay_ms: u64,
    /// Whether the accept loop watches [`crate::signal::triggered`].
    /// The CLI daemon keeps this on; in-process tests turn it off so a
    /// signal test elsewhere in the binary cannot drain them.
    pub heed_signals: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            host: "127.0.0.1".to_string(),
            port: 0,
            workers: 2,
            queue_depth: 32,
            cache_cap: 64,
            job_start_delay_ms: 0,
            heed_signals: true,
        }
    }
}

/// Lifecycle of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Failed,
}

impl JobState {
    fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

/// Everything known about one submitted job.
struct JobRecord {
    /// Canonical config JSON — kept to detect the astronomically
    /// unlikely id collision and to re-run after cache eviction.
    canonical: String,
    config: JobSpec,
    state: JobState,
    /// The report bytes (`killi-sweep/v2` or `killi-vmin/v1`), exactly
    /// as the engine emits them; `None` until done or after eviction.
    report: Option<Arc<str>>,
    error: Option<String>,
}

/// Mutex-guarded mutable state.
#[derive(Default)]
struct Inner {
    jobs: HashMap<JobId, JobRecord>,
    queue: VecDeque<JobId>,
    running: usize,
    /// Completion order of cached reports, oldest first (FIFO eviction).
    done_order: VecDeque<JobId>,
    events: Vec<ServeEvent>,
    metrics: ServeMetrics,
}

/// Cap on the retained event log; old events fall off the front.
const EVENT_LOG_CAP: usize = 4096;

impl Inner {
    fn emit(&mut self, event: ServeEvent) {
        self.metrics.apply(&event);
        if self.events.len() == EVENT_LOG_CAP {
            self.events.remove(0);
        }
        self.events.push(event);
    }
}

struct Shared {
    state: Mutex<Inner>,
    work_ready: Condvar,
    /// Set once; from then on submissions are rejected and workers
    /// exit when the queue runs dry.
    draining: AtomicBool,
    config: ServerConfig,
    local_addr: SocketAddr,
}

/// A cheap cloneable view onto a running server, for shutdown and
/// inspection (the CLI uses it for ctrl-c; tests use it to assert on
/// metrics, events, and drained results without racing the sockets).
#[derive(Clone)]
pub struct Handle {
    shared: Arc<Shared>,
}

impl Handle {
    /// The bound address (with the OS-assigned port when port 0 was
    /// requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Begins a graceful drain: new submissions get 503, queued and
    /// running jobs finish, then [`Server::run`] returns.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.work_ready.notify_all();
    }

    /// Whether a drain is in progress (or finished).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Snapshot of the service counters.
    pub fn metrics(&self) -> ServeMetrics {
        self.shared.state.lock().unwrap().metrics
    }

    /// Snapshot of the event log (the most recent few thousand events;
    /// older ones fall off the front).
    pub fn events(&self) -> Vec<ServeEvent> {
        self.shared.state.lock().unwrap().events.clone()
    }

    /// The stored report bytes of a job, if it completed and is still
    /// cached. Lets tests verify drained results without a socket.
    pub fn report(&self, id: JobId) -> Option<Arc<str>> {
        self.shared
            .state
            .lock()
            .unwrap()
            .jobs
            .get(&id)
            .and_then(|j| j.report.clone())
    }

    /// State name of a job (`queued`/`running`/`done`/`failed`).
    pub fn job_state(&self, id: JobId) -> Option<&'static str> {
        self.shared
            .state
            .lock()
            .unwrap()
            .jobs
            .get(&id)
            .map(|j| j.state.name())
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener (port 0 = ephemeral) without starting work.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind((config.host.as_str(), config.port))?;
        let local_addr = listener.local_addr()?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                state: Mutex::new(Inner::default()),
                work_ready: Condvar::new(),
                draining: AtomicBool::new(false),
                config,
                local_addr,
            }),
        })
    }

    /// A handle for shutdown and inspection.
    pub fn handle(&self) -> Handle {
        Handle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Runs the accept loop until a graceful drain completes. Checks
    /// [`crate::signal::triggered`] each poll tick, so a process-level
    /// SIGTERM/SIGINT (when [`crate::signal::install`] was called)
    /// starts the drain without any handle plumbing.
    pub fn run(self) -> std::io::Result<()> {
        let workers = self.shared.config.workers.max(1);
        let mut pool = Vec::with_capacity(workers);
        for worker in 0..workers {
            let shared = Arc::clone(&self.shared);
            pool.push(std::thread::spawn(move || worker_loop(&shared, worker)));
        }

        self.listener.set_nonblocking(true)?;
        loop {
            if self.shared.config.heed_signals && crate::signal::triggered() {
                self.shared.draining.store(true, Ordering::SeqCst);
                self.shared.work_ready.notify_all();
            }
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    // Request handling is cheap (parse + map ops); the
                    // heavy lifting happens on the worker pool.
                    let _ = stream.set_nodelay(true);
                    handle_connection(&self.shared, &mut stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if self.shared.draining.load(Ordering::SeqCst) {
                        let inner = self.shared.state.lock().unwrap();
                        if inner.queue.is_empty() && inner.running == 0 {
                            break;
                        }
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }

        // Drain finished: wake any still-parked workers so they observe
        // the empty queue + drain flag and exit.
        self.shared.work_ready.notify_all();
        for thread in pool {
            let _ = thread.join();
        }
        Ok(())
    }
}

/// One worker: pull, execute, store; exit when draining finds the queue
/// empty.
fn worker_loop(shared: &Shared, worker: usize) {
    loop {
        let job = {
            let mut inner = shared.state.lock().unwrap();
            loop {
                if let Some(id) = inner.queue.pop_front() {
                    inner.running += 1;
                    inner.emit(ServeEvent::JobDequeued { job: id, worker });
                    let record = inner.jobs.get_mut(&id).expect("queued job has a record");
                    record.state = JobState::Running;
                    break Some((id, record.config.clone()));
                }
                if shared.draining.load(Ordering::SeqCst) {
                    break None;
                }
                inner = shared.work_ready.wait(inner).unwrap();
            }
        };
        let Some((id, config)) = job else {
            return;
        };

        if shared.config.job_start_delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(shared.config.job_start_delay_ms));
        }

        // A panicking job (a bug, not a workload) must not take the
        // worker down with it; the job lands as Failed instead.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| config.run()));

        let mut inner = shared.state.lock().unwrap();
        inner.running -= 1;
        let record = inner.jobs.get_mut(&id).expect("running job has a record");
        match outcome {
            Ok(report) => {
                record.state = JobState::Done;
                record.report = Some(Arc::from(report));
                inner.emit(ServeEvent::JobCompleted { job: id });
                inner.emit(ServeEvent::CacheInsert { job: id });
                inner.done_order.push_back(id);
                evict_over_capacity(&mut inner, shared.config.cache_cap);
            }
            Err(panic) => {
                record.state = JobState::Failed;
                record.error = Some(panic_message(&panic));
                inner.emit(ServeEvent::JobFailed { job: id });
            }
        }
    }
}

/// Drops the oldest cached reports beyond `cap`. Records stay so the
/// job id remains known; a resubmission re-enqueues the sweep.
fn evict_over_capacity(inner: &mut Inner, cap: usize) {
    while inner.done_order.len() > cap.max(1) {
        let oldest = inner.done_order.pop_front().expect("len checked");
        if let Some(record) = inner.jobs.get_mut(&oldest) {
            record.report = None;
        }
        inner.emit(ServeEvent::CacheEvict { job: oldest });
    }
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("sweep panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("sweep panicked: {s}")
    } else {
        "sweep panicked".to_string()
    }
}

/// Reads one request, routes it, writes one response.
fn handle_connection(shared: &Shared, stream: &mut TcpStream) {
    // The accept loop runs the listener nonblocking; the request socket
    // itself must block (with the read timeout `read_request` sets).
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let response = match read_request(stream) {
        Ok(request) => route(shared, &request),
        Err(HttpError::Io(_)) => return, // peer went away; nothing to say
        Err(e) => {
            shared.state.lock().unwrap().emit(ServeEvent::BadRequest);
            let status = match e {
                HttpError::TooLarge => 400,
                _ => 400,
            };
            Response::json(status, error_body(&e.to_string()))
        }
    };
    let _ = response.write_to(stream);
}

fn route(shared: &Shared, request: &Request) -> Response {
    let path = request.path.as_str();
    let method = request.method.as_str();
    match (method, path) {
        ("POST", "/v1/jobs") => submit(shared, &request.body),
        ("GET", "/v1/healthz") => Response::json(
            200,
            format!(
                "{{\"status\":\"ok\",\"draining\":{}}}",
                shared.draining.load(Ordering::SeqCst)
            ),
        ),
        ("GET", "/v1/metrics") => {
            let json = shared.state.lock().unwrap().metrics.to_json();
            Response::json(200, json)
        }
        ("GET", _) if path.starts_with("/v1/jobs/") => job_get(shared, path),
        (_, "/v1/jobs") | (_, "/v1/healthz") | (_, "/v1/metrics") => Response::json(
            405,
            error_body(&format!("method {method} not allowed on {path}")),
        ),
        (_, _) if path.starts_with("/v1/jobs/") => Response::json(
            405,
            error_body(&format!("method {method} not allowed on {path}")),
        ),
        _ => Response::json(404, error_body(&format!("no such endpoint {path}"))),
    }
}

/// `GET /v1/jobs/:id` and `GET /v1/jobs/:id/report`.
fn job_get(shared: &Shared, path: &str) -> Response {
    let rest = &path["/v1/jobs/".len()..];
    let (id_text, want_report) = match rest.strip_suffix("/report") {
        Some(id) => (id, true),
        None => (rest, false),
    };
    let Some(id) = parse_job_id(id_text) else {
        shared.state.lock().unwrap().emit(ServeEvent::BadRequest);
        return Response::json(
            400,
            error_body(&format!("`{id_text}` is not a 32-hex-char job id")),
        );
    };
    let inner = shared.state.lock().unwrap();
    let Some(record) = inner.jobs.get(&id) else {
        return Response::json(404, error_body(&format!("no job {id_text}")));
    };
    if !want_report {
        return Response::json(200, status_body(id, record));
    }
    match (record.state, &record.report) {
        (JobState::Done, Some(report)) => Response::json(200, report.as_bytes()),
        (JobState::Done, None) => Response::json(
            404,
            error_body("report evicted from cache; resubmit the job to recompute"),
        ),
        (JobState::Failed, _) => Response::json(
            500,
            error_body(record.error.as_deref().unwrap_or("job failed")),
        ),
        (_, _) => Response::json(
            409,
            error_body(&format!("job is {}, report not ready", record.state.name())),
        )
        .with_header("retry-after", "1"),
    }
}

fn status_body(id: JobId, record: &JobRecord) -> Vec<u8> {
    let mut body = format!(
        "{{\"job\":\"{}\",\"state\":\"{}\"",
        format_job_id(id),
        record.state.name()
    );
    if let Some(error) = &record.error {
        body.push_str(&format!(",\"error\":\"{}\"", killi_obs::escape_json(error)));
    }
    body.push('}');
    body.into_bytes()
}

/// `POST /v1/jobs`.
fn submit(shared: &Shared, body: &[u8]) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        shared.state.lock().unwrap().emit(ServeEvent::Draining);
        return Response::json(503, error_body("draining; not accepting new jobs"))
            .with_header("retry-after", "5");
    }
    let config = match parse_job_spec(body) {
        Ok(config) => config,
        Err(e) => {
            shared.state.lock().unwrap().emit(ServeEvent::BadRequest);
            return Response::json(400, error_body(&e.to_string()));
        }
    };
    let id = job_id_for(&config);
    let canonical = config.canonical_json();
    let id_text = format_job_id(id);

    let mut inner = shared.state.lock().unwrap();
    if let Some(record) = inner.jobs.get(&id) {
        if record.canonical != canonical {
            // 2^-128 territory, but the canonical string makes it
            // detectable instead of silently wrong.
            return Response::json(500, error_body("job id collision; change a config knob"));
        }
        if record.report.is_some() || record.state != JobState::Done {
            // Known job, any live state: answer from the store.
            let state = record.state;
            inner.emit(ServeEvent::JobAccepted { job: id });
            inner.emit(ServeEvent::CacheHit { job: id });
            return Response::json(
                200,
                format!(
                    "{{\"job\":\"{id_text}\",\"state\":\"{}\",\"cached\":true}}",
                    state.name()
                ),
            );
        }
        // Done but evicted: fall through and re-enqueue below.
    }

    if inner.queue.len() >= shared.config.queue_depth {
        let depth = inner.queue.len();
        inner.emit(ServeEvent::QueueFull { depth });
        return Response::json(429, error_body("queue full")).with_header("retry-after", "1");
    }

    let depth = inner.queue.len() + 1;
    inner.jobs.insert(
        id,
        JobRecord {
            canonical,
            config,
            state: JobState::Queued,
            report: None,
            error: None,
        },
    );
    inner.queue.push_back(id);
    inner.emit(ServeEvent::JobAccepted { job: id });
    inner.emit(ServeEvent::JobEnqueued { job: id, depth });
    drop(inner);
    shared.work_ready.notify_one();
    Response::json(
        202,
        format!("{{\"job\":\"{id_text}\",\"state\":\"queued\",\"cached\":false}}"),
    )
}

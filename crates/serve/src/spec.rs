//! The job payload: a sweep or Vmin-campaign config as JSON, parsed
//! with the in-repo `killi-obs` parser and validated/canonicalized
//! through [`SweepConfig::validated`] / `VminConfig::validated` before
//! it ever reaches the queue.
//!
//! The optional top-level `mode` key selects the job kind: absent or
//! `"sweep"` is a Monte-Carlo sweep, `"vmin"` a fleet Vmin campaign.
//!
//! Sweep fields: `root_seed`, `replications`, `vdds`, `schemes`,
//! `workloads`, `ops_per_cu` (required). Schemes accept both spellings
//! the registry knows — objects (`{"name": "killi", "params": {...}}`)
//! and CLI shorthand strings (`"killi:ratio=16"`). The optional
//! `fault_model` takes the same two spellings against the fault-model
//! registry (`"clustered:rows=4"` or `{"name": "clustered", ...}`) and
//! defaults to the paper's `stuck-at`; different models canonicalize to
//! different cache keys. The optional `gpu` object overrides the
//! default hardware point with the sweep-facing knobs (`cus`, `l2_kb`,
//! `l2_ways`, `line_bytes`, `l2_banks`, `mem_latency`).
//!
//! Vmin fields: `root_seed`, `dies`, `lines`, `vdds`, `schemes`
//! (required), plus optional `target` (default 0.99) and `fault_model`.
//! Campaigns always run storeless on the server: the die store is a
//! local-workflow artifact, and the report is byte-identical either
//! way, so a job never names filesystem paths.
//!
//! In both kinds `threads` tunes execution only — it is excluded from
//! the canonical JSON, so it never splits the result cache. The two
//! canonical schemas differ (`killi-sweep-config/v1` vs
//! `killi-vmin-config/v1`), so a sweep and a campaign can never collide
//! on one job id.
//!
//! Unknown keys are errors, not warnings: a typo like `"replciations"`
//! must fail the submission instead of silently running a different
//! sweep.

use killi_bench::fault_models::FaultModelConfig;
use killi_bench::schemes::SchemeConfig;
use killi_bench::sweep::{run_sweep_validated, SweepConfig, ValidatedSweepConfig};
use killi_fault::rng::splitmix64;
use killi_obs::serve::JobId;
use killi_obs::{parse_json, JsonValue};
use killi_sim::gpu::GpuConfig;
use killi_vmin::{run_campaign, SearchMode, ValidatedVminConfig, VminConfig};
use killi_workloads::Workload;

/// Why a job payload was rejected (always a 400 on the wire).
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError {
    /// Human-readable reason, surfaced in the error body.
    pub message: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for SpecError {}

fn spec_err(message: impl Into<String>) -> SpecError {
    SpecError {
        message: message.into(),
    }
}

/// Top-level keys a sweep payload may carry.
const SWEEP_KEYS: [&str; 10] = [
    "mode",
    "root_seed",
    "replications",
    "vdds",
    "schemes",
    "fault_model",
    "workloads",
    "ops_per_cu",
    "gpu",
    "threads",
];

/// Top-level keys a vmin payload may carry.
const VMIN_KEYS: [&str; 9] = [
    "mode",
    "root_seed",
    "dies",
    "lines",
    "target",
    "vdds",
    "schemes",
    "fault_model",
    "threads",
];

/// Keys of the `gpu` override object.
const GPU_KEYS: [&str; 6] = [
    "cus",
    "l2_kb",
    "l2_ways",
    "line_bytes",
    "l2_banks",
    "mem_latency",
];

fn require_u64(v: &JsonValue, key: &str) -> Result<u64, SpecError> {
    v.get(key)
        .ok_or_else(|| spec_err(format!("missing required field `{key}`")))?
        .as_u64()
        .ok_or_else(|| spec_err(format!("`{key}` must be a non-negative integer")))
}

fn check_keys(
    entries: &[(String, JsonValue)],
    allowed: &[&str],
    ctx: &str,
) -> Result<(), SpecError> {
    for (key, _) in entries {
        if !allowed.contains(&key.as_str()) {
            return Err(spec_err(format!("unknown {ctx} field `{key}`")));
        }
    }
    Ok(())
}

fn parse_gpu(v: &JsonValue) -> Result<GpuConfig, SpecError> {
    let JsonValue::Object(entries) = v else {
        return Err(spec_err("`gpu` must be an object"));
    };
    check_keys(entries, &GPU_KEYS, "gpu")?;
    let mut gpu = GpuConfig::default();
    if let Some(cus) = v.get("cus") {
        gpu.cus = cus
            .as_u64()
            .ok_or_else(|| spec_err("`gpu.cus` must be a non-negative integer"))?
            as usize;
    }
    let mut l2 = gpu.l2;
    if let Some(kb) = v.get("l2_kb") {
        l2.size_bytes = kb
            .as_u64()
            .ok_or_else(|| spec_err("`gpu.l2_kb` must be a non-negative integer"))?
            as usize
            * 1024;
    }
    if let Some(ways) = v.get("l2_ways") {
        l2.ways = ways
            .as_u64()
            .ok_or_else(|| spec_err("`gpu.l2_ways` must be a non-negative integer"))?
            as usize;
    }
    if let Some(line) = v.get("line_bytes") {
        l2.line_bytes = line
            .as_u64()
            .ok_or_else(|| spec_err("`gpu.line_bytes` must be a non-negative integer"))?
            as usize;
    }
    gpu.l2 = l2;
    if let Some(banks) = v.get("l2_banks") {
        gpu.l2_banks = banks
            .as_u64()
            .ok_or_else(|| spec_err("`gpu.l2_banks` must be a non-negative integer"))?
            as usize;
    }
    if let Some(lat) = v.get("mem_latency") {
        gpu.mem_latency = lat
            .as_u64()
            .ok_or_else(|| spec_err("`gpu.mem_latency` must be a non-negative integer"))?
            as u32;
    }
    Ok(gpu)
}

fn parse_schemes(v: &JsonValue) -> Result<Vec<SchemeConfig>, SpecError> {
    let items = v
        .as_array()
        .ok_or_else(|| spec_err("`schemes` must be an array"))?;
    if items.is_empty() {
        return Err(spec_err("`schemes` must not be empty"));
    }
    items
        .iter()
        .map(|item| match item {
            JsonValue::Str(shorthand) => SchemeConfig::parse(shorthand),
            other => SchemeConfig::from_json_value(other),
        })
        .map(|r| r.map_err(|e| spec_err(e.to_string())))
        .collect()
}

fn parse_fault_model(v: &JsonValue) -> Result<FaultModelConfig, SpecError> {
    match v {
        JsonValue::Str(shorthand) => FaultModelConfig::parse(shorthand),
        other => FaultModelConfig::from_json_value(other),
    }
    .map_err(|e| spec_err(e.to_string()))
}

fn parse_workloads(v: &JsonValue) -> Result<Vec<Workload>, SpecError> {
    let items = v
        .as_array()
        .ok_or_else(|| spec_err("`workloads` must be an array"))?;
    if items.is_empty() {
        return Err(spec_err("`workloads` must not be empty"));
    }
    items
        .iter()
        .map(|item| {
            let name = item
                .as_str()
                .ok_or_else(|| spec_err("workloads must be name strings"))?;
            name.parse::<Workload>()
                .map_err(|e| spec_err(e.to_string()))
        })
        .collect()
}

fn parse_vdds(v: &JsonValue) -> Result<Vec<f64>, SpecError> {
    let items = v
        .as_array()
        .ok_or_else(|| spec_err("`vdds` must be an array"))?;
    if items.is_empty() {
        return Err(spec_err("`vdds` must not be empty"));
    }
    items
        .iter()
        .map(|item| {
            let vdd = item
                .as_f64()
                .ok_or_else(|| spec_err("vdds must be numbers"))?;
            if !(0.0..=1.5).contains(&vdd) {
                return Err(spec_err(format!(
                    "vdd {vdd} outside the sane [0, 1.5] range"
                )));
            }
            Ok(vdd)
        })
        .collect()
}

/// A validated, ready-to-run job of either kind.
#[derive(Debug, Clone)]
pub enum JobSpec {
    /// A Monte-Carlo sweep (`mode` absent or `"sweep"`).
    Sweep(ValidatedSweepConfig),
    /// A fleet Vmin campaign (`mode: "vmin"`).
    Vmin(ValidatedVminConfig),
}

impl JobSpec {
    /// The canonical config JSON the job is content-addressed by. The
    /// two kinds carry different schema tags, so their key spaces never
    /// overlap.
    pub fn canonical_json(&self) -> String {
        match self {
            JobSpec::Sweep(c) => c.canonical_json(),
            JobSpec::Vmin(c) => c.canonical_json(),
        }
    }

    /// Executes the job and returns its report bytes (`killi-sweep/v2`
    /// or `killi-vmin/v1`).
    pub fn run(&self) -> String {
        match self {
            JobSpec::Sweep(c) => run_sweep_validated(c).to_json(),
            // Server-side campaigns are storeless, and a storeless
            // campaign has no failure path.
            JobSpec::Vmin(c) => run_campaign(c)
                .expect("storeless campaigns cannot fail")
                .report
                .to_json(),
        }
    }
}

/// Parses and validates a job payload into a ready-to-run spec.
pub fn parse_job_spec(body: &[u8]) -> Result<JobSpec, SpecError> {
    let text = std::str::from_utf8(body).map_err(|_| spec_err("body is not UTF-8"))?;
    let v = parse_json(text).map_err(|e| spec_err(e.to_string()))?;
    let JsonValue::Object(entries) = &v else {
        return Err(spec_err("job payload must be a JSON object"));
    };
    match v.get("mode") {
        None => parse_sweep_spec(entries, &v).map(JobSpec::Sweep),
        Some(mode) => match mode.as_str() {
            Some("sweep") => parse_sweep_spec(entries, &v).map(JobSpec::Sweep),
            Some("vmin") => parse_vmin_spec(entries, &v).map(JobSpec::Vmin),
            Some(other) => Err(spec_err(format!(
                "unknown mode `{other}` (expected `sweep` or `vmin`)"
            ))),
            None => Err(spec_err("`mode` must be a string")),
        },
    }
}

fn parse_threads(v: &JsonValue) -> Result<usize, SpecError> {
    match v.get("threads") {
        // Execution-only knob: absent, use every core (the report is
        // byte-identical either way, so the cache key ignores it).
        None => Ok(std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)),
        Some(t) => Ok(t
            .as_u64()
            .ok_or_else(|| spec_err("`threads` must be a non-negative integer"))?
            as usize),
    }
}

fn parse_vmin_spec(
    entries: &[(String, JsonValue)],
    v: &JsonValue,
) -> Result<ValidatedVminConfig, SpecError> {
    check_keys(entries, &VMIN_KEYS, "vmin job")?;
    let target = match v.get("target") {
        None => 0.99,
        Some(t) => t
            .as_f64()
            .ok_or_else(|| spec_err("`target` must be a number"))?,
    };
    let config = VminConfig {
        root_seed: require_u64(v, "root_seed")?,
        dies: require_u64(v, "dies")? as usize,
        lines: require_u64(v, "lines")? as usize,
        target,
        vdds: parse_vdds(
            v.get("vdds")
                .ok_or_else(|| spec_err("missing required field `vdds`"))?,
        )?,
        schemes: parse_schemes(
            v.get("schemes")
                .ok_or_else(|| spec_err("missing required field `schemes`"))?,
        )?,
        fault_model: match v.get("fault_model") {
            None => FaultModelConfig::default(),
            Some(fm) => parse_fault_model(fm)?,
        },
        threads: parse_threads(v)?,
        progress_every: 0,
        store: None,
        search: SearchMode::Auto,
    };
    config.validated().map_err(|e| spec_err(e.to_string()))
}

fn parse_sweep_spec(
    entries: &[(String, JsonValue)],
    v: &JsonValue,
) -> Result<ValidatedSweepConfig, SpecError> {
    check_keys(entries, &SWEEP_KEYS, "job")?;

    let replications = require_u64(v, "replications")?;
    if replications == 0 {
        return Err(spec_err("`replications` must be at least 1"));
    }
    let ops_per_cu = require_u64(v, "ops_per_cu")?;
    if ops_per_cu == 0 {
        return Err(spec_err("`ops_per_cu` must be at least 1"));
    }
    let config = SweepConfig {
        root_seed: require_u64(v, "root_seed")?,
        replications: replications as usize,
        vdds: parse_vdds(
            v.get("vdds")
                .ok_or_else(|| spec_err("missing required field `vdds`"))?,
        )?,
        schemes: parse_schemes(
            v.get("schemes")
                .ok_or_else(|| spec_err("missing required field `schemes`"))?,
        )?,
        fault_model: match v.get("fault_model") {
            None => FaultModelConfig::default(),
            Some(fm) => parse_fault_model(fm)?,
        },
        workloads: parse_workloads(
            v.get("workloads")
                .ok_or_else(|| spec_err("missing required field `workloads`"))?,
        )?,
        ops_per_cu: ops_per_cu as usize,
        gpu: match v.get("gpu") {
            None => GpuConfig::default(),
            Some(gpu) => parse_gpu(gpu)?,
        },
        threads: match v.get("threads") {
            // Execution-only knob: absent, use every core (the report is
            // byte-identical either way, so the cache key ignores it).
            None => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            Some(t) => t
                .as_u64()
                .ok_or_else(|| spec_err("`threads` must be a non-negative integer"))?
                as usize,
        },
        progress_every: 0,
        trace_capacity: None,
    };
    config.validated().map_err(|e| spec_err(e.to_string()))
}

/// The content address of a validated job: two independent splitmix64
/// folds over the canonical JSON bytes, packed into a 128-bit id. Equal
/// jobs (any spelling) hash equal; the odds of two *different*
/// canonical strings colliding are 2^-128-ish, and the server still
/// stores the canonical string to detect that. The two job kinds carry
/// different canonical schema tags, so they can never share an id.
pub fn job_id_for(config: &JobSpec) -> JobId {
    let canonical = config.canonical_json();
    let mut lo = splitmix64(0x9e37_79b9_7f4a_7c15);
    let mut hi = splitmix64(0xd1b5_4a32_d192_ed03);
    for chunk in canonical.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        let w = u64::from_le_bytes(word);
        lo = splitmix64(lo ^ w);
        hi = splitmix64(hi ^ w.rotate_left(23));
    }
    // Fold the length in so a zero-padded final chunk cannot alias an
    // input with explicit trailing NULs.
    lo = splitmix64(lo ^ canonical.len() as u64);
    hi = splitmix64(hi ^ (canonical.len() as u64).rotate_left(32));
    ((hi as u128) << 64) | lo as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOLDEN: &str = r#"{
        "root_seed": 2024,
        "replications": 2,
        "vdds": [0.65, 0.6],
        "schemes": [{"name": "killi", "params": {"ratio": 16}}],
        "workloads": ["fft", "hacc"],
        "ops_per_cu": 1200,
        "gpu": {"cus": 2, "l2_kb": 64, "l2_ways": 8, "line_bytes": 64, "l2_banks": 4, "mem_latency": 100}
    }"#;

    #[test]
    fn parses_the_golden_job() {
        let JobSpec::Sweep(validated) = parse_job_spec(GOLDEN.as_bytes()).unwrap() else {
            panic!("mode-less payloads parse as sweeps");
        };
        let c = validated.config();
        assert_eq!(c.root_seed, 2024);
        assert_eq!(c.replications, 2);
        assert_eq!(c.vdds, [0.65, 0.6]);
        assert_eq!(c.workloads, [Workload::Fft, Workload::Hacc]);
        assert_eq!(c.gpu.cus, 2);
        assert_eq!(c.gpu.l2.size_bytes, 64 * 1024);
        assert_eq!(c.gpu.l2.ways, 8);
        assert_eq!(c.gpu.l2_banks, 4);
        assert_eq!(c.gpu.mem_latency, 100);
        // Defaults not named by the gpu override stay at the defaults.
        assert_eq!(c.gpu.max_outstanding, GpuConfig::default().max_outstanding);
        assert_eq!(c.gpu.l2.line_bytes, 64);
    }

    #[test]
    fn every_spelling_of_a_sweep_shares_one_job_id() {
        let id = job_id_for(&parse_job_spec(GOLDEN.as_bytes()).unwrap());
        // Shorthand scheme string, reordered keys, threads spelled out.
        let respelled = r#"{
            "threads": 7,
            "ops_per_cu": 1200,
            "workloads": ["fft", "hacc"],
            "schemes": ["killi:ratio=16"],
            "vdds": [0.65, 0.6],
            "replications": 2,
            "root_seed": 2024,
            "gpu": {"mem_latency": 100, "l2_banks": 4, "line_bytes": 64, "l2_ways": 8, "l2_kb": 64, "cus": 2}
        }"#;
        assert_eq!(
            job_id_for(&parse_job_spec(respelled.as_bytes()).unwrap()),
            id
        );
        // A different sweep gets a different id.
        let other = GOLDEN.replace("\"root_seed\": 2024", "\"root_seed\": 2025");
        assert_ne!(job_id_for(&parse_job_spec(other.as_bytes()).unwrap()), id);
        let other = GOLDEN.replace("\"ratio\": 16", "\"ratio\": 32");
        assert_ne!(job_id_for(&parse_job_spec(other.as_bytes()).unwrap()), id);
    }

    #[test]
    fn fault_models_split_the_cache_key_and_spellings_do_not() {
        let with_fm = |fm: &str| {
            GOLDEN.replace(
                "\"root_seed\": 2024,",
                &format!("\"root_seed\": 2024, \"fault_model\": {fm},"),
            )
        };
        let id = job_id_for(&parse_job_spec(GOLDEN.as_bytes()).unwrap());
        // The explicit default spelling shares the implicit default's key.
        let explicit = with_fm("\"stuck-at\"");
        assert_eq!(
            job_id_for(&parse_job_spec(explicit.as_bytes()).unwrap()),
            id
        );
        // Shorthand and object spellings of one model agree with each
        // other but never with a different model or the default.
        let shorthand = with_fm("\"clustered:rows=8,corr=0.5\"");
        let object = with_fm("{\"name\": \"clustered\", \"params\": {\"corr\": 0.5, \"rows\": 8}}");
        let clustered_id = job_id_for(&parse_job_spec(shorthand.as_bytes()).unwrap());
        assert_eq!(
            job_id_for(&parse_job_spec(object.as_bytes()).unwrap()),
            clustered_id
        );
        assert_ne!(clustered_id, id);
        let transient = with_fm("\"transient:rate=0.001\"");
        assert_ne!(
            job_id_for(&parse_job_spec(transient.as_bytes()).unwrap()),
            clustered_id
        );
        // Unknown models and params are rejected at submission.
        assert!(parse_job_spec(with_fm("\"no-such-model\"").as_bytes()).is_err());
        assert!(parse_job_spec(with_fm("\"clustered:bogus=1\"").as_bytes()).is_err());
    }

    #[test]
    fn typos_and_bad_values_are_typed_errors() {
        for (body, what) in [
            ("not json", "non-JSON"),
            ("[1,2,3]", "non-object"),
            (r#"{"root_seed": 1}"#, "missing fields"),
            (
                &GOLDEN.replace("\"replications\"", "\"replciations\""),
                "typo'd key",
            ),
            (
                &GOLDEN.replace("\"cus\": 2", "\"cuss\": 2"),
                "typo'd gpu key",
            ),
            (
                &GOLDEN.replace("\"replications\": 2", "\"replications\": 0"),
                "zero replications",
            ),
            (
                &GOLDEN.replace("[0.65, 0.6]", "[65, 60]"),
                "vdds out of range",
            ),
            (&GOLDEN.replace("\"fft\"", "\"sort\""), "unknown workload"),
            (
                &GOLDEN.replace("\"killi\"", "\"frobnicate\""),
                "unknown scheme",
            ),
            (
                &GOLDEN.replace("\"ratio\": 16", "\"ratio\": \"lots\""),
                "ill-typed param",
            ),
        ] {
            assert!(
                parse_job_spec(body.as_bytes()).is_err(),
                "{what} should be rejected"
            );
        }
        // Invalid UTF-8 bodies too.
        assert!(parse_job_spec(&[0x7b, 0xff, 0xfe, 0x7d]).is_err());
    }

    const VMIN_GOLDEN: &str = r#"{
        "mode": "vmin",
        "root_seed": 2024,
        "dies": 16,
        "lines": 512,
        "target": 0.99,
        "vdds": [0.55, 0.6, 0.65],
        "schemes": ["killi:ratio=16", "flair"]
    }"#;

    #[test]
    fn parses_vmin_jobs_and_keys_them_apart_from_sweeps() {
        let JobSpec::Vmin(validated) = parse_job_spec(VMIN_GOLDEN.as_bytes()).unwrap() else {
            panic!("mode vmin must parse as a campaign");
        };
        let c = validated.config();
        assert_eq!(c.root_seed, 2024);
        assert_eq!(c.dies, 16);
        assert_eq!(c.lines, 512);
        assert_eq!(c.vdds, [0.55, 0.6, 0.65]);
        assert_eq!(c.schemes.len(), 2);
        // mode: "sweep" spelled out matches the implicit default.
        let explicit = GOLDEN.replace(
            "\"root_seed\": 2024,",
            "\"mode\": \"sweep\", \"root_seed\": 2024,",
        );
        assert_eq!(
            job_id_for(&parse_job_spec(explicit.as_bytes()).unwrap()),
            job_id_for(&parse_job_spec(GOLDEN.as_bytes()).unwrap())
        );
        // Sweep and vmin ids live in different key spaces.
        assert_ne!(
            job_id_for(&parse_job_spec(VMIN_GOLDEN.as_bytes()).unwrap()),
            job_id_for(&parse_job_spec(GOLDEN.as_bytes()).unwrap())
        );
        // Threads is execution-only for campaigns too.
        let threaded =
            VMIN_GOLDEN.replace("\"mode\": \"vmin\",", "\"mode\": \"vmin\", \"threads\": 3,");
        assert_eq!(
            job_id_for(&parse_job_spec(threaded.as_bytes()).unwrap()),
            job_id_for(&parse_job_spec(VMIN_GOLDEN.as_bytes()).unwrap())
        );
    }

    #[test]
    fn vmin_payload_errors_are_typed() {
        for (body, what) in [
            (
                VMIN_GOLDEN.replace("\"dies\": 16,", "").as_str(),
                "missing dies",
            ),
            (
                VMIN_GOLDEN
                    .replace("\"target\": 0.99", "\"replications\": 2")
                    .as_str(),
                "sweep-only key in a vmin job",
            ),
            (
                VMIN_GOLDEN.replace("[0.55, 0.6, 0.65]", "[0.625]").as_str(),
                "single-point grid",
            ),
            (
                VMIN_GOLDEN.replace("\"vmin\"", "\"vmax\"").as_str(),
                "unknown mode",
            ),
            (
                VMIN_GOLDEN
                    .replace("\"target\": 0.99", "\"target\": 1.5")
                    .as_str(),
                "target out of range",
            ),
        ] {
            assert!(
                parse_job_spec(body.as_bytes()).is_err(),
                "{what} should be rejected"
            );
        }
    }

    #[test]
    fn vmin_jobs_run_to_a_checkable_report() {
        let spec = parse_job_spec(VMIN_GOLDEN.as_bytes()).unwrap();
        let report = spec.run();
        killi_vmin::check_report(&report).expect("service-run campaign report validates");
    }
}

//! Minimal HTTP/1.1 framing over `std::net`.
//!
//! Just enough of the protocol for the service's five endpoints: one
//! request per connection (`Connection: close`), `Content-Length`
//! bodies only (no chunked encoding), a hard body cap so hostile
//! clients cannot balloon memory, and read timeouts so a stalled peer
//! cannot pin a worker. Parsing failures are typed [`HttpError`]s the
//! server turns into 4xx responses — never panics.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest accepted request body (and header section), in bytes.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Per-connection socket read timeout.
pub const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Why a request could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line, header, or framing.
    Malformed(String),
    /// The declared or actual body exceeds [`MAX_BODY_BYTES`].
    TooLarge,
    /// Socket-level failure (timeout, reset).
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(reason) => write!(f, "malformed request: {reason}"),
            HttpError::TooLarge => write!(f, "body exceeds {MAX_BODY_BYTES} bytes"),
            HttpError::Io(reason) => write!(f, "i/o error: {reason}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method verb, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path (query strings are not used by the API).
    pub path: String,
    /// Body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

fn malformed(reason: &str) -> HttpError {
    HttpError::Malformed(reason.to_string())
}

/// Reads one request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    stream
        .set_read_timeout(Some(READ_TIMEOUT))
        .map_err(|e| HttpError::Io(e.to_string()))?;
    let mut reader = BufReader::new(stream);

    let mut line = String::new();
    read_line(&mut reader, &mut line)?;
    let (method, path) = {
        let mut parts = line.split_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| malformed("empty request line"))?;
        let path = parts.next().ok_or_else(|| malformed("missing path"))?;
        let version = parts.next().ok_or_else(|| malformed("missing version"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(malformed("not HTTP/1.x"));
        }
        (method.to_string(), path.to_string())
    };

    let mut content_length: usize = 0;
    let mut header_bytes = 0;
    loop {
        line.clear();
        read_line(&mut reader, &mut line)?;
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if header_bytes > MAX_BODY_BYTES {
            return Err(HttpError::TooLarge);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(malformed("header without colon"));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| malformed("bad content-length"))?;
            if content_length > MAX_BODY_BYTES {
                return Err(HttpError::TooLarge);
            }
        }
    }

    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| HttpError::Io(e.to_string()))?;
    Ok(Request { method, path, body })
}

/// Reads one CRLF- (or LF-) terminated line, without the terminator.
fn read_line(reader: &mut BufReader<&mut TcpStream>, out: &mut String) -> Result<(), HttpError> {
    out.clear();
    let mut buf = Vec::new();
    // Bound the line read so an unterminated line cannot grow forever.
    let mut limited = reader.take(MAX_BODY_BYTES as u64 + 1);
    limited
        .read_until(b'\n', &mut buf)
        .map_err(|e| HttpError::Io(e.to_string()))?;
    if buf.len() > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }
    if buf.last() != Some(&b'\n') {
        return Err(malformed("unterminated line"));
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    let text = std::str::from_utf8(&buf).map_err(|_| malformed("non-utf8 header"))?;
    out.push_str(text);
    Ok(())
}

/// Standard reason phrase of the handful of statuses the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// One response to write. Bodies are JSON throughout the API.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers as `(name, value)` pairs (e.g. `Retry-After`).
    pub headers: Vec<(&'static str, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with no extra headers.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// Writes the response; errors are returned for logging, the
    /// connection is closed either way.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            reason(self.status),
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// The body of every error response: `{"error": "..."}` with the
/// message JSON-escaped through `killi-obs`.
pub fn error_body(message: &str) -> Vec<u8> {
    format!("{{\"error\":\"{}\"}}", killi_obs::escape_json(message)).into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Runs `write` against a connected client socket and returns the
    /// request as the server parsed it.
    fn roundtrip(
        write: impl FnOnce(&mut TcpStream) + Send + 'static,
    ) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            write(&mut s);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let parsed = read_request(&mut stream);
        client.join().unwrap();
        parsed
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = roundtrip(|s| {
            s.write_all(b"POST /v1/jobs HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd")
                .unwrap();
        })
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn rejects_oversize_declared_bodies() {
        let err = roundtrip(move |s| {
            let head = format!(
                "POST /v1/jobs HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            );
            s.write_all(head.as_bytes()).unwrap();
        })
        .unwrap_err();
        assert_eq!(err, HttpError::TooLarge);
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for (bytes, what) in [
            (&b"GARBAGE\r\n\r\n"[..], "one-token request line"),
            (&b"GET /x SPDY/3\r\n\r\n"[..], "bad version"),
            (
                &b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n"[..],
                "colonless header",
            ),
            (
                &b"GET /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n"[..],
                "bad content-length",
            ),
        ] {
            let owned = bytes.to_vec();
            let err = roundtrip(move |s| s.write_all(&owned).unwrap()).unwrap_err();
            assert!(
                matches!(err, HttpError::Malformed(_)),
                "{what}: got {err:?}"
            );
        }
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        let err = roundtrip(|s| {
            s.write_all(b"POST /v1/jobs HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc")
                .unwrap();
            // Close with 7 bytes missing.
        })
        .unwrap_err();
        assert!(matches!(err, HttpError::Io(_)), "got {err:?}");
    }

    #[test]
    fn response_writes_headers_and_body() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            Response::json(429, error_body("queue full"))
                .with_header("retry-after", "1")
                .write_to(&mut stream)
                .unwrap();
        });
        let mut client = TcpStream::connect(addr).unwrap();
        let mut text = String::new();
        client.read_to_string(&mut text).unwrap();
        server.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.ends_with("{\"error\":\"queue full\"}"));
    }
}

//! Process-signal plumbing without the `libc` crate.
//!
//! The repo's offline-build rule leaves no dependency to lean on, so
//! this goes through the raw C `signal(2)` ABI directly: the handler
//! just flips an `AtomicBool` (the only thing that is async-signal-safe
//! anyway), and [`Server::run`](crate::server::Server::run) polls
//! [`triggered`] from its accept loop to begin a graceful drain.
//!
//! On non-unix targets [`install`] is a no-op and shutdown is driven by
//! [`Handle::shutdown`](crate::server::Handle::shutdown) alone.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has been delivered since [`install`].
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::SeqCst)
}

/// Test hook: simulates signal delivery in-process.
pub fn trigger_for_test() {
    TRIGGERED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::TRIGGERED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// POSIX `signal(2)`; handler and return are `void (*)(int)`
        /// spelled as `usize` to avoid declaring a C function-pointer
        /// type.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        TRIGGERED.store(true, Ordering::SeqCst);
    }

    /// Registers the SIGTERM/SIGINT handlers.
    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// Signals are unix-only here; shutdown goes through the handle.
    pub fn install() {}
}

pub use imp::install;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_safe_and_trigger_flag_sticks() {
        install();
        // Not triggered just by installing... but another test (or a
        // prior trigger_for_test) may already have set the flag, so
        // only assert the one-way transition.
        trigger_for_test();
        assert!(triggered());
    }
}

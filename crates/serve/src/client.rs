//! A matching minimal HTTP client for the CLI subcommands
//! (`killi submit`/`status`/`fetch`) and the integration tests.
//!
//! Speaks exactly the dialect the server does: HTTP/1.1, one request
//! per connection, `Content-Length` bodies. Base URLs are
//! `http://host:port` only — the service is a localhost/LAN tool, not
//! an internet client.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// How long the client waits for a connect or a response.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(60);

/// One response as the client sees it.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers, lowercased names.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// A header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy — error bodies are always ASCII).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A client bound to one `http://host:port` base URL.
#[derive(Debug, Clone)]
pub struct Client {
    authority: String,
}

impl Client {
    /// Parses a base URL. Accepts `http://host:port` (an optional
    /// trailing slash is fine) or a bare `host:port`.
    pub fn new(base_url: &str) -> Result<Client, String> {
        let rest = base_url.strip_prefix("http://").unwrap_or(base_url);
        if let Some(scheme) = rest.split("://").nth(1).map(|_| rest) {
            return Err(format!("unsupported URL scheme in `{scheme}`"));
        }
        let authority = rest.trim_end_matches('/');
        if authority.is_empty() || !authority.contains(':') {
            return Err(format!("`{base_url}` is not host:port"));
        }
        Ok(Client {
            authority: authority.to_string(),
        })
    }

    /// GETs a path.
    pub fn get(&self, path: &str) -> Result<ClientResponse, String> {
        self.request("GET", path, &[])
    }

    /// POSTs a body to a path.
    pub fn post(&self, path: &str, body: &[u8]) -> Result<ClientResponse, String> {
        self.request("POST", path, body)
    }

    fn request(&self, method: &str, path: &str, body: &[u8]) -> Result<ClientResponse, String> {
        let mut stream = TcpStream::connect(&self.authority)
            .map_err(|e| format!("cannot connect to {}: {e}", self.authority))?;
        stream
            .set_read_timeout(Some(CLIENT_TIMEOUT))
            .map_err(|e| e.to_string())?;
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            self.authority,
            body.len()
        );
        stream
            .write_all(head.as_bytes())
            .map_err(|e| e.to_string())?;
        stream.write_all(body).map_err(|e| e.to_string())?;
        stream.flush().map_err(|e| e.to_string())?;

        let mut raw = Vec::new();
        stream
            .read_to_end(&mut raw)
            .map_err(|e| format!("reading response: {e}"))?;
        parse_response(&raw)
    }
}

fn parse_response(raw: &[u8]) -> Result<ClientResponse, String> {
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("response has no header terminator")?;
    let head = std::str::from_utf8(&raw[..header_end]).map_err(|_| "non-utf8 response head")?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or("empty response")?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line `{status_line}`"))?;
    let headers = lines
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();
    Ok(ClientResponse {
        status,
        headers,
        body: raw[header_end + 4..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_url_spellings() {
        for ok in [
            "http://127.0.0.1:8080",
            "127.0.0.1:8080",
            "http://[::1]:99/",
        ] {
            assert!(Client::new(ok).is_ok(), "{ok} should parse");
        }
        for bad in ["https://x:1", "ftp://x:1", "localhost", ""] {
            assert!(Client::new(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn parses_a_response_with_headers_and_body() {
        let raw =
            b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 1\r\ncontent-length: 2\r\n\r\nhi";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert_eq!(resp.text(), "hi");
    }

    #[test]
    fn garbage_responses_are_errors_not_panics() {
        assert!(parse_response(b"").is_err());
        assert!(parse_response(b"HTTP/1.1\r\n\r\n").is_err());
        assert!(parse_response(b"hello there").is_err());
    }
}

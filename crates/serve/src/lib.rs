//! `killi-serve`: the sweep engine as a long-lived service.
//!
//! A dependency-free (`std::net` only) HTTP/1.1 daemon that accepts
//! sweep jobs, executes them on a fixed worker pool, and answers
//! duplicate submissions from a content-addressed result cache:
//!
//! - `POST /v1/jobs` — submit a [`spec`] JSON body; `202` with a job id
//!   for a new job, `200` for a known one (any state), `429` +
//!   `Retry-After` when the bounded queue is full, `503` while
//!   draining, `400` with a typed error for anything malformed.
//! - `GET /v1/jobs/:id` — job state.
//! - `GET /v1/jobs/:id/report` — the `killi-sweep/v2` report, exactly
//!   the bytes `run_sweep` emits for that config (`409` until done).
//! - `GET /v1/metrics` — a [`killi_obs::ServeMetrics`] snapshot.
//! - `GET /v1/healthz` — liveness.
//!
//! The cache key is the [`killi_bench::sweep::ValidatedSweepConfig`]
//! canonical JSON hashed with the in-repo splitmix64 hasher
//! ([`job_id_for`]), so any spelling of the same sweep — CLI shorthand
//! schemes, reordered JSON keys, defaults spelled out — maps to the
//! same job and is never recomputed. Graceful shutdown (SIGTERM/ctrl-c
//! via [`signal::install`], or [`server::Handle::shutdown`]) drains
//! queued and in-flight jobs before the accept loop exits.

pub mod client;
pub mod http;
pub mod server;
pub mod signal;
pub mod spec;

pub use client::Client;
pub use server::{Handle, Server, ServerConfig};
pub use spec::{job_id_for, parse_job_spec, JobSpec, SpecError};

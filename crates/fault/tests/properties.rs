//! Property-based tests for the fault model (killi-check harness).

use killi_check::check;
use killi_fault::cell_model::{CellFailureModel, FailureKind, FreqGhz, NormVdd};
use killi_fault::map::{DieFaultTable, FaultMap, MapOptions};
use killi_fault::prob::{binom_cdf, binom_pmf, binom_sf};
use killi_fault::rng::{hash3, to_unit};

/// Bit-level equality of two fault maps: every line's fault list and the
/// cached statistics (compared as bits, not approximately).
fn assert_maps_identical(a: &FaultMap, b: &FaultMap) {
    assert_eq!(a.lines(), b.lines());
    for l in 0..a.lines() {
        assert_eq!(a.line(l), b.line(l), "line {l}");
    }
    assert_eq!(a.p_cell_median().to_bits(), b.p_cell_median().to_bits());
    assert_eq!(a.mean_p_line().to_bits(), b.mean_p_line().to_bits());
}

#[test]
fn voltage_monotonicity_holds_for_any_pair() {
    check("voltage_monotonicity_holds_for_any_pair", |g| {
        let seed = g.u64();
        let v_lo = g.f64_in(0.50, 0.64);
        let v_hi = (v_lo + g.f64_in(0.005, 0.1)).min(0.7);
        let model = CellFailureModel::finfet14();
        let hi = FaultMap::generate(
            64,
            &model,
            MapOptions::new(NormVdd(v_hi), FreqGhz::PEAK, seed),
        );
        let lo = FaultMap::generate(
            64,
            &model,
            MapOptions::new(NormVdd(v_lo), FreqGhz::PEAK, seed),
        );
        for l in 0..64 {
            for f in hi.line(l) {
                assert!(lo.line(l).contains(f));
            }
        }
    });
}

#[test]
fn sparse_build_matches_dense_for_any_operating_point() {
    check("sparse_build_matches_dense_for_any_operating_point", |g| {
        let seed = g.u64();
        let vdd = NormVdd(g.f64_in(0.45, 1.0));
        let freq = FreqGhz(g.f64_in(0.3, 1.0));
        let lines = g.usize_in(1, 96);
        let model = CellFailureModel::finfet14();
        let fast = FaultMap::generate(lines, &model, MapOptions::new(vdd, freq, seed));
        let dense = FaultMap::generate(lines, &model, MapOptions::new(vdd, freq, seed).dense());
        assert_maps_identical(&fast, &dense);
    });
}

#[test]
fn die_table_derives_dense_maps_at_any_grid_point() {
    check("die_table_derives_dense_maps_at_any_grid_point", |g| {
        let seed = g.u64();
        let cap = g.f64_in(0.5, 0.64);
        let vdd = NormVdd((cap + g.f64_in(0.0, 0.3)).min(1.0));
        let lines = g.usize_in(1, 96);
        let model = CellFailureModel::finfet14();
        let table = DieFaultTable::build(lines, &model, NormVdd(cap), FreqGhz::PEAK, seed);
        let derived = table.fault_map_at(&model, vdd);
        let dense = FaultMap::generate(
            lines,
            &model,
            MapOptions::new(vdd, FreqGhz::PEAK, seed).dense(),
        );
        assert_maps_identical(&derived, &dense);
    });
}

#[test]
fn die_table_preserves_voltage_nesting() {
    check("die_table_preserves_voltage_nesting", |g| {
        let seed = g.u64();
        let cap = g.f64_in(0.5, 0.6);
        let v_lo = cap + g.f64_in(0.0, 0.05);
        let v_hi = (v_lo + g.f64_in(0.0, 0.1)).min(1.0);
        let model = CellFailureModel::finfet14();
        let table = DieFaultTable::build(64, &model, NormVdd(cap), FreqGhz::PEAK, seed);
        let lo = table.fault_map_at(&model, NormVdd(v_lo));
        let hi = table.fault_map_at(&model, NormVdd(v_hi));
        for l in 0..64 {
            for f in hi.line(l) {
                assert!(lo.line(l).contains(f), "line {l}: {f:?} not nested");
            }
        }
    });
}

#[test]
fn p_cell_monotone_in_voltage() {
    check("p_cell_monotone_in_voltage", |g| {
        let v = g.f64_in(0.45, 0.95);
        let dv = g.f64_in(0.001, 0.2);
        let m = CellFailureModel::finfet14();
        let p_lo = m.p_cell_median(NormVdd(v), FreqGhz::PEAK, FailureKind::Combined);
        let p_hi = m.p_cell_median(NormVdd(v + dv), FreqGhz::PEAK, FailureKind::Combined);
        assert!(p_hi <= p_lo);
    });
}

#[test]
fn binom_identities() {
    check("binom_identities", |g| {
        let n = 1 + g.u64_below(599);
        let k = g.u64_below(n + 1);
        let p = g.unit();
        let pmf = binom_pmf(n, k, p);
        assert!((0.0..=1.0 + 1e-9).contains(&pmf));
        if k > 0 {
            let total = binom_cdf(n, k - 1, p) + binom_sf(n, k, p);
            assert!((total - 1.0).abs() < 1e-6, "total = {total}");
        }
    });
}

#[test]
fn counter_rng_uniform_bits() {
    check("counter_rng_uniform_bits", |g| {
        let u = to_unit(hash3(g.u64(), g.u64(), g.u64()));
        assert!((0.0..1.0).contains(&u));
    });
}

#[test]
fn corruption_is_idempotent() {
    check("corruption_is_idempotent", |g| {
        let seed = g.u64();
        let data_seed = g.u64();
        let model = CellFailureModel::finfet14();
        let map = FaultMap::generate(
            32,
            &model,
            MapOptions::new(NormVdd(0.55), FreqGhz::PEAK, seed),
        );
        for l in 0..32 {
            let mut once = killi_ecc::bits::Line512::from_seed(data_seed);
            map.corrupt_data(l, &mut once);
            let mut twice = once;
            map.corrupt_data(l, &mut twice);
            assert_eq!(once, twice);
        }
    });
}

#[test]
fn mix_is_a_probability_average() {
    check("mix_is_a_probability_average", |g| {
        let v = g.f64_in(0.5, 0.7);
        let m = CellFailureModel::finfet14();
        let avg = m.mix(NormVdd(v), FreqGhz::PEAK, |p| p);
        assert!((0.0..=0.5).contains(&avg));
        // Averaging a constant returns (nearly) the constant.
        let c = m.mix(NormVdd(v), FreqGhz::PEAK, |_| 0.25);
        assert!((c - 0.25).abs() < 1e-6);
    });
}

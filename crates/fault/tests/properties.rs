//! Property-based tests for the fault model.

use killi_fault::cell_model::{CellFailureModel, FailureKind, FreqGhz, NormVdd};
use killi_fault::map::FaultMap;
use killi_fault::prob::{binom_cdf, binom_pmf, binom_sf};
use killi_fault::rng::{hash3, to_unit};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn voltage_monotonicity_holds_for_any_pair(
        seed in any::<u64>(),
        v_lo in 0.50f64..0.64,
        dv in 0.005f64..0.1,
    ) {
        let v_hi = (v_lo + dv).min(0.7);
        let model = CellFailureModel::finfet14();
        let hi = FaultMap::build(64, &model, NormVdd(v_hi), FreqGhz::PEAK, seed);
        let lo = FaultMap::build(64, &model, NormVdd(v_lo), FreqGhz::PEAK, seed);
        for l in 0..64 {
            for f in hi.line(l) {
                prop_assert!(lo.line(l).contains(f));
            }
        }
    }

    #[test]
    fn p_cell_monotone_in_voltage(v in 0.45f64..0.95, dv in 0.001f64..0.2) {
        let m = CellFailureModel::finfet14();
        let p_lo = m.p_cell_median(NormVdd(v), FreqGhz::PEAK, FailureKind::Combined);
        let p_hi = m.p_cell_median(NormVdd(v + dv), FreqGhz::PEAK, FailureKind::Combined);
        prop_assert!(p_hi <= p_lo);
    }

    #[test]
    fn binom_identities(n in 1u64..600, k in 0u64..600, p in 0.0f64..1.0) {
        prop_assume!(k <= n);
        let pmf = binom_pmf(n, k, p);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&pmf));
        if k > 0 {
            let total = binom_cdf(n, k - 1, p) + binom_sf(n, k, p);
            prop_assert!((total - 1.0).abs() < 1e-6, "total = {}", total);
        }
    }

    #[test]
    fn counter_rng_uniform_bits(seed in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        let u = to_unit(hash3(seed, a, b));
        prop_assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn corruption_is_idempotent(seed in any::<u64>(), data_seed in any::<u64>()) {
        let model = CellFailureModel::finfet14();
        let map = FaultMap::build(32, &model, NormVdd(0.55), FreqGhz::PEAK, seed);
        for l in 0..32 {
            let mut once = killi_ecc::bits::Line512::from_seed(data_seed);
            map.corrupt_data(l, &mut once);
            let mut twice = once;
            map.corrupt_data(l, &mut twice);
            prop_assert_eq!(once, twice);
        }
    }

    #[test]
    fn mix_is_a_probability_average(v in 0.5f64..0.7) {
        let m = CellFailureModel::finfet14();
        let avg = m.mix(NormVdd(v), FreqGhz::PEAK, |p| p);
        prop_assert!((0.0..=0.5).contains(&avg));
        // Averaging a constant returns (nearly) the constant.
        let c = m.mix(NormVdd(v), FreqGhz::PEAK, |_| 0.25);
        prop_assert!((c - 0.25).abs() < 1e-6);
    }
}

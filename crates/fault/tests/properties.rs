//! Property-based tests for the fault model (killi-check harness).

use killi_check::check;
use killi_fault::cell_model::{CellFailureModel, FailureKind, FreqGhz, NormVdd};
use killi_fault::map::FaultMap;
use killi_fault::prob::{binom_cdf, binom_pmf, binom_sf};
use killi_fault::rng::{hash3, to_unit};

#[test]
fn voltage_monotonicity_holds_for_any_pair() {
    check("voltage_monotonicity_holds_for_any_pair", |g| {
        let seed = g.u64();
        let v_lo = g.f64_in(0.50, 0.64);
        let v_hi = (v_lo + g.f64_in(0.005, 0.1)).min(0.7);
        let model = CellFailureModel::finfet14();
        let hi = FaultMap::build(64, &model, NormVdd(v_hi), FreqGhz::PEAK, seed);
        let lo = FaultMap::build(64, &model, NormVdd(v_lo), FreqGhz::PEAK, seed);
        for l in 0..64 {
            for f in hi.line(l) {
                assert!(lo.line(l).contains(f));
            }
        }
    });
}

#[test]
fn p_cell_monotone_in_voltage() {
    check("p_cell_monotone_in_voltage", |g| {
        let v = g.f64_in(0.45, 0.95);
        let dv = g.f64_in(0.001, 0.2);
        let m = CellFailureModel::finfet14();
        let p_lo = m.p_cell_median(NormVdd(v), FreqGhz::PEAK, FailureKind::Combined);
        let p_hi = m.p_cell_median(NormVdd(v + dv), FreqGhz::PEAK, FailureKind::Combined);
        assert!(p_hi <= p_lo);
    });
}

#[test]
fn binom_identities() {
    check("binom_identities", |g| {
        let n = 1 + g.u64_below(599);
        let k = g.u64_below(n + 1);
        let p = g.unit();
        let pmf = binom_pmf(n, k, p);
        assert!((0.0..=1.0 + 1e-9).contains(&pmf));
        if k > 0 {
            let total = binom_cdf(n, k - 1, p) + binom_sf(n, k, p);
            assert!((total - 1.0).abs() < 1e-6, "total = {total}");
        }
    });
}

#[test]
fn counter_rng_uniform_bits() {
    check("counter_rng_uniform_bits", |g| {
        let u = to_unit(hash3(g.u64(), g.u64(), g.u64()));
        assert!((0.0..1.0).contains(&u));
    });
}

#[test]
fn corruption_is_idempotent() {
    check("corruption_is_idempotent", |g| {
        let seed = g.u64();
        let data_seed = g.u64();
        let model = CellFailureModel::finfet14();
        let map = FaultMap::build(32, &model, NormVdd(0.55), FreqGhz::PEAK, seed);
        for l in 0..32 {
            let mut once = killi_ecc::bits::Line512::from_seed(data_seed);
            map.corrupt_data(l, &mut once);
            let mut twice = once;
            map.corrupt_data(l, &mut twice);
            assert_eq!(once, twice);
        }
    });
}

#[test]
fn mix_is_a_probability_average() {
    check("mix_is_a_probability_average", |g| {
        let v = g.f64_in(0.5, 0.7);
        let m = CellFailureModel::finfet14();
        let avg = m.mix(NormVdd(v), FreqGhz::PEAK, |p| p);
        assert!((0.0..=0.5).contains(&avg));
        // Averaging a constant returns (nearly) the constant.
        let c = m.mix(NormVdd(v), FreqGhz::PEAK, |_| 0.25);
        assert!((c - 0.25).abs() < 1e-6);
    });
}

//! Persistent low-voltage fault maps.
//!
//! A fault map assigns every SRAM cell of a cache a *stuck-at* fault iff its
//! per-cell uniform threshold (a pure hash of `(seed, line, cell)`) falls
//! below the voltage/frequency-dependent failure probability. This gives the
//! properties the paper measured on silicon (§3):
//!
//! - **persistence** — the same map is seen by every access at a given
//!   operating point,
//! - **voltage/frequency monotonicity** — a cell failing at `V` fails at all
//!   lower voltages (same threshold, larger `p`),
//! - **masking** — each faulty cell is stuck at a random polarity, so a
//!   write whose bit matches the stuck value is *masked* until a later write
//!   flips it (the §5.6.2 hazard emerges naturally).

use killi_ecc::bch::DectedCode;
use killi_ecc::bits::{Line512, LINE_BITS};
use killi_ecc::secded::SecdedCode;

use crate::cell_model::{CellFailureModel, FailureKind, FreqGhz, NormVdd};
use crate::rng::{hash3, hash3_base, hash3_with_base, to_unit, unit_threshold};

/// Cell-index layout of a protected line. Data cells come first; metadata
/// cells follow so every protection scheme draws its faults from the same
/// per-line cell pool.
pub mod layout {
    /// Cells `0..512`: the data payload.
    pub const DATA: std::ops::Range<u16> = 0..512;
    /// Cells `512..528`: the 16 training-mode parity bits (the 4
    /// stable-mode parity bits reuse cells `512..516`).
    pub const PARITY16: std::ops::Range<u16> = 512..528;
    /// Cells `512..516`: the 4 stable-mode parity bits.
    pub const PARITY4: std::ops::Range<u16> = 512..516;
    /// Cells `528..539`: SECDED checkbits (schemes storing them in the LV
    /// array).
    pub const SECDED: std::ops::Range<u16> = 528..539;
    /// Cells `539..560`: DEC-TED checkbits (the DECTED-per-line baseline).
    pub const DECTED: std::ops::Range<u16> = 539..560;
    /// Total cells generated per line.
    pub const CELLS_PER_LINE: u16 = 560;
}

/// A persistent stuck-at fault in one cell of a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellFault {
    /// Cell index within the line (see [`layout`]).
    pub cell: u16,
    /// The value the cell is stuck at.
    pub stuck: bool,
}

/// Identifies a physical line in the cache (set-major: `set * ways + way`).
pub type LineId = usize;

/// The fault population of a cache at one operating point.
#[derive(Debug, Clone)]
pub struct FaultMap {
    faults: Vec<Box<[CellFault]>>,
    p_cell_median: f64,
    mean_p_line: f64,
    vdd: NormVdd,
    freq: FreqGhz,
    seed: u64,
}

/// Which construction [`FaultMap::generate`] uses. Both are bit-identical
/// by property test; the dense path exists as the independently-written
/// oracle the optimized path is checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Construction {
    /// Hoists the per-line hash base and the operating-point median out of
    /// the inner loop and compares hashes against an exact integer
    /// threshold ([`unit_threshold`]) instead of converting every draw to
    /// `f64`. The production path.
    #[default]
    Optimized,
    /// One [`hash3`] and one float comparison per cell, exactly as
    /// originally specified.
    DenseReference,
}

/// Options for [`FaultMap::generate`]: the operating point, the die seed,
/// and which construction to run.
#[derive(Debug, Clone, Copy)]
pub struct MapOptions {
    /// Supply voltage of the map.
    pub vdd: NormVdd,
    /// Clock frequency of the map.
    pub freq: FreqGhz,
    /// Die seed. Monte-Carlo callers derive it as
    /// `derive_seed(root, "die", &[replicate])` so the same replicate sees
    /// the same physical die at every voltage of a sweep grid.
    pub seed: u64,
    /// Construction to run (defaults to [`Construction::Optimized`]).
    pub construction: Construction,
}

impl MapOptions {
    /// Options for the optimized construction at an operating point.
    pub fn new(vdd: NormVdd, freq: FreqGhz, seed: u64) -> Self {
        MapOptions {
            vdd,
            freq,
            seed,
            construction: Construction::Optimized,
        }
    }

    /// Switches to the dense reference construction.
    #[must_use]
    pub fn dense(mut self) -> Self {
        self.construction = Construction::DenseReference;
        self
    }
}

impl FaultMap {
    /// Builds the fault map for `lines` physical lines with the given
    /// options — the one seeded constructor behind every fault model.
    pub fn generate(lines: usize, model: &CellFailureModel, opts: MapOptions) -> Self {
        match opts.construction {
            Construction::Optimized => {
                Self::generate_optimized(lines, model, opts.vdd, opts.freq, opts.seed)
            }
            Construction::DenseReference => {
                Self::generate_dense(lines, model, opts.vdd, opts.freq, opts.seed)
            }
        }
    }

    /// The optimized construction (see [`Construction::Optimized`]).
    fn generate_optimized(
        lines: usize,
        model: &CellFailureModel,
        vdd: NormVdd,
        freq: FreqGhz,
        seed: u64,
    ) -> Self {
        let median = model.p_cell_median(vdd, freq, FailureKind::Combined);
        let mut faults = Vec::with_capacity(lines);
        let mut scratch = Vec::new();
        let mut mean_p_line = 0.0;
        for line in 0..lines {
            let base = hash3_base(seed, line as u64);
            // Per-line variation draw, frozen across voltages so fault
            // populations at different operating points stay nested.
            let z = standard_normal(hash3_with_base(base, 0xF00D));
            let p = model.line_p(median, z);
            mean_p_line += p;
            let threshold = unit_threshold(p);
            scratch.clear();
            if threshold > 0 {
                for cell in 0..layout::CELLS_PER_LINE {
                    let h = hash3_with_base(base, u64::from(cell));
                    if (h >> 11) < threshold {
                        scratch.push(CellFault {
                            cell,
                            stuck: h & (1 << 63) != 0,
                        });
                    }
                }
            }
            faults.push(scratch.as_slice().into());
        }
        FaultMap {
            faults,
            p_cell_median: median,
            mean_p_line: mean_p_line / lines.max(1) as f64,
            vdd,
            freq,
            seed,
        }
    }

    /// Shim for the perf_equivalence oracle, which needs the dense path
    /// by name. Everything else goes through [`Self::generate`].
    #[doc(hidden)]
    pub fn build_dense(
        lines: usize,
        model: &CellFailureModel,
        vdd: NormVdd,
        freq: FreqGhz,
        seed: u64,
    ) -> Self {
        Self::generate(lines, model, MapOptions::new(vdd, freq, seed).dense())
    }

    /// The dense reference construction (see
    /// [`Construction::DenseReference`]). The optimized construction and
    /// the sparse [`DieFaultTable`] derivation are property-tested to
    /// reproduce this map bit for bit.
    fn generate_dense(
        lines: usize,
        model: &CellFailureModel,
        vdd: NormVdd,
        freq: FreqGhz,
        seed: u64,
    ) -> Self {
        let mut faults = Vec::with_capacity(lines);
        let mut scratch = Vec::new();
        let mut mean_p_line = 0.0;
        for line in 0..lines {
            let z = standard_normal(hash3(seed, line as u64, 0xF00D));
            let p = model.p_cell_for_line(vdd, freq, FailureKind::Combined, z);
            mean_p_line += p;
            scratch.clear();
            for cell in 0..layout::CELLS_PER_LINE {
                let h = hash3(seed, line as u64, u64::from(cell));
                if to_unit(h) < p {
                    scratch.push(CellFault {
                        cell,
                        stuck: h & (1 << 63) != 0,
                    });
                }
            }
            faults.push(scratch.as_slice().into());
        }
        FaultMap {
            faults,
            p_cell_median: model.p_cell_median(vdd, freq, FailureKind::Combined),
            mean_p_line: mean_p_line / lines.max(1) as f64,
            vdd,
            freq,
            seed,
        }
    }

    /// A map assembled from precomputed parts — the seam fault models that
    /// post-process another model's output (e.g. transient overlays) use
    /// to keep the derived statistics coherent.
    pub(crate) fn from_parts(
        faults: Vec<Box<[CellFault]>>,
        p_cell_median: f64,
        mean_p_line: f64,
        vdd: NormVdd,
        freq: FreqGhz,
        seed: u64,
    ) -> Self {
        FaultMap {
            faults,
            p_cell_median,
            mean_p_line,
            vdd,
            freq,
            seed,
        }
    }

    /// A map with an explicit fault population (targeted fault-injection
    /// tests and ablations).
    pub fn from_faults(faults: Vec<Vec<CellFault>>) -> Self {
        FaultMap {
            faults: faults.into_iter().map(|v| v.into_boxed_slice()).collect(),
            p_cell_median: 0.0,
            mean_p_line: 0.0,
            vdd: NormVdd::NOMINAL,
            freq: FreqGhz::PEAK,
            seed: 0,
        }
    }

    /// A map with no faults (nominal voltage baseline).
    pub fn fault_free(lines: usize) -> Self {
        FaultMap {
            faults: vec![Box::from([]); lines],
            p_cell_median: 0.0,
            mean_p_line: 0.0,
            vdd: NormVdd::NOMINAL,
            freq: FreqGhz::PEAK,
            seed: 0,
        }
    }

    /// Number of physical lines covered.
    pub fn lines(&self) -> usize {
        self.faults.len()
    }

    /// The median per-cell failure probability the map was drawn from.
    pub fn p_cell_median(&self) -> f64 {
        self.p_cell_median
    }

    /// The realized mean per-line cell failure probability of this map.
    pub fn mean_p_line(&self) -> f64 {
        self.mean_p_line
    }

    /// The operating point of this map.
    pub fn operating_point(&self) -> (NormVdd, FreqGhz) {
        (self.vdd, self.freq)
    }

    /// The seed the map was drawn from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All faults of a line.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    pub fn line(&self, line: LineId) -> &[CellFault] {
        &self.faults[line]
    }

    /// Number of faults among a line's cells within `range`.
    pub fn count_in(&self, line: LineId, range: std::ops::Range<u16>) -> usize {
        self.faults[line]
            .iter()
            .filter(|f| range.contains(&f.cell))
            .count()
    }

    /// Number of faulty *data* cells in a line.
    pub fn data_fault_count(&self, line: LineId) -> usize {
        self.count_in(line, layout::DATA)
    }

    /// Applies stuck-at corruption to a line's data payload, as the SRAM
    /// array would store it.
    pub fn corrupt_data(&self, line: LineId, data: &mut Line512) {
        for f in self.faults[line].iter() {
            if f.cell < LINE_BITS as u16 {
                data.set_bit(f.cell as usize, f.stuck);
            }
        }
    }

    /// Applies stuck-at corruption to the 16 training-mode parity cells.
    pub fn corrupt_parity16(&self, line: LineId, parity: u16) -> u16 {
        let mut out = parity;
        for f in self.faults[line].iter() {
            if layout::PARITY16.contains(&f.cell) {
                let bit = f.cell - layout::PARITY16.start;
                if f.stuck {
                    out |= 1 << bit;
                } else {
                    out &= !(1 << bit);
                }
            }
        }
        out
    }

    /// Applies stuck-at corruption to the 4 stable-mode parity cells.
    pub fn corrupt_parity4(&self, line: LineId, parity: u8) -> u8 {
        let mut out = parity;
        for f in self.faults[line].iter() {
            if layout::PARITY4.contains(&f.cell) {
                let bit = f.cell - layout::PARITY4.start;
                if f.stuck {
                    out |= 1 << bit;
                } else {
                    out &= !(1 << bit);
                }
            }
        }
        out
    }

    /// Applies stuck-at corruption to SECDED checkbit cells (for schemes
    /// storing checkbits in the LV array).
    pub fn corrupt_secded(&self, line: LineId, code: SecdedCode) -> SecdedCode {
        let mut out = code.0;
        for f in self.faults[line].iter() {
            if layout::SECDED.contains(&f.cell) {
                let bit = f.cell - layout::SECDED.start;
                if f.stuck {
                    out |= 1 << bit;
                } else {
                    out &= !(1 << bit);
                }
            }
        }
        SecdedCode(out)
    }

    /// Applies stuck-at corruption to DEC-TED checkbit cells.
    pub fn corrupt_dected(&self, line: LineId, code: DectedCode) -> DectedCode {
        let mut out = code.0;
        for f in self.faults[line].iter() {
            if layout::DECTED.contains(&f.cell) {
                let bit = u32::from(f.cell - layout::DECTED.start);
                if f.stuck {
                    out |= 1 << bit;
                } else {
                    out &= !(1 << bit);
                }
            }
        }
        DectedCode(out)
    }

    /// Histogram of data-fault counts per line: `hist[k]` = number of lines
    /// with exactly `k` faulty data cells (last bucket aggregates the rest).
    pub fn data_fault_histogram(&self, buckets: usize) -> Vec<usize> {
        let mut hist = vec![0usize; buckets];
        for line in 0..self.lines() {
            let n = self.data_fault_count(line).min(buckets - 1);
            hist[n] += 1;
        }
        hist
    }
}

/// Sparse per-die fault memo: the cross-voltage factorization of
/// [`FaultMap::generate`].
///
/// Cell hashes depend only on `(seed, line, cell)` — voltage enters solely
/// through the per-line probability threshold — so all maps of one die over
/// a voltage grid share one hash pass. The table is built once at the
/// grid's *cap* (lowest) voltage, keeping only the cells faulty there
/// (their count is tiny at realistic `p_cell`); by voltage-monotone
/// nesting, the fault set at any voltage `>=` the cap is a subset of these
/// candidates, so [`Self::fault_map_at`] derives a bit-identical
/// [`FaultMap`] by filtering the sparse candidate list against that
/// voltage's threshold instead of re-hashing every cell of every line.
#[derive(Debug, Clone)]
pub struct DieFaultTable {
    /// Per line, in cell order: `(h >> 11, fault)` for every candidate
    /// cell (faulty at the cap voltage).
    candidates: Vec<Box<[(u64, CellFault)]>>,
    /// Per-line frozen variation draws.
    z: Vec<f64>,
    cap_vdd: NormVdd,
    freq: FreqGhz,
    seed: u64,
}

impl DieFaultTable {
    /// Builds the candidate table for `lines` physical lines, covering all
    /// voltages `>= cap_vdd` at frequency `freq`.
    pub fn build(
        lines: usize,
        model: &CellFailureModel,
        cap_vdd: NormVdd,
        freq: FreqGhz,
        seed: u64,
    ) -> Self {
        let median = model.p_cell_median(cap_vdd, freq, FailureKind::Combined);
        let mut candidates = Vec::with_capacity(lines);
        let mut z_draws = Vec::with_capacity(lines);
        let mut scratch = Vec::new();
        for line in 0..lines {
            let base = hash3_base(seed, line as u64);
            let z = standard_normal(hash3_with_base(base, 0xF00D));
            z_draws.push(z);
            let threshold = unit_threshold(model.line_p(median, z));
            scratch.clear();
            if threshold > 0 {
                for cell in 0..layout::CELLS_PER_LINE {
                    let h = hash3_with_base(base, u64::from(cell));
                    if (h >> 11) < threshold {
                        scratch.push((
                            h >> 11,
                            CellFault {
                                cell,
                                stuck: h & (1 << 63) != 0,
                            },
                        ));
                    }
                }
            }
            candidates.push(scratch.as_slice().into());
        }
        DieFaultTable {
            candidates,
            z: z_draws,
            cap_vdd,
            freq,
            seed,
        }
    }

    /// Number of physical lines covered.
    pub fn lines(&self) -> usize {
        self.candidates.len()
    }

    /// The lowest voltage this table can derive maps for.
    pub fn cap_vdd(&self) -> NormVdd {
        self.cap_vdd
    }

    /// Derives the fault map of this die at `vdd`, bit-identical to
    /// `FaultMap::generate(lines, model, MapOptions::new(vdd, freq, seed))`
    /// with the table's frequency and seed.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is below the table's cap voltage (fault sets there
    /// may exceed the candidate pool) or if `model` disagrees with the
    /// table's cap-voltage candidate census (a different model than the
    /// table was built with).
    pub fn fault_map_at(&self, model: &CellFailureModel, vdd: NormVdd) -> FaultMap {
        assert!(
            vdd.0 >= self.cap_vdd.0,
            "requested vdd {} below table cap {}",
            vdd.0,
            self.cap_vdd.0
        );
        let median = model.p_cell_median(vdd, self.freq, FailureKind::Combined);
        let cap_median = model.p_cell_median(self.cap_vdd, self.freq, FailureKind::Combined);
        let mut faults = Vec::with_capacity(self.lines());
        let mut mean_p_line = 0.0;
        for (line, cands) in self.candidates.iter().enumerate() {
            let z = self.z[line];
            let p = model.line_p(median, z);
            mean_p_line += p;
            let threshold = unit_threshold(p);
            let cap_threshold = unit_threshold(model.line_p(cap_median, z));
            assert!(
                threshold <= cap_threshold,
                "model not monotone against table cap at line {line}"
            );
            let line_faults: Vec<CellFault> = cands
                .iter()
                .filter(|(key, _)| *key < threshold)
                .map(|&(_, f)| f)
                .collect();
            faults.push(line_faults.into_boxed_slice());
        }
        FaultMap {
            faults,
            p_cell_median: median,
            mean_p_line: mean_p_line / self.lines().max(1) as f64,
            vdd,
            freq: self.freq,
            seed: self.seed,
        }
    }
}

/// Converts 64 uniform bits to a standard-normal deviate via the inverse
/// CDF (Acklam's rational approximation; far more accuracy than the fault
/// model needs).
pub(crate) fn standard_normal(h: u64) -> f64 {
    let u = crate::rng::to_unit(h).clamp(1e-12, 1.0 - 1e-12);
    // Coefficients of Acklam's approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;
    if u < P_LOW {
        let q = (-2.0 * u.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if u <= 1.0 - P_LOW {
        let q = u - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - u).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CellFailureModel {
        CellFailureModel::finfet14()
    }

    /// Optimized-construction shorthand for the tests below.
    fn build(lines: usize, vdd: NormVdd, freq: FreqGhz, seed: u64) -> FaultMap {
        FaultMap::generate(lines, &model(), MapOptions::new(vdd, freq, seed))
    }

    /// Replicate shorthand: derives the die seed the way the sweep does.
    fn build_replicate(lines: usize, vdd: NormVdd, root_seed: u64, replicate: u64) -> FaultMap {
        let die_seed = crate::rng::derive_seed(root_seed, "die", &[replicate]);
        build(lines, vdd, FreqGhz::PEAK, die_seed)
    }

    #[test]
    fn fault_free_map_is_empty() {
        let m = FaultMap::fault_free(64);
        assert_eq!(m.lines(), 64);
        for l in 0..64 {
            assert!(m.line(l).is_empty());
            assert_eq!(m.data_fault_count(l), 0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = build(128, NormVdd(0.575), FreqGhz::PEAK, 7);
        let b = build(128, NormVdd(0.575), FreqGhz::PEAK, 7);
        let c = build(128, NormVdd(0.575), FreqGhz::PEAK, 8);
        for l in 0..128 {
            assert_eq!(a.line(l), b.line(l));
        }
        let total_a: usize = (0..128).map(|l| a.line(l).len()).sum();
        let total_c: usize = (0..128).map(|l| c.line(l).len()).sum();
        assert_ne!((total_a, a.seed()), (total_c, c.seed()));
    }

    #[test]
    fn voltage_monotone_inclusion() {
        let hi = build(256, NormVdd(0.625), FreqGhz::PEAK, 42);
        let lo = build(256, NormVdd(0.575), FreqGhz::PEAK, 42);
        for l in 0..256 {
            for f in hi.line(l) {
                assert!(
                    lo.line(l).contains(f),
                    "fault {f:?} at 0.625 missing at 0.575 (line {l})"
                );
            }
        }
        let total_hi: usize = (0..256).map(|l| hi.line(l).len()).sum();
        let total_lo: usize = (0..256).map(|l| lo.line(l).len()).sum();
        assert!(total_lo > total_hi);
    }

    #[test]
    fn replicate_maps_are_deterministic_and_nested_across_voltage() {
        let a = build_replicate(64, NormVdd(0.6), 42, 3);
        let b = build_replicate(64, NormVdd(0.6), 42, 3);
        let other = build_replicate(64, NormVdd(0.6), 42, 4);
        for l in 0..64 {
            assert_eq!(a.line(l), b.line(l));
        }
        assert!(
            (0..64).any(|l| a.line(l) != other.line(l)),
            "distinct replicates must draw distinct dies"
        );
        // Same replicate across the voltage grid = same die: monotone
        // nesting must hold exactly as for a shared raw seed.
        let lo = build_replicate(64, NormVdd(0.55), 42, 3);
        for l in 0..64 {
            for f in a.line(l) {
                assert!(lo.line(l).contains(f));
            }
        }
    }

    #[test]
    fn frequency_monotone_inclusion() {
        let slow = build(256, NormVdd(0.575), FreqGhz(0.4), 42);
        let fast = build(256, NormVdd(0.575), FreqGhz(1.0), 42);
        for l in 0..256 {
            for f in slow.line(l) {
                assert!(fast.line(l).contains(f));
            }
        }
    }

    #[test]
    fn fault_rate_tracks_realized_line_rates() {
        let lines = 2000;
        let m = build(lines, NormVdd(0.575), FreqGhz::PEAK, 1);
        let total: usize = (0..lines).map(|l| m.line(l).len()).sum();
        let expected = m.mean_p_line() * lines as f64 * f64::from(layout::CELLS_PER_LINE);
        let ratio = total as f64 / expected;
        assert!((0.9..1.1).contains(&ratio), "ratio = {ratio}");
        // Heavy tail: the mean line rate far exceeds the median.
        assert!(m.mean_p_line() > m.p_cell_median());
    }

    #[test]
    fn corrupt_data_sets_stuck_values() {
        let m = build(512, NormVdd(0.55), FreqGhz::PEAK, 3);
        // Find a line with at least one data fault.
        let line = (0..512)
            .find(|&l| m.data_fault_count(l) > 0)
            .expect("a faulty line at 0.55 VDD");
        let mut data = Line512::from_seed(99);
        m.corrupt_data(line, &mut data);
        for f in m.line(line) {
            if f.cell < 512 {
                assert_eq!(data.bit(f.cell as usize), f.stuck);
            }
        }
        // Corruption is idempotent (persistence).
        let snapshot = data;
        m.corrupt_data(line, &mut data);
        assert_eq!(data, snapshot);
    }

    #[test]
    fn masked_fault_leaves_data_intact() {
        let m = build(2048, NormVdd(0.625), FreqGhz::PEAK, 5);
        // A write whose bit already equals the stuck value is masked.
        let line = (0..2048)
            .find(|&l| m.data_fault_count(l) == 1)
            .expect("a single-fault line");
        let f = m.line(line).iter().find(|f| f.cell < 512).copied().unwrap();
        let mut data = Line512::zero();
        data.set_bit(f.cell as usize, f.stuck); // matches stuck polarity
        let original = data;
        m.corrupt_data(line, &mut data);
        assert_eq!(data, original, "matching write must be masked");
    }

    #[test]
    fn parity_and_checkbit_corruption_respects_layout() {
        let m = build(4096, NormVdd(0.5), FreqGhz::PEAK, 11);
        let line = (0..4096)
            .find(|&l| m.count_in(l, layout::PARITY16) > 0)
            .expect("a parity-cell fault at 0.5 VDD");
        let corrupted = m.corrupt_parity16(line, 0);
        let stuck_ones = m
            .line(line)
            .iter()
            .filter(|f| layout::PARITY16.contains(&f.cell) && f.stuck)
            .count() as u32;
        assert_eq!(corrupted.count_ones(), stuck_ones);
    }

    #[test]
    fn histogram_sums_to_line_count() {
        let m = build(1000, NormVdd(0.6), FreqGhz::PEAK, 2);
        let hist = m.data_fault_histogram(4);
        assert_eq!(hist.iter().sum::<usize>(), 1000);
    }

    #[test]
    fn nominal_voltage_has_no_faults() {
        let m = build(500, NormVdd::NOMINAL, FreqGhz::PEAK, 9);
        let total: usize = (0..500).map(|l| m.line(l).len()).sum();
        assert_eq!(total, 0);
    }

    /// Every observable field of two maps must agree bit for bit
    /// (floats compared via `to_bits`).
    fn assert_maps_identical(a: &FaultMap, b: &FaultMap) {
        assert_eq!(a.lines(), b.lines());
        for l in 0..a.lines() {
            assert_eq!(a.line(l), b.line(l), "line {l} differs");
        }
        assert_eq!(a.p_cell_median().to_bits(), b.p_cell_median().to_bits());
        assert_eq!(a.mean_p_line().to_bits(), b.mean_p_line().to_bits());
        assert_eq!(a.seed(), b.seed());
        let ((av, af), (bv, bf)) = (a.operating_point(), b.operating_point());
        assert_eq!(
            (av.0.to_bits(), af.0.to_bits()),
            (bv.0.to_bits(), bf.0.to_bits())
        );
    }

    #[test]
    fn optimized_build_matches_dense_reference() {
        for seed in [0, 7, 42, 0xDEAD_BEEF] {
            for v in [0.5, 0.55, 0.575, 0.6, 0.625, 0.675, 1.0] {
                for f in [0.4, 1.0] {
                    let fast = build(96, NormVdd(v), FreqGhz(f), seed);
                    let dense = FaultMap::build_dense(96, &model(), NormVdd(v), FreqGhz(f), seed);
                    assert_maps_identical(&fast, &dense);
                }
            }
        }
    }

    #[test]
    fn die_table_derivation_matches_dense_reference() {
        let cap = NormVdd(0.55);
        let table = DieFaultTable::build(128, &model(), cap, FreqGhz::PEAK, 42);
        for v in [0.55, 0.575, 0.6, 0.625, 0.65, 0.7, 1.0] {
            let derived = table.fault_map_at(&model(), NormVdd(v));
            let dense = FaultMap::build_dense(128, &model(), NormVdd(v), FreqGhz::PEAK, 42);
            assert_maps_identical(&derived, &dense);
        }
    }

    #[test]
    fn die_table_replicate_matches_build_replicate() {
        let die_seed = crate::rng::derive_seed(42, "die", &[3]);
        let table = DieFaultTable::build(64, &model(), NormVdd(0.575), FreqGhz::PEAK, die_seed);
        let derived = table.fault_map_at(&model(), NormVdd(0.6));
        let direct = build_replicate(64, NormVdd(0.6), 42, 3);
        assert_maps_identical(&derived, &direct);
    }

    #[test]
    #[should_panic(expected = "below table cap")]
    fn die_table_rejects_voltage_below_cap() {
        let table = DieFaultTable::build(8, &model(), NormVdd(0.6), FreqGhz::PEAK, 1);
        table.fault_map_at(&model(), NormVdd(0.575));
    }
}

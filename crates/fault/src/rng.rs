//! Deterministic counter-based pseudo-random primitives.
//!
//! Fault maps must be *pure functions* of (seed, voltage, frequency) so that
//! the paper's monotonicity property — a cell failing at voltage `V` fails at
//! every voltage below `V` — holds by construction: each cell draws one
//! uniform threshold from a stateless hash and is faulty whenever the
//! voltage-dependent failure probability exceeds it.

/// SplitMix64 finalizer: avalanches a 64-bit value.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless hash of a (seed, a, b) triple.
#[inline]
pub fn hash3(seed: u64, a: u64, b: u64) -> u64 {
    splitmix64(splitmix64(seed ^ a.wrapping_mul(0xA24B_AED4_963E_E407)) ^ b)
}

/// First stage of [`hash3`]: the per-`a` base. Inner loops that hash many
/// `b` values under one `(seed, a)` pair hoist this out and finish each
/// draw with [`hash3_with_base`]; the composition is bit-identical to
/// calling `hash3` directly.
#[inline]
pub fn hash3_base(seed: u64, a: u64) -> u64 {
    splitmix64(seed ^ a.wrapping_mul(0xA24B_AED4_963E_E407))
}

/// Second stage of [`hash3`]: finishes a draw from a hoisted
/// [`hash3_base`]. `hash3_with_base(hash3_base(seed, a), b) == hash3(seed, a, b)`.
#[inline]
pub fn hash3_with_base(base: u64, b: u64) -> u64 {
    splitmix64(base ^ b)
}

/// Maps a hash to a uniform double in `[0, 1)`.
#[inline]
pub fn to_unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Exact integer form of the threshold test `to_unit(h) < p`:
/// `(h >> 11) < unit_threshold(p)` holds for precisely the same `(h, p)`
/// pairs, but costs one integer compare per draw instead of an
/// int-to-float conversion and a float compare.
///
/// Why it is exact: `to_unit(h)` is the real number `k * 2^-53` with
/// `k = h >> 11 < 2^53`, so `to_unit(h) < p  iff  k < p * 2^53` in real
/// arithmetic. Scaling an f64 by `2^53` only shifts its exponent (no
/// rounding, and `p <= 1` rules out overflow), `ceil` of an f64 below
/// `2^53` is exact, and for integer `k` the conditions `k < x` and
/// `k < ceil(x)` agree for every real `x`.
#[inline]
pub fn unit_threshold(p: f64) -> u64 {
    (p * (1u64 << 53) as f64).ceil() as u64
}

/// Hierarchical deterministic seed derivation: folds a domain label and a
/// path of indices into a root seed. Used by the Monte-Carlo sweep engine
/// so that e.g. replicate 3's die seed is a pure function of
/// `(root, "die", 3)` — identical across thread counts and job orders.
///
/// Collision behaviour matches the rest of the counter-based RNG: each
/// step is a full SplitMix64 avalanche, so distinct paths yield
/// independent-looking seeds.
pub fn derive_seed(root: u64, domain: &str, path: &[u64]) -> u64 {
    let mut state = splitmix64(root ^ 0x4B49_4C4C_4944_5256); // "KILLIDRV"
    for byte in domain.bytes() {
        state = splitmix64(state ^ u64::from(byte));
    }
    for &index in path {
        state = splitmix64(state ^ index.wrapping_mul(0xA24B_AED4_963E_E407));
    }
    state
}

/// A small, fast, seedable stream RNG (SplitMix64 sequence) for places that
/// want sequential draws rather than counter addressing.
#[derive(Debug, Clone)]
pub struct StreamRng {
    state: u64,
}

impl StreamRng {
    /// Creates a stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        StreamRng {
            state: splitmix64(seed),
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    /// Uniform double in `[0, 1)`.
    #[inline]
    pub fn next_unit(&mut self) -> f64 {
        to_unit(self.next_u64())
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift; bias is negligible for simulation bounds << 2^64.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash3_is_deterministic_and_sensitive() {
        assert_eq!(hash3(1, 2, 3), hash3(1, 2, 3));
        assert_ne!(hash3(1, 2, 3), hash3(1, 2, 4));
        assert_ne!(hash3(1, 2, 3), hash3(1, 3, 3));
        assert_ne!(hash3(1, 2, 3), hash3(2, 2, 3));
    }

    #[test]
    fn hash3_base_composition_matches_hash3() {
        for seed in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            for a in [0u64, 1, 7, 1 << 40, u64::MAX] {
                let base = hash3_base(seed, a);
                for b in [0u64, 1, 559, 0xF00D, u64::MAX] {
                    assert_eq!(hash3_with_base(base, b), hash3(seed, a, b));
                }
            }
        }
    }

    #[test]
    fn unit_threshold_matches_float_comparison() {
        // Exhaustive over interesting hash values crossed with probabilities
        // spanning the model's range, plus thresholds adjacent to exact
        // representable boundaries.
        let hashes: Vec<u64> = (0..4096)
            .map(splitmix64)
            .chain([0, 1, u64::MAX, u64::MAX - 1, 1 << 11, (1 << 11) - 1])
            .collect();
        let ps = [
            0.0,
            1e-12,
            1e-9,
            1e-6,
            1e-3,
            0.25,
            0.5,
            0.5 - f64::EPSILON,
            1.0,
            2.0_f64.powi(-53),
            3.0 * 2.0_f64.powi(-53),
        ];
        for &p in &ps {
            let t = unit_threshold(p);
            for &h in &hashes {
                assert_eq!(
                    (h >> 11) < t,
                    to_unit(h) < p,
                    "mismatch at p={p:e} h={h:#x}"
                );
            }
        }
    }

    #[test]
    fn to_unit_in_range() {
        for x in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            let u = to_unit(splitmix64(x));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn derive_seed_is_deterministic_and_path_sensitive() {
        assert_eq!(derive_seed(42, "die", &[3]), derive_seed(42, "die", &[3]));
        assert_ne!(derive_seed(42, "die", &[3]), derive_seed(42, "die", &[4]));
        assert_ne!(derive_seed(42, "die", &[3]), derive_seed(42, "trace", &[3]));
        assert_ne!(derive_seed(42, "die", &[3]), derive_seed(43, "die", &[3]));
        // Path structure matters: [1, 2] != [2, 1] and != the flat hash.
        assert_ne!(derive_seed(7, "x", &[1, 2]), derive_seed(7, "x", &[2, 1]));
        assert_ne!(derive_seed(7, "x", &[1, 2]), derive_seed(7, "x", &[1]));
    }

    #[test]
    fn stream_is_reproducible() {
        let mut a = StreamRng::new(7);
        let mut b = StreamRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn stream_unit_mean_is_about_half() {
        let mut r = StreamRng::new(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.next_unit()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = StreamRng::new(3);
        for _ in 0..1000 {
            assert!(r.next_below(17) < 17);
        }
    }
}

//! Per-line fault-count statistics (the basis of Figure 2).
//!
//! The paper groups 64-byte lines by their number of LV failures: zero
//! (parity-only protection suffices), one (SECDED via the ECC cache), two or
//! more (disabled). Both an analytic binomial model and empirical
//! measurement of a sampled [`FaultMap`] are provided;
//! the two agree, which is itself covered by tests.

use crate::cell_model::{CellFailureModel, FreqGhz, NormVdd};
use crate::map::FaultMap;
#[cfg(test)]
use crate::map::MapOptions;

use crate::prob::{binom_pmf, binom_sf};

/// Fractions of lines with 0, 1 and >= 2 failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFaultDistribution {
    /// Fraction of lines with no faulty cell.
    pub zero: f64,
    /// Fraction of lines with exactly one faulty cell.
    pub one: f64,
    /// Fraction of lines with two or more faulty cells.
    pub two_plus: f64,
}

impl LineFaultDistribution {
    /// Analytic distribution for `cells`-bit lines at per-cell failure
    /// probability `p`.
    pub fn analytic(cells: u64, p: f64) -> Self {
        LineFaultDistribution {
            zero: binom_pmf(cells, 0, p),
            one: binom_pmf(cells, 1, p),
            two_plus: binom_sf(cells, 2, p),
        }
    }

    /// Analytic distribution at an operating point, using the paper's
    /// 523-cell protected line and integrating over the per-line
    /// variation mixture.
    pub fn at(model: &CellFailureModel, vdd: NormVdd, freq: FreqGhz) -> Self {
        Self::at_cells(model, vdd, freq, 523)
    }

    /// Mixture-averaged distribution for `cells`-bit lines.
    pub fn at_cells(model: &CellFailureModel, vdd: NormVdd, freq: FreqGhz, cells: u64) -> Self {
        LineFaultDistribution {
            zero: model.mix(vdd, freq, |p| binom_pmf(cells, 0, p)),
            one: model.mix(vdd, freq, |p| binom_pmf(cells, 1, p)),
            two_plus: model.mix(vdd, freq, |p| binom_sf(cells, 2, p)),
        }
    }

    /// Empirical distribution measured over the *data* cells of a fault map.
    pub fn measured(map: &FaultMap) -> Self {
        let hist = map.data_fault_histogram(3);
        let n = map.lines() as f64;
        LineFaultDistribution {
            zero: hist[0] as f64 / n,
            one: hist[1] as f64 / n,
            two_plus: hist[2] as f64 / n,
        }
    }

    /// Fraction of lines usable by a scheme that corrects up to
    /// `correctable` faults per line, at a fixed per-cell probability.
    pub fn enabled_fraction(cells: u64, p: f64, correctable: u64) -> f64 {
        1.0 - binom_sf(cells, correctable + 1, p)
    }

    /// Mixture-averaged usable fraction at an operating point (the Table 7
    /// capacity targets).
    pub fn enabled_fraction_at(
        model: &CellFailureModel,
        vdd: NormVdd,
        freq: FreqGhz,
        cells: u64,
        correctable: u64,
    ) -> f64 {
        model.mix(vdd, freq, |p| 1.0 - binom_sf(cells, correctable + 1, p))
    }

    /// Mixture-averaged fraction of lines with at least one fault (the
    /// population Killi's ECC cache must cover).
    pub fn faulty_fraction_at(
        model: &CellFailureModel,
        vdd: NormVdd,
        freq: FreqGhz,
        cells: u64,
    ) -> f64 {
        model.mix(vdd, freq, |p| binom_sf(cells, 1, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_sums_to_one() {
        let d = LineFaultDistribution::analytic(523, 0.001);
        assert!((d.zero + d.one + d.two_plus - 1.0).abs() < 1e-9);
    }

    #[test]
    fn paper_aggregate_at_0_625() {
        // > 95 % of lines have fewer than two failures at 0.625 VDD / 1 GHz,
        // and the overwhelming majority are fault-free.
        let d = LineFaultDistribution::at(
            &CellFailureModel::finfet14(),
            NormVdd::LV_0_625,
            FreqGhz::PEAK,
        );
        assert!(d.zero + d.one > 0.95, "{d:?}");
        assert!(d.zero > 0.9, "most lines are fault-free: {d:?}");
    }

    #[test]
    fn two_plus_grows_as_voltage_drops() {
        let m = CellFailureModel::finfet14();
        let mut prev = -1.0;
        for v in [0.65, 0.625, 0.6, 0.575, 0.55] {
            let d = LineFaultDistribution::at(&m, NormVdd(v), FreqGhz::PEAK);
            assert!(d.two_plus >= prev, "v = {v}");
            prev = d.two_plus;
        }
    }

    #[test]
    fn measured_matches_analytic_mixture() {
        let model = CellFailureModel::finfet14();
        let vdd = NormVdd(0.585);
        let map = FaultMap::generate(20_000, &model, MapOptions::new(vdd, FreqGhz::PEAK, 17));
        let meas = LineFaultDistribution::measured(&map);
        // The map's data region has 512 cells (vs 523 analytic), so compare
        // against the 512-cell mixture curve.
        let ana = LineFaultDistribution::at_cells(&model, vdd, FreqGhz::PEAK, 512);
        assert!((meas.zero - ana.zero).abs() < 0.02, "{meas:?} vs {ana:?}");
        assert!((meas.one - ana.one).abs() < 0.02);
        assert!((meas.two_plus - ana.two_plus).abs() < 0.02);
    }

    #[test]
    fn enabled_fraction_monotone_in_strength() {
        let p = 0.01;
        let mut prev = 0.0;
        for c in 0..12 {
            let e = LineFaultDistribution::enabled_fraction(523, p, c);
            assert!(e >= prev);
            prev = e;
        }
        assert!(prev <= 1.0);
    }

    #[test]
    fn table7_capacity_targets() {
        // MS-ECC corrects 11 faults; Table 7 reports the resulting capacity.
        let m = CellFailureModel::finfet14();
        let cap06 =
            LineFaultDistribution::enabled_fraction_at(&m, NormVdd(0.6), FreqGhz::PEAK, 523, 11);
        let cap0575 =
            LineFaultDistribution::enabled_fraction_at(&m, NormVdd(0.575), FreqGhz::PEAK, 523, 11);
        assert!((cap06 - 0.998).abs() < 0.004, "cap(0.600) = {cap06}");
        assert!((cap0575 - 0.696).abs() < 0.05, "cap(0.575) = {cap0575}");
    }

    #[test]
    fn table7_ecc_cache_sizing_targets() {
        // Killi's OLSC ECC cache is sized 1-of-8 at 0.600 and 1-of-2 at
        // 0.575: the faulty-line population must fit those ratios.
        let m = CellFailureModel::finfet14();
        let f06 = LineFaultDistribution::faulty_fraction_at(&m, NormVdd(0.6), FreqGhz::PEAK, 523);
        assert!(f06 < 0.17, "faulty(0.600) = {f06}");
        let f0575 =
            LineFaultDistribution::faulty_fraction_at(&m, NormVdd(0.575), FreqGhz::PEAK, 523);
        assert!(f0575 < 0.9 && f0575 > 0.4, "faulty(0.575) = {f0575}");
    }
}

//! Numerically-stable binomial probability helpers.
//!
//! The analytic models (Figure 2 line statistics, Figure 6 classification
//! coverage, Table 7 capacity targets) all reduce to binomial tail sums over
//! hundreds of cells with very small per-cell probabilities, so everything
//! is computed in log space with a Lanczos log-gamma.

/// Lanczos coefficients (g = 7, n = 9), standard double-precision set.
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain: x = {x}");
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = LANCZOS[0];
    let t = x + LANCZOS_G + 0.5;
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Natural log of the binomial coefficient C(n, k).
///
/// # Panics
///
/// Panics if `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n, "C({n}, {k}) undefined");
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Binomial point mass P[X = k] for X ~ Binomial(n, p).
pub fn binom_pmf(n: u64, k: u64, p: f64) -> f64 {
    if p <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln = ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln_1p_safe();
    ln.exp()
}

/// P[X <= k] for X ~ Binomial(n, p).
pub fn binom_cdf(n: u64, k: u64, p: f64) -> f64 {
    (0..=k.min(n))
        .map(|i| binom_pmf(n, i, p))
        .sum::<f64>()
        .min(1.0)
}

/// P[X >= k] for X ~ Binomial(n, p), summed from the small tail for
/// accuracy.
pub fn binom_sf(n: u64, k: u64, p: f64) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    // Sum whichever side has fewer terms.
    if 2 * k > n {
        (k..=n).map(|i| binom_pmf(n, i, p)).sum::<f64>().min(1.0)
    } else {
        (1.0 - binom_cdf(n, k - 1, p)).max(0.0)
    }
}

/// P[X is even and X >= 2] — probability of a nonzero even count, needed by
/// the paper's segmented-parity failure analysis (§5.3).
pub fn binom_even_nonzero(n: u64, p: f64) -> f64 {
    // P[even] = (1 + (1-2p)^n) / 2; subtract P[0].
    let p_even = 0.5 * (1.0 + (1.0 - 2.0 * p).powi(n as i32));
    (p_even - binom_pmf(n, 0, p)).max(0.0)
}

/// P[X is odd] for X ~ Binomial(n, p).
pub fn binom_odd(n: u64, p: f64) -> f64 {
    0.5 * (1.0 - (1.0 - 2.0 * p).powi(n as i32))
}

trait Ln1pSafe {
    fn ln_1p_safe(self) -> f64;
}

impl Ln1pSafe for f64 {
    /// `ln(self)` computed as `ln_1p(self - 1)` for values near 1.
    fn ln_1p_safe(self) -> f64 {
        (self - 1.0).ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for (n, fact) in [
            (1u64, 1f64),
            (2, 1.0),
            (3, 2.0),
            (5, 24.0),
            (11, 3_628_800.0),
        ] {
            let got = ln_gamma(n as f64);
            assert!(
                (got - fact.ln()).abs() < 1e-9,
                "ln_gamma({n}) = {got}, want {}",
                fact.ln()
            );
        }
    }

    #[test]
    fn ln_choose_small_cases() {
        assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-9);
        assert!((ln_choose(523, 1) - 523f64.ln()).abs() < 1e-9);
        assert_eq!(ln_choose(10, 0), 0.0);
        assert_eq!(ln_choose(10, 10), 0.0);
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(10u64, 0.3f64), (523, 0.001), (33, 0.05)] {
            let total: f64 = (0..=n).map(|k| binom_pmf(n, k, p)).sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n} p={p}: {total}");
        }
    }

    #[test]
    fn cdf_and_sf_are_complementary() {
        let (n, p) = (523u64, 0.0006f64);
        for k in [1u64, 2, 3, 12] {
            let c = binom_cdf(n, k - 1, p);
            let s = binom_sf(n, k, p);
            assert!((c + s - 1.0).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn even_odd_partition() {
        let (n, p) = (33u64, 0.01f64);
        let even_nz = binom_even_nonzero(n, p);
        let odd = binom_odd(n, p);
        let zero = binom_pmf(n, 0, p);
        assert!((even_nz + odd + zero - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_probabilities() {
        assert_eq!(binom_pmf(10, 0, 0.0), 1.0);
        assert_eq!(binom_pmf(10, 3, 0.0), 0.0);
        assert_eq!(binom_pmf(10, 10, 1.0), 1.0);
        assert_eq!(binom_sf(10, 0, 0.5), 1.0);
        assert_eq!(binom_sf(10, 11, 0.5), 0.0);
    }
}

//! Low-voltage SRAM fault modelling for the Killi reproduction.
//!
//! The paper's fault data comes from proprietary 14nm FinFET test-chip
//! measurements; this crate simulates that substrate:
//!
//! - [`cell_model`] — the per-cell failure-probability curves of Figure 1,
//!   calibrated to the aggregates published in the paper,
//! - [`map`] — persistent stuck-at fault maps with the silicon-observed
//!   properties (persistence, voltage/frequency monotonicity, masking),
//! - [`line_stats`] — the per-line 0/1/2+ fault distribution of Figure 2,
//! - [`soft`] — deterministic transient-error injection,
//! - [`prob`] — log-space binomial helpers used by the analytic models,
//! - [`rng`] — the stateless counter RNG everything draws from.
//!
//! # Example
//!
//! ```
//! use killi_fault::cell_model::{CellFailureModel, FreqGhz, NormVdd};
//! use killi_fault::map::FaultMap;
//!
//! let model = CellFailureModel::finfet14();
//! let map = FaultMap::build(1024, &model, NormVdd::LV_0_625, FreqGhz::PEAK, 42);
//! let faulty_lines = (0..map.lines()).filter(|&l| map.data_fault_count(l) > 0).count();
//! assert!(faulty_lines < map.lines()); // most lines are fault-free at 0.625 VDD
//! ```

pub mod cell_model;
pub mod line_stats;
pub mod map;
pub mod prob;
pub mod rng;
pub mod soft;

pub use cell_model::{CellFailureModel, FreqGhz, NormVdd};
pub use map::{CellFault, FaultMap, LineId};

//! Low-voltage SRAM fault modelling for the Killi reproduction.
//!
//! The paper's fault data comes from proprietary 14nm FinFET test-chip
//! measurements; this crate simulates that substrate:
//!
//! - [`cell_model`] — the per-cell failure-probability curves of Figure 1,
//!   calibrated to the aggregates published in the paper,
//! - [`model`] — the data-driven fault-model registry: the [`FaultModel`]
//!   trait plus named, parameterized models (`stuck-at`, `clustered`,
//!   `transient`, `table`) resolved from CLI/JSON spellings,
//! - [`map`] — persistent stuck-at fault maps with the silicon-observed
//!   properties (persistence, voltage/frequency monotonicity, masking),
//! - [`line_stats`] — the per-line 0/1/2+ fault distribution of Figure 2,
//! - [`soft`] — deterministic transient-error injection,
//! - [`prob`] — log-space binomial helpers used by the analytic models,
//! - [`rng`] — the stateless counter RNG everything draws from.
//!
//! # Example
//!
//! ```
//! use killi_fault::cell_model::{FreqGhz, NormVdd};
//! use killi_fault::model::{default_registry, FaultModelConfig};
//!
//! let model = default_registry().build(&FaultModelConfig::default()).unwrap();
//! let map = model.map(1024, NormVdd::LV_0_625, FreqGhz::PEAK, 42);
//! let faulty_lines = (0..map.lines()).filter(|&l| map.data_fault_count(l) > 0).count();
//! assert!(faulty_lines < map.lines()); // most lines are fault-free at 0.625 VDD
//! ```

pub mod cell_model;
pub mod line_stats;
pub mod map;
pub mod model;
pub mod prob;
pub mod rng;
pub mod soft;

pub use cell_model::{CellFailureModel, FreqGhz, NormVdd};
pub use map::{CellFault, FaultMap, LineId, MapOptions};
pub use model::{
    default_registry, FaultModel, FaultModelConfig, FaultModelDescriptor, FaultModelRegistry,
};

//! SRAM cell failure-probability model (the stand-in for Figure 1's 14nm
//! FinFET silicon measurements).
//!
//! The paper's fault data comes from Ganapathy et al. [DAC'17] and is only
//! published in normalized/aggregate form. Two families of aggregates
//! constrain the model:
//!
//! - the *fault-population* anchors: >95 % of 523-bit rows have fewer than
//!   two failures at 0.625 x VDD, Killi's smallest 1:256 ECC cache
//!   suffices there, Killi's OLSC ECC cache covers 1-of-8 / 1-of-2 lines
//!   at 0.600 / 0.575 x VDD (Table 7 sizing),
//! - the *capacity* anchors: an 11-error-correcting code retains 99.8 % /
//!   69.6 % of lines at 0.600 / 0.575 x VDD (Table 7 targets).
//!
//! No independent-and-identically-distributed cell model satisfies both
//! families (few faulty lines *and* a fat per-line fault tail), and real
//! silicon does not behave that way either: threshold-voltage variation
//! makes failure rates vary strongly across lines. We therefore model each
//! line's cell-failure probability as a *lognormal mixture*:
//! `p_line = min(p_med(V, f) * exp(sigma * z_line), 0.5)` with
//! `z_line ~ N(0, 1)` frozen per line. A global `sigma = 2.0` plus
//! per-voltage medians fit every anchor within a few percent (see the
//! calibration tests and DESIGN.md).

/// A supply voltage normalized to nominal VDD (the paper reports only
/// normalized values).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct NormVdd(pub f64);

impl NormVdd {
    /// The paper's headline low-voltage operating point.
    pub const LV_0_625: NormVdd = NormVdd(0.625);
    /// Nominal supply.
    pub const NOMINAL: NormVdd = NormVdd(1.0);
}

/// Operating frequency in GHz (silicon data covers 0.4 - 1.0 GHz).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct FreqGhz(pub f64);

impl FreqGhz {
    /// The GPU peak frequency used throughout the evaluation.
    pub const PEAK: FreqGhz = FreqGhz(1.0);
}

/// Which stability test a failure probability refers to (Figure 1 plots the
/// two separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Cell flips state when its wordline fires without write data driven.
    ReadDisturb,
    /// Cell cannot change state within the wordline pulse.
    Writeability,
    /// Either failure mode.
    Combined,
}

/// Calibration anchors: (normalized VDD, log10 of the *median* per-line
/// cell failure probability) at 1 GHz. Fitted so the lognormal mixture
/// reproduces the paper's population and capacity aggregates.
const ANCHORS: &[(f64, f64)] = &[
    (0.500, -0.30),
    (0.525, -0.60),
    (0.550, -1.20),
    (0.575, -2.12), // Table 7: P[>=1] ~ 0.7, P[>=12] ~ 30.4 %
    (0.600, -4.19), // Table 7: P[>=1] ~ 0.125, P[>=12] ~ 0.2 %
    (0.625, -4.70), // ~4 % of lines faulty; >95 % of lines < 2 faults
    (0.650, -6.80),
    (0.675, -9.00), // onset of the exponential region
];

/// Per-line lognormal spread of the failure rate (within-die variation).
const LINE_SIGMA: f64 = 2.0;
/// Floor probability above the exponential-onset voltage.
const P_FLOOR: f64 = 1e-9;
/// Per-line probabilities saturate here (a cell cannot be worse than a
/// coin flip).
const P_CEIL: f64 = 0.5;
/// Frequency derating in decades per GHz below peak.
const FREQ_DECADES_PER_GHZ: f64 = 2.0;
/// Fraction of the combined failure rate attributed to writeability
/// (writeability dominates slightly in Figure 1).
const WRITE_SHARE: f64 = 0.55;

/// The calibrated SRAM cell failure model.
///
/// # Examples
///
/// ```
/// use killi_fault::cell_model::{CellFailureModel, FailureKind, FreqGhz, NormVdd};
///
/// let m = CellFailureModel::finfet14();
/// let p = m.p_cell_median(NormVdd::LV_0_625, FreqGhz::PEAK, FailureKind::Combined);
/// assert!(p > 1e-6 && p < 1e-4);
/// ```
#[derive(Debug, Clone)]
pub struct CellFailureModel {
    anchors: Vec<(f64, f64)>,
    sigma: f64,
}

impl CellFailureModel {
    /// The default model calibrated to the paper's 14nm FinFET aggregates.
    pub fn finfet14() -> Self {
        CellFailureModel {
            anchors: ANCHORS.to_vec(),
            sigma: LINE_SIGMA,
        }
    }

    /// A model built from custom (voltage, log10 median p) anchors and a
    /// per-line spread, for sensitivity studies.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two anchors are given, voltages are not
    /// strictly increasing, or `sigma` is negative.
    pub fn from_anchors(anchors: Vec<(f64, f64)>, sigma: f64) -> Self {
        assert!(anchors.len() >= 2, "need at least two anchors");
        assert!(
            anchors.windows(2).all(|w| w[0].0 < w[1].0),
            "anchor voltages must be strictly increasing"
        );
        assert!(sigma >= 0.0, "sigma must be non-negative");
        CellFailureModel { anchors, sigma }
    }

    /// The per-line lognormal spread.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The `(voltage, log10 median p)` anchors of the calibration curve.
    pub fn anchors(&self) -> &[(f64, f64)] {
        &self.anchors
    }

    /// The *median* per-line cell failure probability at an operating
    /// point. Monotone: non-increasing in voltage, non-decreasing in
    /// frequency.
    pub fn p_cell_median(&self, vdd: NormVdd, freq: FreqGhz, kind: FailureKind) -> f64 {
        let v = vdd.0;
        let last = self.anchors.len() - 1;
        let log_p = if v >= self.anchors[last].0 {
            return self.split(P_FLOOR, kind); // flat floor above onset
        } else if v <= self.anchors[0].0 {
            // Extrapolate below the lowest anchor with its first slope.
            let (v0, l0) = self.anchors[0];
            let (v1, l1) = self.anchors[1];
            l0 + (v - v0) * (l1 - l0) / (v1 - v0)
        } else {
            let i = self
                .anchors
                .windows(2)
                .position(|w| v >= w[0].0 && v < w[1].0)
                .expect("anchor interval");
            let (v0, l0) = self.anchors[i];
            let (v1, l1) = self.anchors[i + 1];
            l0 + (v - v0) * (l1 - l0) / (v1 - v0)
        };
        let log_p = log_p + FREQ_DECADES_PER_GHZ * (freq.0.min(1.0) - 1.0);
        let p = 10f64.powf(log_p).clamp(P_FLOOR, P_CEIL);
        self.split(p, kind)
    }

    /// The failure probability of a specific line given its frozen
    /// standard-normal variation draw `z_line`.
    pub fn p_cell_for_line(
        &self,
        vdd: NormVdd,
        freq: FreqGhz,
        kind: FailureKind,
        z_line: f64,
    ) -> f64 {
        self.line_p(self.p_cell_median(vdd, freq, kind), z_line)
    }

    /// The per-line probability derived from an already-computed operating
    /// point median. Lets callers that iterate over many lines at one
    /// (vdd, freq) pay for the anchor interpolation in [`Self::p_cell_median`]
    /// once instead of per line; `p_cell_for_line` is exactly
    /// `line_p(p_cell_median(..), z_line)`.
    pub fn line_p(&self, median: f64, z_line: f64) -> f64 {
        (median * (self.sigma * z_line).exp()).clamp(0.0, P_CEIL)
    }

    /// The population-mean cell failure probability (what a Figure 1 style
    /// aggregate over many arrays measures), integrating the clamped
    /// lognormal numerically.
    pub fn p_cell_mean(&self, vdd: NormVdd, freq: FreqGhz, kind: FailureKind) -> f64 {
        integrate_normal(|z| self.p_cell_for_line(vdd, freq, kind, z))
    }

    /// Averages a per-line statistic `f(p_line)` over the line population.
    pub fn mix<F: Fn(f64) -> f64>(&self, vdd: NormVdd, freq: FreqGhz, f: F) -> f64 {
        integrate_normal(|z| f(self.p_cell_for_line(vdd, freq, FailureKind::Combined, z)))
    }

    fn split(&self, p_combined: f64, kind: FailureKind) -> f64 {
        match kind {
            FailureKind::Combined => p_combined,
            FailureKind::Writeability => p_combined * WRITE_SHARE,
            FailureKind::ReadDisturb => p_combined * (1.0 - WRITE_SHARE),
        }
    }
}

impl Default for CellFailureModel {
    fn default() -> Self {
        Self::finfet14()
    }
}

/// Gaussian-weighted trapezoid integration of `f(z)` over `z in [-5, 5]`.
fn integrate_normal<F: Fn(f64) -> f64>(f: F) -> f64 {
    const N: usize = 81;
    let mut total = 0.0;
    for i in 0..N {
        let z = -5.0 + 10.0 * i as f64 / (N - 1) as f64;
        let w =
            (-z * z / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt() * (10.0 / (N - 1) as f64);
        total += w * f(z);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prob::binom_sf;

    fn model() -> CellFailureModel {
        CellFailureModel::finfet14()
    }

    /// P[line has >= k faults among `cells`] under the mixture.
    fn p_ge(v: f64, k: u64, cells: u64) -> f64 {
        model().mix(NormVdd(v), FreqGhz::PEAK, |p| binom_sf(cells, k, p))
    }

    #[test]
    fn anchor_medians_reproduced() {
        let m = model();
        let p = m.p_cell_median(NormVdd(0.625), FreqGhz::PEAK, FailureKind::Combined);
        assert!((p.log10() - (-4.70)).abs() < 1e-9);
    }

    #[test]
    fn negligible_above_onset() {
        let m = model();
        for v in [0.675, 0.7, 0.8, 1.0] {
            let p = m.p_cell_median(NormVdd(v), FreqGhz::PEAK, FailureKind::Combined);
            assert!(p <= 1e-9, "p({v}) = {p}");
        }
    }

    #[test]
    fn monotone_decreasing_in_voltage() {
        let m = model();
        let mut prev = f64::INFINITY;
        let mut v = 0.45;
        while v <= 1.0 {
            let cur = m.p_cell_median(NormVdd(v), FreqGhz::PEAK, FailureKind::Combined);
            assert!(cur <= prev + 1e-18, "not monotone at v = {v}");
            prev = cur;
            v += 0.005;
        }
    }

    #[test]
    fn monotone_increasing_in_frequency() {
        let m = model();
        let mut prev = 0.0;
        for f in [0.4, 0.6, 0.8, 1.0] {
            let cur = m.p_cell_median(NormVdd(0.6), FreqGhz(f), FailureKind::Combined);
            assert!(cur >= prev, "not monotone at f = {f}");
            prev = cur;
        }
    }

    #[test]
    fn read_and_write_sum_to_combined() {
        let m = model();
        let v = NormVdd(0.58);
        let c = m.p_cell_median(v, FreqGhz::PEAK, FailureKind::Combined);
        let r = m.p_cell_median(v, FreqGhz::PEAK, FailureKind::ReadDisturb);
        let w = m.p_cell_median(v, FreqGhz::PEAK, FailureKind::Writeability);
        assert!((r + w - c).abs() < 1e-12);
        assert!(w > r, "writeability should dominate");
    }

    #[test]
    fn line_multiplier_is_clamped_and_monotone_in_z() {
        let m = model();
        let v = NormVdd(0.575);
        let mut prev = 0.0;
        for i in 0..20 {
            let z = -4.0 + 0.4 * i as f64;
            let p = m.p_cell_for_line(v, FreqGhz::PEAK, FailureKind::Combined, z);
            assert!(p >= prev);
            assert!(p <= 0.5);
            prev = p;
        }
    }

    #[test]
    fn population_aggregate_at_0_625_matches_paper() {
        // > 95 % of 523-bit lines have fewer than two failures, and only
        // ~1-2 % of lines are faulty at all (so the 1:256 ECC cache works).
        let lt2 = 1.0 - p_ge(0.625, 2, 523);
        assert!(lt2 > 0.95, "P[<2 faults] = {lt2}");
        let faulty = p_ge(0.625, 1, 523);
        assert!((0.01..0.07).contains(&faulty), "P[>=1] = {faulty}");
    }

    #[test]
    fn table7_sizing_anchor_at_0_600() {
        // ECC cache of 1-of-8 suffices: ~12.5 % of lines faulty; an
        // 11-correcting code keeps ~99.8 % of lines.
        let faulty = p_ge(0.600, 1, 523);
        assert!((0.08..0.17).contains(&faulty), "P[>=1] = {faulty}");
        let capacity = 1.0 - p_ge(0.600, 12, 523);
        assert!((capacity - 0.998).abs() < 0.004, "capacity = {capacity}");
    }

    #[test]
    fn table7_sizing_anchor_at_0_575() {
        // ECC cache of 1-of-2; an 11-correcting code keeps ~69.6 %.
        let faulty = p_ge(0.575, 1, 523);
        assert!((0.6..0.9).contains(&faulty), "P[>=1] = {faulty}");
        let capacity = 1.0 - p_ge(0.575, 12, 523);
        assert!((capacity - 0.696).abs() < 0.05, "capacity = {capacity}");
    }

    #[test]
    fn mean_exceeds_median_under_lognormal() {
        let m = model();
        let v = NormVdd(0.6);
        let mean = m.p_cell_mean(v, FreqGhz::PEAK, FailureKind::Combined);
        let median = m.p_cell_median(v, FreqGhz::PEAK, FailureKind::Combined);
        assert!(mean > median, "{mean} vs {median}");
    }

    #[test]
    fn custom_anchors_validate() {
        let m = CellFailureModel::from_anchors(vec![(0.5, -1.0), (0.7, -9.0)], 1.0);
        assert!(
            m.p_cell_median(NormVdd(0.6), FreqGhz::PEAK, FailureKind::Combined)
                > m.p_cell_median(NormVdd(0.65), FreqGhz::PEAK, FailureKind::Combined)
        );
        assert_eq!(m.sigma(), 1.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_anchors_rejected() {
        CellFailureModel::from_anchors(vec![(0.7, -9.0), (0.5, -1.0)], 1.0);
    }
}

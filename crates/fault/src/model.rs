//! Data-driven fault models: declarative [`FaultModelConfig`]s resolved
//! against a [`FaultModelRegistry`] of [`FaultModelDescriptor`]s.
//!
//! The registry is the fault-side twin of the protection-side
//! `SchemeRegistry`: the single place fault-model names, parameters and
//! defaults live. Everything that used to hard-code the one parametric
//! stuck-at model (`CellFailureModel::finfet14` + `FaultMap::build`) goes
//! through [`FaultModelRegistry::build`], so a new fault distribution —
//! row/column clustering, transient overlays, measured CDFs — is one
//! descriptor, zero new plumbing.
//!
//! Configs have three interchangeable spellings:
//!
//! - CLI shorthand: `clustered:rows=4,corr=0.8` ([`FaultModelConfig::parse`])
//! - JSON (via the in-repo `killi-obs` parser):
//!   `{"name": "clustered", "params": {"rows": 4, "corr": 0.8}}`
//! - programmatic: [`FaultModelConfig::new`] + [`FaultModelConfig::with`]
//!
//! A built model is a [`FaultModel`]: a *pure function* from
//! `(lines, vdd, freq, die_seed)` to a [`FaultMap`]. Determinism is part
//! of the trait contract; voltage nesting (faults at a higher voltage are
//! a subset of faults at any lower voltage — the property the Vmin search
//! relies on) is part of the contract *unless* the model explicitly
//! declares otherwise via [`FaultModel::voltage_nested`], as the
//! `transient` model does.
//!
//! Registered models:
//!
//! | name       | distribution                                            | nested |
//! |------------|---------------------------------------------------------|--------|
//! | `stuck-at` | the paper's 14nm FinFET lognormal-mixture stuck-at model | yes |
//! | `clustered`| MoRS-style row/column-correlated stuck-at faults         | yes |
//! | `transient`| random/burst/MSB-biased flips over a stuck-at base       | no  |
//! | `table`    | stuck-at drawn from a measured CDF (inline or from file) | yes |

use std::fmt;
use std::sync::{Arc, OnceLock};

use killi_obs::params::ParamValue;
use killi_obs::{escape_json, parse_json, JsonValue};

use crate::cell_model::{CellFailureModel, FailureKind, FreqGhz, NormVdd};
use crate::map::{layout, standard_normal, CellFault, DieFaultTable, FaultMap, MapOptions};
use crate::rng::{hash3, hash3_base, hash3_with_base, splitmix64, to_unit, unit_threshold};

/// A deterministic fault-population generator.
///
/// Implementations must be pure: the same `(lines, vdd, freq, seed)`
/// always yields the same map, across thread counts and job orders. The
/// `seed` is the *die* seed — Monte-Carlo callers derive it as
/// `derive_seed(root_seed, "die", &[replicate])`, so one replicate is one
/// physical die across every operating point of a sweep grid.
pub trait FaultModel: fmt::Debug + Send + Sync {
    /// The fault map of one die at one operating point.
    fn map(&self, lines: usize, vdd: NormVdd, freq: FreqGhz, seed: u64) -> FaultMap;

    /// The independently-written reference construction, used by the
    /// perf-equivalence oracle. Must equal [`Self::map`] bit for bit;
    /// defaults to it for models without a separate reference path.
    fn map_reference(&self, lines: usize, vdd: NormVdd, freq: FreqGhz, seed: u64) -> FaultMap {
        self.map(lines, vdd, freq, seed)
    }

    /// A memoized per-die table covering every voltage `>= cap_vdd`, for
    /// sweep engines that derive many maps of one die. Models without a
    /// cross-voltage factorization return `None` and the engine falls
    /// back to [`Self::map`] per operating point.
    fn die(
        &self,
        lines: usize,
        cap_vdd: NormVdd,
        freq: FreqGhz,
        seed: u64,
    ) -> Option<Box<dyn ReplicateDie>> {
        let _ = (lines, cap_vdd, freq, seed);
        None
    }

    /// Whether fault sets are nested across voltage: every fault at a
    /// higher voltage also present at any lower voltage. Models that
    /// violate this (transient overlays redrawn per operating point) must
    /// return `false`; the Vmin search is only meaningful when `true`.
    fn voltage_nested(&self) -> bool;

    /// The per-cell failure-probability curve behind the model, when it
    /// has one (analytic coverage/Vmin tooling needs it).
    fn cell_model(&self) -> Option<&CellFailureModel> {
        None
    }
}

/// One die of a [`FaultModel`], memoized at the grid's cap voltage.
pub trait ReplicateDie: Send + Sync {
    /// The die's fault map at `vdd` (which must be `>=` the cap).
    fn map_at(&self, vdd: NormVdd) -> FaultMap;
}

/// A declarative fault-model instantiation: a registered name plus
/// parameter overrides (unset parameters take the descriptor's defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultModelConfig {
    /// Registered model name.
    pub name: String,
    /// Parameter overrides, in declaration order.
    pub params: Vec<(String, ParamValue)>,
}

impl Default for FaultModelConfig {
    /// The paper's model: `stuck-at` with no overrides.
    fn default() -> Self {
        FaultModelConfig::new(STUCK_AT)
    }
}

impl FaultModelConfig {
    /// A config with no overrides.
    pub fn new(name: &str) -> Self {
        FaultModelConfig {
            name: name.to_string(),
            params: Vec::new(),
        }
    }

    /// Adds (or replaces) a parameter override.
    #[must_use]
    pub fn with(mut self, key: &str, value: ParamValue) -> Self {
        if let Some(slot) = self.params.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.params.push((key.to_string(), value));
        }
        self
    }

    /// The override for `key`, if set.
    pub fn get(&self, key: &str) -> Option<&ParamValue> {
        self.params.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Parses the CLI shorthand `name` or `name:key=value,key=value`.
    pub fn parse(input: &str) -> Result<Self, BuildError> {
        let input = input.trim();
        let (name, rest) = match input.split_once(':') {
            Some((name, rest)) => (name.trim(), Some(rest)),
            None => (input, None),
        };
        if name.is_empty() {
            return Err(BuildError::Parse {
                input: input.to_string(),
                reason: "empty fault-model name".to_string(),
            });
        }
        let mut config = FaultModelConfig::new(name);
        if let Some(rest) = rest {
            for pair in rest.split(',') {
                let Some((key, value)) = pair.split_once('=') else {
                    return Err(BuildError::Parse {
                        input: input.to_string(),
                        reason: format!("parameter `{pair}` is not key=value"),
                    });
                };
                let key = key.trim();
                if key.is_empty() {
                    return Err(BuildError::Parse {
                        input: input.to_string(),
                        reason: "empty parameter name".to_string(),
                    });
                }
                config = config.with(key, ParamValue::parse(value.trim()));
            }
        }
        Ok(config)
    }

    /// Serializes as a JSON object: `{"name": ..., "params": {...}}`.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"name\": \"{}\"", escape_json(&self.name));
        if !self.params.is_empty() {
            out.push_str(", \"params\": {");
            for (i, (key, value)) in self.params.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": {}", escape_json(key), value.to_json()));
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// A config from a parsed JSON object.
    pub fn from_json_value(v: &JsonValue) -> Result<Self, BuildError> {
        let parse_err = |reason: &str| BuildError::Parse {
            input: "<json>".to_string(),
            reason: reason.to_string(),
        };
        let Some(name) = v.get("name").and_then(JsonValue::as_str) else {
            return Err(parse_err("fault-model object needs a string `name`"));
        };
        let mut config = FaultModelConfig::new(name);
        match v.get("params") {
            None | Some(JsonValue::Null) => {}
            Some(JsonValue::Object(entries)) => {
                for (key, value) in entries {
                    let Some(value) = ParamValue::from_json(value) else {
                        return Err(parse_err(&format!(
                            "parameter `{key}` must be a number, bool or string"
                        )));
                    };
                    config = config.with(key, value);
                }
            }
            Some(_) => return Err(parse_err("`params` must be an object")),
        }
        Ok(config)
    }

    /// A config from JSON text.
    pub fn from_json(text: &str) -> Result<Self, BuildError> {
        let v = parse_json(text).map_err(|e| BuildError::Parse {
            input: "<json>".to_string(),
            reason: e.to_string(),
        })?;
        Self::from_json_value(&v)
    }
}

impl fmt::Display for FaultModelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        for (i, (key, value)) in self.params.iter().enumerate() {
            write!(f, "{}{key}={value}", if i == 0 { ":" } else { "," })?;
        }
        Ok(())
    }
}

/// Why a [`FaultModelConfig`] could not be resolved or built.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// The config text (CLI shorthand or JSON) did not parse.
    Parse {
        /// The offending input.
        input: String,
        /// What went wrong.
        reason: String,
    },
    /// No descriptor registered under this name.
    UnknownModel {
        /// The unregistered name.
        name: String,
    },
    /// The model has no such parameter.
    UnknownParam {
        /// Model name.
        model: String,
        /// The unrecognized parameter.
        param: String,
    },
    /// A parameter had the wrong type or an out-of-range value.
    InvalidParam {
        /// Model name.
        model: String,
        /// Parameter name.
        param: String,
        /// What went wrong.
        reason: String,
    },
    /// The parameters are individually fine but do not yield a buildable
    /// model (e.g. a parameter file that cannot be read or parsed).
    Model {
        /// Model name.
        model: String,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Parse { input, reason } => {
                write!(f, "cannot parse fault model `{input}`: {reason}")
            }
            BuildError::UnknownModel { name } => write!(f, "unknown fault model `{name}`"),
            BuildError::UnknownParam { model, param } => {
                write!(f, "fault model `{model}` has no parameter `{param}`")
            }
            BuildError::InvalidParam {
                model,
                param,
                reason,
            } => write!(f, "invalid `{model}` parameter `{param}`: {reason}"),
            BuildError::Model { model, reason } => {
                write!(f, "cannot build fault model `{model}`: {reason}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// One declared parameter of a fault model.
#[derive(Debug, Clone)]
pub struct ParamSpec {
    /// Parameter name (the `key` in `key=value`).
    pub name: &'static str,
    /// One-line description for `killi fault-models`.
    pub doc: &'static str,
    /// Default value (also fixes the expected type).
    pub default: ParamValue,
}

/// Parameters of one config after defaulting and type coercion.
#[derive(Debug, Clone)]
pub struct ResolvedParams {
    model: &'static str,
    values: Vec<(&'static str, ParamValue)>,
}

impl ResolvedParams {
    /// The model name these parameters resolve.
    pub fn model(&self) -> &'static str {
        self.model
    }

    fn get(&self, key: &str) -> &ParamValue {
        self.values
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("fault model `{}` has no `{key}` parameter", self.model))
    }

    /// Replaces the value of a declared parameter (canonicalization hooks).
    ///
    /// # Panics
    ///
    /// Panics if the parameter is not declared.
    pub fn set(&mut self, key: &str, value: ParamValue) {
        let slot = self
            .values
            .iter_mut()
            .find(|(k, _)| *k == key)
            .unwrap_or_else(|| panic!("fault model `{}` has no `{key}` parameter", self.model));
        slot.1 = value;
    }

    /// An integer parameter (registry-validated to exist and be U64).
    pub fn u64(&self, key: &str) -> u64 {
        match self.get(key) {
            ParamValue::U64(v) => *v,
            other => panic!("parameter `{key}` is not u64: {other:?}"),
        }
    }

    /// A float parameter.
    pub fn f64(&self, key: &str) -> f64 {
        match self.get(key) {
            ParamValue::F64(v) => *v,
            ParamValue::U64(v) => *v as f64,
            other => panic!("parameter `{key}` is not f64: {other:?}"),
        }
    }

    /// A string parameter.
    pub fn str(&self, key: &str) -> &str {
        match self.get(key) {
            ParamValue::Str(v) => v,
            other => panic!("parameter `{key}` is not a string: {other:?}"),
        }
    }
}

/// Signature of a descriptor's build function: resolved parameters yield
/// a live model or a typed error.
pub type BuildModelFn = fn(&ResolvedParams) -> Result<Arc<dyn FaultModel>, BuildError>;

/// Signature of a descriptor's canonicalization hook (see
/// [`FaultModelDescriptor::canonicalize`]).
pub type CanonicalizeFn = fn(&mut ResolvedParams) -> Result<(), BuildError>;

/// A registered fault model: name, documentation, the advertised nesting
/// contract, parameter schema, and the label/build functions.
pub struct FaultModelDescriptor {
    /// Registered name (what `--fault-model` selects).
    pub name: &'static str,
    /// One-line description for `killi fault-models`.
    pub doc: &'static str,
    /// The nesting contract the built models advertise (see
    /// [`FaultModel::voltage_nested`]).
    pub voltage_nested: bool,
    /// Declared parameters with defaults.
    pub params: Vec<ParamSpec>,
    /// Report label for a resolved config (the string stamped into
    /// reports and obs events, e.g. `clustered:rows=4,corr=0.8`).
    pub label: fn(&ResolvedParams) -> String,
    /// Builds the model.
    pub build: BuildModelFn,
    /// Optional canonicalization hook, run after resolution: folds
    /// environment-dependent parameters (e.g. a parameter *file path*)
    /// into value-equivalent canonical ones (its *contents*), so
    /// content-addressed cache keys depend on what a model computes, not
    /// on where its inputs live.
    pub canonicalize: Option<CanonicalizeFn>,
}

impl fmt::Debug for FaultModelDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultModelDescriptor")
            .field("name", &self.name)
            .field("voltage_nested", &self.voltage_nested)
            .field("params", &self.params)
            .finish()
    }
}

/// The ordered collection of registered fault models.
#[derive(Debug, Default)]
pub struct FaultModelRegistry {
    models: Vec<FaultModelDescriptor>,
}

impl FaultModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        FaultModelRegistry::default()
    }

    /// Registers a descriptor.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name — registrations are code, not data.
    pub fn register(&mut self, descriptor: FaultModelDescriptor) {
        assert!(
            self.descriptor(descriptor.name).is_none(),
            "fault model `{}` registered twice",
            descriptor.name
        );
        self.models.push(descriptor);
    }

    /// The descriptor registered under `name`.
    pub fn descriptor(&self, name: &str) -> Option<&FaultModelDescriptor> {
        self.models.iter().find(|d| d.name == name)
    }

    /// All descriptors, in registration order.
    pub fn descriptors(&self) -> &[FaultModelDescriptor] {
        &self.models
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.models.iter().map(|d| d.name).collect()
    }

    /// Resolves a config against its descriptor: every override must name
    /// a declared parameter and coerce to its default's type.
    pub fn resolve(&self, config: &FaultModelConfig) -> Result<ResolvedParams, BuildError> {
        let descriptor = self
            .descriptor(&config.name)
            .ok_or_else(|| BuildError::UnknownModel {
                name: config.name.clone(),
            })?;
        for (key, _) in &config.params {
            if !descriptor.params.iter().any(|p| p.name == key) {
                return Err(BuildError::UnknownParam {
                    model: config.name.clone(),
                    param: key.clone(),
                });
            }
        }
        let mut values = Vec::with_capacity(descriptor.params.len());
        for spec in &descriptor.params {
            let value = match config.get(spec.name) {
                None => spec.default.clone(),
                Some(over) => {
                    over.coerce_to(&spec.default)
                        .ok_or_else(|| BuildError::InvalidParam {
                            model: config.name.clone(),
                            param: spec.name.to_string(),
                            reason: format!(
                                "expected {} (default {}), got `{over}`",
                                spec.default.type_name(),
                                spec.default
                            ),
                        })?
                }
            };
            values.push((spec.name, value));
        }
        Ok(ResolvedParams {
            model: descriptor.name,
            values,
        })
    }

    /// Validates a config without building it.
    pub fn validate(&self, config: &FaultModelConfig) -> Result<(), BuildError> {
        self.resolve(config).map(|_| ())
    }

    /// The report label of a config.
    pub fn label(&self, config: &FaultModelConfig) -> Result<String, BuildError> {
        let resolved = self.resolve(config)?;
        let descriptor = self.descriptor(&config.name).expect("resolved above");
        Ok((descriptor.label)(&resolved))
    }

    /// Normalizes a config to its canonical spelling: every declared
    /// parameter spelled explicitly, in descriptor declaration order, with
    /// values coerced to the declared type and environment-dependent
    /// parameters folded (see [`FaultModelDescriptor::canonicalize`]). Any
    /// two configs that resolve to the same model canonicalize to equal
    /// [`FaultModelConfig`]s, which is what content-addressed caching
    /// keys on.
    pub fn canonicalize(&self, config: &FaultModelConfig) -> Result<FaultModelConfig, BuildError> {
        let mut resolved = self.resolve(config)?;
        let descriptor = self.descriptor(&config.name).expect("resolved above");
        if let Some(hook) = descriptor.canonicalize {
            hook(&mut resolved)?;
        }
        Ok(FaultModelConfig {
            name: resolved.model.to_string(),
            params: resolved
                .values
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        })
    }

    /// The canonical JSON spelling of a config (see
    /// [`FaultModelRegistry::canonicalize`]): equal models produce
    /// byte-identical JSON, suitable for hashing into a cache key.
    pub fn canonical_json(&self, config: &FaultModelConfig) -> Result<String, BuildError> {
        Ok(self.canonicalize(config)?.to_json())
    }

    /// Builds a config into a live model.
    pub fn build(&self, config: &FaultModelConfig) -> Result<Arc<dyn FaultModel>, BuildError> {
        let resolved = self.resolve(config)?;
        let descriptor = self.descriptor(&config.name).expect("resolved above");
        (descriptor.build)(&resolved)
    }
}

/// Name of the default (paper) model.
pub const STUCK_AT: &str = "stuck-at";

/// The process-wide registry with every built-in model registered.
pub fn default_registry() -> &'static FaultModelRegistry {
    static REGISTRY: OnceLock<FaultModelRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut registry = FaultModelRegistry::new();
        register_builtin_models(&mut registry);
        registry
    })
}

// ---------------------------------------------------------------------------
// stuck-at / table: parametric lognormal-mixture stuck-at faults
// ---------------------------------------------------------------------------

/// The parametric stuck-at model behind both `stuck-at` (FinFET-14
/// calibration) and `table` (measured-CDF calibration): persistent faults
/// drawn cell-wise from a [`CellFailureModel`], voltage-nested by
/// construction (each cell's uniform threshold is frozen; voltage only
/// moves the probability it is compared against).
#[derive(Debug, Clone)]
struct ParametricStuckAt {
    cell: CellFailureModel,
}

impl FaultModel for ParametricStuckAt {
    fn map(&self, lines: usize, vdd: NormVdd, freq: FreqGhz, seed: u64) -> FaultMap {
        FaultMap::generate(lines, &self.cell, MapOptions::new(vdd, freq, seed))
    }

    fn map_reference(&self, lines: usize, vdd: NormVdd, freq: FreqGhz, seed: u64) -> FaultMap {
        FaultMap::generate(lines, &self.cell, MapOptions::new(vdd, freq, seed).dense())
    }

    fn die(
        &self,
        lines: usize,
        cap_vdd: NormVdd,
        freq: FreqGhz,
        seed: u64,
    ) -> Option<Box<dyn ReplicateDie>> {
        Some(Box::new(StuckAtDie {
            table: DieFaultTable::build(lines, &self.cell, cap_vdd, freq, seed),
            cell: self.cell.clone(),
        }))
    }

    fn voltage_nested(&self) -> bool {
        true
    }

    fn cell_model(&self) -> Option<&CellFailureModel> {
        Some(&self.cell)
    }
}

/// One memoized die of [`ParametricStuckAt`].
struct StuckAtDie {
    table: DieFaultTable,
    cell: CellFailureModel,
}

impl ReplicateDie for StuckAtDie {
    fn map_at(&self, vdd: NormVdd) -> FaultMap {
        self.table.fault_map_at(&self.cell, vdd)
    }
}

// ---------------------------------------------------------------------------
// clustered: MoRS-style row/column-correlated stuck-at faults
// ---------------------------------------------------------------------------

/// Row/column-clustered stuck-at faults: each line's effective variation
/// draw mixes a per-row component (shared by `rows` consecutive lines), a
/// per-column-group component (shared die-wide by cells in the same group
/// of `col_cells` cells), and an independent per-line residual, with the
/// weights chosen so the marginal per-cell distribution matches the base
/// model. All draws are frozen across voltage, so nesting holds exactly
/// as for the plain stuck-at model.
#[derive(Debug, Clone)]
struct ClusteredModel {
    cell: CellFailureModel,
    rows: u64,
    corr: f64,
    col_cells: u64,
    col_corr: f64,
}

impl ClusteredModel {
    /// The frozen per-line and per-column-group normal draws.
    fn z_line(&self, seed: u64, line: u64) -> f64 {
        let row_seed = splitmix64(seed ^ 0x524F_575A_5EED_0001); // "ROWZ" domain
        let z_row = standard_normal(hash3(row_seed, line / self.rows.max(1), 0xF00D));
        let base = hash3_base(seed, line);
        let z_resid = standard_normal(hash3_with_base(base, 0xF00D));
        let resid_weight = (1.0 - self.corr * self.corr - self.col_corr * self.col_corr)
            .max(0.0)
            .sqrt();
        self.corr * z_row + resid_weight * z_resid
    }

    /// The shared column-group draw for cell-group `group`.
    fn z_col(&self, seed: u64, group: u64) -> f64 {
        let col_seed = splitmix64(seed ^ 0xC01_5EED_0000_0002); // "COL" domain
        standard_normal(hash3(col_seed, group, 0xF00D))
    }
}

impl FaultModel for ClusteredModel {
    fn map(&self, lines: usize, vdd: NormVdd, freq: FreqGhz, seed: u64) -> FaultMap {
        let median = self.cell.p_cell_median(vdd, freq, FailureKind::Combined);
        let groups = usize::from(layout::CELLS_PER_LINE).div_ceil(self.col_cells.max(1) as usize);
        // Column-group draws are shared die-wide; hoist them.
        let z_cols: Vec<f64> = (0..groups).map(|g| self.z_col(seed, g as u64)).collect();
        let mut faults = Vec::with_capacity(lines);
        let mut scratch = Vec::new();
        let mut mean_p_line = 0.0;
        for line in 0..lines {
            let base = hash3_base(seed, line as u64);
            let z_line = self.z_line(seed, line as u64);
            scratch.clear();
            let mut p_line = 0.0;
            for (g, &z_col) in z_cols.iter().enumerate() {
                let z = z_line + self.col_corr * z_col;
                let p = self.cell.line_p(median, z);
                let threshold = unit_threshold(p);
                // col_cells is validated to be in [1, CELLS_PER_LINE], so
                // this arithmetic stays in u16 range.
                let start = (g as u64 * self.col_cells) as u16;
                let end = (start + self.col_cells as u16).min(layout::CELLS_PER_LINE);
                p_line += p * f64::from(end - start);
                if threshold > 0 {
                    for cell in start..end {
                        let h = hash3_with_base(base, u64::from(cell));
                        if (h >> 11) < threshold {
                            scratch.push(CellFault {
                                cell,
                                stuck: h & (1 << 63) != 0,
                            });
                        }
                    }
                }
            }
            mean_p_line += p_line / f64::from(layout::CELLS_PER_LINE);
            faults.push(scratch.as_slice().into());
        }
        let mean_p_line = mean_p_line / lines.max(1) as f64;
        FaultMap::from_parts(faults, median, mean_p_line, vdd, freq, seed)
    }

    fn voltage_nested(&self) -> bool {
        true
    }

    fn cell_model(&self) -> Option<&CellFailureModel> {
        Some(&self.cell)
    }
}

// ---------------------------------------------------------------------------
// transient: random/burst/MSB-biased flips over a persistent base
// ---------------------------------------------------------------------------

/// How the transient overlay picks cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TransientMode {
    /// Each cell flips independently with probability `rate`.
    Random,
    /// Each line suffers a burst of `burst_len` adjacent flipped cells
    /// with probability `rate`.
    Burst,
    /// Like `Random`, but only the most significant bit of each byte is
    /// eligible (rate scaled by 8 to keep the overall density).
    Msb,
}

/// Transient flips layered on a persistent stuck-at base. The overlay is
/// re-drawn per operating point (the physical upsets a die sees during a
/// run at 0.6 V are not a subset of those at 0.55 V), so the model
/// *declares itself non-nested*; the persistent substrate underneath
/// still nests.
#[derive(Debug, Clone)]
struct TransientModel {
    cell: CellFailureModel,
    mode: TransientMode,
    rate: f64,
    burst_len: u64,
}

impl TransientModel {
    /// Merges the transient overlay into a persistent base map. The base
    /// wins on conflicts (a stuck cell cannot also be flipped); the
    /// result stays sorted by cell index like every generated map.
    fn overlay(&self, base: FaultMap, lines: usize, vdd: NormVdd) -> FaultMap {
        let seed = base.seed();
        let (_, freq) = base.operating_point();
        // The overlay domain folds the voltage in: transient populations
        // at different operating points are independent draws.
        let tseed = splitmix64(seed ^ 0x7EAB_5EED ^ vdd.0.to_bits());
        let threshold = match self.mode {
            TransientMode::Random => unit_threshold(self.rate),
            TransientMode::Burst => 0,
            TransientMode::Msb => unit_threshold((self.rate * 8.0).min(1.0)),
        };
        let mut faults = Vec::with_capacity(lines);
        let mut scratch: Vec<CellFault> = Vec::new();
        for line in 0..lines {
            let tbase = hash3_base(tseed, line as u64);
            scratch.clear();
            match self.mode {
                TransientMode::Random | TransientMode::Msb => {
                    for cell in 0..layout::CELLS_PER_LINE {
                        if self.mode == TransientMode::Msb && cell % 8 != 7 {
                            continue;
                        }
                        let h = hash3_with_base(tbase, u64::from(cell));
                        if (h >> 11) < threshold {
                            scratch.push(CellFault {
                                cell,
                                stuck: h & (1 << 63) != 0,
                            });
                        }
                    }
                }
                TransientMode::Burst => {
                    let h = hash3_with_base(tbase, 0xB0B5);
                    if to_unit(h) < self.rate {
                        let start =
                            hash3_with_base(tbase, 0x57A7) % u64::from(layout::CELLS_PER_LINE);
                        for i in 0..self.burst_len {
                            let cell = ((start + i) % u64::from(layout::CELLS_PER_LINE)) as u16;
                            let hb = hash3_with_base(tbase, 0x1_0000 + u64::from(cell));
                            scratch.push(CellFault {
                                cell,
                                stuck: hb & (1 << 63) != 0,
                            });
                        }
                        scratch.sort_unstable_by_key(|f| f.cell);
                    }
                }
            }
            // Merge (both sides sorted): persistent faults win.
            let persistent = base.line(line);
            let mut merged = Vec::with_capacity(persistent.len() + scratch.len());
            let mut t = scratch.iter().peekable();
            for &p in persistent {
                while let Some(&&next) = t.peek() {
                    if next.cell < p.cell {
                        merged.push(next);
                        t.next();
                    } else {
                        if next.cell == p.cell {
                            t.next();
                        }
                        break;
                    }
                }
                merged.push(p);
            }
            merged.extend(t.copied());
            faults.push(merged.into_boxed_slice());
        }
        // The derived statistics describe the persistent substrate; the
        // transient layer is an overlay on top of them.
        FaultMap::from_parts(
            faults,
            base.p_cell_median(),
            base.mean_p_line(),
            vdd,
            freq,
            seed,
        )
    }
}

impl FaultModel for TransientModel {
    fn map(&self, lines: usize, vdd: NormVdd, freq: FreqGhz, seed: u64) -> FaultMap {
        let base = FaultMap::generate(lines, &self.cell, MapOptions::new(vdd, freq, seed));
        self.overlay(base, lines, vdd)
    }

    fn map_reference(&self, lines: usize, vdd: NormVdd, freq: FreqGhz, seed: u64) -> FaultMap {
        let base = FaultMap::generate(lines, &self.cell, MapOptions::new(vdd, freq, seed).dense());
        self.overlay(base, lines, vdd)
    }

    fn voltage_nested(&self) -> bool {
        false
    }

    fn cell_model(&self) -> Option<&CellFailureModel> {
        Some(&self.cell)
    }
}

// ---------------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------------

/// Spells anchors canonically: `vdd@log10_p` pairs joined by `;` (chosen
/// so the string survives the CLI shorthand's `,`/`:`/`=` splitting).
fn anchors_to_str(anchors: &[(f64, f64)]) -> String {
    anchors
        .iter()
        .map(|(v, l)| format!("{v:?}@{l:?}"))
        .collect::<Vec<_>>()
        .join(";")
}

/// Parses an anchors string (see [`anchors_to_str`]).
fn anchors_from_str(text: &str) -> Result<Vec<(f64, f64)>, String> {
    let mut anchors = Vec::new();
    for pair in text.split(';') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let Some((v, l)) = pair.split_once('@') else {
            return Err(format!("anchor `{pair}` is not vdd@log10_p"));
        };
        let v: f64 = v
            .trim()
            .parse()
            .map_err(|_| format!("anchor voltage `{v}` is not a number"))?;
        let l: f64 = l
            .trim()
            .parse()
            .map_err(|_| format!("anchor log10_p `{l}` is not a number"))?;
        anchors.push((v, l));
    }
    Ok(anchors)
}

/// Loads anchors from a parameter file: one `vdd,log10_p` pair per line,
/// `#` comments and blank lines ignored (the measured-CDF flow).
fn anchors_from_file(path: &str) -> Result<Vec<(f64, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let mut anchors = Vec::new();
    for (number, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((v, l)) = line.split_once(',') else {
            return Err(format!("{path}:{}: expected `vdd,log10_p`", number + 1));
        };
        let v: f64 = v
            .trim()
            .parse()
            .map_err(|_| format!("{path}:{}: voltage `{v}` is not a number", number + 1))?;
        let l: f64 = l
            .trim()
            .parse()
            .map_err(|_| format!("{path}:{}: log10_p `{l}` is not a number", number + 1))?;
        anchors.push((v, l));
    }
    Ok(anchors)
}

/// Resolves the `table` model's anchors: the file takes precedence over
/// the inline string when set.
fn table_anchors(p: &ResolvedParams) -> Result<Vec<(f64, f64)>, BuildError> {
    let model_err = |reason: String| BuildError::Model {
        model: p.model().to_string(),
        reason,
    };
    let file = p.str("file");
    let anchors = if file.is_empty() {
        anchors_from_str(p.str("anchors")).map_err(model_err)?
    } else {
        anchors_from_file(file).map_err(model_err)?
    };
    if anchors.len() < 2 {
        return Err(model_err("need at least two anchors".to_string()));
    }
    if !anchors.windows(2).all(|w| w[0].0 < w[1].0) {
        return Err(model_err(
            "anchor voltages must be strictly increasing".to_string(),
        ));
    }
    Ok(anchors)
}

/// The FinFET-14 anchors spelled as the `table` model's default, so the
/// default `table` config builds (and approximates `stuck-at`).
fn finfet14_anchors_str() -> String {
    anchors_to_str(CellFailureModel::finfet14().anchors())
}

/// Registers the built-in fault models (see the module docs).
pub fn register_builtin_models(registry: &mut FaultModelRegistry) {
    registry.register(FaultModelDescriptor {
        name: STUCK_AT,
        doc: "the paper's persistent stuck-at model (14nm FinFET calibration, §3)",
        voltage_nested: true,
        params: Vec::new(),
        label: |_| STUCK_AT.to_string(),
        build: |_| {
            Ok(Arc::new(ParametricStuckAt {
                cell: CellFailureModel::finfet14(),
            }))
        },
        canonicalize: None,
    });

    registry.register(FaultModelDescriptor {
        name: "clustered",
        doc: "MoRS-style row/column-correlated persistent stuck-at faults",
        voltage_nested: true,
        params: vec![
            ParamSpec {
                name: "rows",
                doc: "lines per physical row (share one row-variation draw)",
                default: ParamValue::U64(4),
            },
            ParamSpec {
                name: "corr",
                doc: "row-correlation weight in [0, 1]",
                default: ParamValue::F64(0.8),
            },
            ParamSpec {
                name: "col_cells",
                doc: "cells per column group (share one column draw die-wide)",
                default: ParamValue::U64(64),
            },
            ParamSpec {
                name: "col_corr",
                doc: "column-correlation weight in [0, 1]",
                default: ParamValue::F64(0.0),
            },
        ],
        label: |p| {
            let mut label = format!("clustered:rows={},corr={:?}", p.u64("rows"), p.f64("corr"));
            if p.f64("col_corr") > 0.0 {
                label.push_str(&format!(
                    ",col_cells={},col_corr={:?}",
                    p.u64("col_cells"),
                    p.f64("col_corr")
                ));
            }
            label
        },
        build: |p| {
            let invalid = |param: &str, reason: &str| BuildError::InvalidParam {
                model: p.model().to_string(),
                param: param.to_string(),
                reason: reason.to_string(),
            };
            let (rows, corr) = (p.u64("rows"), p.f64("corr"));
            let (col_cells, col_corr) = (p.u64("col_cells"), p.f64("col_corr"));
            if rows == 0 {
                return Err(invalid("rows", "must be positive"));
            }
            if !(1..=u64::from(layout::CELLS_PER_LINE)).contains(&col_cells) {
                return Err(invalid("col_cells", "must be in [1, 560]"));
            }
            if !(0.0..=1.0).contains(&corr) {
                return Err(invalid("corr", "must be in [0, 1]"));
            }
            if !(0.0..=1.0).contains(&col_corr) {
                return Err(invalid("col_corr", "must be in [0, 1]"));
            }
            if corr * corr + col_corr * col_corr > 1.0 {
                return Err(invalid(
                    "corr",
                    "corr^2 + col_corr^2 must not exceed 1 (variance budget)",
                ));
            }
            Ok(Arc::new(ClusteredModel {
                cell: CellFailureModel::finfet14(),
                rows,
                corr,
                col_cells,
                col_corr,
            }))
        },
        canonicalize: None,
    });

    registry.register(FaultModelDescriptor {
        name: "transient",
        doc: "random/burst/MSB-biased transient flips over a stuck-at base (NOT voltage-nested)",
        voltage_nested: false,
        params: vec![
            ParamSpec {
                name: "mode",
                doc: "overlay shape: random | burst | msb",
                default: ParamValue::Str("random".to_string()),
            },
            ParamSpec {
                name: "rate",
                doc: "per-cell (random/msb) or per-line (burst) flip probability",
                default: ParamValue::F64(1e-4),
            },
            ParamSpec {
                name: "burst_len",
                doc: "adjacent cells flipped per burst event (burst mode)",
                default: ParamValue::U64(4),
            },
        ],
        label: |p| {
            let mut label = format!("transient:mode={},rate={:?}", p.str("mode"), p.f64("rate"));
            if p.str("mode") == "burst" {
                label.push_str(&format!(",burst_len={}", p.u64("burst_len")));
            }
            label
        },
        build: |p| {
            let invalid = |param: &str, reason: String| BuildError::InvalidParam {
                model: p.model().to_string(),
                param: param.to_string(),
                reason,
            };
            let mode = match p.str("mode") {
                "random" => TransientMode::Random,
                "burst" => TransientMode::Burst,
                "msb" => TransientMode::Msb,
                other => {
                    return Err(invalid(
                        "mode",
                        format!("`{other}` is not one of random, burst, msb"),
                    ))
                }
            };
            let rate = p.f64("rate");
            if !(0.0..=1.0).contains(&rate) {
                return Err(invalid("rate", "must be a probability".to_string()));
            }
            let burst_len = p.u64("burst_len");
            if !(1..=u64::from(layout::CELLS_PER_LINE)).contains(&burst_len) {
                return Err(invalid(
                    "burst_len",
                    format!("must be in [1, {}]", layout::CELLS_PER_LINE),
                ));
            }
            Ok(Arc::new(TransientModel {
                cell: CellFailureModel::finfet14(),
                mode,
                rate,
                burst_len,
            }))
        },
        canonicalize: None,
    });

    registry.register(FaultModelDescriptor {
        name: "table",
        doc: "persistent stuck-at faults drawn from a measured CDF (inline anchors or a file)",
        voltage_nested: true,
        params: vec![
            ParamSpec {
                name: "file",
                doc: "parameter file of `vdd,log10_p` lines (overrides `anchors`)",
                default: ParamValue::Str(String::new()),
            },
            ParamSpec {
                name: "anchors",
                doc: "inline CDF anchors: `vdd@log10_p` pairs joined by `;`",
                default: ParamValue::Str(finfet14_anchors_str()),
            },
            ParamSpec {
                name: "sigma",
                doc: "lognormal line-to-line variation (in ln units)",
                default: ParamValue::F64(2.0),
            },
        ],
        label: |p| {
            let anchors = table_anchors(p).map(|a| a.len()).unwrap_or(0);
            format!("table:anchors={anchors},sigma={:?}", p.f64("sigma"))
        },
        build: |p| {
            let anchors = table_anchors(p)?;
            let sigma = p.f64("sigma");
            if sigma < 0.0 {
                return Err(BuildError::InvalidParam {
                    model: p.model().to_string(),
                    param: "sigma".to_string(),
                    reason: "must be non-negative".to_string(),
                });
            }
            Ok(Arc::new(ParametricStuckAt {
                cell: CellFailureModel::from_anchors(anchors, sigma),
            }))
        },
        canonicalize: Some(|p| {
            // Fold the file's *contents* into the inline anchors (and
            // normalize their spelling) so cache keys address what the
            // model computes, not the path it was loaded from.
            let anchors = table_anchors(p)?;
            p.set("anchors", ParamValue::Str(anchors_to_str(&anchors)));
            p.set("file", ParamValue::Str(String::new()));
            Ok(())
        }),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> FaultModelRegistry {
        let mut r = FaultModelRegistry::new();
        register_builtin_models(&mut r);
        r
    }

    fn assert_maps_equal(a: &FaultMap, b: &FaultMap) {
        assert_eq!(a.lines(), b.lines());
        for l in 0..a.lines() {
            assert_eq!(a.line(l), b.line(l), "line {l} differs");
        }
    }

    #[test]
    fn all_builtin_models_build_from_defaults() {
        let r = registry();
        assert_eq!(
            r.names(),
            vec!["stuck-at", "clustered", "transient", "table"]
        );
        for d in r.descriptors() {
            let model = r
                .build(&FaultModelConfig::new(d.name))
                .unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(model.voltage_nested(), d.voltage_nested, "{}", d.name);
        }
    }

    #[test]
    fn every_model_is_deterministic_and_reference_equal() {
        let r = registry();
        for d in r.descriptors() {
            let model = r.build(&FaultModelConfig::new(d.name)).unwrap();
            let a = model.map(64, NormVdd(0.575), FreqGhz::PEAK, 7);
            let b = model.map(64, NormVdd(0.575), FreqGhz::PEAK, 7);
            let reference = model.map_reference(64, NormVdd(0.575), FreqGhz::PEAK, 7);
            assert_maps_equal(&a, &b);
            assert_maps_equal(&a, &reference);
        }
    }

    #[test]
    fn stuck_at_matches_the_old_concrete_path_bit_for_bit() {
        let r = registry();
        let model = r.build(&FaultModelConfig::default()).unwrap();
        for vdd in [0.55, 0.6, 0.65] {
            let via_registry = model.map(96, NormVdd(vdd), FreqGhz::PEAK, 42);
            let direct = FaultMap::generate(
                96,
                &CellFailureModel::finfet14(),
                MapOptions::new(NormVdd(vdd), FreqGhz::PEAK, 42),
            );
            assert_maps_equal(&via_registry, &direct);
        }
    }

    #[test]
    fn stuck_at_die_matches_per_voltage_maps() {
        let r = registry();
        let model = r.build(&FaultModelConfig::default()).unwrap();
        let die = model
            .die(64, NormVdd(0.55), FreqGhz::PEAK, 9)
            .expect("stuck-at factorizes across voltage");
        for vdd in [0.55, 0.6, 0.7] {
            assert_maps_equal(
                &die.map_at(NormVdd(vdd)),
                &model.map(64, NormVdd(vdd), FreqGhz::PEAK, 9),
            );
        }
    }

    #[test]
    fn clustered_is_voltage_nested_and_row_correlated() {
        let r = registry();
        let model = r
            .build(&FaultModelConfig::parse("clustered:rows=8,corr=0.9").unwrap())
            .unwrap();
        let hi = model.map(256, NormVdd(0.6), FreqGhz::PEAK, 3);
        let lo = model.map(256, NormVdd(0.55), FreqGhz::PEAK, 3);
        for l in 0..256 {
            for f in hi.line(l) {
                assert!(lo.line(l).contains(f), "nesting violated at line {l}");
            }
        }
        // Row clustering: the variance of per-row fault counts under high
        // correlation exceeds the uncorrelated model's (faults pile into
        // shared-draw rows instead of spreading).
        let uncorrelated = r
            .build(&FaultModelConfig::parse("clustered:rows=8,corr=0.0").unwrap())
            .unwrap();
        let row_variance = |map: &FaultMap| {
            let rows: Vec<f64> = (0..32)
                .map(|r| (0..8).map(|i| map.line(r * 8 + i).len()).sum::<usize>() as f64)
                .collect();
            let mean = rows.iter().sum::<f64>() / rows.len() as f64;
            rows.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / rows.len() as f64
        };
        let clustered_var = row_variance(&model.map(256, NormVdd(0.55), FreqGhz::PEAK, 11));
        let flat_var = row_variance(&uncorrelated.map(256, NormVdd(0.55), FreqGhz::PEAK, 11));
        assert!(
            clustered_var > flat_var,
            "row correlation must concentrate faults: {clustered_var} <= {flat_var}"
        );
    }

    #[test]
    fn transient_declares_and_exhibits_non_nesting() {
        let r = registry();
        let model = r
            .build(&FaultModelConfig::parse("transient:rate=0.01").unwrap())
            .unwrap();
        assert!(!model.voltage_nested());
        // The overlay is redrawn per voltage: some fault present at the
        // higher voltage must be absent at the lower one.
        let hi = model.map(512, NormVdd(0.65), FreqGhz::PEAK, 5);
        let lo = model.map(512, NormVdd(0.6), FreqGhz::PEAK, 5);
        let violated = (0..512).any(|l| hi.line(l).iter().any(|f| !lo.line(l).contains(f)));
        assert!(violated, "transient overlay should break nesting");
    }

    #[test]
    fn transient_burst_and_msb_modes_shape_the_overlay() {
        let r = registry();
        let msb = r
            .build(&FaultModelConfig::parse("transient:mode=msb,rate=0.05").unwrap())
            .unwrap();
        let map = msb.map(128, NormVdd::NOMINAL, FreqGhz::PEAK, 2);
        let mut total = 0;
        for l in 0..128 {
            for f in map.line(l) {
                assert_eq!(f.cell % 8, 7, "msb overlay flipped a non-MSB cell");
                total += 1;
            }
        }
        assert!(total > 0, "msb overlay fired at nominal voltage");

        let burst = r
            .build(&FaultModelConfig::parse("transient:mode=burst,rate=1.0,burst_len=6").unwrap())
            .unwrap();
        let map = burst.map(64, NormVdd::NOMINAL, FreqGhz::PEAK, 2);
        for l in 0..64 {
            assert_eq!(map.line(l).len(), 6, "burst length respected (line {l})");
        }
    }

    #[test]
    fn table_defaults_match_finfet14_and_empty_anchors_are_rejected() {
        let r = registry();
        // The default table config is the FinFET-14 curve spelled inline:
        // it builds, and it reproduces the stuck-at map exactly (same
        // anchors, same sigma, same draw path).
        let table = r.build(&FaultModelConfig::new("table")).unwrap();
        let stuck = r.build(&FaultModelConfig::default()).unwrap();
        assert_maps_equal(
            &table.map(64, NormVdd(0.575), FreqGhz::PEAK, 7),
            &stuck.map(64, NormVdd(0.575), FreqGhz::PEAK, 7),
        );
        let err = r
            .build(&FaultModelConfig::new("table").with("anchors", ParamValue::Str(String::new())))
            .unwrap_err();
        assert!(matches!(err, BuildError::Model { .. }), "{err}");
    }

    #[test]
    fn table_file_and_inline_spellings_canonicalize_identically() {
        let r = registry();
        let dir = std::env::temp_dir().join("killi_fault_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cdf.csv");
        std::fs::write(&path, "# measured CDF\n0.5,-0.3\n0.6, -4.19\n\n0.7,-9.5\n").unwrap();
        let from_file = FaultModelConfig::new("table")
            .with("file", ParamValue::Str(path.to_str().unwrap().to_string()));
        let inline = FaultModelConfig::parse("table:anchors=0.5@-0.3;0.6@-4.19;0.7@-9.5").unwrap();
        let a = r.canonicalize(&from_file).unwrap();
        let b = r.canonicalize(&inline).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.get("file"), Some(&ParamValue::Str(String::new())));
        // And both build the same maps.
        let ma = r.build(&from_file).unwrap();
        let mb = r.build(&inline).unwrap();
        assert_maps_equal(
            &ma.map(64, NormVdd(0.55), FreqGhz::PEAK, 1),
            &mb.map(64, NormVdd(0.55), FreqGhz::PEAK, 1),
        );
    }

    #[test]
    fn spellings_round_trip_through_canonicalization() {
        let r = registry();
        let shorthand = FaultModelConfig::parse("clustered:rows=8,corr=0.5").unwrap();
        let json = FaultModelConfig::from_json(
            r#"{"name": "clustered", "params": {"corr": 0.5, "rows": 8}}"#,
        )
        .unwrap();
        assert_eq!(
            r.canonicalize(&shorthand).unwrap(),
            r.canonicalize(&json).unwrap()
        );
        // Display round-trips through parse.
        let canonical = r.canonicalize(&shorthand).unwrap();
        let reparsed = FaultModelConfig::parse(&canonical.to_string()).unwrap();
        assert_eq!(r.canonicalize(&reparsed).unwrap(), canonical);
    }

    #[test]
    fn errors_are_typed() {
        let r = registry();
        assert!(matches!(
            r.validate(&FaultModelConfig::new("nope")),
            Err(BuildError::UnknownModel { .. })
        ));
        assert!(matches!(
            r.validate(&FaultModelConfig::parse("clustered:bogus=1").unwrap()),
            Err(BuildError::UnknownParam { .. })
        ));
        assert!(matches!(
            r.validate(&FaultModelConfig::parse("clustered:rows=abc").unwrap()),
            Err(BuildError::InvalidParam { .. })
        ));
        assert!(matches!(
            r.build(&FaultModelConfig::parse("clustered:corr=0.9,col_corr=0.9").unwrap()),
            Err(BuildError::InvalidParam { .. })
        ));
        assert!(matches!(
            r.build(&FaultModelConfig::parse("transient:mode=gamma").unwrap()),
            Err(BuildError::InvalidParam { .. })
        ));
    }

    #[test]
    fn default_registry_is_shared_and_complete() {
        let r = default_registry();
        assert_eq!(r.names().len(), 4);
        assert!(std::ptr::eq(r, default_registry()));
    }
}

//! Transient (soft) error injection.
//!
//! Killi must distinguish persistent LV faults from transient upsets: a
//! soft error on a `b'00` line triggers an error-induced miss and a
//! (temporary) reclassification, and multi-bit soft errors motivate the
//! *interleaved* segment parity (§4.1). The injector flips bits at a
//! configurable per-access rate; multi-bit events flip physically adjacent
//! bits, matching the adjacency observation of Maiz et al. cited by the
//! paper.

use killi_ecc::bits::{Line512, LINE_BITS};

use crate::rng::{hash3, to_unit};

/// Deterministic soft-error injector.
///
/// The decision for access number `n` is a pure function of
/// `(seed, n)`, so simulations with soft errors remain reproducible.
#[derive(Debug, Clone)]
pub struct SoftErrorInjector {
    seed: u64,
    rate_per_access: f64,
    /// Probability that an event upsets multiple adjacent cells.
    multi_bit_fraction: f64,
    /// Maximum burst length for multi-bit events.
    max_burst: usize,
    accesses: u64,
    injected_events: u64,
    injected_bits: u64,
}

impl SoftErrorInjector {
    /// Creates an injector with the given per-access upset probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= rate <= 1`, `0 <= multi_bit_fraction <= 1` and
    /// `1 <= max_burst <= 16`.
    pub fn new(seed: u64, rate_per_access: f64, multi_bit_fraction: f64, max_burst: usize) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate_per_access),
            "rate must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&multi_bit_fraction),
            "multi-bit fraction must be a probability"
        );
        assert!((1..=16).contains(&max_burst), "burst length out of range");
        SoftErrorInjector {
            seed,
            rate_per_access,
            multi_bit_fraction,
            max_burst,
            accesses: 0,
            injected_events: 0,
            injected_bits: 0,
        }
    }

    /// An injector that never fires.
    pub fn disabled() -> Self {
        Self::new(0, 0.0, 0.0, 1)
    }

    /// Advances the access counter and possibly flips bits in `data`.
    /// Returns the flipped bit indices (empty for no event).
    pub fn maybe_upset(&mut self, data: &mut Line512) -> Vec<usize> {
        let n = self.accesses;
        self.accesses += 1;
        if self.rate_per_access == 0.0 {
            return Vec::new();
        }
        let h = hash3(self.seed, n, 0x50F7);
        if to_unit(h) >= self.rate_per_access {
            return Vec::new();
        }
        self.injected_events += 1;
        let h2 = hash3(self.seed, n, 0xB1_75);
        let start = (h2 % LINE_BITS as u64) as usize;
        let burst = if to_unit(hash3(self.seed, n, 0x3)) < self.multi_bit_fraction {
            2 + (hash3(self.seed, n, 0x4) as usize) % (self.max_burst - 1).max(1)
        } else {
            1
        };
        let mut flipped = Vec::with_capacity(burst);
        for i in 0..burst {
            let bit = (start + i) % LINE_BITS;
            data.flip_bit(bit);
            flipped.push(bit);
        }
        self.injected_bits += flipped.len() as u64;
        flipped
    }

    /// Number of accesses observed so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of upset events injected so far.
    pub fn injected_events(&self) -> u64 {
        self.injected_events
    }

    /// Total bits flipped so far.
    pub fn injected_bits(&self) -> u64 {
        self.injected_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_fires() {
        let mut inj = SoftErrorInjector::disabled();
        let mut data = Line512::from_seed(1);
        let snapshot = data;
        for _ in 0..1000 {
            assert!(inj.maybe_upset(&mut data).is_empty());
        }
        assert_eq!(data, snapshot);
        assert_eq!(inj.injected_events(), 0);
    }

    #[test]
    fn rate_is_respected() {
        let mut inj = SoftErrorInjector::new(5, 0.01, 0.0, 1);
        let mut data = Line512::zero();
        for _ in 0..100_000 {
            inj.maybe_upset(&mut data);
        }
        let rate = inj.injected_events() as f64 / inj.accesses() as f64;
        assert!((0.007..0.013).contains(&rate), "rate = {rate}");
    }

    #[test]
    fn deterministic_replay() {
        let run = |seed| {
            let mut inj = SoftErrorInjector::new(seed, 0.05, 0.3, 8);
            let mut data = Line512::zero();
            let mut log = Vec::new();
            for _ in 0..500 {
                log.push(inj.maybe_upset(&mut data));
            }
            (log, data)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).1, run(10).1);
    }

    #[test]
    fn bursts_are_adjacent_and_bounded() {
        let mut inj = SoftErrorInjector::new(77, 1.0, 1.0, 8);
        let mut data = Line512::zero();
        for _ in 0..200 {
            let flips = inj.maybe_upset(&mut data);
            assert!((2..=8).contains(&flips.len()), "burst {}", flips.len());
            for w in flips.windows(2) {
                assert_eq!((w[0] + 1) % LINE_BITS, w[1], "non-adjacent burst");
            }
        }
    }

    #[test]
    fn single_bit_mode() {
        let mut inj = SoftErrorInjector::new(3, 1.0, 0.0, 1);
        let mut data = Line512::zero();
        for _ in 0..50 {
            assert_eq!(inj.maybe_upset(&mut data).len(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_rate_rejected() {
        SoftErrorInjector::new(0, 1.5, 0.0, 1);
    }
}

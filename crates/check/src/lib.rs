//! Minimal property-testing harness for the Killi workspace.
//!
//! The build environment is fully offline, so the workspace cannot pull
//! `proptest` from a registry. This crate provides the small subset the
//! test suite actually needs — a seedable value generator plus a case
//! runner with failure reporting — on top of the same SplitMix64
//! primitives the fault model uses, with zero external dependencies.
//!
//! Environment knobs:
//!
//! - `KILLI_CHECK_CASES` — cases per property (default 64).
//! - `KILLI_CHECK_SEED` — root seed (default fixed, so CI is stable).
//!
//! A failing property prints the per-case seed; rerun a single case with
//! `Gen::new(<seed>)` in a scratch test, or replay the whole property
//! with the printed `KILLI_CHECK_SEED`/`KILLI_CHECK_CASES` values.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// SplitMix64 finalizer (duplicated from `killi-fault` so this crate
/// stays dependency-free and usable below it in the crate graph).
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic value generator handed to each property case.
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Creates a generator for one case.
    pub fn new(seed: u64) -> Self {
        Gen {
            state: splitmix64(seed),
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.u64_below((hi - lo) as u64) as usize
    }

    /// Uniform boolean.
    #[inline]
    pub fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// Uniform double in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform double in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.unit() * (hi - lo)
    }

    /// A reference to a uniformly chosen slice element.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.usize_in(0, xs.len())]
    }

    /// A vector with a uniform length in `[min_len, max_len]` filled by
    /// `f`.
    pub fn vec<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(min_len, max_len + 1);
        (0..len).map(|_| f(self)).collect()
    }

    /// A set of up to `max_len` distinct `usize` values drawn from
    /// `[0, universe)`; the realized length is uniform in
    /// `[min_len, max_len]` when the universe allows it.
    pub fn distinct(&mut self, universe: usize, min_len: usize, max_len: usize) -> BTreeSet<usize> {
        let want = self.usize_in(min_len, max_len + 1).min(universe);
        let mut out = BTreeSet::new();
        // Rejection sampling; fine for the small sets tests draw.
        while out.len() < want {
            out.insert(self.usize_in(0, universe));
        }
        out
    }
}

/// Number of cases per property (`KILLI_CHECK_CASES`, default 64).
pub fn default_cases() -> u64 {
    std::env::var("KILLI_CHECK_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Root seed (`KILLI_CHECK_SEED`, default fixed so CI is reproducible).
pub fn root_seed() -> u64 {
    std::env::var("KILLI_CHECK_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x4B49_4C4C_495F_5052) // "KILLI_PR"
}

/// Runs `f` against `default_cases()` generated cases.
///
/// # Panics
///
/// Re-raises the first failing case's panic after printing how to
/// reproduce it.
pub fn check(name: &str, f: impl Fn(&mut Gen)) {
    check_cases(name, default_cases(), f);
}

/// Runs `f` against an explicit number of generated cases.
///
/// # Panics
///
/// Re-raises the first failing case's panic after printing how to
/// reproduce it.
pub fn check_cases(name: &str, cases: u64, f: impl Fn(&mut Gen)) {
    let root = root_seed();
    for case in 0..cases {
        let case_seed = splitmix64(root ^ splitmix64(case));
        let result = catch_unwind(AssertUnwindSafe(|| f(&mut Gen::new(case_seed))));
        if let Err(panic) = result {
            eprintln!(
                "[killi-check] property '{name}' failed at case {case}/{cases} \
                 (case seed {case_seed:#018x}); replay with \
                 KILLI_CHECK_SEED={root} KILLI_CHECK_CASES={cases}, or drive \
                 Gen::new({case_seed:#018x}) directly"
            );
            resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_is_reproducible() {
        let mut a = Gen::new(9);
        let mut b = Gen::new(9);
        for _ in 0..64 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut g = Gen::new(1);
        for _ in 0..1000 {
            assert!(g.u64_below(17) < 17);
            let x = g.usize_in(3, 9);
            assert!((3..9).contains(&x));
            let f = g.f64_in(-1.0, 2.0);
            assert!((-1.0..2.0).contains(&f));
            let u = g.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn vec_and_distinct_sizes() {
        let mut g = Gen::new(2);
        for _ in 0..200 {
            let v = g.vec(1, 5, Gen::u64);
            assert!((1..=5).contains(&v.len()));
            let s = g.distinct(16, 2, 6);
            assert!((2..=6).contains(&s.len()));
            assert!(s.iter().all(|&x| x < 16));
        }
    }

    #[test]
    fn distinct_clamps_to_universe() {
        let mut g = Gen::new(3);
        let s = g.distinct(3, 3, 8);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn check_runs_every_case() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let hits = AtomicU64::new(0);
        check_cases("counting", 10, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn check_reports_failures() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check_cases("always-fails", 3, |_| panic!("boom"));
        }));
        assert!(result.is_err());
    }
}

//! The four-layer protection pipeline.
//!
//! Killi's central observation is that low-voltage cache protection
//! decomposes into orthogonal concerns, each answering one question:
//!
//! 1. [`DetectionCodec`] — *is this read corrupted, and can I fix it?*
//!    (segmented interleaved parity, SECDED, DEC-TED, OLSC)
//! 2. [`CorrectionStore`] — *where do the checkbits live?* (per-line
//!    metadata columns, or Killi's decoupled set-associative [`EccCache`])
//! 3. [`FaultClassifier`] — *which lines are trustworthy?* (the 2-bit DFH
//!    state machine, an MBIST-style oracle, FLAIR's online way-pair test)
//! 4. [`VictimPolicy`] — *which line should the replacement policy spend
//!    on faulty hardware?* (the paper's `b'01 > b'00 > b'10` priority)
//!
//! [`ProtectionPipeline`] composes one implementation of each layer into a
//! [`LineProtection`] scheme. The three baselines (per-line SECDED/DEC-TED,
//! MS-ECC, FLAIR-online) are pure compositions; [`crate::KilliScheme`] is
//! built from the same layer components (its [`DfhClassifier`],
//! [`SegmentedParity`], [`EccCache`] and [`DfhPriorityPolicy`]) with glue
//! for the per-DFH-state dispatch the generic driver cannot express.
//!
//! Schemes are *instantiated* from declarative configs by the
//! [`crate::registry::SchemeRegistry`].

use std::sync::Arc;

use killi_ecc::bch::{dected, DectedDecode};
use killi_ecc::bits::Line512;
use killi_ecc::olsc::{OlscDecode, OlscLine};
use killi_ecc::parity::{seg16, seg4, SegObservation};
use killi_ecc::secded::{secded, SecdedCode, SecdedDecode, SecdedObservation};
use killi_fault::map::{FaultMap, LineId};
use killi_obs::{Counter, Histogram, KilliEvent, MetricSet, Sink};
use killi_sim::protection::{FillOutcome, LineProtection, ReadOutcome};

use crate::classify::{classify_unknown, Verdict};
use crate::dfh::{Dfh, DfhArray};
use crate::ecc_cache::{EccCache, EccPayload, SetProbe};

/// Outcome of a [`DetectionCodec::check`], the only signal the generic
/// pipeline driver needs: deliver, deliver-after-correction, or refetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecVerdict {
    /// The stored data matched its checkbits.
    Clean,
    /// Errors were corrected in place; the data is now good.
    Corrected,
    /// The error exceeds the code's strength; the read must miss.
    Uncorrectable,
}

/// Layer 1: a detection/correction code over one cache line.
///
/// `encode` produces the checkbit payload written alongside a fill (already
/// passed through the fault map when the checkbit cells themselves are
/// low-voltage); `check` validates a read against that payload, correcting
/// `stored` in place when the code allows it.
pub trait DetectionCodec {
    /// Cycles the check adds to every hit.
    fn check_latency(&self) -> u32;
    /// Encodes `data` into the payload stored for `line`.
    fn encode(&mut self, line: LineId, data: &Line512) -> EccPayload;
    /// Checks (and possibly corrects) `stored` against `payload`.
    fn check(&mut self, line: LineId, stored: &mut Line512, payload: &EccPayload) -> CodecVerdict;
}

/// Layer 2: where checkbit payloads live.
///
/// Killi's [`EccCache`] implements this with bounded, set-associative,
/// LRU-displaced capacity; [`LineStore`] models conventional per-line
/// metadata columns (always room, never displaces).
pub trait CorrectionStore {
    /// Capacity probe for `line`'s set (no LRU side effects).
    fn probe(&self, line: LineId) -> SetProbe;
    /// Payload stored for `line`, if any.
    fn lookup(&mut self, line: LineId) -> Option<EccPayload>;
    /// Stores a payload; returns a displaced `(line, payload)` entry when
    /// capacity forced an eviction.
    fn insert(&mut self, line: LineId, payload: EccPayload) -> Option<(LineId, EccPayload)>;
    /// Replaces the payload of an existing entry in place.
    fn update(&mut self, line: LineId, payload: EccPayload) -> bool;
    /// Drops `line`'s entry.
    fn invalidate(&mut self, line: LineId);
    /// Marks `line`'s entry recently used.
    fn promote(&mut self, line: LineId);
    /// Drops every entry.
    fn clear(&mut self);
    /// Connects the store to an event sink.
    fn attach_sink(&mut self, sink: Sink) {
        let _ = sink;
    }
    /// Contributes store counters to a [`MetricSet`].
    fn fill_metrics(&self, m: &mut MetricSet) {
        let _ = m;
    }
}

impl CorrectionStore for EccCache {
    fn probe(&self, line: LineId) -> SetProbe {
        EccCache::probe(self, line)
    }

    fn lookup(&mut self, line: LineId) -> Option<EccPayload> {
        EccCache::lookup(self, line)
    }

    fn insert(&mut self, line: LineId, payload: EccPayload) -> Option<(LineId, EccPayload)> {
        EccCache::insert(self, line, payload)
    }

    fn update(&mut self, line: LineId, payload: EccPayload) -> bool {
        EccCache::update(self, line, payload)
    }

    fn invalidate(&mut self, line: LineId) {
        EccCache::invalidate(self, line);
    }

    fn promote(&mut self, line: LineId) {
        EccCache::promote(self, line);
    }

    fn clear(&mut self) {
        EccCache::clear(self);
    }

    fn attach_sink(&mut self, sink: Sink) {
        EccCache::attach_sink(self, sink);
    }

    fn fill_metrics(&self, m: &mut MetricSet) {
        m.set(Counter::EccCacheAccesses, self.accesses());
        m.set(Counter::EccCacheDisplacements, self.evictions());
        m.ecc_occupancy = *self.occupancy_histogram();
    }
}

/// A conventional per-line checkbit store: one dedicated slot per cache
/// line, so capacity never displaces anything (the baselines' layout).
#[derive(Debug, Clone)]
pub struct LineStore {
    codes: Vec<Option<EccPayload>>,
}

impl LineStore {
    /// A store with one (empty) slot per L2 line.
    pub fn new(lines: usize) -> Self {
        LineStore {
            codes: vec![None; lines],
        }
    }
}

impl CorrectionStore for LineStore {
    fn probe(&self, line: LineId) -> SetProbe {
        SetProbe {
            has_entry: self.codes[line].is_some(),
            has_free_way: true,
        }
    }

    fn lookup(&mut self, line: LineId) -> Option<EccPayload> {
        self.codes[line]
    }

    fn insert(&mut self, line: LineId, payload: EccPayload) -> Option<(LineId, EccPayload)> {
        self.codes[line] = Some(payload);
        None
    }

    fn update(&mut self, line: LineId, payload: EccPayload) -> bool {
        match &mut self.codes[line] {
            Some(slot) => {
                *slot = payload;
                true
            }
            None => false,
        }
    }

    fn invalidate(&mut self, line: LineId) {
        self.codes[line] = None;
    }

    fn promote(&mut self, _line: LineId) {}

    fn clear(&mut self) {
        self.codes.fill(None);
    }
}

/// Layer 3: runtime (or oracle) knowledge of which lines are faulty.
pub trait FaultClassifier {
    /// Raw victim class for `line` (`None` = never allocate), before the
    /// [`VictimPolicy`] layer has its say.
    fn victim_class(&self, line: LineId) -> Option<u8>;
    /// Number of lines currently ruled unusable.
    fn disabled_lines(&self) -> u64;
    /// One protection operation (fill/hit/evict) is happening: advance any
    /// internal clock.
    fn on_access(&mut self) {}
    /// Feedback from the codec layer after a checked read of `line`.
    fn observe(&mut self, line: LineId, verdict: CodecVerdict) {
        let _ = (line, verdict);
    }
    /// Forget learned state (voltage change / reboot).
    fn reset(&mut self);
    /// Connects the classifier to an event sink.
    fn attach_sink(&mut self, sink: Sink) {
        let _ = sink;
    }
    /// Contributes classifier counters to a [`MetricSet`].
    fn fill_metrics(&self, m: &mut MetricSet) {
        let _ = m;
    }
}

/// An MBIST-style classifier: line health is decided up front from the
/// fault map (exactly what Killi exists to avoid, and exactly what the
/// per-line SECDED/DEC-TED and MS-ECC baselines assume).
#[derive(Debug, Clone)]
pub struct OracleClassifier {
    disabled: Vec<bool>,
}

impl OracleClassifier {
    /// A classifier from an explicit disabled set.
    pub fn new(disabled: Vec<bool>) -> Self {
        OracleClassifier { disabled }
    }

    /// Disables every line whose data-cell faults plus faults in the given
    /// checkbit-cell range reach `threshold` (the per-line ECC rule: 2 for
    /// SECDED, 3 for DEC-TED).
    pub fn from_threshold(
        map: &FaultMap,
        lines: usize,
        checkbit_cells: std::ops::Range<u16>,
        threshold: usize,
    ) -> Self {
        let disabled = (0..lines)
            .map(|line| {
                map.data_fault_count(line) + map.count_in(line, checkbit_cells.clone()) >= threshold
            })
            .collect();
        OracleClassifier { disabled }
    }

    /// Disables every line with more than `budget` data faults in any
    /// single `block_bits`-bit block (the MS-ECC rule for OLSC(m, t):
    /// `block_bits = m*m`, `budget = t`).
    pub fn from_block_budget(
        map: &FaultMap,
        lines: usize,
        block_bits: usize,
        budget: usize,
    ) -> Self {
        let blocks = 512usize.div_ceil(block_bits);
        let disabled = (0..lines)
            .map(|line| {
                let mut per_block = vec![0usize; blocks];
                for f in map.line(line) {
                    if (f.cell as usize) < 512 {
                        per_block[f.cell as usize / block_bits] += 1;
                    }
                }
                per_block.iter().any(|&n| n > budget)
            })
            .collect();
        OracleClassifier { disabled }
    }

    /// Whether `line` is disabled.
    pub fn is_disabled(&self, line: LineId) -> bool {
        self.disabled[line]
    }

    /// Number of disabled lines.
    pub fn disabled_count(&self) -> usize {
        self.disabled.iter().filter(|&&d| d).count()
    }
}

impl FaultClassifier for OracleClassifier {
    fn victim_class(&self, line: LineId) -> Option<u8> {
        (!self.disabled[line]).then_some(0)
    }

    fn disabled_lines(&self) -> u64 {
        self.disabled_count() as u64
    }

    fn reset(&mut self) {
        // Oracle knowledge is not learned, so nothing is forgotten.
    }
}

/// Killi's runtime classifier: the packed 2-bit DFH array plus its
/// transition statistics and the scheme-op clock used to measure how long
/// lines spend in training.
#[derive(Debug)]
pub struct DfhClassifier {
    dfh: DfhArray,
    /// DFH transitions observed, `transitions[from][to]` by `Dfh::bits()`.
    transitions: [[u64; 4]; 4],
    /// Scheme-op index at which each line last entered `b'01`.
    training_since: Vec<u64>,
    /// Ops spent in `b'01` before classification (log2 buckets).
    training_hist: Histogram,
    /// Scheme-op clock: one tick per fill/read-hit/evict hook.
    ops: u64,
    sink: Sink,
}

impl DfhClassifier {
    /// All lines start in the initial `b'01` state at op 0.
    pub fn new(lines: usize) -> Self {
        DfhClassifier {
            dfh: DfhArray::new(lines),
            transitions: [[0; 4]; 4],
            training_since: vec![0; lines],
            training_hist: Histogram::new(),
            ops: 0,
            sink: Sink::none(),
        }
    }

    /// Advances the scheme-op clock by one.
    pub fn tick(&mut self) {
        self.ops += 1;
    }

    /// Current DFH state of `line`.
    pub fn get(&self, line: LineId) -> Dfh {
        self.dfh.get(line)
    }

    /// Number of lines tracked.
    pub fn lines(&self) -> usize {
        self.training_since.len()
    }

    /// Census of lines per DFH state, indexed by `Dfh::bits()`.
    pub fn census(&self) -> [u64; 4] {
        self.dfh.census()
    }

    /// DFH transition counts, `[from][to]` indexed by `Dfh::bits()`.
    pub fn transitions(&self) -> &[[u64; 4]; 4] {
        &self.transitions
    }

    /// Moves `line` to `next`, bumping the transition matrix, closing the
    /// training-latency measurement when leaving `b'01` (and opening one
    /// when entering it), and emitting a [`KilliEvent::DfhTransition`].
    pub fn transition(&mut self, line: LineId, next: Dfh) {
        let cur = self.dfh.get(line);
        if cur != next {
            self.transitions[cur.bits() as usize][next.bits() as usize] += 1;
            self.dfh.set(line, next);
            if cur == Dfh::Unknown {
                let since = self.training_since[line];
                self.training_hist.observe_log2(self.ops - since);
            }
            if next == Dfh::Unknown {
                self.training_since[line] = self.ops;
            }
            self.sink.emit(|| KilliEvent::DfhTransition {
                line: line as u32,
                from: cur.bits(),
                to: next.bits(),
            });
        }
    }
}

impl FaultClassifier for DfhClassifier {
    fn victim_class(&self, line: LineId) -> Option<u8> {
        self.dfh.get(line).victim_class()
    }

    fn disabled_lines(&self) -> u64 {
        self.dfh.census()[Dfh::Disabled.bits() as usize]
    }

    fn on_access(&mut self) {
        self.tick();
    }

    fn reset(&mut self) {
        // Voltage change / reboot: relearn everything (§2.4). Transition
        // statistics and the op clock survive — they describe the run, not
        // the learned state.
        let now = self.ops;
        self.dfh.reset();
        self.training_since.fill(now);
    }

    fn attach_sink(&mut self, sink: Sink) {
        self.sink = sink;
    }

    fn fill_metrics(&self, m: &mut MetricSet) {
        m.dfh_transitions = self.transitions;
        m.set(Counter::DfhTransitions, m.total_transitions());
        m.dfh_census = Some(self.dfh.census());
        m.training_latency_ops = self.training_hist;
    }
}

/// Layer 4: how the raw classifier verdict becomes a replacement-policy
/// victim class, with visibility into the correction store's capacity.
///
/// The method is generic over the store so implementations can probe
/// lazily (the common fast path never touches the store).
pub trait VictimPolicy {
    /// Final victim class for `line` given the classifier's `raw` class.
    fn victim_class<S: CorrectionStore + ?Sized>(
        &self,
        line: LineId,
        raw: Option<u8>,
        store: &S,
    ) -> Option<u8>;
}

/// Uses the classifier's verdict unchanged (all baselines).
#[derive(Debug, Clone, Copy, Default)]
pub struct PassthroughPolicy;

impl VictimPolicy for PassthroughPolicy {
    fn victim_class<S: CorrectionStore + ?Sized>(
        &self,
        _line: LineId,
        raw: Option<u8>,
        _store: &S,
    ) -> Option<u8> {
        raw
    }
}

/// Killi's §4.4 policy: prefer `b'01 > b'00 > b'10` victims (when
/// `priority` is set; the ablation flattens every usable line to one
/// class), and never allocate a `b'10` line whose ECC-cache set has no
/// room for its checkbits (§5.2's "cannot be protected" subset).
#[derive(Debug, Clone, Copy)]
pub struct DfhPriorityPolicy {
    /// §4.4 victim-priority switch (`false` = the ablation).
    pub priority: bool,
}

impl VictimPolicy for DfhPriorityPolicy {
    fn victim_class<S: CorrectionStore + ?Sized>(
        &self,
        line: LineId,
        raw: Option<u8>,
        store: &S,
    ) -> Option<u8> {
        // `raw` is `Dfh::victim_class()`: only a `b'10` line maps to
        // class 2, so the (lazy) capacity probe runs exactly for those.
        if raw == Dfh::Stable1.victim_class() && !store.probe(line).protectable() {
            return None;
        }
        if self.priority {
            raw
        } else {
            raw.map(|_| 0)
        }
    }
}

/// Packs an OLSC checkbit vector into the Copy-able payload words.
pub fn pack_olsc(bits: &[bool]) -> [u64; 4] {
    let mut out = [0u64; 4];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 64] |= 1 << (i % 64);
        }
    }
    out
}

/// Unpacks OLSC checkbits.
pub fn unpack_olsc(words: &[u64; 4], n: usize) -> Vec<bool> {
    (0..n)
        .map(|i| (words[i / 64] >> (i % 64)) & 1 == 1)
        .collect()
}

/// Per-line SECDED stored in (faulty) low-voltage metadata cells — the
/// FLAIR / conventional-SECDED baseline codec.
#[derive(Debug, Clone)]
pub struct SecdedLineCodec {
    map: Arc<FaultMap>,
}

impl SecdedLineCodec {
    /// A codec whose stored checkbits are corrupted by `map`.
    pub fn new(map: Arc<FaultMap>) -> Self {
        SecdedLineCodec { map }
    }
}

impl DetectionCodec for SecdedLineCodec {
    fn check_latency(&self) -> u32 {
        1
    }

    fn encode(&mut self, line: LineId, data: &Line512) -> EccPayload {
        EccPayload::Secded {
            code: self.map.corrupt_secded(line, secded().encode(data)),
            parity_hi: 0,
        }
    }

    fn check(&mut self, line: LineId, stored: &mut Line512, payload: &EccPayload) -> CodecVerdict {
        let _ = line;
        let EccPayload::Secded { code, .. } = *payload else {
            debug_assert!(false, "SECDED codec given a non-SECDED payload");
            return CodecVerdict::Uncorrectable;
        };
        match secded().decode(stored, code) {
            SecdedDecode::Clean | SecdedDecode::CorrectedCheck => CodecVerdict::Clean,
            SecdedDecode::CorrectedData { bit } => {
                stored.flip_bit(bit);
                CodecVerdict::Corrected
            }
            SecdedDecode::DetectedDouble | SecdedDecode::DetectedUncorrectable => {
                CodecVerdict::Uncorrectable
            }
        }
    }
}

/// Per-line DEC-TED stored in (faulty) low-voltage metadata cells.
#[derive(Debug, Clone)]
pub struct DectedLineCodec {
    map: Arc<FaultMap>,
}

impl DectedLineCodec {
    /// A codec whose stored checkbits are corrupted by `map`.
    pub fn new(map: Arc<FaultMap>) -> Self {
        DectedLineCodec { map }
    }
}

impl DetectionCodec for DectedLineCodec {
    fn check_latency(&self) -> u32 {
        2
    }

    fn encode(&mut self, line: LineId, data: &Line512) -> EccPayload {
        EccPayload::Dected(self.map.corrupt_dected(line, dected().encode(data)))
    }

    fn check(&mut self, line: LineId, stored: &mut Line512, payload: &EccPayload) -> CodecVerdict {
        let _ = line;
        let EccPayload::Dected(code) = *payload else {
            debug_assert!(false, "DEC-TED codec given a non-DEC-TED payload");
            return CodecVerdict::Uncorrectable;
        };
        match dected().decode(stored, code) {
            DectedDecode::Clean => CodecVerdict::Clean,
            DectedDecode::Corrected { bits } => {
                let mut any = false;
                for bit in bits.into_iter().flatten() {
                    stored.flip_bit(bit);
                    any = true;
                }
                if any {
                    CodecVerdict::Corrected
                } else {
                    CodecVerdict::Clean
                }
            }
            DectedDecode::Detected => CodecVerdict::Uncorrectable,
        }
    }
}

/// OLSC over 64-bit blocks (MS-ECC's codec; checkbits live in nominal-
/// voltage storage, so they are stored uncorrupted).
#[derive(Debug, Clone)]
pub struct OlscBlockCodec {
    codec: OlscLine,
}

impl OlscBlockCodec {
    /// An OLSC(m, t) codec.
    ///
    /// # Panics
    ///
    /// Panics if the line-wide checkbit count exceeds the 256-bit payload
    /// (use [`crate::registry`] configs for a checked build).
    pub fn new(m: usize, t: usize) -> Self {
        let codec = OlscLine::new(m, t);
        assert!(
            codec.check_bits() <= 256,
            "OLSC({m}, {t}) checkbits exceed the 256-bit payload"
        );
        OlscBlockCodec { codec }
    }

    /// Line-wide checkbit count.
    pub fn check_bits(&self) -> usize {
        self.codec.check_bits()
    }
}

impl DetectionCodec for OlscBlockCodec {
    fn check_latency(&self) -> u32 {
        1
    }

    fn encode(&mut self, line: LineId, data: &Line512) -> EccPayload {
        let _ = line;
        EccPayload::Olsc(pack_olsc(&self.codec.encode(data)))
    }

    fn check(&mut self, line: LineId, stored: &mut Line512, payload: &EccPayload) -> CodecVerdict {
        let _ = line;
        let EccPayload::Olsc(words) = payload else {
            debug_assert!(false, "OLSC codec given a non-OLSC payload");
            return CodecVerdict::Uncorrectable;
        };
        let check = unpack_olsc(words, self.codec.check_bits());
        match self.codec.decode(stored, &check) {
            OlscDecode::Clean => CodecVerdict::Clean,
            OlscDecode::Corrected { .. } => CodecVerdict::Corrected,
            OlscDecode::Detected => CodecVerdict::Uncorrectable,
        }
    }
}

/// Killi's detection layer: 4 low-voltage segment-parity cells per line
/// (stuck-at corrupted by the fault map) plus, during training, 12 more
/// parity bits and a SECDED code held in the [`EccCache`].
///
/// The inherent methods expose the exact observation primitives the
/// per-DFH-state Killi control flow needs; the [`DetectionCodec`] impl
/// packages the training-mode observe/classify step for generic pipelines.
#[derive(Debug)]
pub struct SegmentedParity {
    map: Arc<FaultMap>,
    /// Content of the 4 low-voltage parity cells per line (already
    /// stuck-at corrupted). For `b'01` lines these are bits 0..4 of the
    /// 16-bit training parity; for stable lines the 4 quarter parities.
    parity4: Vec<u8>,
    check_latency: u32,
    sink: Sink,
}

impl SegmentedParity {
    /// Parity storage for `lines` L2 lines corrupted by `map`.
    pub fn new(map: Arc<FaultMap>, lines: usize, check_latency: u32) -> Self {
        SegmentedParity {
            map,
            parity4: vec![0; lines],
            check_latency,
            sink: Sink::none(),
        }
    }

    /// Installs the 4-bit stable parity of `data` (corrupted in storage).
    pub fn install4(&mut self, line: LineId, data: &Line512) {
        self.parity4[line] = self.map.corrupt_parity4(line, seg4(data));
    }

    /// Installs the low nibble of the 16-bit training parity of `data` and
    /// returns the full 16 bits (the high 12 go to the ECC cache).
    pub fn install16(&mut self, line: LineId, data: &Line512) -> u16 {
        let p16 = seg16(data);
        self.parity4[line] = self.map.corrupt_parity4(line, (p16 & 0xF) as u8);
        p16
    }

    /// Checks a stable (`b'00`/`b'10`) line's 4 quarter parities against
    /// `stored`, emitting the [`KilliEvent::ParityObservation`].
    pub fn observe_stable(&self, line: LineId, stored: &Line512) -> SegObservation {
        let obs = SegObservation::observe4(self.parity4[line], seg4(stored));
        self.sink.emit(|| KilliEvent::ParityObservation {
            line: line as u32,
            mismatch: !matches!(obs, SegObservation::Match),
        });
        obs
    }

    /// Observables of a training (`b'01`) line: 16-bit segment parity
    /// (4 LV cells + 12 nominal bits from the ECC-cache payload) plus the
    /// SECDED syndrome/parity, with both observation events emitted.
    pub fn observe_training(
        &self,
        line: LineId,
        stored: &Line512,
        code: SecdedCode,
        parity_hi: u16,
    ) -> (SegObservation, SecdedObservation, SecdedDecode) {
        let stored_p16 = (parity_hi << 4) | u16::from(self.parity4[line] & 0xF);
        let seg = SegObservation::observe16(stored_p16, seg16(stored));
        let ecc = secded().observe(stored, code);
        let dec = secded().interpret(ecc);
        self.sink.emit(|| KilliEvent::ParityObservation {
            line: line as u32,
            mismatch: !matches!(seg, SegObservation::Match),
        });
        self.sink.emit(|| KilliEvent::SyndromeObservation {
            line: line as u32,
            corrected: matches!(
                dec,
                SecdedDecode::CorrectedData { .. } | SecdedDecode::CorrectedCheck
            ),
            detected: matches!(
                dec,
                SecdedDecode::DetectedDouble | SecdedDecode::DetectedUncorrectable
            ),
        });
        (seg, ecc, dec)
    }

    /// Forgets all stored parity (voltage change / reboot).
    pub fn reset(&mut self) {
        self.parity4.fill(0);
    }

    /// Connects the parity layer to an event sink.
    pub fn attach_sink(&mut self, sink: Sink) {
        self.sink = sink;
    }
}

impl DetectionCodec for SegmentedParity {
    fn check_latency(&self) -> u32 {
        self.check_latency
    }

    fn encode(&mut self, line: LineId, data: &Line512) -> EccPayload {
        let p16 = self.install16(line, data);
        EccPayload::Secded {
            code: secded().encode(data),
            parity_hi: p16 >> 4,
        }
    }

    fn check(&mut self, line: LineId, stored: &mut Line512, payload: &EccPayload) -> CodecVerdict {
        let EccPayload::Secded { code, parity_hi } = *payload else {
            debug_assert!(false, "segmented parity given a non-SECDED payload");
            return CodecVerdict::Uncorrectable;
        };
        let (seg, ecc, dec) = self.observe_training(line, stored, code, parity_hi);
        match classify_unknown(seg, ecc, dec) {
            Verdict::SendClean {
                correct_bit: None, ..
            } => CodecVerdict::Clean,
            Verdict::SendClean {
                correct_bit: Some(bit),
                ..
            } => {
                stored.flip_bit(bit);
                CodecVerdict::Corrected
            }
            Verdict::ErrorMiss { .. } => CodecVerdict::Uncorrectable,
        }
    }
}

/// A [`LineProtection`] scheme assembled from one implementation of each
/// pipeline layer.
///
/// The driver is deliberately small: every hook ticks the classifier,
/// routes data through the codec/store pair, feeds codec verdicts back to
/// the classifier, and lets the policy veto victims. Schemes needing
/// richer coupling between the layers (Killi's per-DFH-state dispatch)
/// compose the same layer types with custom glue instead.
pub struct ProtectionPipeline<D, S, C, V> {
    name: &'static str,
    codec: D,
    store: S,
    classifier: C,
    policy: V,
    corrections: u64,
    detections: u64,
    sink: Sink,
}

impl<D, S, C, V> ProtectionPipeline<D, S, C, V>
where
    D: DetectionCodec,
    S: CorrectionStore,
    C: FaultClassifier,
    V: VictimPolicy,
{
    /// Composes the four layers under a scheme name.
    pub fn new(name: &'static str, codec: D, store: S, classifier: C, policy: V) -> Self {
        ProtectionPipeline {
            name,
            codec,
            store,
            classifier,
            policy,
            corrections: 0,
            detections: 0,
            sink: Sink::none(),
        }
    }

    /// The classifier layer (scheme-specific introspection).
    pub fn classifier(&self) -> &C {
        &self.classifier
    }

    /// Mutable classifier access (scheme-specific introspection).
    pub fn classifier_mut(&mut self) -> &mut C {
        &mut self.classifier
    }

    /// The codec layer.
    pub fn codec(&self) -> &D {
        &self.codec
    }

    /// The store layer.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Single-bit (or block) corrections delivered so far.
    pub fn corrections(&self) -> u64 {
        self.corrections
    }

    /// Uncorrectable detections so far.
    pub fn detections(&self) -> u64 {
        self.detections
    }
}

impl<D, S, C, V> LineProtection for ProtectionPipeline<D, S, C, V>
where
    D: DetectionCodec,
    S: CorrectionStore,
    C: FaultClassifier,
    V: VictimPolicy,
{
    fn name(&self) -> &str {
        self.name
    }

    fn reset(&mut self) {
        self.classifier.reset();
        self.store.clear();
    }

    fn victim_class(&self, line: LineId) -> Option<u8> {
        self.policy
            .victim_class(line, self.classifier.victim_class(line), &self.store)
    }

    fn on_fill(&mut self, line: LineId, data: &Line512) -> FillOutcome {
        self.classifier.on_access();
        let payload = self.codec.encode(line, data);
        let mut outcome = FillOutcome::default();
        if let Some((displaced, _)) = self.store.insert(line, payload) {
            outcome.invalidate.push(displaced);
        }
        outcome
    }

    fn on_read_hit(&mut self, line: LineId, stored: &mut Line512) -> ReadOutcome {
        self.classifier.on_access();
        let Some(payload) = self.store.lookup(line) else {
            // Valid lines always carry checkbits; refetch conservatively.
            debug_assert!(false, "read hit without stored checkbits");
            return ReadOutcome::ErrorMiss { extra_cycles: 0 };
        };
        let verdict = self.codec.check(line, stored, &payload);
        let outcome = match verdict {
            CodecVerdict::Clean => ReadOutcome::Clean {
                extra_cycles: 0,
                corrected: false,
            },
            CodecVerdict::Corrected => {
                self.corrections += 1;
                ReadOutcome::Clean {
                    extra_cycles: 0,
                    corrected: true,
                }
            }
            CodecVerdict::Uncorrectable => {
                self.detections += 1;
                self.store.invalidate(line);
                ReadOutcome::ErrorMiss { extra_cycles: 0 }
            }
        };
        self.classifier.observe(line, verdict);
        self.sink.emit(|| KilliEvent::SyndromeObservation {
            line: line as u32,
            corrected: matches!(verdict, CodecVerdict::Corrected),
            detected: matches!(verdict, CodecVerdict::Uncorrectable),
        });
        outcome
    }

    fn on_evict(&mut self, line: LineId, _stored: &Line512) {
        self.store.invalidate(line);
    }

    fn hit_latency_extra(&self) -> u32 {
        self.codec.check_latency()
    }

    fn attach_sink(&mut self, sink: Sink) {
        self.store.attach_sink(sink.clone());
        self.classifier.attach_sink(sink.clone());
        self.sink = sink;
    }

    fn metrics(&self) -> MetricSet {
        let mut m = MetricSet::new();
        m.set(Counter::DisabledLines, self.classifier.disabled_lines());
        m.set(Counter::Corrections, self.corrections);
        m.set(Counter::Detections, self.detections);
        self.classifier.fill_metrics(&mut m);
        self.store.fill_metrics(&mut m);
        m
    }
}

impl<D, S, C, V> std::fmt::Debug for ProtectionPipeline<D, S, C, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProtectionPipeline")
            .field("name", &self.name)
            .field("corrections", &self.corrections)
            .field("detections", &self.detections)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use killi_fault::map::CellFault;

    #[test]
    fn line_store_never_displaces() {
        let mut s = LineStore::new(4);
        assert!(!CorrectionStore::probe(&s, 0).has_entry);
        assert!(CorrectionStore::probe(&s, 0).has_free_way);
        for line in 0..4 {
            assert!(s
                .insert(
                    line,
                    EccPayload::Secded {
                        code: secded().encode(&Line512::zero()),
                        parity_hi: 0,
                    },
                )
                .is_none());
        }
        assert!(CorrectionStore::probe(&s, 0).has_entry);
        assert!(s.lookup(1).is_some());
        s.invalidate(1);
        assert!(s.lookup(1).is_none());
        s.clear();
        assert!(s.lookup(0).is_none());
    }

    #[test]
    fn priority_policy_vetoes_unprotectable_stable1() {
        let map = Arc::new(FaultMap::fault_free(16));
        let mut store = EccCache::new(
            crate::ecc_cache::EccCacheConfig { ratio: 4, ways: 4 },
            16,
            4,
        );
        // Fill the single set with other lines' entries.
        for line in 0..4 {
            CorrectionStore::insert(
                &mut store,
                line,
                EccPayload::Secded {
                    code: secded().encode(&Line512::zero()),
                    parity_hi: 0,
                },
            );
        }
        let _ = map;
        let policy = DfhPriorityPolicy { priority: true };
        let raw = Dfh::Stable1.victim_class();
        assert_eq!(policy.victim_class(5, raw, &store), None, "set full");
        store.invalidate(0);
        assert_eq!(policy.victim_class(5, raw, &store), raw);
        // The ablation flattens classes but keeps the capacity veto.
        let flat = DfhPriorityPolicy { priority: false };
        assert_eq!(flat.victim_class(5, raw, &store), Some(0));
        assert_eq!(
            flat.victim_class(5, Dfh::Disabled.victim_class(), &store),
            None
        );
    }

    #[test]
    fn secded_line_codec_roundtrip_and_correction() {
        let map = Arc::new(FaultMap::from_faults(vec![
            vec![CellFault {
                cell: 10,
                stuck: true,
            }],
            Vec::new(),
        ]));
        let mut codec = SecdedLineCodec::new(Arc::clone(&map));
        let data = Line512::zero();
        let payload = codec.encode(0, &data);
        let mut arr = data;
        map.corrupt_data(0, &mut arr);
        assert!(arr.bit(10));
        assert_eq!(codec.check(0, &mut arr, &payload), CodecVerdict::Corrected);
        assert_eq!(arr, data);

        let payload = codec.encode(1, &data);
        let mut clean = data;
        assert_eq!(codec.check(1, &mut clean, &payload), CodecVerdict::Clean);
    }

    #[test]
    fn oracle_block_budget_matches_msecc_rule() {
        // Three faults in one 64-bit block exceed t = 2; three spread
        // faults do not.
        let clustered = vec![
            CellFault {
                cell: 1,
                stuck: true,
            },
            CellFault {
                cell: 9,
                stuck: true,
            },
            CellFault {
                cell: 17,
                stuck: true,
            },
        ];
        let spread = vec![
            CellFault {
                cell: 1,
                stuck: true,
            },
            CellFault {
                cell: 70,
                stuck: true,
            },
            CellFault {
                cell: 140,
                stuck: true,
            },
        ];
        let map = FaultMap::from_faults(vec![clustered, spread]);
        let oracle = OracleClassifier::from_block_budget(&map, 2, 64, 2);
        assert!(oracle.is_disabled(0));
        assert!(!oracle.is_disabled(1));
        assert_eq!(oracle.disabled_lines(), 1);
        assert_eq!(FaultClassifier::victim_class(&oracle, 0), None);
        assert_eq!(FaultClassifier::victim_class(&oracle, 1), Some(0));
    }

    #[test]
    fn generic_pipeline_counts_and_invalidates() {
        let map = Arc::new(FaultMap::from_faults(vec![
            vec![
                CellFault {
                    cell: 3,
                    stuck: true,
                },
                CellFault {
                    cell: 40,
                    stuck: true,
                },
            ],
            Vec::new(),
        ]));
        let mut pipe = ProtectionPipeline::new(
            "secded",
            SecdedLineCodec::new(Arc::clone(&map)),
            LineStore::new(2),
            OracleClassifier::from_threshold(&map, 2, killi_fault::map::layout::SECDED, 2),
            PassthroughPolicy,
        );
        assert_eq!(pipe.victim_class(0), None, "two-fault line disabled");
        assert_eq!(pipe.victim_class(1), Some(0));
        let data = Line512::zero();
        pipe.on_fill(1, &data);
        let mut arr = data;
        assert!(matches!(
            pipe.on_read_hit(1, &mut arr),
            ReadOutcome::Clean {
                corrected: false,
                ..
            }
        ));
        pipe.on_evict(1, &arr);
        let m = pipe.metrics();
        assert_eq!(m.get(Counter::DisabledLines), 1);
        assert_eq!(m.get(Counter::Corrections), 0);
    }
}

//! Killi: runtime LV-fault classification without MBIST (HPCA 2019).
//!
//! This crate implements the paper's primary contribution on top of the
//! `killi-sim` cache substrate:
//!
//! - [`dfh`] — the per-line Detected Fault History state (Table 1),
//! - [`classify`] — the Table 2 transition logic as a pure function of the
//!   (segment parity, syndrome, global parity) observables,
//! - [`ecc_cache`] — the decoupled metadata cache holding SECDED checkbits
//!   and the upper parity bits for lines that need them,
//! - [`scheme`] — [`scheme::KilliScheme`], the full mechanism implementing
//!   the simulator's `LineProtection` interface, including the §4.4
//!   replacement optimizations, the §5.2 DEC-TED upgrade and the §5.6.2
//!   inverted-write masked-fault mitigation,
//! - [`pipeline`] — the four composable protection layers (detection
//!   codec, correction store, fault classifier, victim policy) that the
//!   schemes are assembled from, plus a generic
//!   [`pipeline::ProtectionPipeline`] driver,
//! - [`registry`] — the data-driven [`registry::SchemeRegistry`] mapping
//!   declarative [`registry::SchemeConfig`]s (CLI shorthand or JSON) onto
//!   built pipelines with typed [`registry::BuildError`]s.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use killi::scheme::{KilliConfig, KilliScheme};
//! use killi_fault::model::{default_registry, FaultModelConfig};
//! use killi_fault::cell_model::{FreqGhz, NormVdd};
//! use killi_sim::gpu::{GpuConfig, GpuSim};
//! use killi_sim::trace::{Trace, TraceOp};
//!
//! let config = GpuConfig::small_test();
//! let model = default_registry().build(&FaultModelConfig::default()).unwrap();
//! let map = Arc::new(model.map(config.l2.lines(), NormVdd::LV_0_625, FreqGhz::PEAK, 1));
//! let killi = KilliScheme::new(
//!     KilliConfig::with_ratio(16), Arc::clone(&map),
//!     config.l2.lines(), config.l2.ways,
//! );
//! let mut sim = GpuSim::new(config, map, Box::new(killi), 7);
//! let ops: Vec<TraceOp> = (0..64).map(|i| TraceOp::Load(i * 64)).collect();
//! let stats = sim.run(Trace::from_vecs(vec![ops.clone(), ops]));
//! assert_eq!(stats.sdc_events, 0, "Killi must never deliver corrupt data silently");
//! ```

pub mod classify;
pub mod dfh;
pub mod ecc_cache;
pub mod pipeline;
pub mod registry;
pub mod scheme;

pub use dfh::Dfh;
pub use pipeline::{
    CodecVerdict, CorrectionStore, DetectionCodec, FaultClassifier, ProtectionPipeline,
    VictimPolicy,
};
pub use registry::{
    BuildCtx, BuildError, ParamValue, SchemeConfig, SchemeDescriptor, SchemeRegistry,
};
pub use scheme::{KilliConfig, KilliScheme};

//! The ECC cache: a small set-associative structure holding the error
//! protection metadata of the subset of L2 lines that need it (§4.1).
//!
//! Entries are tagged by the (index, way) of the L2 line they protect — not
//! the physical address — which keeps tags small (the paper's 41-bit entry:
//! 11 SECDED checkbits + 12 parity bits + index/way tag). The structure is
//! indexed by the same physical address bits as the L2, so addresses from
//! disjoint L2 sets contend for the same ECC-cache set; an eviction here
//! forces the invalidation of the (unrelated) L2 line it protected — the
//! contention effect Figures 4/5 measure.

use killi_ecc::bch::DectedCode;
use killi_ecc::secded::SecdedCode;
use killi_fault::map::LineId;
use killi_obs::{Histogram, KilliEvent, Sink};

/// Protection metadata stored in one ECC-cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccPayload {
    /// SECDED checkbits plus the upper 12 of the 16 training-mode parity
    /// bits (the 23 payload bits of the paper's 41-bit entry).
    Secded {
        /// The 11 SECDED checkbits.
        code: SecdedCode,
        /// Parity bits 4..16 of the interleaved segment parity.
        parity_hi: u16,
    },
    /// DEC-TED checkbits (post-training upgrade, §5.2: the freed 12 parity
    /// bits plus the 11 SECDED bits hold a 21-bit DECTED code).
    Dected(DectedCode),
    /// Orthogonal-Latin-Square checkbits (the §5.5 low-Vmin variant:
    /// 256 bits of OLSC(8, 2) per protected line).
    Olsc([u64; 4]),
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    valid: bool,
    l2_line: LineId,
    payload: EccPayload,
    lru: u64,
}

const INVALID: Entry = Entry {
    valid: false,
    l2_line: 0,
    payload: EccPayload::Secded {
        code: SecdedCode(0),
        parity_hi: 0,
    },
    lru: 0,
};

/// ECC-cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EccCacheConfig {
    /// One ECC-cache entry per `ratio` L2 lines (the paper sweeps
    /// 16..=256).
    pub ratio: usize,
    /// Associativity (Table 3: 4).
    pub ways: usize,
}

impl EccCacheConfig {
    /// The paper's configuration at a given ratio.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is zero.
    pub fn with_ratio(ratio: usize) -> Self {
        assert!(ratio > 0, "ratio must be positive");
        EccCacheConfig { ratio, ways: 4 }
    }

    /// Checks whether this configuration can be built over an L2 with
    /// `l2_lines` lines, returning the message [`EccCache::new`] would
    /// panic with.
    pub fn validate(&self, l2_lines: usize) -> Result<(), String> {
        if self.ratio == 0 {
            return Err("ratio must be positive".to_string());
        }
        let entries = l2_lines / self.ratio;
        if entries < self.ways {
            return Err("ECC cache smaller than one set".to_string());
        }
        let sets = entries / self.ways;
        if !sets.is_power_of_two() {
            return Err("ECC cache sets must be a power of two".to_string());
        }
        Ok(())
    }
}

/// Result of a single-pass set scan ([`EccCache::probe`]): everything the
/// victim-selection check needs to know about an L2 line's ECC-cache set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetProbe {
    /// The line currently owns an entry.
    pub has_entry: bool,
    /// The set has at least one invalid way.
    pub has_free_way: bool,
}

impl SetProbe {
    /// True when the line could hold checkbits without displacing another
    /// line's entry (it already has an entry, or an insert would land in a
    /// free way).
    pub fn protectable(self) -> bool {
        self.has_entry || self.has_free_way
    }
}

/// The ECC cache.
#[derive(Debug, Clone)]
pub struct EccCache {
    /// `sets - 1`; the set count is asserted a power of two, so the set
    /// index is a mask rather than a modulo on the probe path.
    set_mask: usize,
    ways: usize,
    l2_ways: usize,
    entries: Vec<Entry>,
    clock: u64,
    accesses: u64,
    evictions: u64,
    /// Valid ways in the target set, sampled after every insert (always
    /// on: one bucket increment per insert).
    occupancy_hist: Histogram,
    sink: Sink,
}

impl EccCache {
    /// Builds an ECC cache protecting an L2 with `l2_lines` physical lines
    /// of `l2_ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if the configuration yields zero sets or a non-power-of-two
    /// set count.
    pub fn new(config: EccCacheConfig, l2_lines: usize, l2_ways: usize) -> Self {
        if let Err(message) = config.validate(l2_lines) {
            panic!("{message}");
        }
        let entries = l2_lines / config.ratio;
        let sets = entries / config.ways;
        EccCache {
            set_mask: sets - 1,
            ways: config.ways,
            l2_ways,
            entries: vec![INVALID; entries],
            clock: 0,
            accesses: 0,
            evictions: 0,
            occupancy_hist: Histogram::new(),
            sink: Sink::none(),
        }
    }

    /// Routes insert/promote/displace/invalidate events into `sink`.
    pub fn attach_sink(&mut self, sink: Sink) {
        self.sink = sink;
    }

    /// Per-set occupancy distribution, one sample per insert.
    pub fn occupancy_histogram(&self) -> &Histogram {
        &self.occupancy_hist
    }

    /// Total entries.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Number of currently valid entries.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// Lookups + inserts performed (for the energy model).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Valid entries displaced by capacity (each forced an L2 line
    /// invalidation).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// ECC-cache set of an L2 line: indexed by the same physical address
    /// bits (the L2 set index) as the main cache.
    fn set_of(&self, l2_line: LineId) -> usize {
        (l2_line / self.l2_ways) & self.set_mask
    }

    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.ways..(set + 1) * self.ways
    }

    /// True when `l2_line` currently owns an entry (no LRU update).
    pub fn has_entry(&self, l2_line: LineId) -> bool {
        let range = self.set_range(self.set_of(l2_line));
        self.entries[range]
            .iter()
            .any(|e| e.valid && e.l2_line == l2_line)
    }

    /// True when the set `l2_line` maps to has an invalid way (an insert
    /// would not displace anything).
    pub fn set_has_free_way(&self, l2_line: LineId) -> bool {
        let range = self.set_range(self.set_of(l2_line));
        self.entries[range].iter().any(|e| !e.valid)
    }

    /// Answers [`has_entry`](Self::has_entry) and
    /// [`set_has_free_way`](Self::set_has_free_way) in one pass over the
    /// set, resolving the set index once. This is the victim-selection hot
    /// probe: it runs for every candidate way on every L2 fill.
    pub fn probe(&self, l2_line: LineId) -> SetProbe {
        let range = self.set_range(self.set_of(l2_line));
        let mut p = SetProbe {
            has_entry: false,
            has_free_way: false,
        };
        for e in &self.entries[range] {
            p.has_entry |= e.valid && e.l2_line == l2_line;
            p.has_free_way |= !e.valid;
        }
        p
    }

    /// Reads the payload protecting `l2_line`, updating LRU. The set is
    /// resolved once up front; payloads are `Copy`, so a miss walks the
    /// ways without cloning anything.
    pub fn lookup(&mut self, l2_line: LineId) -> Option<EccPayload> {
        self.accesses += 1;
        self.clock += 1;
        let range = self.set_range(self.set_of(l2_line));
        for e in &mut self.entries[range] {
            if e.valid && e.l2_line == l2_line {
                e.lru = self.clock;
                return Some(e.payload);
            }
        }
        None
    }

    /// Updates the payload of an existing entry (e.g. SECDED -> DECTED
    /// upgrade). Returns false when the line has no entry.
    pub fn update(&mut self, l2_line: LineId, payload: EccPayload) -> bool {
        let range = self.set_range(self.set_of(l2_line));
        for e in &mut self.entries[range] {
            if e.valid && e.l2_line == l2_line {
                e.payload = payload;
                return true;
            }
        }
        false
    }

    /// Inserts (or replaces) the entry for `l2_line`. Returns the L2 line
    /// whose entry was evicted to make room, together with its payload (so
    /// the displaced line can still be trained on its way out), if any.
    pub fn insert(&mut self, l2_line: LineId, payload: EccPayload) -> Option<(LineId, EccPayload)> {
        self.accesses += 1;
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(l2_line);
        let range = self.set_range(set);
        let displaced = 'place: {
            // Replace an existing entry for the same line.
            if let Some(e) = self.entries[range.clone()]
                .iter_mut()
                .find(|e| e.valid && e.l2_line == l2_line)
            {
                e.payload = payload;
                e.lru = clock;
                break 'place None;
            }
            // Prefer an invalid way.
            if let Some(e) = self.entries[range.clone()].iter_mut().find(|e| !e.valid) {
                *e = Entry {
                    valid: true,
                    l2_line,
                    payload,
                    lru: clock,
                };
                break 'place None;
            }
            // Evict LRU; its L2 line loses protection.
            let victim_idx = range
                .clone()
                .min_by_key(|&i| self.entries[i].lru)
                .expect("nonempty set");
            let displaced = (
                self.entries[victim_idx].l2_line,
                self.entries[victim_idx].payload,
            );
            self.entries[victim_idx] = Entry {
                valid: true,
                l2_line,
                payload,
                lru: clock,
            };
            self.evictions += 1;
            Some(displaced)
        };
        let occupancy = self.entries[range].iter().filter(|e| e.valid).count();
        self.occupancy_hist.observe_linear(occupancy as u64);
        self.sink.emit(|| KilliEvent::EccInsert {
            line: l2_line as u32,
            set: set as u32,
        });
        if let Some((victim, _)) = displaced {
            self.sink.emit(|| KilliEvent::EccDisplace {
                line: l2_line as u32,
                victim: victim as u32,
            });
        }
        displaced
    }

    /// Removes the entry for `l2_line` (line classified `b'00` or evicted).
    pub fn invalidate(&mut self, l2_line: LineId) {
        let range = self.set_range(self.set_of(l2_line));
        let mut removed = false;
        for e in &mut self.entries[range] {
            if e.valid && e.l2_line == l2_line {
                e.valid = false;
                removed = true;
            }
        }
        if removed {
            self.sink.emit(|| KilliEvent::EccInvalidate {
                line: l2_line as u32,
            });
        }
    }

    /// Promotes the entry of `l2_line` to MRU (coordinated replacement,
    /// §4.4).
    pub fn promote(&mut self, l2_line: LineId) {
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(self.set_of(l2_line));
        let mut promoted = false;
        for e in &mut self.entries[range] {
            if e.valid && e.l2_line == l2_line {
                e.lru = clock;
                promoted = true;
            }
        }
        if promoted {
            self.sink.emit(|| KilliEvent::EccPromote {
                line: l2_line as u32,
            });
        }
    }

    /// Clears every entry (DFH reset).
    pub fn clear(&mut self) {
        for e in &mut self.entries {
            e.valid = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(tag: u16) -> EccPayload {
        EccPayload::Secded {
            code: SecdedCode(tag),
            parity_hi: tag,
        }
    }

    fn cache(ratio: usize) -> EccCache {
        // A 1024-line, 16-way L2.
        EccCache::new(EccCacheConfig::with_ratio(ratio), 1024, 16)
    }

    #[test]
    fn capacity_follows_ratio() {
        assert_eq!(cache(16).capacity(), 64);
        assert_eq!(cache(64).capacity(), 16);
        // Paper: 2 MB L2 at 1:256 -> 128 entries.
        let paper = EccCache::new(EccCacheConfig::with_ratio(256), 32768, 16);
        assert_eq!(paper.capacity(), 128);
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut c = cache(16);
        assert_eq!(c.insert(5, payload(7)), None);
        assert_eq!(c.lookup(5), Some(payload(7)));
        assert_eq!(c.lookup(6), None);
    }

    #[test]
    fn reinsert_replaces_payload() {
        let mut c = cache(16);
        c.insert(5, payload(1));
        assert_eq!(c.insert(5, payload(2)), None, "no eviction on replace");
        assert_eq!(c.lookup(5), Some(payload(2)));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn update_requires_existing_entry() {
        let mut c = cache(16);
        assert!(!c.update(5, payload(1)));
        c.insert(5, payload(1));
        assert!(c.update(5, payload(9)));
        assert_eq!(c.lookup(5), Some(payload(9)));
    }

    #[test]
    fn capacity_eviction_reports_displaced_line() {
        let mut c = cache(64); // 16 entries, 4 ways -> 4 sets
                               // Lines mapping to the same ECC set: same (l2_line/16) % 4.
        let same_set: Vec<LineId> = (0..5).map(|i| i * 16 * 4).collect();
        for (i, &l) in same_set.iter().take(4).enumerate() {
            assert_eq!(c.insert(l, payload(i as u16)), None);
        }
        let displaced = c.insert(same_set[4], payload(99));
        assert_eq!(
            displaced,
            Some((same_set[0], payload(0))),
            "LRU entry displaced with its payload"
        );
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn lru_respects_lookups_and_promotion() {
        let mut c = cache(64);
        let lines: Vec<LineId> = (0..5).map(|i| i * 16 * 4).collect();
        for &l in &lines[..4] {
            c.insert(l, payload(0));
        }
        c.lookup(lines[0]); // MRU by lookup
        c.promote(lines[1]); // MRU by coordinated promotion
        let displaced = c.insert(lines[4], payload(0));
        assert_eq!(
            displaced.map(|(l, _)| l),
            Some(lines[2]),
            "oldest untouched entry goes"
        );
    }

    #[test]
    fn invalidate_frees_space() {
        let mut c = cache(64);
        let lines: Vec<LineId> = (0..5).map(|i| i * 16 * 4).collect();
        for &l in &lines[..4] {
            c.insert(l, payload(0));
        }
        c.invalidate(lines[2]);
        assert_eq!(c.occupancy(), 3);
        assert_eq!(c.insert(lines[4], payload(0)), None, "reused freed way");
    }

    #[test]
    fn disjoint_l2_sets_share_ecc_sets() {
        // The contention mechanism of §4.3: with 4 ECC sets, L2 sets 0 and 4
        // collide.
        let c = cache(64);
        assert_eq!(c.set_of(0), c.set_of(4 * 16));
        assert_ne!(c.set_of(0), c.set_of(16));
    }

    #[test]
    fn probe_matches_split_queries() {
        let mut c = cache(64);
        let lines: Vec<LineId> = (0..5).map(|i| i * 16 * 4).collect();
        // Empty set, filling set, full set, and a conflicting line that
        // maps to the full set but owns no entry.
        for &l in &lines[..4] {
            let p = c.probe(l);
            assert_eq!(p.has_entry, c.has_entry(l));
            assert_eq!(p.has_free_way, c.set_has_free_way(l));
            assert!(p.protectable());
            c.insert(l, payload(0));
        }
        let full = c.probe(lines[0]);
        assert!(full.has_entry && !full.has_free_way && full.protectable());
        let conflict = c.probe(lines[4]);
        assert!(!conflict.has_entry && !conflict.has_free_way);
        assert!(!conflict.protectable());
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = cache(16);
        c.insert(1, payload(1));
        c.insert(2, payload(2));
        c.clear();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.lookup(1), None);
    }

    #[test]
    fn dected_payload_roundtrip() {
        let mut c = cache(16);
        c.insert(3, EccPayload::Dected(DectedCode(0x1F_FFFF)));
        assert_eq!(c.lookup(3), Some(EccPayload::Dected(DectedCode(0x1F_FFFF))));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        EccCache::new(EccCacheConfig { ratio: 4, ways: 4 }, 48, 16);
    }
}
